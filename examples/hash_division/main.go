// Relational division ("which students have taken ALL required
// courses?") with Volcano's hash-division algorithm, parallelised two
// ways as in §4.4: divisor partitioning and quotient partitioning. The
// quotient-partitioned variant uses the exchange operator's broadcast
// switch ("it is not necessary to copy the records ...; it is sufficient
// to pin them such that each consumer can unpin them as if it were the
// only process using them").
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

const (
	students = 6000
	courses  = 24
	workers  = 4
)

var (
	enrolledSchema = record.MustSchema(
		record.Field{Name: "student", Type: record.TInt},
		record.Field{Name: "course", Type: record.TInt},
	)
	coursesSchema = record.MustSchema(
		record.Field{Name: "course", Type: record.TInt},
	)
)

func main() {
	reg := device.NewRegistry()
	baseID := reg.NextID()
	must(reg.Mount(device.NewMem(baseID)))
	tempID := reg.NextID()
	must(reg.Mount(device.NewMem(tempID)))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 16384, buffer.TwoLevel)
	base := file.NewVolume(pool, baseID)
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	// Enrollment: every third student completes all courses.
	enrolled, err := base.Create("enrolled", enrolledSchema)
	must(err)
	expected := 0
	for s := 0; s < students; s++ {
		limit := courses
		if s%3 != 0 {
			limit = courses - 1
		} else {
			expected++
		}
		for c := 0; c < limit; c++ {
			_, err := enrolled.Insert(enrolledSchema.MustEncode(record.Int(int64(s)), record.Int(int64(c))))
			must(err)
		}
	}
	required, err := base.Create("required", coursesSchema)
	must(err)
	for c := 0; c < courses; c++ {
		_, err := required.Insert(coursesSchema.MustEncode(record.Int(int64(c))))
		must(err)
	}

	run := func(name string, mk func() (core.Iterator, error)) {
		it, err := mk()
		must(err)
		start := time.Now()
		n, err := core.Drain(it)
		must(err)
		status := "OK"
		if n != expected {
			status = fmt.Sprintf("WRONG, want %d", expected)
		}
		fmt.Printf("%-48s %6d quotients in %8v  [%s]\n",
			name, n, time.Since(start).Round(time.Microsecond), status)
	}

	// Serial hash division.
	run("serial hash division", func() (core.Iterator, error) {
		dv, err := core.NewFileScan(enrolled, nil, false)
		if err != nil {
			return nil, err
		}
		ds, err := core.NewFileScan(required, nil, false)
		if err != nil {
			return nil, err
		}
		return core.NewHashDivision(env, dv, ds, record.Key{0}, record.Key{1}, record.Key{0})
	})

	// Quotient partitioning: hash the dividend on student, broadcast the
	// divisor; every worker computes final quotients for its students.
	run("quotient partitioning (broadcast divisor)", func() (core.Iterator, error) {
		xDiv, err := core.NewExchange(core.ExchangeConfig{
			Schema: enrolledSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(enrolled, nil, false) },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(enrolledSchema, record.Key{0}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		xReq, err := core.NewExchange(core.ExchangeConfig{
			Schema: coursesSchema, Producers: 1, Consumers: workers, Broadcast: true,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(required, nil, false) },
		})
		if err != nil {
			return nil, err
		}
		quotSchema := record.MustSchema(record.Field{Name: "student", Type: record.TInt})
		gather, err := core.NewExchange(core.ExchangeConfig{
			Schema: quotSchema, Producers: workers, Consumers: 1,
			NewProducer: func(g int) (core.Iterator, error) {
				return core.NewHashDivision(env, xDiv.Consumer(g), xReq.Consumer(g),
					record.Key{0}, record.Key{1}, record.Key{0})
			},
		})
		if err != nil {
			return nil, err
		}
		return gather.Consumer(0), nil
	})

	// Divisor partitioning: hash both inputs on course; workers emit
	// partial match counts; a global sum keeps full matches.
	run("divisor partitioning (partial counts + agg)", func() (core.Iterator, error) {
		xDiv, err := core.NewExchange(core.ExchangeConfig{
			Schema: enrolledSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(enrolled, nil, false) },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(enrolledSchema, record.Key{1}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		xReq, err := core.NewExchange(core.ExchangeConfig{
			Schema: coursesSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(required, nil, false) },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(coursesSchema, record.Key{0}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		partialSchema := record.MustSchema(
			record.Field{Name: "student", Type: record.TInt},
			record.Field{Name: "matched", Type: record.TInt},
		)
		gather, err := core.NewExchange(core.ExchangeConfig{
			Schema: partialSchema, Producers: workers, Consumers: 1,
			NewProducer: func(g int) (core.Iterator, error) {
				d, err := core.NewHashDivision(env, xDiv.Consumer(g), xReq.Consumer(g),
					record.Key{0}, record.Key{1}, record.Key{0})
				if err != nil {
					return nil, err
				}
				if err := d.SetPartial(true); err != nil {
					return nil, err
				}
				return d, nil
			},
		})
		if err != nil {
			return nil, err
		}
		agg, err := core.NewHashAggregate(env, gather.Consumer(0),
			record.Key{0}, []core.AggSpec{{Func: core.AggSum, Field: 1, Name: "matched"}})
		if err != nil {
			return nil, err
		}
		return core.NewFilterExpr(agg, fmt.Sprintf("matched = %d", courses), expr.Compiled)
	})

	if n := pool.Stats().CurrentlyFixedHint; n != 0 {
		log.Fatalf("buffer pin leak: %d", n)
	}
	fmt.Println("all pins balanced")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
