// Dynamic query evaluation plans [Graefe & Ward 1989], the companion
// Volcano work: a query is optimised once into *alternative* plans — here
// a B+-tree index range scan and a full scan with a filter — and a
// choose-plan operator picks between them at open time, when the actual
// parameter value (and thus the selectivity) is known. The example runs
// on a durable, disk-backed volume with a persisted index catalog.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

const rows = 200000

var schema = record.MustSchema(
	record.Field{Name: "id", Type: record.TInt},
	record.Field{Name: "payload", Type: record.TString},
)

func main() {
	dir, err := os.MkdirTemp("", "volcano-dynplans")
	must(err)
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "db")

	// --- Build a durable database with an index, then close it. --------
	func() {
		reg := device.NewRegistry()
		id := reg.NextID()
		d, err := device.NewDisk(id, dbPath, 1<<16)
		must(err)
		must(reg.Mount(d))
		defer reg.CloseAll()
		pool := buffer.NewPool(reg, 4096, buffer.TwoLevel)
		vol, err := file.Format(pool, id)
		must(err)
		f, err := vol.Create("events", schema)
		must(err)
		tree, err := btree.Create(pool, id)
		must(err)
		for i := 0; i < rows; i++ {
			rid, err := f.Insert(schema.MustEncode(
				record.Int(int64(i)), record.Str(fmt.Sprintf("event-%d", i))))
			must(err)
			must(tree.Insert(btree.EncodeKey(record.Int(int64(i))), rid))
		}
		vol.SaveIndex("events_id", tree)
		must(vol.Save())
		fmt.Printf("built database: %d rows, index height %d\n", rows, tree.Height())
	}()

	// --- Reopen and query with a dynamic plan. --------------------------
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.OpenDisk(id, dbPath)
	must(err)
	must(reg.Mount(d))
	tempID := reg.NextID()
	must(reg.Mount(device.NewMem(tempID)))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 4096, buffer.TwoLevel)
	vol, err := file.OpenVolume(pool, id)
	must(err)
	_ = core.NewEnv(pool, file.NewVolume(pool, tempID)) // temp volume ready for operators that materialise
	f, err := vol.Open("events")
	must(err)
	tree, err := vol.OpenIndex("events_id")
	must(err)

	// The prepared query: "ids in [lo, lo+span)". Plan A uses the index;
	// plan B scans everything. The decision function estimates
	// selectivity from the run-time parameters.
	query := func(lo, span int64) (int, string, time.Duration) {
		idx, err := core.NewIndexScan(tree, f, nil,
			btree.EncodeKey(record.Int(lo)), btree.EncodeKey(record.Int(lo+span-1)), true, true)
		must(err)
		full, err := core.NewFilterExpr(mustScan(f),
			fmt.Sprintf("id >= %d AND id < %d", lo, lo+span), expr.Compiled)
		must(err)
		chosen := ""
		cp, err := core.NewChoosePlan([]core.Iterator{idx, full}, func() (int, error) {
			// Index wins for selective ranges; a full scan wins when the
			// range covers a large fraction of the table (no per-record
			// RID fetch).
			if float64(span)/float64(rows) < 0.05 {
				chosen = "index scan"
				return 0, nil
			}
			chosen = "full scan"
			return 1, nil
		})
		must(err)
		start := time.Now()
		n, err := core.Drain(cp)
		must(err)
		return n, chosen, time.Since(start)
	}

	for _, span := range []int64{100, 150000} {
		n, chosen, elapsed := query(1000, span)
		fmt.Printf("range of %6d ids → choose-plan picked %-10s: %6d rows in %v\n",
			span, chosen, n, elapsed.Round(time.Microsecond))
	}
	if n := pool.Stats().CurrentlyFixedHint; n != 0 {
		log.Fatalf("buffer pin leak: %d", n)
	}
	fmt.Println("all pins balanced")
}

func mustScan(f *file.File) core.Iterator {
	s, err := core.NewFileScan(f, nil, false)
	must(err)
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
