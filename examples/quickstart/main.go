// Quickstart: build a tiny database, compose a query from Volcano
// iterators (scan → filter → project → sort), run it serially, and then
// run the same operators in parallel by splicing in an exchange operator —
// without changing a single operator, which is the point of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

func main() {
	// --- Set up devices, buffer pool, volumes -------------------------
	reg := device.NewRegistry()
	baseID := reg.NextID()
	must(reg.Mount(device.NewMem(baseID))) // base tables
	tempID := reg.NextID()
	must(reg.Mount(device.NewMem(tempID))) // intermediate results
	defer reg.CloseAll()

	pool := buffer.NewPool(reg, 1024, buffer.TwoLevel)
	base := file.NewVolume(pool, baseID)
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	// --- Create and fill a table --------------------------------------
	empSchema := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "dept", Type: record.TInt},
		record.Field{Name: "salary", Type: record.TFloat},
		record.Field{Name: "name", Type: record.TString},
	)
	emp, err := base.Create("emp", empSchema)
	must(err)
	for i := 0; i < 1000; i++ {
		_, err := emp.Insert(empSchema.MustEncode(
			record.Int(int64(i)),
			record.Int(int64(i%8)),
			record.Float(1000+float64(i%500)*7.5),
			record.Str(fmt.Sprintf("emp-%d", i)),
		))
		must(err)
	}

	// --- Serial query: scan | filter | project | sort ------------------
	scan, err := core.NewFileScan(emp, nil, false)
	must(err)
	flt, err := core.NewFilterExpr(scan, "dept = 3 AND salary > 3000.0", expr.Compiled)
	must(err)
	proj, err := core.NewProjectExprs(env, flt,
		[]string{"name", "salary * 1.1"}, []string{"name", "raised"}, expr.Compiled)
	must(err)
	sorted := core.NewSort(env, proj, []record.SortSpec{{Field: 1, Desc: true}})

	rows, err := core.Collect(sorted)
	must(err)
	fmt.Printf("serial query: %d qualifying employees; top earner: %s at %.2f\n",
		len(rows), rows[0][0], rows[0][1].F)

	// --- The same query, in parallel ----------------------------------
	// Insert one exchange operator below the sort. Three producer
	// goroutines each run their own scan+filter+project subtree over a
	// partition predicate; the operators themselves are untouched.
	x, err := core.NewExchange(core.ExchangeConfig{
		Schema:    proj.Schema(),
		Producers: 3,
		Consumers: 1,
		NewProducer: func(g int) (core.Iterator, error) {
			s, err := core.NewFileScan(emp, nil, false)
			if err != nil {
				return nil, err
			}
			f, err := core.NewFilterExpr(s,
				fmt.Sprintf("id %% 3 = %d AND dept = 3 AND salary > 3000.0", g), expr.Compiled)
			if err != nil {
				return nil, err
			}
			return core.NewProjectExprs(env, f,
				[]string{"name", "salary * 1.1"}, []string{"name", "raised"}, expr.Compiled)
		},
	})
	must(err)
	parallelSorted := core.NewSort(env, x.Consumer(0), []record.SortSpec{{Field: 1, Desc: true}})
	prows, err := core.Collect(parallelSorted)
	must(err)
	fmt.Printf("parallel query (3 producers through exchange): %d rows, same top earner: %s\n",
		len(prows), prows[0][0])
	if len(prows) != len(rows) {
		log.Fatalf("parallel plan lost rows: %d vs %d", len(prows), len(rows))
	}
	st := x.Stats()
	fmt.Printf("exchange moved %d records in %d packets\n", st.Records, st.Packets)

	if n := pool.Stats().CurrentlyFixedHint; n != 0 {
		log.Fatalf("buffer pin leak: %d", n)
	}
	fmt.Println("all buffer pins balanced — ownership protocol held")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
