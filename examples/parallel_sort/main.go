// Parallel external sort as described in §4.4: data randomly partitioned
// over several "disks" is sorted into a range-partitioned result with
// sorted partitions. Two exchange variants appear:
//
//  1. a repartitioning exchange (range partitioning support function,
//     inline no-fork mode: one goroutine per disk does both the scan/
//     partition work and the sorting, the variant the paper added when
//     two processes per CPU proved too expensive), and
//  2. a merge network: the final consumer merges the per-producer sorted
//     streams, which the exchange keeps separate for exactly this purpose.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

const (
	totalRecords = 120000
	disks        = 4
)

var schema = record.MustSchema(
	record.Field{Name: "key", Type: record.TInt},
	record.Field{Name: "payload", Type: record.TInt},
)

func main() {
	reg := device.NewRegistry()
	baseID := reg.NextID()
	must(reg.Mount(device.NewMem(baseID)))
	tempID := reg.NextID()
	must(reg.Mount(device.NewMem(tempID)))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 16384, buffer.TwoLevel)
	base := file.NewVolume(pool, baseID)
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	// Data randomly partitioned over the disks (round robin on a
	// pseudo-random key).
	inputs := make([]*file.File, disks)
	for d := range inputs {
		f, err := base.Create(fmt.Sprintf("in.%d", d), schema)
		must(err)
		inputs[d] = f
	}
	for i := 0; i < totalRecords; i++ {
		key := int64(i*2654435761) % int64(totalRecords)
		if key < 0 {
			key += totalRecords
		}
		_, err := inputs[i%disks].Insert(schema.MustEncode(record.Int(key), record.Int(int64(i))))
		must(err)
	}

	// Range cuts for the output partitions.
	cuts := make([]record.Value, disks-1)
	for i := range cuts {
		cuts[i] = record.Int(int64((i + 1) * totalRecords / disks))
	}

	// One inline exchange repartitions by key range; each group member
	// then sorts its partition — one process per disk, §4.4.
	x, err := core.NewExchange(core.ExchangeConfig{
		Schema:    schema,
		Producers: disks,
		Consumers: disks,
		Inline:    true, // no extra processes; flow control obsolete
		NewProducer: func(g int) (core.Iterator, error) {
			return core.NewFileScan(inputs[g], nil, false)
		},
		NewPartition: func(int) expr.Partitioner {
			return expr.RangePartition(schema, 0, cuts)
		},
	})
	must(err)

	// Each member sorts its range partition into an output file: the
	// result is a sorted file distributed over the disks.
	outs := make([]*file.File, disks)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, disks)
	for g := 0; g < disks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sorted := core.NewSort(env, x.Consumer(g), []record.SortSpec{{Field: 0}})
			out, err := base.Create(fmt.Sprintf("out.%d", g), schema)
			if err != nil {
				errs[g] = err
				return
			}
			outs[g] = out
			if err := sorted.Open(); err != nil {
				errs[g] = err
				return
			}
			for {
				r, ok, err := sorted.Next()
				if err != nil {
					errs[g] = err
					return
				}
				if !ok {
					break
				}
				_, err = out.Insert(r.Data)
				r.Unfix()
				if err != nil {
					errs[g] = err
					return
				}
			}
			errs[g] = sorted.Close()
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		must(err)
	}
	fmt.Printf("range-partitioned parallel sort of %d records across %d disks: %v\n",
		totalRecords, disks, time.Since(start).Round(time.Millisecond))

	// Verify: each partition sorted, partitions aligned with the cuts,
	// and the whole thing complete — by reading it back through a merge
	// network (KeepStreams exchange + merge iterator).
	verify, err := core.NewExchange(core.ExchangeConfig{
		Schema:      schema,
		Producers:   disks,
		Consumers:   1,
		KeepStreams: true,
		NewProducer: func(g int) (core.Iterator, error) {
			// Partitions are sorted files; no sort operator needed here.
			return core.NewFileScan(outs[g], nil, false)
		},
	})
	must(err)
	streams, err := verify.ConsumerStreams(0)
	must(err)

	// The partitions are range partitioned AND sorted, so a merge over
	// them (the merge network of §4.4) yields the total order.
	m, err := core.NewMergeSpec(streams, []record.SortSpec{{Field: 0}})
	must(err)
	must(m.Open())
	count := 0
	last := int64(-1)
	for {
		r, ok, err := m.Next()
		must(err)
		if !ok {
			break
		}
		k := schema.GetInt(r.Data, 0)
		if k < last {
			log.Fatalf("order violated at record %d: %d after %d", count, k, last)
		}
		last = k
		count++
		r.Unfix()
	}
	must(m.Close())
	if count != totalRecords {
		log.Fatalf("lost records: %d of %d", count, totalRecords)
	}
	fmt.Printf("verified: %d records, globally sorted via merge network\n", count)
	for g, out := range outs {
		fmt.Printf("  disk %d: %d records, %d pages\n", g, out.Records(), out.Pages())
	}
	if n := pool.Stats().CurrentlyFixedHint; n != 0 {
		log.Fatalf("buffer pin leak: %d", n)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
