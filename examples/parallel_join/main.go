// Parallel hash join with the exchange operator: both inputs are
// repartitioned on the join key across a group of workers, each worker
// runs an ordinary (single-process) hash join, and a final exchange
// gathers the results. The join algorithm itself knows nothing about
// parallelism — exactly the paper's promise that operators "coded for
// single-process execution ... run in a highly parallel environment
// without modifications".
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

const (
	nOrders    = 50000
	nCustomers = 5000
	workers    = 4
)

func main() {
	reg := device.NewRegistry()
	baseID := reg.NextID()
	must(reg.Mount(device.NewMem(baseID)))
	tempID := reg.NextID()
	must(reg.Mount(device.NewMem(tempID)))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 16384, buffer.TwoLevel)
	base := file.NewVolume(pool, baseID)
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	orders := record.MustSchema(
		record.Field{Name: "oid", Type: record.TInt},
		record.Field{Name: "cust", Type: record.TInt},
		record.Field{Name: "amount", Type: record.TFloat},
	)
	customers := record.MustSchema(
		record.Field{Name: "cid", Type: record.TInt},
		record.Field{Name: "region", Type: record.TInt},
	)
	of, err := base.Create("orders", orders)
	must(err)
	for i := 0; i < nOrders; i++ {
		_, err := of.Insert(orders.MustEncode(
			record.Int(int64(i)), record.Int(int64(i*7919%nCustomers)), record.Float(float64(i%997))))
		must(err)
	}
	cf, err := base.Create("customers", customers)
	must(err)
	for i := 0; i < nCustomers; i++ {
		_, err := cf.Insert(customers.MustEncode(record.Int(int64(i)), record.Int(int64(i%13))))
		must(err)
	}

	// --- Serial hash join ----------------------------------------------
	serial := func() (int, time.Duration) {
		os, err := core.NewFileScan(of, nil, false)
		must(err)
		cs, err := core.NewFileScan(cf, nil, false)
		must(err)
		j, err := core.NewHashMatch(env, core.MatchJoin, os, cs, record.Key{1}, record.Key{0})
		must(err)
		start := time.Now()
		n, err := core.Drain(j)
		must(err)
		return n, time.Since(start)
	}
	sn, st := serial()
	fmt.Printf("serial hash join:   %8d rows in %v\n", sn, st.Round(time.Millisecond))

	// --- Parallel: repartition both inputs on the join key --------------
	parallel := func() (int, time.Duration) {
		xOrders, err := core.NewExchange(core.ExchangeConfig{
			Schema: orders, Producers: 1, Consumers: workers,
			FlowControl: true, Slack: 4,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(of, nil, false) },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(orders, record.Key{1}, workers)
			},
		})
		must(err)
		xCust, err := core.NewExchange(core.ExchangeConfig{
			Schema: customers, Producers: 1, Consumers: workers,
			FlowControl: true, Slack: 4,
			NewProducer: func(int) (core.Iterator, error) { return core.NewFileScan(cf, nil, false) },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(customers, record.Key{0}, workers)
			},
		})
		must(err)
		out := orders.Concat(customers)
		gather, err := core.NewExchange(core.ExchangeConfig{
			Schema: out, Producers: workers, Consumers: 1,
			NewProducer: func(g int) (core.Iterator, error) {
				// Each worker: a perfectly ordinary hash join over its
				// partitions of both inputs.
				return core.NewHashMatch(env, core.MatchJoin,
					xOrders.Consumer(g), xCust.Consumer(g), record.Key{1}, record.Key{0})
			},
		})
		must(err)
		start := time.Now()
		n, err := core.Drain(gather.Consumer(0))
		must(err)
		return n, time.Since(start)
	}
	pn, pt := parallel()
	fmt.Printf("parallel hash join: %8d rows in %v (%d workers, hash repartitioning)\n",
		pn, pt.Round(time.Millisecond), workers)

	if sn != pn {
		log.Fatalf("row count mismatch: serial %d, parallel %d", sn, pn)
	}
	if n := pool.Stats().CurrentlyFixedHint; n != 0 {
		log.Fatalf("buffer pin leak: %d", n)
	}
	fmt.Println("row counts match; all pins balanced")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
