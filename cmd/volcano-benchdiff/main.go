// Command volcano-benchdiff compares `go test -bench` output against a
// committed baseline (BENCH_5.json) and fails when a benchmark regressed
// beyond a tolerance — the benchstat-style gate CI runs so throughput
// and allocation regressions in the exchange hot path are caught before
// merge, not after.
//
// Usage:
//
//	go test -bench X -benchmem -count 3 ./... | volcano-benchdiff -baseline BENCH_5.json
//	volcano-benchdiff -in bench.txt -baseline BENCH_5.json -tolerance 0.20
//	volcano-benchdiff -in bench.txt -write -out BENCH_5.json   # refresh the baseline
//
// Comparison rules: for every benchmark in the baseline that also
// appears in the input, ns/op may grow by at most `tolerance` (default
// 20%); allocs/op may grow by at most the same factor plus an absolute
// slack of 2 (so setup-only counts do not flap on a single extra
// allocation). When -count was used, the minimum across repeats is
// compared — the minimum is the least noisy estimator of the true cost.
// Baseline benchmarks missing from the input are an error: a gate that
// silently stops measuring is worse than no gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional growth before failing")
		write     = flag.Bool("write", false, "write a new baseline instead of comparing")
		out       = flag.String("out", "", "output path for -write (default stdout)")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *write {
		data, err := json.MarshalIndent(newBaseline(results), "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
		return
	}

	if *baseline == "" {
		fatal(fmt.Errorf("-baseline required (or -write to create one)"))
	}
	base, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	report, failed := compare(base, results, *tolerance)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volcano-benchdiff:", err)
	os.Exit(2)
}

// baselineSchema versions the committed file so a future format change
// fails loudly instead of comparing garbage.
const baselineSchema = "volcano-bench-baseline/v1"

type baseline struct {
	Schema     string               `json:"schema"`
	Benchmarks map[string]benchStat `json:"benchmarks"`
}

type benchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func newBaseline(results map[string]benchStat) baseline {
	return baseline{Schema: baselineSchema, Benchmarks: results}
}

func loadBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return b, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, baselineSchema)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: empty baseline", path)
	}
	return b, nil
}

// compare checks every baseline entry against the measured results and
// renders a human-readable table. It returns failed=true when any
// benchmark regressed beyond the tolerance or went missing.
func compare(base baseline, got map[string]benchStat, tol float64) (string, bool) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out string
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			out += fmt.Sprintf("MISSING  %s: in baseline but not in bench output\n", name)
			failed = true
			continue
		}
		status := "ok      "
		var notes string
		if want.NsPerOp > 0 {
			growth := cur.NsPerOp/want.NsPerOp - 1
			notes = fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%)", want.NsPerOp, cur.NsPerOp, growth*100)
			if growth > tol {
				status = "REGRESS "
				failed = true
			}
		}
		// Absolute slack of 2 allocations: small integer counts must not
		// flap when one extra setup allocation appears.
		if limit := want.AllocsPerOp*(1+tol) + 2; cur.AllocsPerOp > limit {
			status = "REGRESS "
			notes += fmt.Sprintf("; allocs/op %.0f -> %.0f (limit %.0f)", want.AllocsPerOp, cur.AllocsPerOp, limit)
			failed = true
		}
		out += fmt.Sprintf("%s%s: %s\n", status, name, notes)
	}
	if failed {
		out += fmt.Sprintf("FAIL: regression beyond %.0f%% tolerance\n", tol*100)
	} else {
		out += fmt.Sprintf("PASS: %d benchmarks within %.0f%% of baseline\n", len(names), tol*100)
	}
	return out, failed
}
