package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExchangeThroughput/producers=1-8         	     100	    500000 ns/op	        50.00 ns/record	   29248 B/op	      33 allocs/op
BenchmarkExchangeThroughput/producers=1-8         	     100	    480000 ns/op	        48.00 ns/record	   29248 B/op	      31 allocs/op
BenchmarkNetExchangeThroughput-8                  	      50	   4900000 ns/op	  106872 B/op	     215 allocs/op
BenchmarkExchangeE2EPlan 	      20	  11000000 ns/op	 9500000 B/op	   24000 allocs/op
PASS
ok  	repro/internal/core	2.0s
`

func parseSample(t *testing.T) map[string]benchStat {
	t.Helper()
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBench(t *testing.T) {
	got := parseSample(t)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The GOMAXPROCS suffix is stripped, repeats collapse to the minimum.
	th, ok := got["BenchmarkExchangeThroughput/producers=1"]
	if !ok {
		t.Fatalf("missing throughput benchmark: %v", got)
	}
	if th.NsPerOp != 480000 || th.AllocsPerOp != 31 {
		t.Fatalf("repeats not collapsed to minimum: %+v", th)
	}
	// A name with no suffix at all parses as-is.
	if _, ok := got["BenchmarkExchangeE2EPlan"]; !ok {
		t.Fatalf("missing e2e benchmark: %v", got)
	}
	if got["BenchmarkNetExchangeThroughput"].BytesPerOp != 106872 {
		t.Fatalf("B/op not parsed: %+v", got["BenchmarkNetExchangeThroughput"])
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":              "BenchmarkFoo",
		"BenchmarkFoo":                "BenchmarkFoo",
		"BenchmarkFoo/producers=4-16": "BenchmarkFoo/producers=4",
		"BenchmarkFoo/n=4":            "BenchmarkFoo/n=4", // =4 is not a procs suffix
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := newBaseline(map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 10},
	})
	got := map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1150, AllocsPerOp: 12}, // +15% time, +2 allocs
	}
	report, failed := compare(base, got, 0.20)
	if failed {
		t.Fatalf("within-tolerance run failed:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report missing PASS:\n%s", report)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := newBaseline(map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 10},
	})
	got := map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1300, AllocsPerOp: 10}, // +30%
	}
	report, failed := compare(base, got, 0.20)
	if !failed {
		t.Fatalf("+30%% ns/op passed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESS") {
		t.Fatalf("report missing REGRESS:\n%s", report)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := newBaseline(map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 30},
	})
	got := map[string]benchStat{
		// ns/op fine, but a per-record allocation leak blows up allocs/op.
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 10030},
	}
	report, failed := compare(base, got, 0.20)
	if !failed {
		t.Fatalf("allocation regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Fatalf("report does not name the allocation regression:\n%s", report)
	}
}

// TestCompareAllocSlack pins the absolute slack: a couple of extra setup
// allocations on a small count must not flap the gate.
func TestCompareAllocSlack(t *testing.T) {
	base := newBaseline(map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 0},
	})
	got := map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 2},
	}
	if report, failed := compare(base, got, 0.20); failed {
		t.Fatalf("+2 allocs over a zero baseline failed the gate:\n%s", report)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := newBaseline(map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 2000},
	})
	got := map[string]benchStat{
		"BenchmarkA": {NsPerOp: 1000},
	}
	report, failed := compare(base, got, 0.20)
	if !failed {
		t.Fatalf("missing benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report missing MISSING:\n%s", report)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/base.json"
	b := newBaseline(parseSample(t))
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(b.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(back.Benchmarks), len(b.Benchmarks))
	}
}

func TestBaselineSchemaRejected(t *testing.T) {
	path := t.TempDir() + "/base.json"
	if err := os.WriteFile(path, []byte(`{"schema":"wrong/v0","benchmarks":{"X":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
