package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseBench reads `go test -bench -benchmem` output and returns one
// benchStat per benchmark name. The trailing -N GOMAXPROCS suffix is
// stripped so baselines survive a core-count change on the CI runner.
// When a benchmark appears several times (-count), the minimum of each
// metric is kept: repeat noise is one-sided — interference only ever
// makes a run slower — so the minimum estimates the true cost best.
func parseBench(r io.Reader) (map[string]benchStat, error) {
	out := make(map[string]benchStat)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: Name iterations value ns/op
		if len(fields) < 4 {
			continue
		}
		name := trimProcs(fields[0])
		st, ok := parseLine(fields)
		if !ok {
			continue
		}
		if prev, seen := out[name]; seen {
			st = benchStat{
				NsPerOp:     min(prev.NsPerOp, st.NsPerOp),
				BytesPerOp:  min(prev.BytesPerOp, st.BytesPerOp),
				AllocsPerOp: min(prev.AllocsPerOp, st.AllocsPerOp),
			}
		}
		out[name] = st
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading bench output: %w", err)
	}
	return out, nil
}

// trimProcs removes the -N GOMAXPROCS suffix go test appends to the
// benchmark name ("BenchmarkFoo-8" -> "BenchmarkFoo"). Sub-benchmark
// slashes are kept: they are part of the identity.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine extracts the unit-tagged values from one benchmark line:
// pairs of (value, unit) follow the iteration count.
func parseLine(fields []string) (benchStat, bool) {
	var st benchStat
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return st, false
		}
		switch fields[i+1] {
		case "ns/op":
			st.NsPerOp = v
			found = true
		case "B/op":
			st.BytesPerOp = v
		case "allocs/op":
			st.AllocsPerOp = v
		}
	}
	return st, found
}
