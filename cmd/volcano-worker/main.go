// Command volcano-worker executes plan fragments on behalf of a
// volcano-serve coordinator. It opens the same durable database file the
// coordinator serves (a replica of the shared volume), binds an HTTP
// dispatch address, and registers with the coordinator:
//
//	volcano-serve -db db.vol -addr :8080 -dist &
//	volcano-worker -db db.vol -coordinator 127.0.0.1:8080 &
//	volcano-worker -db db.vol -coordinator 127.0.0.1:8080 &
//
// Fragments arrive as POST /fragment (the full plan source plus the
// exchange-cut path and producer index — the worker recompiles and
// builds just that producer subtree), and their record streams leave
// over raw TCP toward the coordinator's data plane in the netexchange
// wire format. GET /healthz answers the coordinator's heartbeats and
// GET /metrics serves the volcano_dist_worker_* families alongside the
// storage and operator families.
//
// Registration repeats every -register-every as a liveness refresher: a
// worker that restarts, or a coordinator that restarts, re-converges
// without operator action. SIGINT/SIGTERM stops cleanly: new fragments
// are refused, active streams are severed (the coordinator retries them
// on surviving workers), then the process exits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

type options struct {
	db            string
	addr          string
	coordinator   string
	advertise     string
	frames        int
	registerEvery time.Duration

	// readyHook, when set, is called with the bound dispatch address once
	// the worker accepts fragments. Test seam.
	readyHook func(addr string)
	// stop, when non-nil, triggers the same clean stop as SIGTERM. Test
	// seam.
	stop <-chan struct{}
}

func main() {
	var o options
	flag.StringVar(&o.db, "db", "", "durable database file — the same database the coordinator serves (required)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:0", "HTTP dispatch listen address")
	flag.StringVar(&o.coordinator, "coordinator", "", "volcano-serve address to register with (empty = wait to be registered manually)")
	flag.StringVar(&o.advertise, "advertise", "", "dispatch address to register (empty = the bound listen address)")
	flag.IntVar(&o.frames, "frames", 4096, "buffer pool frames shared by all fragments")
	flag.DurationVar(&o.registerEvery, "register-every", 10*time.Second, "re-registration interval (liveness refresh)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "volcano-worker:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.db == "" {
		return fmt.Errorf("no database: use -db FILE (the file volcano-serve serves)")
	}
	if o.registerEvery <= 0 {
		o.registerEvery = 10 * time.Second
	}

	// Storage mirrors volcano-serve: the served volume on a disk device,
	// temp space for fragment-local sorts and spills on a memory device.
	reg := device.NewRegistry()
	baseID := reg.NextID()
	disk, err := device.OpenDisk(baseID, o.db)
	if err != nil {
		return err
	}
	if err := reg.Mount(disk); err != nil {
		return err
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		return err
	}
	defer reg.CloseAll()

	pool := buffer.NewPool(reg, o.frames, buffer.TwoLevel)
	base, err := file.OpenVolume(pool, baseID)
	if err != nil {
		return err
	}
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	mr := metrics.NewRegistry()
	pool.RegisterMetrics(mr)
	device.RegisterMetrics(mr)
	btree.RegisterMetrics(mr)
	core.RegisterMetrics(mr)
	metrics.RegisterGoRuntime(mr)

	w, err := dist.NewWorker(dist.WorkerConfig{
		Env:            env,
		Catalog:        plan.VolumeCatalog{base},
		CatalogVersion: dist.CatalogVersion(o.db, base),
		Metrics:        mr,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: w.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	advertise := o.advertise
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	fmt.Fprintf(os.Stderr, "volcano-worker: %s: %d tables; dispatch on http://%s\n",
		o.db, len(base.List()), ln.Addr())

	// Registration loop: announce once now, then refresh. Failures are
	// logged and retried — the coordinator may simply not be up yet.
	regStop := make(chan struct{})
	regDone := make(chan struct{})
	go func() {
		defer close(regDone)
		if o.coordinator == "" {
			return
		}
		tick := time.NewTicker(o.registerEvery)
		defer tick.Stop()
		failures := 0
		for {
			if err := register(o.coordinator, advertise); err != nil {
				if failures%10 == 0 { // don't spam a down coordinator
					fmt.Fprintf(os.Stderr, "volcano-worker: register with %s: %v\n", o.coordinator, err)
				}
				failures++
			} else {
				failures = 0
			}
			select {
			case <-regStop:
				return
			case <-tick.C:
			}
		}
	}()

	if o.readyHook != nil {
		o.readyHook(advertise)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "volcano-worker: %v: stopping\n", sig)
	case <-o.stop:
		fmt.Fprintln(os.Stderr, "volcano-worker: stop requested")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	close(regStop)
	<-regDone
	// Refuse new fragments and sever active streams; the coordinator
	// retries them elsewhere. Then stop the HTTP machinery and (via the
	// deferred CloseAll) the volume.
	w.Stop()
	_ = httpSrv.Close()
	fmt.Fprintln(os.Stderr, "volcano-worker: stopped")
	return nil
}

// register announces the dispatch address to the coordinator.
func register(coordinator, addr string) error {
	body, _ := json.Marshal(dist.RegisterRequest{Addr: addr})
	resp, err := http.Post("http://"+coordinator+"/dist/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %s", resp.Status)
	}
	return nil
}
