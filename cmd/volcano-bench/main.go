// Command volcano-bench regenerates the paper's measurements (§5): the
// exchange-overhead table (T1), the packet-size sweep of Figures 2a/2b,
// and the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	volcano-bench                      # everything, paper-scale (100k records)
//	volcano-bench -exp t1              # just the overhead table
//	volcano-bench -exp fig2a           # just the packet-size sweep
//	volcano-bench -exp ablations       # A1..A12
//	volcano-bench -records 20000       # smaller/faster runs
//	volcano-bench -json BENCH.json     # also emit machine-readable results
//	volcano-bench -trace out.json      # also record one traced pipeline pass
//	volcano-bench -analyze             # also run one instrumented pipeline pass
//	volcano-bench -metrics :9898       # serve /metrics + pprof during the run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage/btree"
	"repro/internal/storage/device"
	"repro/internal/trace"
)

// observabilityHelp documents how the observability flags compose;
// appended to -help output (the volcano CLI carries the same table).
const observabilityHelp = `
Observability flags (compose freely):

  flag           output                                       cost when off
  -analyze       one instrumented pipeline pass: per-stage    none (measured
                 port counters plus sink Next-latency         passes stay
                 p50/p95/p99; summarised in the -json report  uninstrumented)
  -trace FILE    one traced pipeline pass written as Chrome   none (nil tracer
                 trace-event JSON; open in Perfetto           is a no-op)
  -metrics ADDR  live HTTP endpoint for the whole run: GET    none (nil registry
                 /metrics serves Prometheus text exposition,  is a no-op)
                 /debug/pprof the standard Go profiles

All three may be given together: the run then produces the breakdown,
the trace file, and a scrapeable endpoint at once.
`

// options carries one invocation's parameters; flags fill one in,
// tests construct them directly.
type options struct {
	exp      string
	records  int
	joinRows int
	// batch, when positive, also runs the Figure-2a pipeline under the
	// batch-at-a-time protocol with this batch size and prints the
	// row-vs-batch comparison.
	batch    int
	jsonPath string
	// tracePath records one traced pipeline pass as Chrome trace JSON.
	tracePath string
	// analyze runs one instrumented pipeline pass and prints its
	// breakdown; the latency summary also lands in the -json report.
	analyze bool
	// metricsAddr serves /metrics and /debug/pprof for the duration of
	// the run. The analyzed pass (if any) registers its buffer pool and
	// sink histogram there, so a scrape covers every metric family.
	metricsAddr string
	// linger keeps the metrics endpoint serving this long after the
	// experiments finish. Small record counts complete in well under a
	// second; the linger window guarantees an external scraper (CI, a
	// curl loop) lands at least one successful GET against the live
	// process.
	linger time.Duration

	// metricsHook, when set, is called with the live listener address
	// after all experiments have run but before the server shuts down.
	// Test seam: lets a test scrape a fully populated endpoint.
	metricsHook func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.exp, "exp", "all", "experiment: t1, fig2a, fig2b, ablations, all")
	flag.IntVar(&o.records, "records", bench.PaperRecords, "records for the record-passing program")
	flag.IntVar(&o.joinRows, "joinrows", 20000, "rows per side for the match ablation")
	flag.IntVar(&o.batch, "batch", 0, "also run the pipeline pass under the batch protocol with this batch size and print the row-vs-batch comparison (0 = off)")
	flag.StringVar(&o.jsonPath, "json", "", "write machine-readable results (stable schema) to this file")
	flag.StringVar(&o.tracePath, "trace", "", "run one traced pipeline pass and write Chrome trace-event JSON to this file")
	flag.BoolVar(&o.analyze, "analyze", false, "run one instrumented pipeline pass and print the per-stage breakdown with latency quantiles")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve /metrics (Prometheus text exposition) and /debug/pprof on this address during the run")
	flag.DurationVar(&o.linger, "linger", 0, "with -metrics, keep the endpoint serving this long after the experiments finish (gives scrapers a guaranteed window)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: volcano-bench [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprint(out, observabilityHelp)
	}
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "volcano-bench:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	w := os.Stdout
	runT1 := o.exp == "t1" || o.exp == "all"
	runFig2 := o.exp == "fig2a" || o.exp == "fig2b" || o.exp == "all"
	runAbl := o.exp == "ablations" || o.exp == "all"
	if !runT1 && !runFig2 && !runAbl {
		return fmt.Errorf("unknown experiment %q", o.exp)
	}
	report := bench.NewReport(o.records)

	var mr *metrics.Registry
	var msrv *metrics.Server
	if o.metricsAddr != "" {
		mr = metrics.NewRegistry()
		device.RegisterMetrics(mr)
		btree.RegisterMetrics(mr)
		core.RegisterMetrics(mr)
		var err error
		msrv, err = metrics.Serve(o.metricsAddr, mr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug/pprof on http://%s\n", msrv.Addr)
	}

	// The analyzed pass runs first so a scraper attached from the start
	// sees the buffer and operator-latency families straight away.
	if o.analyze {
		res, err := bench.RunAnalyzedPass(o.records, mr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Analyzed pipeline pass (%d records, %v):\n%s\n\n",
			res.Records, res.Elapsed, res.Breakdown)
		report.AnalyzedPass = res.JSON()
	}

	if runT1 {
		r, err := bench.RunT1(o.records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
		report.T1 = r.JSON()
	}

	if runFig2 {
		r, err := bench.RunFig2(o.records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
		report.Fig2a = r.JSONPoints()
		report.Fig2bSlopes = r.JSONSlopes()
	}

	if o.batch > 0 {
		// Same topology and packet size as the Figure-2a sweet spot, once
		// record-at-a-time and once under the batch protocol.
		row, err := bench.RunFig2aPoint(o.records, 83)
		if err != nil {
			return fmt.Errorf("batch comparison (row pass): %w", err)
		}
		bat, err := bench.RunFig2aPointBatch(o.records, 83, o.batch)
		if err != nil {
			return fmt.Errorf("batch comparison (batch pass): %w", err)
		}
		fmt.Fprintf(w, "Batch protocol (batch size %d, packet 83, %d records):\n", o.batch, o.records)
		fmt.Fprintf(w, "  record-at-a-time: %v (%v/record)\n", row.Elapsed.Round(time.Microsecond), row.PerRecord)
		fmt.Fprintf(w, "  batch-at-a-time:  %v (%v/record), %.2fx speedup\n\n",
			bat.Elapsed.Round(time.Microsecond), bat.PerRecord,
			float64(row.Elapsed)/float64(bat.Elapsed))
	}

	if runAbl {
		type namedAbl struct {
			name string
			f    func() (*bench.Ablation, error)
		}
		abls := []namedAbl{
			{"A1", func() (*bench.Ablation, error) { return bench.AblationFlowControl(o.records) }},
			{"A2", func() (*bench.Ablation, error) { return bench.AblationForkScheme(8, 2*time.Millisecond) }},
			{"A3", func() (*bench.Ablation, error) { return bench.AblationInline(o.records) }},
			{"A4", func() (*bench.Ablation, error) { return bench.AblationPartitioning(o.records) }},
			{"A5", func() (*bench.Ablation, error) { return bench.AblationBroadcast(o.records / 2) }},
			{"A6", func() (*bench.Ablation, error) { return bench.AblationMatch(o.joinRows) }},
			{"A7", func() (*bench.Ablation, error) { return bench.AblationDivision(2000, 16, 4) }},
			{"A8", func() (*bench.Ablation, error) { return bench.AblationSupportFunctions(o.records) }},
			{"A9", func() (*bench.Ablation, error) { return bench.AblationBufferLocking(o.records, 8) }},
			{"A10", func() (*bench.Ablation, error) { return bench.AblationParallelSort(o.records, 4) }},
			{"A11", func() (*bench.Ablation, error) { return bench.AblationSharedNothing(o.records, 500*time.Microsecond) }},
			{"A12", func() (*bench.Ablation, error) { return bench.AblationRunGeneration(o.records, 1024) }},
		}
		for _, na := range abls {
			a, err := na.f()
			if err != nil {
				return fmt.Errorf("%s: %w", na.name, err)
			}
			a.Print(w)
			fmt.Fprintln(w)
			report.Ablations = append(report.Ablations, a.JSON(na.name))
		}
	}

	if o.tracePath != "" {
		if err := runTraced(o.records, o.tracePath); err != nil {
			return err
		}
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		werr := report.WriteJSON(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("writing report: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("writing report: %w", cerr)
		}
		fmt.Fprintf(os.Stderr, "results written to %s\n", o.jsonPath)
	}
	if msrv != nil && o.metricsHook != nil {
		o.metricsHook(msrv.Addr)
	}
	if msrv != nil && o.linger > 0 {
		fmt.Fprintf(os.Stderr, "metrics: lingering %v for scrapers\n", o.linger)
		time.Sleep(o.linger)
	}
	return nil
}

// runTraced records one pipeline pass (the Figure-2a topology) with the
// tracer attached and writes the Chrome trace.
func runTraced(records int, path string) error {
	tr := trace.New()
	if _, err := bench.RunTracedPass(records, tr); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	werr := tr.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing trace: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing trace: %w", cerr)
	}
	if d := tr.TotalDropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events dropped: ring buffers full)\n", path, d)
	} else {
		fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	}
	return nil
}
