// Command volcano-bench regenerates the paper's measurements (§5): the
// exchange-overhead table (T1), the packet-size sweep of Figures 2a/2b,
// and the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	volcano-bench                      # everything, paper-scale (100k records)
//	volcano-bench -exp t1              # just the overhead table
//	volcano-bench -exp fig2a           # just the packet-size sweep
//	volcano-bench -exp ablations       # A1..A12
//	volcano-bench -records 20000       # smaller/faster runs
//	volcano-bench -json BENCH.json     # also emit machine-readable results
//	volcano-bench -trace out.json      # also record one traced pipeline pass
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: t1, fig2a, fig2b, ablations, all")
	records := flag.Int("records", bench.PaperRecords, "records for the record-passing program")
	joinRows := flag.Int("joinrows", 20000, "rows per side for the match ablation")
	jsonPath := flag.String("json", "", "write machine-readable results (stable schema) to this file")
	tracePath := flag.String("trace", "", "run one traced pipeline pass and write Chrome trace-event JSON to this file")
	flag.Parse()

	if err := run(*exp, *records, *joinRows, *jsonPath, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "volcano-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, records, joinRows int, jsonPath, tracePath string) error {
	w := os.Stdout
	runT1 := exp == "t1" || exp == "all"
	runFig2 := exp == "fig2a" || exp == "fig2b" || exp == "all"
	runAbl := exp == "ablations" || exp == "all"
	if !runT1 && !runFig2 && !runAbl {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	report := bench.NewReport(records)

	if runT1 {
		r, err := bench.RunT1(records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
		report.T1 = r.JSON()
	}

	if runFig2 {
		r, err := bench.RunFig2(records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
		report.Fig2a = r.JSONPoints()
		report.Fig2bSlopes = r.JSONSlopes()
	}

	if runAbl {
		type namedAbl struct {
			name string
			f    func() (*bench.Ablation, error)
		}
		abls := []namedAbl{
			{"A1", func() (*bench.Ablation, error) { return bench.AblationFlowControl(records) }},
			{"A2", func() (*bench.Ablation, error) { return bench.AblationForkScheme(8, 2*time.Millisecond) }},
			{"A3", func() (*bench.Ablation, error) { return bench.AblationInline(records) }},
			{"A4", func() (*bench.Ablation, error) { return bench.AblationPartitioning(records) }},
			{"A5", func() (*bench.Ablation, error) { return bench.AblationBroadcast(records / 2) }},
			{"A6", func() (*bench.Ablation, error) { return bench.AblationMatch(joinRows) }},
			{"A7", func() (*bench.Ablation, error) { return bench.AblationDivision(2000, 16, 4) }},
			{"A8", func() (*bench.Ablation, error) { return bench.AblationSupportFunctions(records) }},
			{"A9", func() (*bench.Ablation, error) { return bench.AblationBufferLocking(records, 8) }},
			{"A10", func() (*bench.Ablation, error) { return bench.AblationParallelSort(records, 4) }},
			{"A11", func() (*bench.Ablation, error) { return bench.AblationSharedNothing(records, 500*time.Microsecond) }},
			{"A12", func() (*bench.Ablation, error) { return bench.AblationRunGeneration(records, 1024) }},
		}
		for _, na := range abls {
			a, err := na.f()
			if err != nil {
				return fmt.Errorf("%s: %w", na.name, err)
			}
			a.Print(w)
			fmt.Fprintln(w)
			report.Ablations = append(report.Ablations, a.JSON(na.name))
		}
	}

	if tracePath != "" {
		if err := runTraced(records, tracePath); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		werr := report.WriteJSON(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("writing report: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("writing report: %w", cerr)
		}
		fmt.Fprintf(os.Stderr, "results written to %s\n", jsonPath)
	}
	return nil
}

// runTraced records one pipeline pass (the Figure-2a topology) with the
// tracer attached and writes the Chrome trace.
func runTraced(records int, path string) error {
	tr := trace.New()
	if _, err := bench.RunTracedPass(records, tr); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	werr := tr.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing trace: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing trace: %w", cerr)
	}
	if d := tr.TotalDropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events dropped: ring buffers full)\n", path, d)
	} else {
		fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	}
	return nil
}
