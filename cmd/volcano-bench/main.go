// Command volcano-bench regenerates the paper's measurements (§5): the
// exchange-overhead table (T1), the packet-size sweep of Figures 2a/2b,
// and the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	volcano-bench                      # everything, paper-scale (100k records)
//	volcano-bench -exp t1              # just the overhead table
//	volcano-bench -exp fig2a           # just the packet-size sweep
//	volcano-bench -exp ablations       # A1..A10
//	volcano-bench -records 20000       # smaller/faster runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: t1, fig2a, fig2b, ablations, all")
	records := flag.Int("records", bench.PaperRecords, "records for the record-passing program")
	joinRows := flag.Int("joinrows", 20000, "rows per side for the match ablation")
	flag.Parse()

	if err := run(*exp, *records, *joinRows); err != nil {
		fmt.Fprintln(os.Stderr, "volcano-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, records, joinRows int) error {
	w := os.Stdout
	runT1 := exp == "t1" || exp == "all"
	runFig2 := exp == "fig2a" || exp == "fig2b" || exp == "all"
	runAbl := exp == "ablations" || exp == "all"
	if !runT1 && !runFig2 && !runAbl {
		return fmt.Errorf("unknown experiment %q", exp)
	}

	if runT1 {
		r, err := bench.RunT1(records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
	}

	if runFig2 {
		r, err := bench.RunFig2(records)
		if err != nil {
			return err
		}
		r.Print(w)
		fmt.Fprintln(w)
	}

	if runAbl {
		type namedAbl struct {
			name string
			f    func() (*bench.Ablation, error)
		}
		abls := []namedAbl{
			{"A1", func() (*bench.Ablation, error) { return bench.AblationFlowControl(records) }},
			{"A2", func() (*bench.Ablation, error) { return bench.AblationForkScheme(8, 2*time.Millisecond) }},
			{"A3", func() (*bench.Ablation, error) { return bench.AblationInline(records) }},
			{"A4", func() (*bench.Ablation, error) { return bench.AblationPartitioning(records) }},
			{"A5", func() (*bench.Ablation, error) { return bench.AblationBroadcast(records / 2) }},
			{"A6", func() (*bench.Ablation, error) { return bench.AblationMatch(joinRows) }},
			{"A7", func() (*bench.Ablation, error) { return bench.AblationDivision(2000, 16, 4) }},
			{"A8", func() (*bench.Ablation, error) { return bench.AblationSupportFunctions(records) }},
			{"A9", func() (*bench.Ablation, error) { return bench.AblationBufferLocking(records, 8) }},
			{"A10", func() (*bench.Ablation, error) { return bench.AblationParallelSort(records, 4) }},
			{"A11", func() (*bench.Ablation, error) { return bench.AblationSharedNothing(records, 500*time.Microsecond) }},
			{"A12", func() (*bench.Ablation, error) { return bench.AblationRunGeneration(records, 1024) }},
		}
		for _, na := range abls {
			a, err := na.f()
			if err != nil {
				return fmt.Errorf("%s: %w", na.name, err)
			}
			a.Print(w)
			fmt.Fprintln(w)
		}
	}
	return nil
}
