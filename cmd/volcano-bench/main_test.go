package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestRunUnknownExperiment pins the error path.
func TestRunUnknownExperiment(t *testing.T) {
	if err := run(options{exp: "nosuch", records: 100}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestRunAllObservabilityFlagsTogether is the satellite acceptance
// check for this CLI: -analyze, -trace and -metrics compose in one
// invocation — the breakdown prints with quantiles, the trace and JSON
// files are written (the report carrying the latency summary), and the
// endpoint serves a parseable exposition covering every family.
func TestRunAllObservabilityFlagsTogether(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	tracePath := filepath.Join(dir, "trace.json")

	var fams map[string]int
	o := options{
		exp:       "fig2a",
		records:   600,
		joinRows:  100,
		jsonPath:  jsonPath,
		tracePath: tracePath,
		analyze:   true,
		// Port 0: the kernel picks a free port, the hook learns it.
		metricsAddr: "127.0.0.1:0",
		metricsHook: func(addr string) {
			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				t.Errorf("GET /metrics: %v", err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			f, perr := metrics.ParseText(strings.NewReader(string(body)))
			if perr != nil {
				t.Errorf("scrape is not valid exposition: %v\n%s", perr, body)
				return
			}
			fams = f
		},
	}

	// The experiment tables go to stdout; swallow them.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	rerr := run(o)
	os.Stdout = old
	devnull.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}

	// The scrape covers the buffer (registered by the analyzed pass),
	// device, exchange and operator-latency families.
	for _, fam := range []string{
		"volcano_buffer_fixes_total",
		"volcano_device_page_reads_total",
		"volcano_exchange_packets_total",
		"volcano_op_next_seconds",
	} {
		if fams[fam] == 0 {
			t.Errorf("scrape missing family %s (got %v)", fam, fams)
		}
	}

	// The JSON report carries the analyzed pass's latency summary.
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		AnalyzedPass *struct {
			Records   int   `json:"records"`
			NextCalls int64 `json:"next_calls"`
			MeanNs    int64 `json:"mean_ns"`
			P50Ns     int64 `json:"p50_ns"`
			P99Ns     int64 `json:"p99_ns"`
		} `json:"analyzed_pass"`
	}
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatal(err)
	}
	ap := report.AnalyzedPass
	if ap == nil {
		t.Fatal("report missing analyzed_pass")
	}
	if ap.Records != 600 || ap.NextCalls < int64(ap.Records) || ap.P50Ns <= 0 || ap.P99Ns < ap.P50Ns {
		t.Fatalf("implausible latency summary: %+v", ap)
	}

	// And the trace file is valid Chrome trace JSON.
	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace recorded no events")
	}
}

// TestObservabilityHelpMentionsAllFlags pins the -help table.
func TestObservabilityHelpMentionsAllFlags(t *testing.T) {
	for _, want := range []string{"-analyze", "-trace", "-metrics", "compose"} {
		if !strings.Contains(observabilityHelp, want) {
			t.Errorf("observability help missing %q", want)
		}
	}
}
