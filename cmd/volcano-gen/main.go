// Command volcano-gen generates CSV datasets for the volcano CLI and the
// examples: an employee/department pair of tables, a join workload, or a
// division (enrollment) workload.
//
// Usage:
//
//	volcano-gen -kind emp -rows 10000 -out emp.csv
//	volcano-gen -kind dept -rows 16 -out dept.csv
//	volcano-gen -kind pairs -rows 100000 -keys 1000 -out pairs.csv
//	volcano-gen -kind enrollment -rows 1000 -keys 20 -out enrolled.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
)

func main() {
	kind := flag.String("kind", "emp", "dataset kind: emp, dept, pairs, enrollment, courses")
	rows := flag.Int("rows", 10000, "number of rows (emp/pairs) or entities (enrollment)")
	keys := flag.Int("keys", 16, "key range: departments (emp), distinct keys (pairs), courses (enrollment)")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "volcano-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "emp":
		// id,dept,salary,name — the schema used throughout the docs:
		//   -schema emp=id:int,dept:int,salary:float,name:string
		for i := 0; i < *rows; i++ {
			fmt.Fprintf(w, "%d,%d,%.2f,emp-%d\n", i, rng.Intn(*keys), 1000+rng.Float64()*4000, i)
		}
	case "dept":
		// dno,dname — -schema dept=dno:int,dname:string
		for i := 0; i < *rows; i++ {
			fmt.Fprintf(w, "%d,dept-%d\n", i, i)
		}
	case "pairs":
		// a,b — join workload; a is skewed over the key range.
		for i := 0; i < *rows; i++ {
			fmt.Fprintf(w, "%d,%d\n", rng.Intn(*keys), i)
		}
	case "enrollment":
		// student,course — division workload; every third student takes
		// all courses, the rest miss the last one.
		for s := 0; s < *rows; s++ {
			limit := *keys
			if s%3 != 0 {
				limit = *keys - 1
			}
			for c := 0; c < limit; c++ {
				fmt.Fprintf(w, "%d,%d\n", s, c)
			}
		}
	case "courses":
		// course — divisor for the enrollment workload.
		for c := 0; c < *keys; c++ {
			fmt.Fprintf(w, "%d\n", c)
		}
	default:
		fmt.Fprintf(os.Stderr, "volcano-gen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
}
