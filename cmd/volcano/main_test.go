package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// captureStderr runs f with os.Stderr redirected to a pipe and returns
// everything written to it. The analyze report goes to stderr so the
// result rows on stdout stay machine-readable.
func captureStderr(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	os.Stderr = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("run: %v\nstderr:\n%s", ferr, out)
	}
	return out
}

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const empCSV = "0,0,1000.5,alice\n1,1,2000.0,bob\n2,0,3000.25,carol\n3,1,4000.0,dave\n"

func TestRunInMemoryQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	err := run(options{
		query:   "scan emp | filter dept = 0 | sort salary desc",
		frames:  256,
		schemas: []string{"emp=id:int,dept:int,salary:float,name:string"},
		loads:   []string{"emp=" + csv},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExplainOnly(t *testing.T) {
	if err := run(options{query: "scan emp | sort id", frames: 256, explain: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyze(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	out := captureStderr(t, func() error {
		return run(options{
			query:   "scan emp | agg group dept compute count",
			frames:  256,
			analyze: true,
			schemas: []string{"emp=id:int,dept:int,salary:float,name:string"},
			loads:   []string{"emp=" + csv},
		})
	})
	// Per-operator lines carry row counts, Next calls, and wall times.
	for _, want := range []string{"scan emp", "rows=4", "calls=", "next=", "buffer: fixes=", "pins balanced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAnalyzeParallelExchangeCounters(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	out := captureStderr(t, func() error {
		return run(options{
			query:      "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
			frames:     512,
			analyze:    true,
			schemas:    []string{"emp=id:int,dept:int,salary:float,name:string"},
			loads:      []string{"emp=" + csv},
			partitions: []string{"emp:2"},
		})
	})
	// The exchange node reports port activity: packets, records crossed,
	// producer forks, flow-control stall and consumer wait.
	for _, want := range []string{"exchange", "packets=", "records=4", "forks=2", "stall=", "wait=", "rows=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPartitionedParallelQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	err := run(options{
		query:      "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
		frames:     512,
		schemas:    []string{"emp=id:int,dept:int,salary:float,name:string"},
		loads:      []string{"emp=" + csv},
		partitions: []string{"emp:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTracedParallelQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	err := run(options{
		query:      "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
		frames:     512,
		tracePath:  tracePath,
		schemas:    []string{"emp=id:int,dept:int,salary:float,name:string"},
		loads:      []string{"emp=" + csv},
		partitions: []string{"emp:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"producer-start", "push", "pop", "eos", "allow-close"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestRunAnalyzeAndTraceTogether checks -analyze -trace compose: the
// analyze report still renders and the trace file is written.
func TestRunAnalyzeAndTraceTogether(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out := captureStderr(t, func() error {
		return run(options{
			query:     "scan emp | agg group dept compute count",
			frames:    256,
			analyze:   true,
			tracePath: tracePath,
			schemas:   []string{"emp=id:int,dept:int,salary:float,name:string"},
			loads:     []string{"emp=" + csv},
		})
	})
	if !strings.Contains(out, "rows=4") || !strings.Contains(out, "trace written") {
		t.Fatalf("missing analyze report or trace confirmation:\n%s", out)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanFile(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	planPath := writeCSV(t, "q.vp", "scan emp\n| project name\n")
	err := run(options{
		planFile: planPath,
		frames:   256,
		maxRows:  2,
		schemas:  []string{"emp=id:int,dept:int,salary:float,name:string"},
		loads:    []string{"emp=" + csv},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDurableDatabaseAcrossInvocations(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "test.vdb")
	csv := writeCSV(t, "emp.csv", empCSV)
	// First invocation: create the db, load the table.
	err := run(options{
		query:   "scan emp | agg group dept compute count",
		frames:  256,
		db:      dbPath,
		dbPages: 4096,
		schemas: []string{"emp=id:int,dept:int,salary:float,name:string"},
		loads:   []string{"emp=" + csv},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second invocation: reopen, query persisted data without loading.
	err = run(options{query: "scan emp | filter salary > 2500.0", frames: 256, db: dbPath, dbPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(t *testing.T) error
	}{
		{"no plan", func(t *testing.T) error {
			return run(options{frames: 256})
		}},
		{"bad plan", func(t *testing.T) error {
			return run(options{query: "bogus stage", frames: 256})
		}},
		{"missing plan file", func(t *testing.T) error {
			return run(options{planFile: filepath.Join(t.TempDir(), "nope.vp"), frames: 256})
		}},
		{"bad schema flag", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256, schemas: []string{"broken"}})
		}},
		{"bad schema type", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256, schemas: []string{"t=a:blob"}})
		}},
		{"load without schema", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "1\n")
			return run(options{query: "scan t", frames: 256, loads: []string{"t=" + csv}})
		}},
		{"bad load flag", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256, loads: []string{"broken"}})
		}},
		{"load missing file", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256,
				schemas: []string{"t=a:int"}, loads: []string{"t=/nonexistent.csv"}})
		}},
		{"csv column mismatch", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "1,2\n")
			return run(options{query: "scan t", frames: 256,
				schemas: []string{"t=a:int"}, loads: []string{"t=" + csv}})
		}},
		{"csv bad int", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "notanint\n")
			return run(options{query: "scan t", frames: 256,
				schemas: []string{"t=a:int"}, loads: []string{"t=" + csv}})
		}},
		{"bad partition flag", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256, partitions: []string{"t:x"}})
		}},
		{"partition of unloaded table", func(t *testing.T) error {
			return run(options{query: "scan t", frames: 256, partitions: []string{"t:2"}})
		}},
		{"query unknown table", func(t *testing.T) error {
			return run(options{query: "scan nosuch", frames: 256})
		}},
		{"bad metrics addr", func(t *testing.T) error {
			return run(options{query: "scan nosuch", frames: 256, metricsAddr: "not-an-addr:xx"})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.f(t); err == nil {
				t.Fatalf("%s: expected error", c.name)
			}
		})
	}
}

// scrapeMetrics GETs /metrics from addr and returns the per-family
// sample counts after validating the exposition parses.
func scrapeMetrics(t *testing.T, addr string) map[string]int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition v0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, perr := metrics.ParseText(strings.NewReader(string(body)))
	if perr != nil {
		t.Fatalf("scrape is not valid exposition: %v\n%s", perr, body)
	}
	return fams
}

// TestRunMetricsEndpoint runs a parallel query with -metrics and scrapes
// the endpoint through the test seam: the exposition must parse and
// cover the buffer, device, exchange and operator-latency families.
func TestRunMetricsEndpoint(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	var fams map[string]int
	_ = captureStderr(t, func() error {
		return run(options{
			query:       "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
			frames:      512,
			metricsAddr: "127.0.0.1:0",
			schemas:     []string{"emp=id:int,dept:int,salary:float,name:string"},
			loads:       []string{"emp=" + csv},
			partitions:  []string{"emp:2"},
			metricsHook: func(addr string) { fams = scrapeMetrics(t, addr) },
		})
	})
	if fams == nil {
		t.Fatal("metricsHook never ran")
	}
	for _, fam := range []string{
		"volcano_buffer_fixes_total",
		"volcano_buffer_pinned_frames",
		"volcano_device_page_reads_total",
		"volcano_exchange_packets_total",
		"volcano_op_next_seconds",
	} {
		if fams[fam] == 0 {
			t.Errorf("scrape missing family %s", fam)
		}
	}
}

// TestRunAllObservabilityFlagsTogether is the satellite acceptance
// check: -analyze, -trace and -metrics compose in one invocation — the
// analyze report renders (with latency quantiles), the trace file is
// written, and the endpoint serves a parseable exposition.
func TestRunAllObservabilityFlagsTogether(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var fams map[string]int
	out := captureStderr(t, func() error {
		return run(options{
			query:       "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
			frames:      512,
			analyze:     true,
			tracePath:   tracePath,
			metricsAddr: "127.0.0.1:0",
			schemas:     []string{"emp=id:int,dept:int,salary:float,name:string"},
			loads:       []string{"emp=" + csv},
			partitions:  []string{"emp:2"},
			metricsHook: func(addr string) { fams = scrapeMetrics(t, addr) },
		})
	})
	for _, want := range []string{"rows=4", "p50=", "trace written", "metrics: serving"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stderr missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}
	if fams == nil || fams["volcano_op_next_seconds"] == 0 {
		t.Fatalf("metrics scrape missing operator latency family: %v", fams)
	}
}

// TestObservabilityHelpMentionsAllFlags pins the -help table: anyone
// reading usage sees how the three flags compose.
func TestObservabilityHelpMentionsAllFlags(t *testing.T) {
	for _, want := range []string{"-analyze", "-trace", "-metrics", "compose"} {
		if !strings.Contains(observabilityHelp, want) {
			t.Errorf("observability help missing %q", want)
		}
	}
}

func TestParseValueKinds(t *testing.T) {
	for _, tc := range []struct {
		typ  string
		cell string
		ok   bool
	}{
		{"int", " 42 ", true}, {"int", "x", false},
		{"float", "1.5", true}, {"float", "", false},
		{"bool", "true", true}, {"bool", "maybe", false},
		{"string", "anything", true},
		{"bytes", "raw", true},
	} {
		sch, err := parseSchema("f:" + tc.typ)
		if err != nil {
			t.Fatal(err)
		}
		_, err = parseValue(sch.Field(0).Type, tc.cell)
		if (err == nil) != tc.ok {
			t.Errorf("parseValue(%s, %q): err=%v want ok=%v", tc.typ, tc.cell, err, tc.ok)
		}
	}
}
