package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStderr runs f with os.Stderr redirected to a pipe and returns
// everything written to it. The analyze report goes to stderr so the
// result rows on stdout stay machine-readable.
func captureStderr(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	os.Stderr = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("run: %v\nstderr:\n%s", ferr, out)
	}
	return out
}

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const empCSV = "0,0,1000.5,alice\n1,1,2000.0,bob\n2,0,3000.25,carol\n3,1,4000.0,dave\n"

func TestRunInMemoryQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	err := run("", "scan emp | filter dept = 0 | sort salary desc", 256, false, false, 0, "", 0, "",
		[]string{"emp=id:int,dept:int,salary:float,name:string"},
		[]string{"emp=" + csv}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExplainOnly(t *testing.T) {
	if err := run("", "scan emp | sort id", 256, true, false, 0, "", 0, "", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyze(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	out := captureStderr(t, func() error {
		return run("", "scan emp | agg group dept compute count", 256, false, true, 0, "", 0, "",
			[]string{"emp=id:int,dept:int,salary:float,name:string"},
			[]string{"emp=" + csv}, nil)
	})
	// Per-operator lines carry row counts, Next calls, and wall times.
	for _, want := range []string{"scan emp", "rows=4", "calls=", "next=", "buffer: fixes=", "pins balanced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAnalyzeParallelExchangeCounters(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	out := captureStderr(t, func() error {
		return run("", "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
			512, false, true, 0, "", 0, "",
			[]string{"emp=id:int,dept:int,salary:float,name:string"},
			[]string{"emp=" + csv}, []string{"emp:2"})
	})
	// The exchange node reports port activity: packets, records crossed,
	// producer forks, flow-control stall and consumer wait.
	for _, want := range []string{"exchange", "packets=", "records=4", "forks=2", "stall=", "wait=", "rows=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPartitionedParallelQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	err := run("", "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
		512, false, false, 0, "", 0, "",
		[]string{"emp=id:int,dept:int,salary:float,name:string"},
		[]string{"emp=" + csv}, []string{"emp:2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTracedParallelQuery(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	err := run("", "pscan emp 2 | exchange producers=2 | agg group dept compute count | sort dept",
		512, false, false, 0, "", 0, tracePath,
		[]string{"emp=id:int,dept:int,salary:float,name:string"},
		[]string{"emp=" + csv}, []string{"emp:2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"producer-start", "push", "pop", "eos", "allow-close"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestRunAnalyzeAndTraceTogether checks -analyze -trace compose: the
// analyze report still renders and the trace file is written.
func TestRunAnalyzeAndTraceTogether(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	out := captureStderr(t, func() error {
		return run("", "scan emp | agg group dept compute count", 256, false, true, 0, "", 0, tracePath,
			[]string{"emp=id:int,dept:int,salary:float,name:string"},
			[]string{"emp=" + csv}, nil)
	})
	if !strings.Contains(out, "rows=4") || !strings.Contains(out, "trace written") {
		t.Fatalf("missing analyze report or trace confirmation:\n%s", out)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanFile(t *testing.T) {
	csv := writeCSV(t, "emp.csv", empCSV)
	planPath := writeCSV(t, "q.vp", "scan emp\n| project name\n")
	err := run(planPath, "", 256, false, false, 2, "", 0, "",
		[]string{"emp=id:int,dept:int,salary:float,name:string"},
		[]string{"emp=" + csv}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDurableDatabaseAcrossInvocations(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "test.vdb")
	csv := writeCSV(t, "emp.csv", empCSV)
	// First invocation: create the db, load the table.
	err := run("", "scan emp | agg group dept compute count", 256, false, false, 0, dbPath, 4096, "",
		[]string{"emp=id:int,dept:int,salary:float,name:string"},
		[]string{"emp=" + csv}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Second invocation: reopen, query persisted data without loading.
	err = run("", "scan emp | filter salary > 2500.0", 256, false, false, 0, dbPath, 4096, "", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(t *testing.T) error
	}{
		{"no plan", func(t *testing.T) error {
			return run("", "", 256, false, false, 0, "", 0, "", nil, nil, nil)
		}},
		{"bad plan", func(t *testing.T) error {
			return run("", "bogus stage", 256, false, false, 0, "", 0, "", nil, nil, nil)
		}},
		{"missing plan file", func(t *testing.T) error {
			return run(filepath.Join(t.TempDir(), "nope.vp"), "", 256, false, false, 0, "", 0, "", nil, nil, nil)
		}},
		{"bad schema flag", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "", []string{"broken"}, nil, nil)
		}},
		{"bad schema type", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "", []string{"t=a:blob"}, nil, nil)
		}},
		{"load without schema", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "1\n")
			return run("", "scan t", 256, false, false, 0, "", 0, "", nil, []string{"t=" + csv}, nil)
		}},
		{"bad load flag", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "", nil, []string{"broken"}, nil)
		}},
		{"load missing file", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "",
				[]string{"t=a:int"}, []string{"t=/nonexistent.csv"}, nil)
		}},
		{"csv column mismatch", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "1,2\n")
			return run("", "scan t", 256, false, false, 0, "", 0, "",
				[]string{"t=a:int"}, []string{"t=" + csv}, nil)
		}},
		{"csv bad int", func(t *testing.T) error {
			csv := writeCSV(t, "x.csv", "notanint\n")
			return run("", "scan t", 256, false, false, 0, "", 0, "",
				[]string{"t=a:int"}, []string{"t=" + csv}, nil)
		}},
		{"bad partition flag", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "", nil, nil, []string{"t:x"})
		}},
		{"partition of unloaded table", func(t *testing.T) error {
			return run("", "scan t", 256, false, false, 0, "", 0, "", nil, nil, []string{"t:2"})
		}},
		{"query unknown table", func(t *testing.T) error {
			return run("", "scan nosuch", 256, false, false, 0, "", 0, "", nil, nil, nil)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.f(t); err == nil {
				t.Fatalf("%s: expected error", c.name)
			}
		})
	}
}

func TestParseValueKinds(t *testing.T) {
	for _, tc := range []struct {
		typ  string
		cell string
		ok   bool
	}{
		{"int", " 42 ", true}, {"int", "x", false},
		{"float", "1.5", true}, {"float", "", false},
		{"bool", "true", true}, {"bool", "maybe", false},
		{"string", "anything", true},
		{"bytes", "raw", true},
	} {
		sch, err := parseSchema("f:" + tc.typ)
		if err != nil {
			t.Fatal(err)
		}
		_, err = parseValue(sch.Field(0).Type, tc.cell)
		if (err == nil) != tc.ok {
			t.Errorf("parseValue(%s, %q): err=%v want ok=%v", tc.typ, tc.cell, err, tc.ok)
		}
	}
}
