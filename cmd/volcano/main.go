// Command volcano runs a plan-language query over CSV data.
//
// Usage:
//
//	volcano -schema emp=id:int,dept:int,salary:float,name:string \
//	        -load emp=emp.csv \
//	        [-partition emp:4] \
//	        (-plan query.vp | -q 'scan emp | filter dept = 2')
//
// The plan language is documented in internal/plan (and the README).
// Tables are loaded into buffer-managed virtual devices; -partition
// splits a loaded table into k partition files "name.0".."name.k-1"
// (round robin) for use with pscan under an exchange operator.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
	"repro/internal/trace"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

// observabilityHelp documents how the three observability flags compose;
// appended to -help output by both this command and volcano-bench.
const observabilityHelp = `
Observability flags (compose freely):

  flag           output                                       cost when off
  -analyze       EXPLAIN ANALYZE report on stderr: rows,      none (plans built
                 calls, open/next/close times and p50/p95/    without wrappers)
                 p99 Next latency per operator
  -trace FILE    Chrome trace-event JSON of the run: the      none (nil tracer
                 exchange protocol, operator calls, buffer    is a no-op)
                 daemons; open in Perfetto
  -metrics ADDR  live HTTP endpoint for the run: GET          none (nil registry
                 /metrics serves Prometheus text exposition   is a no-op)
                 (buffer, device, btree, exchange and
                 operator-latency families), /debug/pprof
                 serves the standard Go profiles

All three may be given together: one run then produces the analyze
report, the trace file, and a scrapeable endpoint at once.
`

// options carries everything a volcano invocation needs; flags in main
// fill one in, tests construct them directly.
type options struct {
	planFile string
	query    string
	frames   int
	explain  bool
	analyze  bool
	// cost runs the plan through the cost-based planning pass before
	// execution: table statistics gathered at load time fill whatever
	// knobs the plan text leaves open (exchange parallelism, packet
	// sizes, hash-vs-merge strategy via choose-plan).
	cost    bool
	maxRows int
	// batch, when positive, builds and drives the plan under the
	// batch-at-a-time protocol: operators consume their inputs in batches
	// of this size and the result printer drains the root via NextBatch.
	batch     int
	db        string
	dbPages   int
	tracePath string
	// metricsAddr, when non-empty, serves /metrics and /debug/pprof on
	// that address for the duration of the run. The query is built with
	// the observed plan builder so operator latency histograms appear in
	// the exposition.
	metricsAddr string
	schemas     []string
	loads       []string
	partitions  []string

	// metricsHook, when set, is called with the live listener address
	// after the query has run but before the server shuts down. Test
	// seam: lets a test scrape a fully populated endpoint.
	metricsHook func(addr string)
}

func main() {
	var o options
	var schemas, loads, partitions repeated
	flag.StringVar(&o.planFile, "plan", "", "file containing the plan script")
	flag.StringVar(&o.query, "q", "", "inline plan script")
	flag.IntVar(&o.frames, "frames", 4096, "buffer pool frames")
	flag.BoolVar(&o.explain, "explain", false, "print the plan instead of running it")
	flag.BoolVar(&o.analyze, "analyze", false, "after running, print the plan with per-operator statistics")
	flag.BoolVar(&o.cost, "cost", false, "cost the plan first: pick unset exchange parallelism, packet sizes and match strategy from table statistics")
	flag.IntVar(&o.maxRows, "maxrows", 0, "print at most this many rows (0 = all)")
	flag.IntVar(&o.batch, "batch", 0, "run under the batch-at-a-time protocol with this batch size (0 = record-at-a-time)")
	flag.StringVar(&o.db, "db", "", "durable database file: created if absent, loaded tables persist")
	flag.IntVar(&o.dbPages, "dbpages", 1<<18, "capacity in pages when creating a new -db file")
	flag.StringVar(&o.tracePath, "trace", "", "record the run and write Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing)")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve /metrics (Prometheus text exposition) and /debug/pprof on this address during the run")
	flag.Var(&schemas, "schema", "table schema: name=field:type,... (repeatable)")
	flag.Var(&loads, "load", "load CSV: name=path (repeatable; needs -schema for name)")
	flag.Var(&partitions, "partition", "split a table: name:k (repeatable)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: volcano [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprint(out, observabilityHelp)
	}
	flag.Parse()
	o.schemas, o.loads, o.partitions = schemas, loads, partitions

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "volcano:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	script := o.query
	if o.planFile != "" {
		b, err := os.ReadFile(o.planFile)
		if err != nil {
			return err
		}
		script = string(b)
	}
	if script == "" {
		return fmt.Errorf("no plan: use -plan FILE or -q 'SCRIPT'")
	}
	node, err := plan.Parse(script)
	if err != nil {
		return err
	}
	if o.explain && !o.cost {
		fmt.Print(plan.Explain(node))
		return nil
	}

	// Set up the world. With -db the base volume is a durable disk
	// volume; otherwise a throwaway memory volume.
	reg := device.NewRegistry()
	baseID := reg.NextID()
	durable := o.db != ""
	created := false
	if durable {
		if _, statErr := os.Stat(o.db); statErr != nil {
			d, err := device.NewDisk(baseID, o.db, uint32(o.dbPages))
			if err != nil {
				return err
			}
			created = true
			if err := reg.Mount(d); err != nil {
				return err
			}
		} else {
			d, err := device.OpenDisk(baseID, o.db)
			if err != nil {
				return err
			}
			if err := reg.Mount(d); err != nil {
				return err
			}
		}
	} else if err := reg.Mount(device.NewMem(baseID)); err != nil {
		return err
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		return err
	}
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, o.frames, buffer.TwoLevel)
	var tracer *trace.Tracer
	if o.tracePath != "" {
		tracer = trace.New()
		pool.SetTracer(tracer)
	}
	var mr *metrics.Registry
	var msrv *metrics.Server
	if o.metricsAddr != "" {
		mr = metrics.NewRegistry()
		pool.RegisterMetrics(mr)
		device.RegisterMetrics(mr)
		btree.RegisterMetrics(mr)
		core.RegisterMetrics(mr)
		msrv, err = metrics.Serve(o.metricsAddr, mr)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics and /debug/pprof on http://%s\n", msrv.Addr)
	}
	var base *file.Volume
	switch {
	case durable && created:
		var err error
		if base, err = file.Format(pool, baseID); err != nil {
			return err
		}
	case durable:
		var err error
		if base, err = file.OpenVolume(pool, baseID); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "database %s: %d tables, %d indexes\n", o.db, len(base.List()), len(base.Indexes()))
	default:
		base = file.NewVolume(pool, baseID)
	}
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	schemaByName := map[string]*record.Schema{}
	for _, s := range o.schemas {
		name, spec, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("bad -schema %q (want name=field:type,...)", s)
		}
		sch, err := parseSchema(spec)
		if err != nil {
			return fmt.Errorf("-schema %s: %w", name, err)
		}
		schemaByName[name] = sch
	}

	cat := plan.VolumeCatalog{base}
	for _, l := range o.loads {
		name, path, ok := strings.Cut(l, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want name=path)", l)
		}
		sch, ok := schemaByName[name]
		if !ok {
			return fmt.Errorf("-load %s: no -schema for table", name)
		}
		f, err := loadCSV(base, name, sch, path)
		if err != nil {
			return fmt.Errorf("-load %s: %w", name, err)
		}
		// Freshly loaded data is in the buffer pool anyway, so gathering
		// statistics now is nearly free — and it is what lets -cost (here
		// or in a later volcano-serve run over the same -db) estimate.
		if _, err := base.Analyze(name); err != nil {
			return fmt.Errorf("-load %s: analyze: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d records, %d pages\n", name, f.Records(), f.Pages())
	}

	for _, p := range o.partitions {
		name, kstr, ok := strings.Cut(p, ":")
		k, err := strconv.Atoi(kstr)
		if !ok || err != nil || k < 1 {
			return fmt.Errorf("bad -partition %q (want name:k)", p)
		}
		src, err := cat.Lookup(name)
		if err != nil {
			return fmt.Errorf("-partition %s: %w", name, err)
		}
		if err := partitionTable(base, src, name, k); err != nil {
			return err
		}
		for p := 0; p < k; p++ {
			if _, err := base.Analyze(fmt.Sprintf("%s.%d", name, p)); err != nil {
				return fmt.Errorf("-partition %s: analyze: %w", name, err)
			}
		}
		fmt.Fprintf(os.Stderr, "partitioned %s into %d files\n", name, k)
	}

	// With -cost, re-derive the plan through the costing pass now that
	// the catalog (and its load-time statistics) exists; the costed tree
	// replaces the parsed one for explain, build and the analyze report.
	var estimates map[*plan.Node]int64
	if o.cost {
		tpl, err := plan.Compile(script)
		if err != nil {
			return err
		}
		cp := tpl.Cost(cat, nil)
		node = cp.Template.Root()
		estimates = cp.Estimates
	}
	if o.explain {
		fmt.Print(plan.Explain(node))
		return nil
	}

	// BuildWith composes all the facilities: -metrics implies the observed
	// build even without -analyze (the operator-latency histograms live in
	// the registry's children), and -batch switches every batch-capable
	// operator and exchange boundary to the batch protocol.
	it, analysis, err := plan.BuildWith(env, cat, node, plan.BuildOptions{
		Analyze:   o.analyze,
		Tracer:    tracer,
		Metrics:   mr,
		BatchSize: o.batch,
		Estimates: estimates,
	})
	if err != nil {
		return err
	}
	if err := printResult(it, o.maxRows, o.batch); err != nil {
		return err
	}
	if analysis != nil && o.analyze {
		fmt.Fprint(os.Stderr, analysis.String())
	}
	if tracer.Enabled() {
		if err := writeTrace(tracer, o.tracePath); err != nil {
			return err
		}
	}
	if durable {
		if err := base.Save(); err != nil {
			return fmt.Errorf("saving database: %w", err)
		}
		fmt.Fprintf(os.Stderr, "database saved to %s\n", o.db)
	}
	if msrv != nil && o.metricsHook != nil {
		o.metricsHook(msrv.Addr)
	}
	return nil
}

// writeTrace dumps the recorded events as Chrome trace-event JSON.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	werr := tr.WriteChrome(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("writing trace: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("writing trace: %w", cerr)
	}
	if d := tr.TotalDropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events dropped: ring buffers full)\n", path, d)
	} else {
		fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	}
	return nil
}

// parseSchema parses "id:int,name:string,...".
func parseSchema(spec string) (*record.Schema, error) {
	var fields []record.Field
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad field %q (want name:type)", part)
		}
		var t record.Type
		switch strings.ToLower(typ) {
		case "int":
			t = record.TInt
		case "float":
			t = record.TFloat
		case "bool":
			t = record.TBool
		case "string":
			t = record.TString
		case "bytes":
			t = record.TBytes
		default:
			return nil, fmt.Errorf("unknown type %q", typ)
		}
		fields = append(fields, record.Field{Name: name, Type: t})
	}
	return record.NewSchema(fields...)
}

func loadCSV(vol *file.Volume, name string, sch *record.Schema, path string) (*file.File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	r := csv.NewReader(fh)
	r.ReuseRecord = true
	f, err := vol.Create(name, sch)
	if err != nil {
		return nil, err
	}
	vals := make([]record.Value, sch.NumFields())
	for {
		row, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if len(row) != sch.NumFields() {
			return nil, fmt.Errorf("row has %d columns, schema has %d", len(row), sch.NumFields())
		}
		for i, cell := range row {
			v, err := parseValue(sch.Field(i).Type, cell)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", sch.Field(i).Name, err)
			}
			vals[i] = v
		}
		data, err := sch.Encode(vals)
		if err != nil {
			return nil, err
		}
		if _, err := f.Insert(data); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func parseValue(t record.Type, cell string) (record.Value, error) {
	switch t {
	case record.TInt:
		i, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		return record.Int(i), err
	case record.TFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		return record.Float(f), err
	case record.TBool:
		b, err := strconv.ParseBool(strings.TrimSpace(cell))
		return record.Bool(b), err
	case record.TBytes:
		return record.Bytes([]byte(cell)), nil
	default:
		return record.Str(cell), nil
	}
}

func partitionTable(vol *file.Volume, src *file.File, name string, k int) error {
	parts := make([]*file.File, k)
	for p := range parts {
		pf, err := vol.Create(fmt.Sprintf("%s.%d", name, p), src.Schema())
		if err != nil {
			return err
		}
		parts[p] = pf
	}
	sc := src.NewScan(false)
	defer sc.Close()
	i := 0
	for {
		r, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		_, err = parts[i%k].Insert(r.Data)
		r.Unfix()
		if err != nil {
			return err
		}
		i++
	}
}

func printResult(it core.Iterator, maxRows, batch int) error {
	if err := it.Open(); err != nil {
		return err
	}
	sch := it.Schema()
	var header []string
	for i := 0; i < sch.NumFields(); i++ {
		header = append(header, sch.Field(i).Name)
	}
	fmt.Println(strings.Join(header, "\t"))
	if batch > 0 {
		return printBatches(it, sch, maxRows, batch)
	}
	n := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			return err
		}
		if !ok {
			break
		}
		if maxRows == 0 || n < maxRows {
			vals, err := sch.Decode(r.Data)
			if err != nil {
				r.Unfix()
				_ = it.Close()
				return err
			}
			cells := make([]string, len(vals))
			for i, v := range vals {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		r.Unfix()
		n++
	}
	fmt.Fprintf(os.Stderr, "(%d rows)\n", n)
	return it.Close()
}

// printBatches drains the root through the batch protocol: one NextBatch
// refill per batch, printing each record and releasing the whole batch's
// pins in one coalesced pass.
func printBatches(it core.Iterator, sch *record.Schema, maxRows, batch int) error {
	src := core.AsBatch(it)
	b := core.NewBatch(batch)
	n := 0
	for {
		if err := src.NextBatch(b); err != nil {
			_ = it.Close()
			return err
		}
		if b.Len() == 0 {
			break
		}
		for _, r := range b.Recs() {
			if maxRows == 0 || n < maxRows {
				vals, err := sch.Decode(r.Data)
				if err != nil {
					b.Release()
					_ = it.Close()
					return err
				}
				cells := make([]string, len(vals))
				for i, v := range vals {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, "\t"))
			}
			n++
		}
		b.Release()
	}
	fmt.Fprintf(os.Stderr, "(%d rows)\n", n)
	return it.Close()
}
