package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// buildTestDB authors a durable database file the way `volcano -db` does:
// disk device, formatted volume, one loaded table.
func buildTestDB(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serve.vdb")
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.NewDisk(id, path, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount(d); err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(reg, 256, buffer.TwoLevel)
	vol, err := file.Format(pool, id)
	if err != nil {
		t.Fatal(err)
	}
	sch := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "dept", Type: record.TInt},
	)
	f, err := vol.Create("emp", sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := f.Insert(sch.MustEncode(record.Int(int64(i)), record.Int(int64(i%4)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	if err := reg.CloseAll(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeEndToEnd boots the service on a generated database, runs a
// query over HTTP, checks the monitoring endpoints, and shuts down via
// the stop seam (the same path as SIGTERM).
func TestServeEndToEnd(t *testing.T) {
	const rows = 100
	db := buildTestDB(t, rows)

	ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	stop := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(options{
			db:               db,
			addr:             "127.0.0.1:0",
			metricsAddr:      "127.0.0.1:0",
			frames:           256,
			maxConcurrent:    2,
			maxProducers:     16,
			maxQueue:         4,
			queueWait:        5 * time.Second,
			planCache:        16,
			drainTimeout:     10 * time.Second,
			readyHook:        func(addr string) { ready <- addr },
			metricsReadyHook: func(addr string) { metricsReady <- addr },
			stop:             stop,
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr
	var mbase string
	select {
	case maddr := <-metricsReady:
		mbase = "http://" + maddr
	case <-time.After(10 * time.Second):
		t.Fatal("metrics listener never became ready")
	}

	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader("scan emp | filter dept = 1 | sort id desc"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	got, prev := 0, int64(1<<60)
	sc := bufio.NewScanner(resp.Body)
	var last map[string]any
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if last != nil {
			id := int64(last["id"].(float64))
			if id >= prev {
				t.Fatalf("ids not descending: %d after %d", id, prev)
			}
			prev = id
			got++
		}
		last = v
	}
	resp.Body.Close()
	if last["status"] != "ok" || got != rows/4 {
		t.Fatalf("trailer %v, rows %d (want %d)", last, got, rows/4)
	}
	res, ok := last["resources"].(map[string]any)
	if !ok {
		t.Fatalf("trailer has no resources block: %v", last)
	}
	if res["buffer_fixes"].(float64) <= 0 || res["rows_streamed"].(float64) != float64(got) {
		t.Fatalf("resources block not attributed: %v", res)
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatalf("metrics scrape does not parse: %v", err)
	}
	for _, f := range []string{"volcano_server_admitted_total", "volcano_buffer_fixes_total"} {
		if fams[f] == 0 {
			t.Errorf("scrape missing family %s", f)
		}
	}

	// The -metrics listener serves the operations surface — the full
	// scrape (including the per-query accounting and Go runtime families
	// stamped by this build), /buildinfo, and the debug views — but not
	// /query.
	mm, err := http.Get(mbase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mfams, err := metrics.ParseText(mm.Body)
	mm.Body.Close()
	if err != nil {
		t.Fatalf("metrics-listener scrape does not parse: %v", err)
	}
	for _, f := range []string{
		"volcano_server_query_cpu_seconds_total",
		"volcano_server_query_io_bytes_total",
		"volcano_server_query_buffer_fixes_total",
		"volcano_go_goroutines",
		"volcano_build_info",
	} {
		if mfams[f] == 0 {
			t.Errorf("metrics-listener scrape missing family %s", f)
		}
	}
	for path, want := range map[string]int{
		"/buildinfo":     http.StatusOK,
		"/debug/queries": http.StatusOK,
		"/debug/slowlog": http.StatusOK,
		"/query":         http.StatusNotFound,
	} {
		r, err := http.Get(mbase + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("metrics listener GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}

	close(stop)
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain and exit")
	}
}

// TestServeSlowHeaderClientIsDisconnected is the slowloris regression
// test: a client that opens a connection and dribbles an incomplete
// request header must be cut off by ReadHeaderTimeout instead of holding
// the connection (and, behind admission control, eventually every
// connection) open indefinitely.
func TestServeSlowHeaderClientIsDisconnected(t *testing.T) {
	db := buildTestDB(t, 10)

	ready := make(chan string, 1)
	stop := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(options{
			db:                db,
			addr:              "127.0.0.1:0",
			frames:            256,
			drainTimeout:      10 * time.Second,
			readHeaderTimeout: 300 * time.Millisecond,
			readyHook:         func(addr string) { ready <- addr },
			stop:              stop,
		})
	}()
	defer func() {
		close(stop)
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not drain and exit")
		}
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial header and then go silent, like a slowloris client.
	if _, err := io.WriteString(conn, "POST /query HTTP/1.1\r\nHost: volcano\r\nX-Slow"); err != nil {
		t.Fatal(err)
	}
	// The server must sever the connection around ReadHeaderTimeout; the
	// read unblocks with EOF/reset. The generous bound guards against a
	// regression to "held open indefinitely" without timing sensitivity.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("connection still open %v after partial headers", time.Since(start))
			}
			break // EOF or reset: the server hung up.
		}
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("server took %v to drop a slow-header client", elapsed)
	}

	// The service itself is unharmed: a well-formed query still works.
	resp, err := http.Post("http://"+addr+"/query", "text/plain", strings.NewReader("scan emp"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after slowloris: status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestServeRequiresDB pins the usage error.
func TestServeRequiresDB(t *testing.T) {
	if err := run(options{}); err == nil || !strings.Contains(err.Error(), "-db") {
		t.Fatalf("run without -db: %v, want usage error", err)
	}
}
