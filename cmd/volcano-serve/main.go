// Command volcano-serve is the Volcano query service: it opens a durable
// database file (created with volcano -db), binds an HTTP address, and
// executes plan-language scripts POSTed to /query, streaming results as
// NDJSON with a trailing status object.
//
//	volcano-gen -kind emp -rows 10000 -out emp.csv
//	volcano -db db.vol -schema emp=id:int,dept:int,salary:float,name:string \
//	        -load emp=emp.csv -q 'scan emp | filter id < 0'
//	volcano-serve -db db.vol -addr :8080 &
//	curl -d 'scan emp | filter dept = 2 | sort salary desc' localhost:8080/query
//
// The service bounds its own parallelism: -max-concurrent queries execute
// at once, their exchange operators may fork at most -max-producers
// goroutines in total, and at most -max-queue queries wait for admission
// (the excess is rejected with 429). GET /healthz reports liveness, GET
// /metrics serves the volcano_server_* families alongside the storage and
// operator families, and SIGINT/SIGTERM drains gracefully: admission
// stops, in-flight queries finish, then the volume closes.
//
// Every query has an identity: the X-Volcano-Query-Id request header (or
// a generated ID) is echoed in the response header and the trailing
// status object. GET /debug/queries lists the active queries with live
// per-operator progress, GET /debug/queries/{id} drills into one with a
// mid-flight EXPLAIN ANALYZE rendering, and queries slower than
// -slow-query (plus every errored or canceled one) land in a structured
// slow-query log: an in-memory ring on GET /debug/slowlog, plus JSON
// lines appended to -query-log when set.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// options carries everything a volcano-serve invocation needs; flags in
// main fill one in, tests construct them directly.
type options struct {
	db   string
	addr string
	// metricsAddr, when non-empty, binds a second listener serving only
	// the operations surface: /metrics, /buildinfo, /debug/pprof/,
	// /debug/queries and /debug/slowlog — no /query. It lets a deployment
	// keep the query port client-facing and the monitoring port internal.
	metricsAddr   string
	frames        int
	maxConcurrent int
	maxProducers  int
	maxQueue      int
	queueWait     time.Duration
	maxQueryTime  time.Duration
	planCache     int
	drainTimeout  time.Duration
	// batch, when positive, executes every query under the batch-at-a-time
	// protocol by default; requests override per query with X-Volcano-Batch.
	batch int
	// noCost turns the cost-based planning pass off: queries run their
	// plan text verbatim, with no planner-chosen knobs and no
	// cardinality feedback.
	noCost bool
	// slowQuery is the slow-query log threshold: completed queries at or
	// over it (and every errored/canceled query) get a structured log
	// entry. 0 logs only errors/cancels; negative disables the log.
	slowQuery time.Duration
	// queryLog, when non-empty, appends slow-query entries to this file
	// as slog JSON lines (the in-memory ring on /debug/slowlog is always
	// available regardless).
	queryLog string
	// workers is a comma-separated list of volcano-worker dispatch
	// addresses to register at startup; non-empty (or distEnable)
	// switches distributed execution on.
	workers string
	// distEnable turns the coordinator on with an empty fleet, so
	// workers can join dynamically via POST /dist/register.
	distEnable bool
	// distDataAddr is the coordinator's data-plane listen address
	// (empty = 127.0.0.1:0). Workers dial it to deliver fragment streams.
	distDataAddr string

	// Connection hygiene: zero values get production defaults in run()
	// so the test seam is hardened the same way the flags are.
	readHeaderTimeout time.Duration // slow-header (slowloris) bound
	readTimeout       time.Duration // whole-request read bound (plan bodies are small)
	idleTimeout       time.Duration // keep-alive idle bound
	writeStall        time.Duration // per-flush write-stall bound (streams stay unbounded)

	// readyHook, when set, is called with the bound listener address once
	// the service accepts connections. Test seam.
	readyHook func(addr string)
	// metricsReadyHook, when set, is called with the bound -metrics
	// listener address. Test seam.
	metricsReadyHook func(addr string)
	// stop, when non-nil, triggers the same graceful drain as SIGTERM
	// when it becomes readable. Test seam.
	stop <-chan struct{}
}

func main() {
	var o options
	flag.StringVar(&o.db, "db", "", "durable database file to serve (required; create with volcano -db)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	flag.StringVar(&o.metricsAddr, "metrics", "", "separate listen address for the operations surface: /metrics, /buildinfo, pprof and the /debug views without /query (empty = main address only)")
	flag.IntVar(&o.frames, "frames", 4096, "buffer pool frames shared by all queries")
	flag.IntVar(&o.maxConcurrent, "max-concurrent", 4, "queries executing at once")
	flag.IntVar(&o.maxProducers, "max-producers", 64, "total exchange producer goroutines across all queries")
	flag.IntVar(&o.maxQueue, "max-queue", 16, "queries waiting for admission before 429s")
	flag.DurationVar(&o.queueWait, "queue-wait", 10*time.Second, "longest a query waits for admission before a 503")
	flag.DurationVar(&o.maxQueryTime, "max-query-time", 0, "per-query execution deadline (0 = unbounded)")
	flag.IntVar(&o.planCache, "plan-cache", 128, "compiled-plan LRU capacity (negative disables)")
	flag.IntVar(&o.batch, "batch", 0, "default batch size for query execution, overridable per request with X-Volcano-Batch (0 = record-at-a-time)")
	cost := flag.Bool("cost", true, "cost-based planning: fill unset exchange parallelism, packet sizes and match strategy from table statistics, with cardinality feedback on repeats")
	flag.DurationVar(&o.slowQuery, "slow-query", time.Second, "slow-query log threshold; errored/canceled queries are always logged (0 = only those, negative = no log)")
	flag.StringVar(&o.queryLog, "query-log", "", "append slow-query entries to this file as JSON lines (empty = in-memory ring only)")
	flag.StringVar(&o.workers, "workers", "", "comma-separated volcano-worker addresses to register for distributed execution (enables the coordinator)")
	flag.BoolVar(&o.distEnable, "dist", false, "enable the distributed-execution coordinator even with no static workers (they join via POST /dist/register)")
	flag.StringVar(&o.distDataAddr, "dist-data-addr", "", "coordinator data-plane listen address workers stream fragments to (empty = 127.0.0.1:0)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "longest to wait for in-flight queries on shutdown")
	flag.DurationVar(&o.readHeaderTimeout, "read-header-timeout", 5*time.Second, "longest a client may take to send request headers")
	flag.DurationVar(&o.readTimeout, "read-timeout", 30*time.Second, "longest a client may take to send a whole request")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "longest an idle keep-alive connection is held open")
	flag.DurationVar(&o.writeStall, "write-stall-timeout", 2*time.Minute, "longest one result flush may block on a non-reading client")
	flag.Parse()
	o.noCost = !*cost

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "volcano-serve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.db == "" {
		return fmt.Errorf("no database: use -db FILE (create one with volcano -db)")
	}
	// Options built directly (tests, embedding) get the same connection
	// hygiene as the flag defaults; an explicit negative disables a bound.
	if o.readHeaderTimeout == 0 {
		o.readHeaderTimeout = 5 * time.Second
	}
	if o.readTimeout == 0 {
		o.readTimeout = 30 * time.Second
	}
	if o.idleTimeout == 0 {
		o.idleTimeout = 2 * time.Minute
	}
	if o.writeStall == 0 {
		o.writeStall = 2 * time.Minute
	}

	// Storage: the served volume on a disk device, temp space for sorts
	// and hash spills on a memory device, one buffer pool over both.
	reg := device.NewRegistry()
	baseID := reg.NextID()
	disk, err := device.OpenDisk(baseID, o.db)
	if err != nil {
		return err
	}
	if err := reg.Mount(disk); err != nil {
		return err
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		return err
	}
	defer reg.CloseAll()

	pool := buffer.NewPool(reg, o.frames, buffer.TwoLevel)
	base, err := file.OpenVolume(pool, baseID)
	if err != nil {
		return err
	}
	env := core.NewEnv(pool, file.NewVolume(pool, tempID))

	mr := metrics.NewRegistry()
	pool.RegisterMetrics(mr)
	device.RegisterMetrics(mr)
	btree.RegisterMetrics(mr)
	core.RegisterMetrics(mr)
	metrics.RegisterGoRuntime(mr)

	// The slow-query file sink outlives the server: closed on return,
	// after the drain has flushed every in-flight query's entry.
	var slowSink io.Writer
	if o.queryLog != "" {
		f, err := os.OpenFile(o.queryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("query log: %w", err)
		}
		defer f.Close()
		slowSink = f
	}

	// Distributed execution: one coordinator owns the worker registry and
	// the data plane; producer fragments ship to the fleet while root
	// fragments run in this process.
	var coord *dist.Coordinator
	if o.distEnable || o.workers != "" {
		coord, err = dist.NewCoordinator(dist.CoordinatorConfig{
			DataAddr: o.distDataAddr,
			Metrics:  mr,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		for _, a := range strings.Split(o.workers, ",") {
			if a = strings.TrimSpace(a); a == "" {
				continue
			}
			if err := coord.Register(a); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "volcano-serve: distributed execution on: data plane %s, %d workers registered\n",
			coord.DataAddr(), coord.LiveWorkers())
	}

	srv, err := server.New(server.Config{
		Env:               env,
		Catalog:           plan.VolumeCatalog{base},
		CatalogVersion:    dist.CatalogVersion(o.db, base),
		MaxConcurrent:     o.maxConcurrent,
		MaxProducers:      o.maxProducers,
		MaxQueue:          o.maxQueue,
		QueueWait:         o.queueWait,
		MaxQueryTime:      o.maxQueryTime,
		PlanCacheSize:     o.planCache,
		DisableCosting:    o.noCost,
		WriteStallTimeout: o.writeStall,
		BatchSize:         o.batch,
		SlowQuery:         o.slowQuery,
		SlowLogSink:       slowSink,
		Metrics:           mr,
		Dist:              coord,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// Connection hygiene: a client that dribbles headers, never finishes
	// its body, or parks an idle keep-alive connection is bounded here;
	// the per-flush write-stall deadline for established streams lives in
	// the server package (http.Server.WriteTimeout would cap total stream
	// duration, which NDJSON streaming cannot accept). Negative flag
	// values disable a bound (http.Server treats negative as none).
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		IdleTimeout:       o.idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "volcano-serve: build %s\n", metrics.ReadBuildInfo())
	fmt.Fprintf(os.Stderr, "volcano-serve: %s: %d tables, %d indexes; serving on http://%s\n",
		o.db, len(base.List()), len(base.Indexes()), ln.Addr())

	// Optional operations listener: the monitoring surface without /query.
	var metricsSrv *http.Server
	if o.metricsAddr != "" {
		mln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mmux := http.NewServeMux()
		metrics.Mount(mmux, mr)
		srv.MountDebug(mmux)
		metricsSrv = &http.Server{Handler: mmux, ReadHeaderTimeout: o.readHeaderTimeout}
		go func() { _ = metricsSrv.Serve(mln) }()
		fmt.Fprintf(os.Stderr, "volcano-serve: metrics on http://%s\n", mln.Addr())
		if o.metricsReadyHook != nil {
			o.metricsReadyHook(mln.Addr().String())
		}
	}
	defer func() {
		if metricsSrv != nil {
			_ = metricsSrv.Close()
		}
	}()

	if o.readyHook != nil {
		o.readyHook(ln.Addr().String())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "volcano-serve: %v: draining\n", sig)
	case <-o.stop:
		fmt.Fprintln(os.Stderr, "volcano-serve: stop requested: draining")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Graceful drain: reject new work, finish in-flight queries, then
	// stop the HTTP machinery and (via the deferred CloseAll) the volume.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		_ = httpSrv.Close()
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		_ = httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "volcano-serve: drained")
	return nil
}
