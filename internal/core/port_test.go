package core

import (
	"testing"
	"time"
)

// Port/queue unit tests: the packet FIFO, end-of-stream accounting, the
// flow-control semaphore's token conservation, and drain semantics.

func TestQueuePushPopFIFO(t *testing.T) {
	q := newQueue(1, false, false, 0, &portStats{}, newPacketPool(1, 1, 1, 8))
	for i := 0; i < 5; i++ {
		q.push(&packet{producer: i}, nil)
	}
	for i := 0; i < 5; i++ {
		p := q.pop(1, nil)
		if p == nil || p.producer != i {
			t.Fatalf("pop %d = %+v", i, p)
		}
	}
}

func TestQueuePopReturnsNilAfterAllEOS(t *testing.T) {
	q := newQueue(2, false, false, 0, &portStats{}, newPacketPool(2, 1, 1, 8))
	q.push(&packet{producer: 0, eos: true}, nil)
	q.push(&packet{producer: 1, eos: true}, nil)
	// Two tagged packets pop normally, then nil.
	if q.pop(2, nil) == nil || q.pop(2, nil) == nil {
		t.Fatal("tagged packets should pop")
	}
	if q.pop(2, nil) != nil {
		t.Fatal("pop after all EOS should be nil")
	}
}

func TestQueueFlowControlBlocksAtSlack(t *testing.T) {
	q := newQueue(1, false, true, 2, &portStats{}, newPacketPool(1, 1, 2, 8))
	// Two pushes consume both tokens without blocking.
	done := make(chan struct{})
	go func() {
		q.push(&packet{}, nil)
		q.push(&packet{}, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pushes within slack blocked")
	}
	// The third push must block until a consumer pops.
	third := make(chan struct{})
	go func() {
		q.push(&packet{}, nil)
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("push beyond slack did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if q.pop(1, nil) == nil {
		t.Fatal("pop failed")
	}
	select {
	case <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("pop did not release the blocked producer")
	}
}

func TestQueueEOSPacketsBypassFlowControl(t *testing.T) {
	q := newQueue(1, false, true, 1, &portStats{}, newPacketPool(1, 1, 1, 8))
	q.push(&packet{}, nil) // consumes the only token
	done := make(chan struct{})
	go func() {
		q.push(&packet{eos: true}, nil) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("EOS packet blocked on flow control")
	}
}

func TestQueueDrainReleasesBlockedProducerAndDiscardsLater(t *testing.T) {
	q := newQueue(1, false, true, 1, &portStats{}, newPacketPool(1, 1, 1, 8))
	q.push(&packet{}, nil)
	blocked := make(chan struct{})
	go func() {
		q.push(&packet{}, nil)
		close(blocked)
	}()
	time.Sleep(10 * time.Millisecond)
	q.drain()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not unblock producer")
	}
	// Pushes after drain are discarded, but EOS still counts.
	q.push(&packet{eos: true}, nil)
	q.mu.Lock()
	eos, nq := q.eosSeen, q.shared.size()
	q.mu.Unlock()
	if eos != 1 || nq != 0 {
		t.Fatalf("after drain: eos=%d queued=%d", eos, nq)
	}
}

func TestQueueKeepStreamsPopFrom(t *testing.T) {
	q := newQueue(2, true, false, 0, &portStats{}, newPacketPool(2, 1, 1, 8))
	q.push(&packet{producer: 1}, nil)
	q.push(&packet{producer: 0}, nil)
	q.push(&packet{producer: 1, eos: true}, nil)
	q.push(&packet{producer: 0, eos: true}, nil)
	// Stream 0 sees only producer 0's packets, in order.
	if p := q.popFrom(0, nil); p == nil || p.producer != 0 || p.eos {
		t.Fatalf("popFrom(0) = %+v", p)
	}
	if p := q.popFrom(0, nil); p == nil || !p.eos {
		t.Fatal("expected producer 0 EOS")
	}
	if p := q.popFrom(0, nil); p != nil {
		t.Fatal("stream 0 should be done")
	}
	if p := q.popFrom(1, nil); p == nil || p.producer != 1 {
		t.Fatal("stream 1 lost its packet")
	}
}

func TestQueueTryPop(t *testing.T) {
	q := newQueue(1, false, false, 0, &portStats{}, newPacketPool(1, 1, 1, 8))
	if q.tryPop() != nil {
		t.Fatal("tryPop on empty queue returned a packet")
	}
	q.push(&packet{producer: 7}, nil)
	if p := q.tryPop(); p == nil || p.producer != 7 {
		t.Fatalf("tryPop = %+v", p)
	}
}
