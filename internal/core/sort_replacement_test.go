package core

import (
	"testing"

	"repro/internal/record"
)

func TestReplacementSelectionSortsCorrectly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500, 3000} {
		env := newTestEnv(t, 512)
		vals := shuffled(n, int64(n)+5)
		f := env.makeInts(t, "t", vals...)
		s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
		s.RunSize = 16
		s.RunGen = RunGenReplacementSelection
		rows, err := Collect(s)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(intsOf(rows, 0), sortedInts(vals)) {
			t.Fatalf("n=%d: replacement-selection sort wrong", n)
		}
		env.checkNoPinLeak(t)
		if left := len(env.Temp.List()); left != 0 {
			t.Fatalf("n=%d: %d temp files left", n, left)
		}
	}
}

func TestReplacementSelectionProducesFewerRuns(t *testing.T) {
	// On random input, replacement selection yields runs ~2x the heap
	// size, i.e. about half as many runs as quicksort batching.
	const n, runSize = 4000, 64
	counts := map[RunGen]int{}
	for _, gen := range []RunGen{RunGenQuicksort, RunGenReplacementSelection} {
		env := newTestEnv(t, 1024)
		f := env.makeInts(t, "t", shuffled(n, 99)...)
		s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
		s.RunSize = runSize
		s.RunGen = gen
		if _, err := Collect(s); err != nil {
			t.Fatal(err)
		}
		counts[gen] = s.RunsGenerated()
	}
	q, r := counts[RunGenQuicksort], counts[RunGenReplacementSelection]
	if q != (n+runSize-1)/runSize {
		t.Fatalf("quicksort runs = %d, want %d", q, (n+runSize-1)/runSize)
	}
	// Expect roughly half; accept anything clearly better.
	if r >= q*3/4 {
		t.Fatalf("replacement selection runs = %d, not clearly fewer than %d", r, q)
	}
	t.Logf("runs: quicksort=%d replacement=%d", q, r)
}

func TestReplacementSelectionSortedInputSingleRun(t *testing.T) {
	// Already-sorted input collapses to ONE run regardless of heap size —
	// the classic replacement-selection property.
	env := newTestEnv(t, 512)
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = int64(i)
	}
	f := env.makeInts(t, "t", vals...)
	s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
	s.RunSize = 16
	s.RunGen = RunGenReplacementSelection
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if s.RunsGenerated() != 1 {
		t.Fatalf("sorted input produced %d runs, want 1", s.RunsGenerated())
	}
}

func TestReplacementSelectionStability(t *testing.T) {
	env := newTestEnv(t, 512)
	pairs := make([][2]int64, 300)
	for i := range pairs {
		pairs[i] = [2]int64{int64(i % 5), int64(i)}
	}
	f := env.makePairs(t, "t", pairs)
	s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
	s.RunSize = 8
	s.RunGen = RunGenReplacementSelection
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	var lastKey, lastSeq int64 = -1, -1
	for _, r := range rows {
		if r[0].I != lastKey {
			lastKey, lastSeq = r[0].I, -1
		}
		if r[1].I <= lastSeq {
			t.Fatalf("stability broken: key %d seq %d after %d", r[0].I, r[1].I, lastSeq)
		}
		lastSeq = r[1].I
	}
}
