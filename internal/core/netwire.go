package core

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// WireTransport connects the two halves of a NetExchange through a real
// byte stream instead of the in-process loopback. The producer side
// dials one connection per consumer endpoint; the consumer side accepts
// one connection per producer. Frames on the connections use the wire
// format of this package (see wire.go). TCP's own flow control replaces
// the loopback's bounded channel as the transmit window.
type WireTransport interface {
	// Dial connects the calling producer to consumer endpoint c.
	Dial(c int) (net.Conn, error)
	// Accept returns the next inbound producer connection for consumer
	// endpoint c. It is called exactly Producers times per consumer.
	Accept(c int) (net.Conn, error)
}

// TCPLoopback is a WireTransport over real TCP sockets on the loopback
// interface: one listener per consumer endpoint. It is the transport the
// wire-path benchmarks and tests use — same kernel socket machinery as a
// cross-machine deployment, zero network distance.
type TCPLoopback struct {
	lns []net.Listener
}

// NewTCPLoopback binds one loopback listener per consumer endpoint.
func NewTCPLoopback(consumers int) (*TCPLoopback, error) {
	t := &TCPLoopback{}
	for c := 0; c < consumers; c++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, err
		}
		t.lns = append(t.lns, ln)
	}
	return t, nil
}

// Dial implements WireTransport.
func (t *TCPLoopback) Dial(c int) (net.Conn, error) {
	return net.Dial("tcp", t.lns[c].Addr().String())
}

// Accept implements WireTransport.
func (t *TCPLoopback) Accept(c int) (net.Conn, error) {
	return t.lns[c].Accept()
}

// Addr returns consumer endpoint c's listen address.
func (t *TCPLoopback) Addr(c int) string { return t.lns[c].Addr().String() }

// Close closes every listener.
func (t *TCPLoopback) Close() error {
	var first error
	for _, ln := range t.lns {
		if ln != nil {
			if err := ln.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return nil
}

// wireOut is one producer's sending half over a transport: lazily dialed
// per-consumer connections with buffered frame writers. Owned by a
// single producer goroutine.
type wireOut struct {
	x       *NetExchange
	conns   []net.Conn
	writers []*bufio.Writer
	scratch []byte
	err     error // first transport failure; sticky
}

func newWireOut(x *NetExchange) *wireOut {
	return &wireOut{
		x:       x,
		conns:   make([]net.Conn, x.cfg.Consumers),
		writers: make([]*bufio.Writer, x.cfg.Consumers),
	}
}

func (o *wireOut) writer(c int) (*bufio.Writer, error) {
	if o.writers[c] == nil {
		conn, err := o.x.cfg.Transport.Dial(c)
		if err != nil {
			return nil, fmt.Errorf("core: netexchange: dial consumer %d: %w", c, err)
		}
		o.conns[c] = conn
		o.writers[c] = bufio.NewWriterSize(conn, 64<<10)
	}
	return o.writers[c], nil
}

// sendPacket frames p's records (p may be nil for a bare EOS) and writes
// them to consumer c, returning the payload size. Transport failures are
// sticky: after the first one every send is a no-op, so a producer whose
// peer vanished drains its subtree cheaply instead of erroring per record.
func (o *wireOut) sendPacket(c int, p *netPacket, eos bool, errMsg string) (int, error) {
	if o.err != nil {
		return 0, o.err
	}
	w, err := o.writer(c)
	if err != nil {
		o.err = err
		return 0, err
	}
	var recs [][]byte
	if p != nil {
		recs = p.recs
	}
	if eos && errMsg != "" {
		if len(recs) > 0 {
			o.scratch = AppendWireFrame(o.scratch[:0], recs, 0)
			if _, err := w.Write(o.scratch); err != nil {
				o.err = err
				return 0, err
			}
		}
		o.scratch = AppendWireControl(o.scratch[:0], WireFlagEOS|WireFlagErr, []byte(errMsg))
	} else {
		flags := byte(0)
		if eos {
			flags = WireFlagEOS
		}
		o.scratch = AppendWireFrame(o.scratch[:0], recs, flags)
	}
	if _, err := w.Write(o.scratch); err != nil {
		o.err = err
		return 0, err
	}
	// Flush per packet: the consumer pipeline must never wait on a
	// half-filled write buffer. A blocked flush is the wire's flow
	// control — TCP's send window — so its duration is the transport
	// path's send-stall.
	start := time.Now()
	if err := w.Flush(); err != nil {
		o.err = err
		return 0, err
	}
	o.x.sendStall.Add(int64(time.Since(start)))
	size := 0
	for _, r := range recs {
		size += len(r)
	}
	return size, nil
}

// close closes every dialed connection (after a final flush).
func (o *wireOut) close() {
	for i, w := range o.writers {
		if w != nil {
			_ = w.Flush()
		}
		if o.conns[i] != nil {
			_ = o.conns[i].Close()
		}
	}
}

// startReceivers launches the consumer half over the transport: per
// consumer endpoint, an accept loop that takes exactly Producers
// connections and spawns one reader per connection. Readers decode
// frames straight into pooled wire packets and feed the same bounded
// queues the loopback path uses, so the consumer iterator is oblivious
// to which wire its packets crossed.
func (n *NetExchange) startReceivers() {
	for c := 0; c < n.cfg.Consumers; c++ {
		go n.acceptLoop(c)
	}
}

func (n *NetExchange) acceptLoop(c int) {
	var wg sync.WaitGroup
	for i := 0; i < n.cfg.Producers; i++ {
		conn, err := n.cfg.Transport.Accept(c)
		if err != nil {
			// A dead listener means the producers this consumer still
			// expects can never arrive: surface the failure as an
			// error-EOS per missing producer so the stream terminates
			// with an error, not a short result.
			err = fmt.Errorf("core: netexchange: accept for consumer %d: %w", c, err)
			n.setErr(err)
			for ; i < n.cfg.Producers; i++ {
				n.pushSynthetic(c, err)
			}
			break
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			n.readLoop(c, conn)
		}(conn)
	}
	wg.Wait()
}

// pushSynthetic delivers a locally-made error-EOS packet to consumer c.
func (n *NetExchange) pushSynthetic(c int, err error) {
	p := n.pool.get()
	p.eos = true
	p.err = err
	n.queues[c].ch <- p
}

// readLoop decodes frames from one producer connection into consumer
// c's queue until EOS or transport failure. A connection that dies
// before its EOS frame is an error — the stream is incomplete — and is
// propagated into the hub's firstErr, never folded into end-of-stream.
func (n *NetExchange) readLoop(c int, conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		p := n.pool.get()
		flags, err := readWireInto(br, &p.buf, &p.recs, 0)
		if err != nil {
			n.pool.put(p)
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("core: netexchange: producer connection dropped before EOS: %w", err)
			} else {
				err = fmt.Errorf("core: netexchange: wire read: %w", err)
			}
			n.setErr(err)
			n.pushSynthetic(c, err)
			return
		}
		eos := flags&WireFlagEOS != 0
		p.eos = eos
		if flags&WireFlagErr != 0 {
			p.err = fmt.Errorf("core: netexchange: remote producer: %s", p.buf)
			p.recs = p.recs[:0]
			n.setErr(p.err)
		}
		size := 0
		for _, r := range p.recs {
			size += len(r)
		}
		n.packets.Add(1)
		n.bytes.Add(int64(size))
		xmNetPackets.Add(1)
		xmNetBytes.Add(int64(size))
		n.cfg.Meter.WireRecv(size)
		n.queues[c].ch <- p
		if eos {
			return
		}
	}
}
