package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// world builds a minimal environment for the examples.
func world() (*core.Env, *file.Volume) {
	reg := device.NewRegistry()
	baseID := reg.NextID()
	if err := reg.Mount(device.NewMem(baseID)); err != nil {
		log.Fatal(err)
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		log.Fatal(err)
	}
	pool := buffer.NewPool(reg, 256, buffer.TwoLevel)
	return core.NewEnv(pool, file.NewVolume(pool, tempID)), file.NewVolume(pool, baseID)
}

// Example composes scan → filter → sort and collects the result: the
// basic open-next-close pipeline.
func Example() {
	env, vol := world()
	s := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "name", Type: record.TString},
	)
	f, _ := vol.Create("t", s)
	for _, row := range []struct {
		id   int64
		name string
	}{{3, "gamma"}, {1, "volcano"}, {2, "wisconsin"}} {
		f.Insert(s.MustEncode(record.Int(row.id), record.Str(row.name)))
	}

	scan, _ := core.NewFileScan(f, nil, false)
	flt, _ := core.NewFilterExpr(scan, "id <= 2", expr.Compiled)
	sorted := core.NewSort(env, flt, []record.SortSpec{{Field: 0}})
	rows, _ := core.Collect(sorted)
	for _, r := range rows {
		fmt.Println(r[0].I, string(r[1].S))
	}
	// Output:
	// 1 volcano
	// 2 wisconsin
}

// ExampleExchange splices one exchange operator into a plan: two
// producers scan disjoint halves in their own goroutines, the consumer
// counts what arrives. No operator knows parallelism is happening.
func ExampleExchange() {
	env, vol := world()
	s := record.MustSchema(record.Field{Name: "v", Type: record.TInt})
	f, _ := vol.Create("t", s)
	for i := 0; i < 100; i++ {
		f.Insert(s.MustEncode(record.Int(int64(i))))
	}

	x, _ := core.NewExchange(core.ExchangeConfig{
		Schema:    s,
		Producers: 2,
		Consumers: 1,
		NewProducer: func(g int) (core.Iterator, error) {
			scan, err := core.NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			preds := []string{"v % 2 = 0", "v % 2 = 1"}
			return core.NewFilterExpr(scan, preds[g], expr.Compiled)
		},
	})
	n, _ := core.Drain(x.Consumer(0))
	fmt.Println(n, "records through the exchange")
	_ = env
	// Output: 100 records through the exchange
}

// ExampleHashMatch runs a natural join with the hash-based one-to-one
// match algorithm.
func ExampleHashMatch() {
	env, vol := world()
	s := record.MustSchema(
		record.Field{Name: "k", Type: record.TInt},
		record.Field{Name: "v", Type: record.TInt},
	)
	l, _ := vol.Create("l", s)
	r, _ := vol.Create("r", s)
	l.Insert(s.MustEncode(record.Int(1), record.Int(10)))
	l.Insert(s.MustEncode(record.Int(2), record.Int(20)))
	r.Insert(s.MustEncode(record.Int(2), record.Int(200)))

	ls, _ := core.NewFileScan(l, nil, false)
	rs, _ := core.NewFileScan(r, nil, false)
	join, _ := core.NewHashMatch(env, core.MatchJoin, ls, rs, record.Key{0}, record.Key{0})
	rows, _ := core.Collect(join)
	for _, row := range rows {
		fmt.Println(row[0].I, row[1].I, row[3].I)
	}
	// Output: 2 20 200
}

// ExampleHashDivision answers "which students took all required courses"
// with Volcano's hash-division operator.
func ExampleHashDivision() {
	env, vol := world()
	enrolled := record.MustSchema(
		record.Field{Name: "student", Type: record.TInt},
		record.Field{Name: "course", Type: record.TInt},
	)
	required := record.MustSchema(record.Field{Name: "course", Type: record.TInt})
	e, _ := vol.Create("enrolled", enrolled)
	for _, p := range [][2]int64{{1, 7}, {1, 8}, {2, 7}} {
		e.Insert(enrolled.MustEncode(record.Int(p[0]), record.Int(p[1])))
	}
	q, _ := vol.Create("required", required)
	q.Insert(required.MustEncode(record.Int(7)))
	q.Insert(required.MustEncode(record.Int(8)))

	es, _ := core.NewFileScan(e, nil, false)
	qs, _ := core.NewFileScan(q, nil, false)
	div, _ := core.NewHashDivision(env, es, qs, record.Key{0}, record.Key{1}, record.Key{0})
	rows, _ := core.Collect(div)
	for _, row := range rows {
		fmt.Println("student", row[0].I)
	}
	// Output: student 1
}
