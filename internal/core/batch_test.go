package core

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
)

// Metamorphic property of the batch protocol: the batch size is an
// execution parameter, never a semantic one. Every operator must produce
// the same result set at batch size 1, 2, 7 and the default window as it
// does record-at-a-time, and size 1 must match the row-at-a-time shim
// call for call. These tests drive the operators directly (the plan-level
// differential harness covers whole trees).

// metaBatchSizes: the degenerate size, the smallest non-trivial size, a
// prime that forces partial final batches, and the default window.
var metaBatchSizes = []int{1, 2, 7, DefaultBatchSize}

// renderRows canonicalises decoded rows for order-insensitive comparison.
func renderRows(rows [][]record.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "\x1f")
	}
	sort.Strings(out)
	return out
}

// enableAll switches it (and nothing else — makers enable their inputs
// themselves when they want deeper coverage) to batch-consume mode.
func enableAll(it Iterator, size int) {
	if bc, ok := it.(BatchConfigurable); ok && size > 0 {
		bc.EnableBatch(size)
	}
}

func TestBatchSizeMetamorphic(t *testing.T) {
	env := newTestEnv(t, 1024)
	ints := env.makeInts(t, "ints", shuffled(500, 41)...)
	emp := env.makeEmp(t, "emp", 100, 4)
	left := env.makePairs(t, "left", func() [][2]int64 {
		var ps [][2]int64
		for i := int64(0); i < 60; i++ {
			ps = append(ps, [2]int64{i % 7, i})
		}
		return ps
	}())
	right := env.makePairs(t, "right", func() [][2]int64 {
		var ps [][2]int64
		for i := int64(0); i < 40; i++ {
			ps = append(ps, [2]int64{i % 5, 100 + i})
		}
		return ps
	}())

	// Each maker builds a fresh operator (iterators are single-use) wired
	// for the given batch size; size 0 means classic row mode.
	cases := []struct {
		name string
		mk   func(size int) (Iterator, error)
	}{
		{"filescan", func(int) (Iterator, error) {
			return NewFileScan(ints, nil, false)
		}},
		{"filter", func(size int) (Iterator, error) {
			f, err := NewFilterExpr(scanOf(t, ints), "v % 3 = 1", expr.Compiled)
			if err == nil {
				enableAll(f, size)
			}
			return f, err
		}},
		{"project", func(size int) (Iterator, error) {
			p, err := NewProjectExprs(env.Env, scanOf(t, ints), []string{"v * 2 + 1"}, []string{"x"}, expr.Interpreted)
			if err == nil {
				enableAll(p, size)
			}
			return p, err
		}},
		{"sort", func(size int) (Iterator, error) {
			s := NewSort(env.Env, scanOf(t, ints), []record.SortSpec{{Field: 0, Desc: true}})
			enableAll(s, size)
			return s, nil
		}},
		{"hash-aggregate", func(size int) (Iterator, error) {
			a, err := NewHashAggregate(env.Env, scanOf(t, emp), record.Key{1}, []AggSpec{
				{Func: AggCount, Name: "n"}, {Func: AggSum, Field: 2, Name: "s"}, {Func: AggMax, Field: 0, Name: "m"},
			})
			if err == nil {
				enableAll(a, size)
			}
			return a, err
		}},
		{"sort-aggregate", func(size int) (Iterator, error) {
			a, err := NewSortAggregate(env.Env, scanOf(t, emp), record.Key{1}, []AggSpec{
				{Func: AggCount, Name: "n"}, {Func: AggAvg, Field: 2, Name: "a"}, {Func: AggMin, Field: 0, Name: "m"},
			})
			if err == nil {
				enableAll(a, size)
			}
			return a, err
		}},
		{"hash-match", func(size int) (Iterator, error) {
			m, err := NewHashMatch(env.Env, MatchJoin, scanOf(t, left), scanOf(t, right), record.Key{0}, record.Key{0})
			if err == nil {
				enableAll(m, size)
			}
			return m, err
		}},
		{"merge-match", func(size int) (Iterator, error) {
			m, err := NewMergeMatch(env.Env, MatchJoin, scanOf(t, left), scanOf(t, right), record.Key{0}, record.Key{0})
			if err == nil {
				enableAll(m, size)
			}
			return m, err
		}},
		{"hash-division", func(size int) (Iterator, error) {
			// No native NextBatch: proves the row→batch shim conforms.
			enr := env.makePairs(t, "enr"+string(rune('a'+size%32)), [][2]int64{
				{1, 1}, {1, 2}, {2, 1}, {3, 1}, {3, 2}, {4, 2},
			})
			req := env.makeInts(t, "req"+string(rune('a'+size%32)), 1, 2)
			return NewHashDivision(env.Env, scanOf(t, enr), scanOf(t, req), record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"choose-plan", func(size int) (Iterator, error) {
			alts := make([]Iterator, 2)
			for i := range alts {
				f, err := NewFilterExpr(scanOf(t, ints), "v < 100", expr.Interpreted)
				if err != nil {
					return nil, err
				}
				enableAll(f, size)
				alts[i] = f
			}
			return NewChoosePlan(alts, func() (int, error) { return 1, nil })
		}},
		{"exchange", func(size int) (Iterator, error) {
			x, err := NewExchange(ExchangeConfig{
				Schema:      intSchema,
				Producers:   3,
				Consumers:   1,
				PacketSize:  5,
				FlowControl: true,
				Slack:       2,
				BatchSize:   size,
				NewProducer: func(g int) (Iterator, error) { return NewFileScan(ints, nil, false) },
			})
			if err != nil {
				return nil, err
			}
			return x.Consumer(0), nil
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := tc.mk(0)
			if err != nil {
				t.Fatal(err)
			}
			rowRows, err := Collect(ref)
			if err != nil {
				t.Fatalf("row mode: %v", err)
			}
			if len(rowRows) == 0 {
				t.Fatal("row mode produced no rows — case is vacuous")
			}
			want := renderRows(rowRows)
			for _, size := range metaBatchSizes {
				it, err := tc.mk(size)
				if err != nil {
					t.Fatal(err)
				}
				batchRows, err := CollectBatch(it, size)
				if err != nil {
					t.Fatalf("batch size %d: %v", size, err)
				}
				got := renderRows(batchRows)
				if len(got) != len(want) {
					t.Fatalf("batch size %d: %d rows, row mode gave %d", size, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch size %d: row %d differs:\n got %q\nwant %q", size, i, got[i], want[i])
					}
				}
			}
			env.checkNoPinLeak(t)
		})
	}
}

// TestBatchSizeOneMatchesRowShim drives a native NextBatch implementation
// at size 1 against the row-at-a-time shim over an identical operator:
// the sequences must agree refill for refill — same record payload, same
// order, same end of stream.
func TestBatchSizeOneMatchesRowShim(t *testing.T) {
	env := newTestEnv(t, 512)
	ints := env.makeInts(t, "ints", shuffled(300, 42)...)

	mk := func() BatchIterator {
		s := NewSort(env.Env, scanOf(t, ints), []record.SortSpec{{Field: 0}})
		return s // Sort implements NextBatch natively
	}
	native := mk()
	shim := &rowBatcher{Iterator: mk()}
	if err := native.Open(); err != nil {
		t.Fatal(err)
	}
	if err := shim.Open(); err != nil {
		t.Fatal(err)
	}
	nb, sb := NewBatch(1), NewBatch(1)
	for step := 0; ; step++ {
		if err := native.NextBatch(nb); err != nil {
			t.Fatalf("step %d: native: %v", step, err)
		}
		if err := shim.NextBatch(sb); err != nil {
			t.Fatalf("step %d: shim: %v", step, err)
		}
		if nb.Len() != sb.Len() {
			t.Fatalf("step %d: native returned %d records, shim %d", step, nb.Len(), sb.Len())
		}
		if nb.Len() == 0 {
			break
		}
		for i := range nb.Recs() {
			if string(nb.Recs()[i].Data) != string(sb.Recs()[i].Data) {
				t.Fatalf("step %d record %d: native %x, shim %x", step, i, nb.Recs()[i].Data, sb.Recs()[i].Data)
			}
		}
		nb.Release()
		sb.Release()
	}
	if err := native.Close(); err != nil {
		t.Fatal(err)
	}
	if err := shim.Close(); err != nil {
		t.Fatal(err)
	}
	env.checkNoPinLeak(t)
}

// TestExchangeConsumerNextBatchZeroAlloc is the batch-mode counterpart of
// TestExchangeConsumerNextZeroAlloc: with a zero-alloc source, batch-mode
// producers drawing from the hub's batch free list, and packet lending on
// the consumer side, the steady-state NextBatch cycle must not allocate
// at all — per *batch*, not just per record.
func TestExchangeConsumerNextBatchZeroAlloc(t *testing.T) {
	done := make(chan struct{})
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   1,
		Consumers:   1,
		PacketSize:  83,
		FlowControl: true,
		Slack:       4,
		BatchSize:   83,
		Done:        done,
		NewProducer: func(g int) (Iterator, error) { return &staticSource{rec: staticIntRec()}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Consumer(0)
	bi, ok := c.(BatchIterator)
	if !ok {
		t.Fatal("exchange consumer does not implement NextBatch natively")
	}
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(83)
	pull := func() {
		if err := bi.NextBatch(b); err != nil {
			t.Fatalf("nextbatch: %v", err)
		}
		if b.Len() == 0 {
			t.Fatal("unexpected end of stream")
		}
		b.Release() // static records carry no pins; Release must stay alloc-free
	}
	// Warm the packet pool and reach steady state.
	for i := 0; i < 500; i++ {
		pull()
	}
	const perRun = 100
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < perRun; i++ {
			pull()
		}
	})
	if perBatch := avg / perRun; perBatch > 0.01 {
		t.Fatalf("consumer NextBatch allocates %.4f objects per batch (%.1f per run), want 0 amortised", perBatch, avg)
	}
	close(done)
	for {
		if err := bi.NextBatch(b); err != nil || b.Len() == 0 {
			break
		}
		b.Release()
	}
	if err := c.Close(); err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("close: %v", err)
	}
}

// TestBatchPoolRecycling proves the free list carries the steady state:
// hammered from several goroutines, a warmed pool serves gets from
// recycled batches, and the counters pair exactly with the traffic.
func TestBatchPoolRecycling(t *testing.T) {
	pool := NewBatchPool(8, 16)
	const (
		workers = 4
		rounds  = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := staticIntRec()
			for i := 0; i < rounds; i++ {
				b := pool.Get()
				for !b.Full() {
					b.Append(rec)
				}
				pool.Put(b)
			}
		}()
	}
	wg.Wait()
	hits, misses, discards := pool.Stats()
	if got := hits + misses; got != workers*rounds {
		t.Fatalf("gets recorded %d, want %d", got, workers*rounds)
	}
	if hits == 0 {
		t.Fatal("pool recorded no hits: batches are not being recycled")
	}
	// With 4 workers over an 8-slot list, misses are the cold start plus
	// rare contention windows, never the steady state.
	if misses*4 > hits {
		t.Fatalf("misses %d vs hits %d: free list is not retaining batches", misses, hits)
	}
	if discards > misses {
		t.Fatalf("discards %d exceed misses %d: puts outnumber takes", discards, misses)
	}
}

// TestBatchExchangeRecycleShutdownStress mirrors
// TestExchangeRecycleShutdownStress for the batch protocol: batch-mode
// producers draw pull batches from the hub's free list and route whole
// refills while one of two batch-draining consumers closes early
// mid-stream. Under -race this proves the batch pool's exclusive-owner
// rule and the consumer-side packet lending survive concurrent teardown;
// afterwards every batch the producers took is accounted for and no pin
// leaks.
func TestBatchExchangeRecycleShutdownStress(t *testing.T) {
	env := newTestEnv(t, 2048)
	const n = 2000
	f := env.makeInts(t, "t", shuffled(n, 43)...)
	iters := 30
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		x, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   4,
			Consumers:   2,
			PacketSize:  3,
			FlowControl: true,
			Slack:       1,
			BatchSize:   5,
			NewProducer: func(g int) (Iterator, error) { return NewFileScan(f, nil, false) },
		})
		if err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		var wg sync.WaitGroup
		for ci := 0; ci < 2; ci++ {
			wg.Add(1)
			go func(ci, iter int) {
				defer wg.Done()
				c := x.Consumer(ci)
				if err := c.Open(); err != nil {
					errs <- err
					return
				}
				src := AsBatch(c)
				b := NewBatch(5)
				// Consumer 0 walks away mid-stream at a varying point;
				// consumer 1 drains everything routed to it.
				limit := -1
				if ci == 0 {
					limit = 5 * (iter%7 + 1)
				}
				got := 0
				for limit < 0 || got < limit {
					if err := src.NextBatch(b); err != nil {
						errs <- err
						return
					}
					if b.Len() == 0 {
						break
					}
					got += b.Len()
					b.Release()
				}
				b.Release()
				errs <- c.Close()
			}(ci, iter)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("iter %d: shutdown hung", iter)
		}
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
		st := x.Stats()
		// Every producer takes exactly one pull batch from the free list.
		if got := st.BatchPoolHits + st.BatchPoolMisses; got != 4 {
			t.Fatalf("iter %d: batch pool gets = %d, want 4 (one per producer)", iter, got)
		}
		env.checkNoPinLeak(t)
	}
}
