package core

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/file"
)

// RunGen selects the sort's run-generation algorithm.
type RunGen uint8

const (
	// RunGenQuicksort buffers RunSize records, sorts them in memory and
	// writes each batch as one run.
	RunGenQuicksort RunGen = iota
	// RunGenReplacementSelection uses a selection heap of RunSize
	// records: each record still no smaller than the last one written
	// joins the current run, so runs average twice the memory size on
	// random input — fewer runs, shallower merges (the technique of the
	// companion parallel-sorting work, TR 89-008).
	RunGenReplacementSelection
)

// String names the run-generation algorithm.
func (g RunGen) String() string {
	if g == RunGenReplacementSelection {
		return "replacement-selection"
	}
	return "quicksort"
}

// Sort is Volcano's external sort iterator: on open it drains its input
// into sorted runs on the temp (virtual) device, cascade-merges runs until
// at most fan-in remain, and then serves the final merge lazily through
// next.
type Sort struct {
	env   *Env
	input Iterator
	cmp   expr.KeyCompare
	// RunSize is the number of records per in-memory run (default 4096).
	RunSize int
	// FanIn is the merge fan-in (default 8).
	FanIn int
	// RunGen selects quicksort (default) or replacement selection.
	RunGen RunGen

	runsGenerated int
	runs          []*file.File
	merge         *runMerge
	open          bool
	openFailed    bool // Open ran and failed: next Close is a no-op
	batch         int
	src           recSource
}

// EnableBatch implements BatchConfigurable: run generation drains the
// input through batch refills of the given size.
func (s *Sort) EnableBatch(size int) { s.batch = size }

// RunsGenerated reports how many initial runs the last Open produced.
func (s *Sort) RunsGenerated() int { return s.runsGenerated }

// NewSort sorts input by the given terms.
func NewSort(env *Env, input Iterator, spec []record.SortSpec) *Sort {
	return &Sort{
		env:     env,
		input:   input,
		cmp:     expr.NewKeyCompare(input.Schema(), spec),
		RunSize: 4096,
		FanIn:   8,
	}
}

// NewSortFunc sorts input by an arbitrary comparison support function.
func NewSortFunc(env *Env, input Iterator, cmp expr.KeyCompare) *Sort {
	return &Sort{env: env, input: input, cmp: cmp, RunSize: 4096, FanIn: 8}
}

// Schema implements Iterator.
func (s *Sort) Schema() *record.Schema { return s.input.Schema() }

// Open implements Iterator. This is where all the work happens: sort is a
// stop-and-go operator.
func (s *Sort) Open() error {
	if s.open {
		return errState("sort", "already open")
	}
	err := s.openImpl()
	s.openFailed = err != nil
	return err
}

func (s *Sort) openImpl() error {
	if s.RunSize <= 0 {
		s.RunSize = 4096
	}
	if s.FanIn < 2 {
		s.FanIn = 8
	}
	if err := s.input.Open(); err != nil {
		return err
	}
	s.src = inputSource(s.input, s.batch)
	s.runsGenerated = 0
	var runErr error
	if s.RunGen == RunGenReplacementSelection {
		runErr = s.buildRunsReplacement()
	} else {
		runErr = s.buildRuns()
	}
	s.src.release()
	s.src = nil
	if runErr != nil {
		s.cleanup()
		_ = s.input.Close()
		return runErr
	}
	s.runsGenerated = len(s.runs)
	if err := s.input.Close(); err != nil {
		s.cleanup()
		return err
	}
	// Cascaded merge until at most FanIn runs remain.
	for len(s.runs) > s.FanIn {
		if err := s.mergeStep(); err != nil {
			s.cleanup()
			return err
		}
	}
	m, err := newRunMerge(s.env, s.runs, s.Schema(), s.cmp)
	if err != nil {
		s.cleanup()
		return err
	}
	s.merge = m
	s.open = true
	return nil
}

// buildRuns drains the input into sorted run files.
func (s *Sort) buildRuns() error {
	buf := make([][]byte, 0, s.RunSize)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return s.cmp(buf[i], buf[j]) < 0 })
		run, err := s.env.CreateTemp("sortrun", s.Schema())
		if err != nil {
			return err
		}
		for _, data := range buf {
			if _, err := run.Insert(data); err != nil {
				return err
			}
		}
		s.runs = append(s.runs, run)
		buf = buf[:0]
		return nil
	}
	for {
		r, ok, err := s.src.next()
		if err != nil {
			return err
		}
		if !ok {
			return flush()
		}
		// Copy the record bytes and release the input pin immediately: the
		// run file is the sort's working storage.
		buf = append(buf, append([]byte(nil), r.Data...))
		r.Unfix()
		if len(buf) == s.RunSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// buildRunsReplacement drains the input through a selection heap: the
// smallest record whose key is still >= the last one written joins the
// current run; smaller records are earmarked for the next run.
func (s *Sort) buildRunsReplacement() error {
	type entry struct {
		data []byte
		run  int
		seq  int64 // arrival order, for stability among equal keys
	}
	less := func(a, b entry) bool {
		if a.run != b.run {
			return a.run < b.run
		}
		if c := s.cmp(a.data, b.data); c != 0 {
			return c < 0
		}
		return a.seq < b.seq
	}
	var h []entry
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}

	var seq int64
	readNext := func() ([]byte, bool, error) {
		r, ok, err := s.src.next()
		if err != nil || !ok {
			return nil, ok, err
		}
		data := append([]byte(nil), r.Data...)
		r.Unfix()
		return data, true, nil
	}

	// Prime the heap.
	for len(h) < s.RunSize {
		data, ok, err := readNext()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h = append(h, entry{data: data, run: 0, seq: seq})
		seq++
		up(len(h) - 1)
	}
	if len(h) == 0 {
		return nil
	}

	curRun := 0
	var out *file.File
	var lastKey []byte
	inputDone := false
	for len(h) > 0 {
		top := h[0]
		if top.run != curRun {
			// Current run exhausted: start the next one.
			curRun = top.run
			out = nil
			lastKey = nil
		}
		if out == nil {
			f, err := s.env.CreateTemp("sortrun", s.Schema())
			if err != nil {
				return err
			}
			s.runs = append(s.runs, f)
			out = f
		}
		if _, err := out.Insert(top.data); err != nil {
			return err
		}
		lastKey = top.data
		// Refill the vacated slot.
		if !inputDone {
			data, ok, err := readNext()
			if err != nil {
				return err
			}
			if !ok {
				inputDone = true
			} else {
				run := curRun
				if s.cmp(data, lastKey) < 0 {
					run = curRun + 1
				}
				h[0] = entry{data: data, run: run, seq: seq}
				seq++
				down(0)
				continue
			}
		}
		// No replacement: shrink the heap.
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		down(0)
	}
	return nil
}

// mergeStep merges the first FanIn runs into one new run.
func (s *Sort) mergeStep() error {
	group := s.runs[:s.FanIn]
	m, err := newRunMerge(s.env, group, s.Schema(), s.cmp)
	if err != nil {
		return err
	}
	out, err := s.env.CreateTemp("sortrun", s.Schema())
	if err != nil {
		m.close()
		return err
	}
	for {
		r, ok, err := m.next()
		if err != nil {
			m.close()
			return err
		}
		if !ok {
			break
		}
		_, err = out.Insert(r.Data)
		r.Unfix()
		if err != nil {
			m.close()
			return err
		}
	}
	m.close()
	for _, run := range group {
		if err := s.env.DropTemp(run); err != nil {
			return err
		}
	}
	// The merged run replaces its inputs at the front so run order keeps
	// reflecting arrival order (stability tie-break in the heap).
	s.runs = append([]*file.File{out}, s.runs[s.FanIn:]...)
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (Rec, bool, error) {
	if !s.open {
		return Rec{}, false, errState("sort", "next before open")
	}
	return s.merge.next()
}

// NextBatch implements BatchIterator natively: one call serves a whole
// run of records from the final merge.
func (s *Sort) NextBatch(b *Batch) error {
	if !s.open {
		return errState("sort", "next before open")
	}
	b.Reset()
	for !b.Full() {
		r, ok, err := s.merge.next()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			break
		}
		b.Append(r)
	}
	return nil
}

// Close implements Iterator.
func (s *Sort) Close() error {
	if s.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		s.openFailed = false
		return nil
	}
	if !s.open {
		return errState("sort", "close before open")
	}
	s.open = false
	s.merge.close()
	s.merge = nil
	return s.cleanup()
}

func (s *Sort) cleanup() error {
	var first error
	for _, run := range s.runs {
		if err := s.env.DropTemp(run); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	return first
}

// runMerge is a k-way heap merge over run-file scans.
type runMerge struct {
	scans []*file.Scan
	h     mergeHeap
}

type mergeEntry struct {
	rec Rec
	src int
}

type mergeHeap struct {
	entries []mergeEntry
	cmp     expr.KeyCompare
}

func (h *mergeHeap) Len() int { return len(h.entries) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.entries[i].rec.Data, h.entries[j].rec.Data)
	if c != 0 {
		return c < 0
	}
	// Stability across runs: earlier run wins ties.
	return h.entries[i].src < h.entries[j].src
}
func (h *mergeHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap) Push(x any)    { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

func newRunMerge(env *Env, runs []*file.File, schema *record.Schema, cmp expr.KeyCompare) (*runMerge, error) {
	m := &runMerge{h: mergeHeap{cmp: cmp}}
	for i, run := range runs {
		sc := run.NewScan(false)
		m.scans = append(m.scans, sc)
		r, ok, err := sc.Next()
		if err != nil {
			m.close()
			return nil, err
		}
		if ok {
			m.h.entries = append(m.h.entries, mergeEntry{rec: r.WithoutDirty(), src: i})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *runMerge) next() (Rec, bool, error) {
	if m.h.Len() == 0 {
		return Rec{}, false, nil
	}
	e := m.h.entries[0]
	r, ok, err := m.scans[e.src].Next()
	if err != nil {
		return Rec{}, false, err
	}
	if ok {
		m.h.entries[0] = mergeEntry{rec: r.WithoutDirty(), src: e.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return e.rec, true, nil
}

func (m *runMerge) close() {
	for _, e := range m.h.entries {
		e.rec.Unfix()
	}
	m.h.entries = nil
	for _, sc := range m.scans {
		sc.Close()
	}
	m.scans = nil
}

// Merge is the single-level merge iterator derived from the sort module
// (paper, §4.4): it merges several already-sorted inputs. Its natural use
// is a merge network above an exchange operator that keeps producer
// streams separate.
type Merge struct {
	inputs []Iterator
	cmp    expr.KeyCompare
	h      mergeHeap
	open   bool
	openFailed bool // Open ran and failed: next Close is a no-op
}

// NewMerge merges the sorted inputs by the comparison function. All inputs
// must share a schema.
func NewMerge(inputs []Iterator, cmp expr.KeyCompare) (*Merge, error) {
	if len(inputs) == 0 {
		return nil, errState("merge", "no inputs")
	}
	s := inputs[0].Schema()
	for _, in := range inputs[1:] {
		if !in.Schema().Equal(s) {
			return nil, errState("merge", fmt.Sprintf("schema mismatch: %s vs %s", s, in.Schema()))
		}
	}
	return &Merge{inputs: inputs, cmp: cmp}, nil
}

// NewMergeSpec merges sorted inputs by sort terms.
func NewMergeSpec(inputs []Iterator, spec []record.SortSpec) (*Merge, error) {
	if len(inputs) == 0 {
		return nil, errState("merge", "no inputs")
	}
	return NewMerge(inputs, expr.NewKeyCompare(inputs[0].Schema(), spec))
}

// Schema implements Iterator.
func (m *Merge) Schema() *record.Schema { return m.inputs[0].Schema() }

// Open implements Iterator.
func (m *Merge) Open() error {
	if m.open {
		return errState("merge", "already open")
	}
	err := m.openImpl()
	m.openFailed = err != nil
	return err
}

func (m *Merge) openImpl() error {
	m.h = mergeHeap{cmp: m.cmp}
	// unwind releases everything a partial open accumulated: pulled heap
	// entries stay pinned and inputs 0..opened-1 stay open otherwise.
	unwind := func(opened int) {
		for _, e := range m.h.entries {
			e.rec.Unfix()
		}
		m.h.entries = nil
		for j := 0; j < opened; j++ {
			_ = m.inputs[j].Close()
		}
	}
	for i, in := range m.inputs {
		if err := in.Open(); err != nil {
			unwind(i)
			return err
		}
		r, ok, err := in.Next()
		if err != nil {
			unwind(i + 1)
			return err
		}
		if ok {
			m.h.entries = append(m.h.entries, mergeEntry{rec: r, src: i})
		}
	}
	heap.Init(&m.h)
	m.open = true
	return nil
}

// Next implements Iterator.
func (m *Merge) Next() (Rec, bool, error) {
	if !m.open {
		return Rec{}, false, errState("merge", "next before open")
	}
	if m.h.Len() == 0 {
		return Rec{}, false, nil
	}
	e := m.h.entries[0]
	r, ok, err := m.inputs[e.src].Next()
	if err != nil {
		return Rec{}, false, err
	}
	if ok {
		m.h.entries[0] = mergeEntry{rec: r, src: e.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return e.rec, true, nil
}

// Close implements Iterator.
func (m *Merge) Close() error {
	if m.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		m.openFailed = false
		return nil
	}
	if !m.open {
		return errState("merge", "close before open")
	}
	m.open = false
	for _, e := range m.h.entries {
		e.rec.Unfix()
	}
	m.h.entries = nil
	var first error
	for _, in := range m.inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
