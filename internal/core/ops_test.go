package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/btree"
)

func TestFileScanBasic(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeEmp(t, "emp", 100, 4)
	rows, err := Collect(scanOf(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[7][0].I != 7 || rows[7][3].String() != `"emp-7"` {
		t.Fatalf("row 7 = %v", rows[7])
	}
	env.checkNoPinLeak(t)
}

func TestFileScanProtocolErrors(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeEmp(t, "emp", 1, 1)
	s := scanOf(t, f)
	if _, _, err := s.Next(); err == nil {
		t.Fatal("next before open succeeded")
	}
	if err := s.Close(); err == nil {
		t.Fatal("close before open succeeded")
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err == nil {
		t.Fatal("double open succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterBothModes(t *testing.T) {
	for _, mode := range []expr.Mode{expr.Compiled, expr.Interpreted} {
		env := newTestEnv(t, 64)
		f := env.makeEmp(t, "emp", 100, 4)
		fl, err := NewFilterExpr(scanOf(t, f), "dept = 2 AND salary < 1050", mode)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(fl)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r[1].I != 2 || r[2].F >= 1050 {
				t.Fatalf("mode %v: row %v fails predicate", mode, r)
			}
		}
		// ids 2,6,...,46: dept==2 and salary<1050 → i<50, i%4==2: 12 rows.
		if len(rows) != 12 {
			t.Fatalf("mode %v: got %d rows, want 12", mode, len(rows))
		}
		env.checkNoPinLeak(t)
	}
}

func TestProject(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeEmp(t, "emp", 10, 2)
	p, err := NewProjectExprs(env.Env, scanOf(t, f),
		[]string{"id * 10", "name", "salary > 1005.0"},
		[]string{"id10", "name", "high"}, expr.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[3][0].I != 30 || rows[3][2].B {
		t.Fatalf("row 3 = %v", rows[3])
	}
	if rows[9][2].B != true {
		t.Fatalf("row 9 = %v", rows[9])
	}
	env.checkNoPinLeak(t)
	// The temp file for materialised outputs is gone after Close.
	if n := len(env.Temp.List()); n != 0 {
		t.Fatalf("%d temp files left: %v", n, env.Temp.List())
	}
}

func TestIndexScan(t *testing.T) {
	env := newTestEnv(t, 128)
	f := env.makeEmp(t, "emp", 200, 4)
	tree, err := btree.Create(env.Pool, env.base.Device())
	if err != nil {
		t.Fatal(err)
	}
	// Index on id, inserted in storage order.
	sc := f.NewScan(false)
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		key, err := btree.EncodeRecordKey(empSchema, r.Data, record.Key{0})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(key, r.RID); err != nil {
			t.Fatal(err)
		}
		r.Unfix()
	}
	sc.Close()

	lo := btree.EncodeKey(record.Int(50))
	hi := btree.EncodeKey(record.Int(59))
	is, err := NewIndexScan(tree, f, nil, lo, hi, true, true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(is)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(50+i) {
			t.Fatalf("row %d = %v (index order broken)", i, r)
		}
	}
	env.checkNoPinLeak(t)
}

func TestSortSmallAndSpilled(t *testing.T) {
	for _, runSize := range []int{8, 4096} {
		env := newTestEnv(t, 256)
		vals := shuffled(500, 1)
		f := env.makeInts(t, "t", vals...)
		s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
		s.RunSize = runSize
		s.FanIn = 3
		rows, err := Collect(s)
		if err != nil {
			t.Fatal(err)
		}
		got := intsOf(rows, 0)
		if !equalInts(got, sortedInts(vals)) {
			t.Fatalf("runSize %d: not sorted", runSize)
		}
		env.checkNoPinLeak(t)
		if n := len(env.Temp.List()); n != 0 {
			t.Fatalf("runSize %d: %d temp files left", runSize, n)
		}
	}
}

func TestSortDescendingAndMultiKey(t *testing.T) {
	env := newTestEnv(t, 128)
	f := env.makePairs(t, "t", [][2]int64{{1, 5}, {2, 1}, {1, 9}, {2, 7}, {1, 1}})
	s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}, {Field: 1, Desc: true}})
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 9}, {1, 5}, {1, 1}, {2, 7}, {2, 1}}
	for i, w := range want {
		if rows[i][0].I != w[0] || rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
	env.checkNoPinLeak(t)
}

func TestSortEmptyInput(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeInts(t, "t")
	s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
	rows, err := Collect(s)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	env.checkNoPinLeak(t)
}

func TestSortStability(t *testing.T) {
	// Records with equal keys keep their arrival order (SliceStable +
	// run-index tie-break).
	env := newTestEnv(t, 128)
	pairs := make([][2]int64, 100)
	for i := range pairs {
		pairs[i] = [2]int64{int64(i % 3), int64(i)}
	}
	f := env.makePairs(t, "t", pairs)
	s := NewSort(env.Env, scanOf(t, f), []record.SortSpec{{Field: 0}})
	s.RunSize = 10 // force many runs
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	var lastKey, lastSeq int64 = -1, -1
	for _, r := range rows {
		if r[0].I != lastKey {
			lastKey, lastSeq = r[0].I, -1
		}
		if r[1].I <= lastSeq {
			t.Fatalf("stability broken at key %d: %d after %d", r[0].I, r[1].I, lastSeq)
		}
		lastSeq = r[1].I
	}
	env.checkNoPinLeak(t)
}

func TestMergeIterator(t *testing.T) {
	env := newTestEnv(t, 128)
	a := env.makeInts(t, "a", 1, 4, 7, 10)
	b := env.makeInts(t, "b", 2, 5, 8)
	c := env.makeInts(t, "c", 3, 6, 9)
	m, err := NewMergeSpec([]Iterator{scanOf(t, a), scanOf(t, b), scanOf(t, c)},
		[]record.SortSpec{{Field: 0}})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	got := intsOf(rows, 0)
	if !equalInts(got, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
		t.Fatalf("merge = %v", got)
	}
	env.checkNoPinLeak(t)
}

func TestMergeSchemaMismatch(t *testing.T) {
	env := newTestEnv(t, 64)
	a := env.makeInts(t, "a", 1)
	b := env.makeEmp(t, "b", 1, 1)
	_, err := NewMergeSpec([]Iterator{scanOf(t, a), scanOf(t, b)}, []record.SortSpec{{Field: 0}})
	if err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := NewMergeSpec(nil, nil); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestNestedLoopsJoinAndCartesian(t *testing.T) {
	env := newTestEnv(t, 128)
	l := env.makePairs(t, "l", [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	r := env.makePairs(t, "r", [][2]int64{{2, 200}, {3, 300}, {4, 400}})
	// Equi-join on first column via generic predicate.
	nl, err := NewNestedLoops(env.Env, scanOf(t, l), scanOf(t, r), "a = r_a", expr.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("join rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if row[0].I != row[2].I {
			t.Fatalf("bad join row %v", row)
		}
	}
	env.checkNoPinLeak(t)

	// Cartesian product.
	cp, err := NewCartesianProduct(env.Env, scanOf(t, l), scanOf(t, r))
	if err != nil {
		t.Fatal(err)
	}
	rows, err = Collect(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("cartesian rows = %d, want 9", len(rows))
	}
	env.checkNoPinLeak(t)
	if n := len(env.Temp.List()); n != 0 {
		t.Fatalf("%d temp files left", n)
	}
}

func TestNestedLoopsThetaJoin(t *testing.T) {
	env := newTestEnv(t, 128)
	l := env.makeInts(t, "l", 1, 5, 9)
	r := env.makeInts(t, "r", 3, 7)
	nl, err := NewNestedLoops(env.Env, scanOf(t, l), scanOf(t, r), "$0 < $1", expr.Interpreted)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(nl)
	if err != nil {
		t.Fatal(err)
	}
	// (1,3) (1,7) (5,7): 3 rows.
	if len(rows) != 3 {
		t.Fatalf("theta join rows = %d, want 3", len(rows))
	}
	env.checkNoPinLeak(t)
}

func TestCollectAndDrain(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeInts(t, "t", 1, 2, 3)
	n, err := Drain(scanOf(t, f))
	if err != nil || n != 3 {
		t.Fatalf("Drain = %d, %v", n, err)
	}
	env.checkNoPinLeak(t)
}

func TestEnvTempNamesUnique(t *testing.T) {
	env := newTestEnv(t, 64)
	names := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := env.TempName("x")
		if names[n] {
			t.Fatalf("duplicate temp name %q", n)
		}
		names[n] = true
	}
}

func TestResultWriterLifecycle(t *testing.T) {
	env := newTestEnv(t, 64)
	s := record.MustSchema(record.Field{Name: "x", Type: record.TInt})
	w, err := env.NewResultWriter("w", s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Write([]record.Value{record.Int(42)})
	if err != nil {
		t.Fatal(err)
	}
	if s.GetInt(r.Data, 0) != 42 {
		t.Fatal("wrong value")
	}
	// Dispose with a pinned record must fail (virtual files cannot close
	// before their records are unpinned).
	if err := w.Dispose(); err == nil {
		t.Fatal("dispose with pinned record succeeded")
	}
	r.Unfix()
	// w.f is nil now; create a new writer to verify clean dispose.
	w2, _ := env.NewResultWriter("w", s)
	r2, _ := w2.Write([]record.Value{record.Int(1)})
	r2.Unfix()
	if err := w2.Dispose(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Dispose(); err != nil {
		t.Fatal("double dispose should be a no-op")
	}
	env.checkNoPinLeak(t)
}

func TestQueryPipelineComposition(t *testing.T) {
	// scan -> filter -> project -> sort: exercises anonymous inputs.
	env := newTestEnv(t, 256)
	f := env.makeEmp(t, "emp", 300, 5)
	fl, err := NewFilterExpr(scanOf(t, f), "dept = 3", expr.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProjectExprs(env.Env, fl, []string{"id", "salary * 2"}, []string{"id", "sal2"}, expr.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	so := NewSort(env.Env, pr, []record.SortSpec{{Field: 1, Desc: true}})
	rows, err := Collect(so)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 {
		t.Fatalf("rows = %d, want 60", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].F > rows[i-1][1].F {
			t.Fatal("descending order broken")
		}
	}
	env.checkNoPinLeak(t)
	if n := len(env.Temp.List()); n != 0 {
		t.Fatalf("%d temp files left: %v", n, env.Temp.List())
	}
}

func TestCollectError(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeInts(t, "t", 1, 0, 3)
	fl, err := NewFilterExpr(scanOf(t, f), "100 / v > 0", expr.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(fl); err == nil {
		t.Fatal("division by zero not propagated")
	}
	env.checkNoPinLeak(t)
}
