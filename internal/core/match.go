package core

import (
	"fmt"

	"repro/internal/record"
)

// MatchOp selects which operation the one-to-one match operator performs.
// The one-to-one match generalises all binary matching operators (paper
// §1 lists two algorithms each for natural join, semi-join, outer join,
// anti-join, union, intersection, difference, anti-difference): every
// operation is a choice of which tuple classes — matched, left-only,
// right-only — appear in the output, and in what form.
type MatchOp int

// Match operations.
const (
	// MatchJoin outputs one combined record per matching pair.
	MatchJoin MatchOp = iota
	// MatchSemi outputs each left record with at least one match.
	MatchSemi
	// MatchAnti outputs each left record with no match (anti-join).
	MatchAnti
	// MatchLeftOuter is join plus unmatched left records padded with
	// zero values on the right (Volcano has no SQL NULL).
	MatchLeftOuter
	// MatchRightOuter is join plus unmatched right records padded left.
	MatchRightOuter
	// MatchFullOuter is join plus both unmatched sides, padded.
	MatchFullOuter
	// MatchUnion outputs the set union of the two inputs (same schema;
	// keys should cover the whole tuple for set semantics).
	MatchUnion
	// MatchIntersect outputs the distinct tuples present in both inputs.
	MatchIntersect
	// MatchDifference outputs the distinct left tuples with no match
	// (L − R).
	MatchDifference
	// MatchAntiDifference outputs the distinct right tuples with no match
	// (R − L).
	MatchAntiDifference
)

var matchOpNames = map[MatchOp]string{
	MatchJoin: "join", MatchSemi: "semijoin", MatchAnti: "antijoin",
	MatchLeftOuter: "leftouter", MatchRightOuter: "rightouter", MatchFullOuter: "fullouter",
	MatchUnion: "union", MatchIntersect: "intersect",
	MatchDifference: "difference", MatchAntiDifference: "antidifference",
}

// String names the operation.
func (op MatchOp) String() string { return matchOpNames[op] }

// combinesSchemas reports whether the output is the concatenation of both
// input schemas.
func (op MatchOp) combinesSchemas() bool {
	switch op {
	case MatchJoin, MatchLeftOuter, MatchRightOuter, MatchFullOuter:
		return true
	}
	return false
}

// sameSchemas reports whether the operation requires equal input schemas.
func (op MatchOp) sameSchemas() bool {
	switch op {
	case MatchUnion, MatchIntersect:
		return true
	}
	return false
}

// matchOutputSchema computes the output schema of a match operation.
func matchOutputSchema(op MatchOp, left, right *record.Schema) (*record.Schema, error) {
	if op.sameSchemas() && !left.Equal(right) {
		return nil, fmt.Errorf("core: %s requires equal schemas, got %s and %s", op, left, right)
	}
	switch {
	case op.combinesSchemas():
		return left.Concat(right), nil
	case op == MatchAntiDifference:
		return right, nil
	default:
		return left, nil
	}
}

// zeroValues builds the zero-padding used for the missing side of outer
// joins.
func zeroValues(s *record.Schema) []record.Value {
	out := make([]record.Value, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		switch s.Field(i).Type {
		case record.TInt:
			out[i] = record.Int(0)
		case record.TFloat:
			out[i] = record.Float(0)
		case record.TBool:
			out[i] = record.Bool(false)
		default:
			out[i] = record.Value{Kind: s.Field(i).Type}
		}
	}
	return out
}

// keysEqual verifies key equality between a left and right record (hash
// matches must be confirmed, hashes can collide).
func keysEqual(ls *record.Schema, l []byte, lk record.Key, rs *record.Schema, r []byte, rk record.Key) bool {
	return record.CompareKeys(ls, l, lk, rs, r, rk) == 0
}
