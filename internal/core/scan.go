package core

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/file"
)

// FileScan reads a stored (or virtual) file in storage order.
type FileScan struct {
	f         *file.File
	schema    *record.Schema
	readAhead bool
	scan      *file.Scan
}

// NewFileScan builds a scan over f. If schema is nil the schema recorded
// in the VTOC is used.
func NewFileScan(f *file.File, schema *record.Schema, readAhead bool) (*FileScan, error) {
	if schema == nil {
		schema = f.Schema()
	}
	if schema == nil {
		return nil, errState("filescan", fmt.Sprintf("file %q has no schema", f.Name()))
	}
	return &FileScan{f: f, schema: schema, readAhead: readAhead}, nil
}

// Schema implements Iterator.
func (s *FileScan) Schema() *record.Schema { return s.schema }

// Open implements Iterator.
func (s *FileScan) Open() error {
	if s.scan != nil {
		return errState("filescan", "already open")
	}
	s.scan = s.f.NewScan(s.readAhead)
	return nil
}

// Next implements Iterator.
func (s *FileScan) Next() (Rec, bool, error) {
	if s.scan == nil {
		return Rec{}, false, errState("filescan", "next before open")
	}
	r, ok, err := s.scan.Next()
	return r.WithoutDirty(), ok, err
}

// NextBatch implements BatchIterator natively: one call drives the
// underlying storage scan for a whole run of records.
func (s *FileScan) NextBatch(b *Batch) error {
	if s.scan == nil {
		return errState("filescan", "next before open")
	}
	b.Reset()
	for !b.Full() {
		r, ok, err := s.scan.Next()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			break
		}
		b.Append(r.WithoutDirty())
	}
	return nil
}

// Close implements Iterator.
func (s *FileScan) Close() error {
	if s.scan == nil {
		return errState("filescan", "close before open")
	}
	s.scan.Close()
	s.scan = nil
	return nil
}

// IndexScan reads records through a B+-tree in key order, optionally
// restricted to a range. Each index entry is resolved to its record by
// fetching (and pinning) the page it lives on.
type IndexScan struct {
	tree         *btree.Tree
	f            *file.File
	schema       *record.Schema
	lo, hi       []byte
	incLo, incHi bool

	cur *btree.Cursor
}

// NewIndexScan builds an index scan. lo/hi are encoded keys (btree.EncodeKey);
// nil means unbounded.
func NewIndexScan(tree *btree.Tree, f *file.File, schema *record.Schema, lo, hi []byte, incLo, incHi bool) (*IndexScan, error) {
	if schema == nil {
		schema = f.Schema()
	}
	if schema == nil {
		return nil, errState("indexscan", fmt.Sprintf("file %q has no schema", f.Name()))
	}
	return &IndexScan{tree: tree, f: f, schema: schema, lo: lo, hi: hi, incLo: incLo, incHi: incHi}, nil
}

// Schema implements Iterator.
func (s *IndexScan) Schema() *record.Schema { return s.schema }

// Open implements Iterator.
func (s *IndexScan) Open() error {
	if s.cur != nil {
		return errState("indexscan", "already open")
	}
	cur, err := s.tree.Scan(s.lo, s.hi, s.incLo, s.incHi)
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() (Rec, bool, error) {
	if s.cur == nil {
		return Rec{}, false, errState("indexscan", "next before open")
	}
	_, rid, ok, err := s.cur.Next()
	if err != nil || !ok {
		return Rec{}, false, err
	}
	r, err := s.f.Fetch(rid)
	if err != nil {
		return Rec{}, false, fmt.Errorf("core: indexscan: %w", err)
	}
	return r, true, nil
}

// NextBatch implements BatchIterator natively: one call walks the B-tree
// cursor and resolves a whole run of RIDs.
func (s *IndexScan) NextBatch(b *Batch) error {
	if s.cur == nil {
		return errState("indexscan", "next before open")
	}
	b.Reset()
	for !b.Full() {
		_, rid, ok, err := s.cur.Next()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			break
		}
		r, err := s.f.Fetch(rid)
		if err != nil {
			b.Release()
			return fmt.Errorf("core: indexscan: %w", err)
		}
		b.Append(r)
	}
	return nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error {
	if s.cur == nil {
		return errState("indexscan", "close before open")
	}
	s.cur.Close()
	s.cur = nil
	return nil
}
