package core

import (
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/trace"
)

// traceNames flattens a tracer's snapshot into the set of event names and
// the per-name count.
func traceNames(tr *trace.Tracer) map[string]int {
	names := map[string]int{}
	for _, s := range tr.Snapshot() {
		for _, e := range s.Events {
			names[e.Name]++
		}
	}
	return names
}

// TestExchangeTraceProtocol runs a traced parallel exchange with a tight
// flow-control window and checks the whole protocol vocabulary shows up:
// spawn, producer starts, packet flows, token waits, EOS tags, and the
// shutdown handshake.
func TestExchangeTraceProtocol(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", shuffled(500, 7)...)
	tr := trace.New()
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   2,
		Consumers:   1,
		PacketSize:  8,
		FlowControl: true,
		Slack:       1, // one token: producers must block, so token-wait spans appear
		Tracer:      tr,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}

	names := traceNames(tr)
	for _, want := range []string{
		"fork", "producer-start", "open-subtree", "produce",
		"push", "pop", "token-wait", "eos",
		"await-close", "allow-close", "await-producers", "close-subtree",
	} {
		if names[want] == 0 {
			t.Errorf("no %q event recorded; got %v", want, names)
		}
	}
	if names["producer-start"] != 2 {
		t.Errorf("producer-start count = %d, want 2", names["producer-start"])
	}

	// Each producer and the consumer own distinct tracks. (The exchange id
	// prefix varies across tests, so match on the suffix.)
	trackNames := map[string]bool{}
	for _, s := range tr.Snapshot() {
		trackNames[s.Name] = true
	}
	for _, want := range []string{".master", ".producer0", ".producer1", ".consumer0"} {
		found := false
		for n := range trackNames {
			if strings.HasSuffix(n, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no track ending in %q; have %v", want, trackNames)
		}
	}

	// Every flow arrow tail has a matching head with the same id.
	tails, heads := map[int64]int{}, map[int64]int{}
	for _, s := range tr.Snapshot() {
		for _, e := range s.Events {
			switch e.Ph {
			case trace.PhaseFlowStart:
				tails[e.ID]++
			case trace.PhaseFlowEnd:
				heads[e.ID]++
			}
		}
	}
	if len(tails) == 0 {
		t.Fatal("no flow arrows recorded")
	}
	for id := range tails {
		if heads[id] != 1 {
			t.Errorf("flow %d: %d heads, want 1", id, heads[id])
		}
	}
}

// TestExchangeTraceTreeFork checks the propagation-tree scheme records a
// fork on producer tracks (each non-leaf producer forks its successor),
// not only on the master.
func TestExchangeTraceTreeFork(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", shuffled(200, 9)...)
	tr := trace.New()
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 4,
		Consumers: 1,
		Fork:      ForkTree,
		Tracer:    tr,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(x.Consumer(0)); err != nil {
		t.Fatal(err)
	}
	forksOnProducers := 0
	for _, s := range tr.Snapshot() {
		if !strings.Contains(s.Name, "producer") {
			continue
		}
		for _, e := range s.Events {
			if e.Name == "fork" {
				forksOnProducers++
			}
		}
	}
	if forksOnProducers == 0 {
		t.Error("propagation tree recorded no forks on producer tracks")
	}
}

// TestNetExchangeTraceProtocol checks the shared-nothing exchange records
// wire sends/receives bound by flow arrows, with producer and consumer
// tracks on distinct per-site pids.
func TestNetExchangeTraceProtocol(t *testing.T) {
	machineA := newTestEnv(t, 256)
	machineB := newTestEnv(t, 256)
	f := machineA.makeInts(t, "t", shuffled(400, 13)...)
	tr := trace.New()
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:     intSchema,
		Producers:  2,
		Consumers:  1,
		PacketSize: 16,
		Tracer:     tr,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(int) *Env { return machineB.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 800 {
		t.Fatalf("rows = %d", len(rows))
	}

	names := traceNames(tr)
	for _, want := range []string{"producer-start", "wire-send", "wire-recv", "eos", "produce"} {
		if names[want] == 0 {
			t.Errorf("no %q event recorded; got %v", want, names)
		}
	}
	// Sites are separate machines: all pids distinct, none on pid 0.
	pids := map[int]bool{}
	for _, s := range tr.Snapshot() {
		if s.PID == 0 {
			t.Errorf("track %s on pid 0; sites must get their own pid", s.Name)
		}
		if pids[s.PID] {
			t.Errorf("pid %d reused across sites", s.PID)
		}
		pids[s.PID] = true
	}
	if len(pids) != 3 {
		t.Errorf("got %d site pids, want 3", len(pids))
	}
	st := x.NetStats()
	if st.Packets == 0 || st.Bytes == 0 {
		t.Error("no wire traffic counted")
	}
}

// countRec is a no-allocation source for the overhead benchmark and test.
type countRec struct {
	n, limit int
}

func (c *countRec) Schema() *record.Schema { return intSchema }
func (c *countRec) Open() error            { c.n = 0; return nil }
func (c *countRec) Close() error           { return nil }
func (c *countRec) Next() (Rec, bool, error) {
	if c.n >= c.limit {
		return Rec{}, false, nil
	}
	c.n++
	return Rec{}, true, nil
}

// TestInstrumentedDisabledTracerNoAllocs pins the disabled-tracing cost on
// the instrumented Next hot path: zero allocations per call.
func TestInstrumentedDisabledTracerNoAllocs(t *testing.T) {
	it := Instrument(&countRec{limit: 1 << 30}, "src").WithTracer(nil)
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok, err := it.Next(); !ok || err != nil {
			t.Fatal("source ended")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-tracer Next allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkInstrumentedNext measures the per-call cost of the instrumented
// hot path with tracing disabled (the mode every non-traced run pays).
func BenchmarkInstrumentedNext(b *testing.B) {
	it := Instrument(&countRec{limit: 1 << 62}, "src").WithTracer(nil)
	if err := it.Open(); err != nil {
		b.Fatal(err)
	}
	defer it.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Next()
	}
}

// TestInstrumentedTraceSpans checks the enabled wrapper registers one
// track per operator and emits open/next/close spans on it.
func TestInstrumentedTraceSpans(t *testing.T) {
	tr := trace.New()
	it := Instrument(&countRec{limit: 3}, "src").WithTracer(tr)
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := it.Next(); err != nil || !ok {
			break
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	snaps := tr.Snapshot()
	if len(snaps) != 1 || snaps[0].Name != "op:src" {
		t.Fatalf("tracks = %+v", snaps)
	}
	names := traceNames(tr)
	if names["src.open"] != 1 || names["src.close"] != 1 {
		t.Errorf("open/close spans missing: %v", names)
	}
	if names["src"] != 4 { // 3 rows + EOS call
		t.Errorf("next spans = %d, want 4", names["src"])
	}
}
