package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/record"
)

// loopScan is an endless iterator: it replays a file scan forever by
// reopening it at end-of-stream. Without external cancellation a producer
// driving it would never finish.
type loopScan struct {
	newScan func() (Iterator, error)
	cur     Iterator
}

func (l *loopScan) Schema() *record.Schema { return l.cur.Schema() }

func (l *loopScan) Open() error { return l.cur.Open() }

func (l *loopScan) Next() (Rec, bool, error) {
	for {
		r, ok, err := l.cur.Next()
		if err != nil || ok {
			return r, ok, err
		}
		if err := l.cur.Close(); err != nil {
			return Rec{}, false, err
		}
		next, err := l.newScan()
		if err != nil {
			return Rec{}, false, err
		}
		l.cur = next
		if err := l.cur.Open(); err != nil {
			return Rec{}, false, err
		}
	}
}

func (l *loopScan) Close() error { return l.cur.Close() }

// TestExchangeDoneCancelsEndlessProducers proves that closing the Done
// channel bounds an abandoned query's work: producers drive an iterator
// that would never reach end-of-stream, the consumer walks away, and the
// whole tree still tears down within the timeout — which is only possible
// if the producers abandoned their subtrees at the cancellation poll.
func TestExchangeDoneCancelsEndlessProducers(t *testing.T) {
	env := newTestEnv(t, 512)
	f := env.makeInts(t, "t", shuffled(500, 3)...)
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   4,
		Consumers:   1,
		PacketSize:  3,
		FlowControl: true,
		Slack:       1,
		Done:        done,
		NewProducer: func(g int) (Iterator, error) {
			mk := func() (Iterator, error) { return NewFileScan(f, nil, false) }
			sc, err := mk()
			if err != nil {
				return nil, err
			}
			return &loopScan{newScan: mk, cur: sc}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Consumer(0)
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
		}
		r.Unfix()
	}
	close(done)

	// Close must complete even though no producer will ever see EOS on its
	// own; bound it so a regression hangs the test visibly, not forever.
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case err := <-closed:
		// The canceled producers report ErrCanceled via the final packets;
		// Close surfacing it (or nil, if the consumer's drain won the race)
		// are both orderly shutdowns.
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		buf := make([]byte, 1<<16)
		t.Fatalf("close hung: producers ignored cancellation\n%s", buf[:runtime.Stack(buf, true)])
	}
	env.checkNoPinLeak(t)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExchangeDoneNilIsInert pins the default: a nil Done channel changes
// nothing about a normal run.
func TestExchangeDoneNilIsInert(t *testing.T) {
	env := newTestEnv(t, 512)
	const n = 1000
	f := env.makeInts(t, "t", shuffled(n, 9)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 2,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	count, err := Drain(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("count = %d, want %d", count, 2*n)
	}
	env.checkNoPinLeak(t)
}
