package core

import (
	"fmt"

	"repro/internal/record"
)

// Relational division (quotient): given a dividend R with quotient fields
// Q and divisor fields D, and a divisor S, output the distinct Q values q
// such that (q, s) ∈ R for every s ∈ S. Volcano's hash-division algorithm
// [Graefe 1989] builds a table of divisor tuples and a table of quotient
// candidates with per-divisor bit sets; the paper's §4.4 reports
// parallelising it via the exchange operator with both divisor and
// quotient partitioning.

// HashDivision is the hash-division iterator.
type HashDivision struct {
	env        *Env
	dividend   Iterator
	divisor    Iterator
	quotKey    record.Key // quotient fields in the dividend
	divKey     record.Key // divisor fields in the dividend
	divisorKey record.Key // fields in the divisor matching divKey pairwise
	schema     *record.Schema

	// partial, when true, emits (quotient, matchedCount) pairs instead of
	// filtering on a full match. This is the building block for the
	// divisor-partitioned parallel variant: each partition counts matches
	// against its local divisor subset, and a global aggregation sums the
	// counts and compares with the full divisor cardinality.
	partial bool

	w     *ResultWriter
	order []string
	table map[string]*quotient
	ndiv  int
	emit  int
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
}

type quotient struct {
	kv   []record.Value
	seen map[int]struct{}
}

// NewHashDivision constructs the operator. divisorKey are the fields of
// the divisor input matching the dividend's divKey fields (pairwise).
func NewHashDivision(env *Env, dividend, divisor Iterator, quotKey, divKey, divisorKey record.Key) (*HashDivision, error) {
	if len(divKey) != len(divisorKey) || len(divKey) == 0 {
		return nil, fmt.Errorf("core: division: bad divisor key arity %d/%d", len(divKey), len(divisorKey))
	}
	if len(quotKey) == 0 {
		return nil, fmt.Errorf("core: division: empty quotient key")
	}
	d := &HashDivision{
		env: env, dividend: dividend, divisor: divisor,
		quotKey: quotKey, divKey: divKey, divisorKey: divisorKey,
	}
	var err error
	d.schema, err = d.outputSchema()
	if err != nil {
		return nil, err
	}
	return d, nil
}

func (d *HashDivision) outputSchema() (*record.Schema, error) {
	in := d.dividend.Schema()
	var fields []record.Field
	for _, q := range d.quotKey {
		if q < 0 || q >= in.NumFields() {
			return nil, fmt.Errorf("core: division: quotient field %d out of range", q)
		}
		fields = append(fields, in.Field(q))
	}
	if d.partial {
		fields = append(fields, record.Field{Name: "matched", Type: record.TInt})
	}
	return record.NewSchema(fields...)
}

// Schema implements Iterator.
func (d *HashDivision) Schema() *record.Schema { return d.schema }

// SetPartial toggles partial-count mode (the divisor-partitioning
// building block) and recomputes the output schema accordingly.
func (d *HashDivision) SetPartial(p bool) error {
	if d.open {
		return errState("hashdivision", "SetPartial while open")
	}
	d.partial = p
	schema, err := d.outputSchema()
	if err != nil {
		return err
	}
	d.schema = schema
	return nil
}

// Open implements Iterator: builds the divisor table, then consumes the
// dividend accumulating per-quotient divisor bit sets.
func (d *HashDivision) Open() error {
	if d.open {
		return errState("hashdivision", "already open")
	}
	err := d.openImpl()
	d.openFailed = err != nil
	return err
}

func (d *HashDivision) openImpl() error {
	w, err := d.env.NewResultWriter("hashdiv", d.schema)
	if err != nil {
		return err
	}
	d.w = w

	// Phase 1: number the divisor tuples.
	divisorIdx := make(map[string]int)
	if err := d.divisor.Open(); err != nil {
		d.abort()
		return err
	}
	ds := d.divisor.Schema()
	for {
		r, ok, err := d.divisor.Next()
		if err != nil {
			_ = d.divisor.Close()
			d.abort()
			return err
		}
		if !ok {
			break
		}
		key := record.KeyString(ds.KeyValues(r.Data, d.divisorKey))
		if _, dup := divisorIdx[key]; !dup {
			divisorIdx[key] = len(divisorIdx)
		}
		r.Unfix()
	}
	if err := d.divisor.Close(); err != nil {
		d.abort()
		return err
	}
	d.ndiv = len(divisorIdx)

	// Phase 2: scan the dividend, marking (quotient, divisor) pairs.
	d.table = make(map[string]*quotient)
	if err := d.dividend.Open(); err != nil {
		d.abort()
		return err
	}
	in := d.dividend.Schema()
	for {
		r, ok, err := d.dividend.Next()
		if err != nil {
			_ = d.dividend.Close()
			d.abort()
			return err
		}
		if !ok {
			break
		}
		divK := record.KeyString(in.KeyValues(r.Data, d.divKey))
		idx, inDivisor := divisorIdx[divK]
		if !inDivisor {
			// Dividend rows with divisor values outside S are irrelevant.
			r.Unfix()
			continue
		}
		kv := in.KeyValues(r.Data, d.quotKey)
		qk := record.KeyString(kv)
		q, exists := d.table[qk]
		if !exists {
			q = &quotient{kv: kv, seen: make(map[int]struct{})}
			d.table[qk] = q
			d.order = append(d.order, qk)
		}
		q.seen[idx] = struct{}{}
		r.Unfix()
	}
	if err := d.dividend.Close(); err != nil {
		d.abort()
		return err
	}
	d.emit = 0
	d.open = true
	return nil
}

// Next implements Iterator: emits qualifying quotients (or, in Partial
// mode, every candidate with its match count).
func (d *HashDivision) Next() (Rec, bool, error) {
	if !d.open {
		return Rec{}, false, errState("hashdivision", "next before open")
	}
	for d.emit < len(d.order) {
		q := d.table[d.order[d.emit]]
		d.emit++
		if d.partial {
			vals := append(append([]record.Value(nil), q.kv...), record.Int(int64(len(q.seen))))
			r, err := d.w.Write(vals)
			return r, err == nil, err
		}
		if len(q.seen) == d.ndiv && d.ndiv > 0 {
			r, err := d.w.Write(q.kv)
			return r, err == nil, err
		}
	}
	return Rec{}, false, nil
}

// Close implements Iterator.
func (d *HashDivision) Close() error {
	if d.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		d.openFailed = false
		return nil
	}
	if !d.open {
		return errState("hashdivision", "close before open")
	}
	d.open = false
	d.table = nil
	d.order = nil
	err := d.w.Dispose()
	d.w = nil
	return err
}

func (d *HashDivision) abort() {
	d.table = nil
	d.order = nil
	if d.w != nil {
		_ = d.w.Dispose()
		d.w = nil
	}
}

// SortDivision is the sort-based division baseline: the dividend is sorted
// on the quotient fields, so candidate quotients are processed one group
// at a time with memory proportional to the divisor only.
type SortDivision struct {
	env        *Env
	dividend   Iterator // wrapped in a Sort on quotKey at construction
	divisor    Iterator
	quotKey    record.Key
	divKey     record.Key
	divisorKey record.Key
	schema     *record.Schema

	w        *ResultWriter
	divisor2 map[string]struct{}
	cur      []record.Value
	curSeen  map[string]struct{}
	done     bool
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
}

// NewSortDivision constructs the operator; the dividend is sorted on its
// quotient fields internally.
func NewSortDivision(env *Env, dividend, divisor Iterator, quotKey, divKey, divisorKey record.Key) (*SortDivision, error) {
	if len(divKey) != len(divisorKey) || len(divKey) == 0 {
		return nil, fmt.Errorf("core: division: bad divisor key arity %d/%d", len(divKey), len(divisorKey))
	}
	if len(quotKey) == 0 {
		return nil, fmt.Errorf("core: division: empty quotient key")
	}
	in := dividend.Schema()
	var fields []record.Field
	for _, q := range quotKey {
		if q < 0 || q >= in.NumFields() {
			return nil, fmt.Errorf("core: division: quotient field %d out of range", q)
		}
		fields = append(fields, in.Field(q))
	}
	schema, err := record.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	spec := make([]record.SortSpec, len(quotKey))
	for i, f := range quotKey {
		spec[i] = record.SortSpec{Field: f}
	}
	return &SortDivision{
		env: env, dividend: NewSort(env, dividend, spec), divisor: divisor,
		quotKey: quotKey, divKey: divKey, divisorKey: divisorKey, schema: schema,
	}, nil
}

// Schema implements Iterator.
func (d *SortDivision) Schema() *record.Schema { return d.schema }

// Open implements Iterator.
func (d *SortDivision) Open() error {
	if d.open {
		return errState("sortdivision", "already open")
	}
	err := d.openImpl()
	d.openFailed = err != nil
	return err
}

func (d *SortDivision) openImpl() error {
	w, err := d.env.NewResultWriter("sortdiv", d.schema)
	if err != nil {
		return err
	}
	d.w = w
	d.divisor2 = make(map[string]struct{})
	if err := d.divisor.Open(); err != nil {
		_ = d.w.Dispose()
		d.w = nil
		return err
	}
	ds := d.divisor.Schema()
	for {
		r, ok, err := d.divisor.Next()
		if err != nil {
			_ = d.divisor.Close()
			_ = d.w.Dispose()
			d.w = nil
			return err
		}
		if !ok {
			break
		}
		d.divisor2[record.KeyString(ds.KeyValues(r.Data, d.divisorKey))] = struct{}{}
		r.Unfix()
	}
	if err := d.divisor.Close(); err != nil {
		_ = d.w.Dispose()
		d.w = nil
		return err
	}
	if err := d.dividend.Open(); err != nil {
		_ = d.w.Dispose()
		d.w = nil
		return err
	}
	d.cur = nil
	d.curSeen = nil
	d.done = false
	d.open = true
	return nil
}

// Next implements Iterator.
func (d *SortDivision) Next() (Rec, bool, error) {
	if !d.open {
		return Rec{}, false, errState("sortdivision", "next before open")
	}
	if d.done {
		return Rec{}, false, nil
	}
	in := d.dividend.Schema()
	for {
		r, ok, err := d.dividend.Next()
		if err != nil {
			return Rec{}, false, err
		}
		if !ok {
			d.done = true
			if d.cur != nil && len(d.curSeen) == len(d.divisor2) && len(d.divisor2) > 0 {
				out, err := d.w.Write(d.cur)
				return out, err == nil, err
			}
			return Rec{}, false, nil
		}
		kv := in.KeyValues(r.Data, d.quotKey)
		newGroup := d.cur == nil || record.KeyString(kv) != record.KeyString(d.cur)
		var finished []record.Value
		if newGroup {
			if d.cur != nil && len(d.curSeen) == len(d.divisor2) && len(d.divisor2) > 0 {
				finished = d.cur
			}
			d.cur = kv
			d.curSeen = make(map[string]struct{})
		}
		divK := record.KeyString(in.KeyValues(r.Data, d.divKey))
		if _, inS := d.divisor2[divK]; inS {
			d.curSeen[divK] = struct{}{}
		}
		r.Unfix()
		if finished != nil {
			out, err := d.w.Write(finished)
			return out, err == nil, err
		}
	}
}

// Close implements Iterator.
func (d *SortDivision) Close() error {
	if d.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		d.openFailed = false
		return nil
	}
	if !d.open {
		return errState("sortdivision", "close before open")
	}
	d.open = false
	err := d.dividend.Close()
	if derr := d.w.Dispose(); err == nil {
		err = derr
	}
	d.w = nil
	return err
}
