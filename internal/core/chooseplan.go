package core

import (
	"fmt"

	"repro/internal/record"
)

// ChoosePlan implements dynamic query evaluation plans [Graefe & Ward,
// SIGMOD 1989] — the companion Volcano work the paper cites as developed
// alongside the exchange operator. A choose-plan node holds several
// alternative subplans prepared at optimisation time; the decision
// support function runs when the plan is *opened*, so it can consult
// run-time knowledge (actual parameter values, current cardinalities,
// resource availability) that the optimiser could not.
//
// Like every other Volcano operator it is an ordinary iterator: operators
// above and below are unaware that a choice happens at all.
type ChoosePlan struct {
	alternatives []Iterator
	decide       func() (int, error)
	schema       *record.Schema
	chosen       Iterator
}

// NewChoosePlan builds the operator. All alternatives must produce the
// same schema; decide must return the index of the plan to run.
func NewChoosePlan(alternatives []Iterator, decide func() (int, error)) (*ChoosePlan, error) {
	if len(alternatives) == 0 {
		return nil, errState("chooseplan", "no alternatives")
	}
	if decide == nil {
		return nil, errState("chooseplan", "nil decision function")
	}
	s := alternatives[0].Schema()
	for i, alt := range alternatives[1:] {
		if !alt.Schema().Equal(s) {
			return nil, errState("chooseplan",
				fmt.Sprintf("alternative %d schema %s != %s", i+1, alt.Schema(), s))
		}
	}
	return &ChoosePlan{alternatives: alternatives, decide: decide, schema: s}, nil
}

// Schema implements Iterator.
func (c *ChoosePlan) Schema() *record.Schema { return c.schema }

// Open implements Iterator: evaluates the decision support function and
// opens only the chosen alternative.
func (c *ChoosePlan) Open() error {
	if c.chosen != nil {
		return errState("chooseplan", "already open")
	}
	i, err := c.decide()
	if err != nil {
		return fmt.Errorf("core: chooseplan: decision: %w", err)
	}
	if i < 0 || i >= len(c.alternatives) {
		return errState("chooseplan", fmt.Sprintf("decision %d out of range 0..%d", i, len(c.alternatives)-1))
	}
	if err := c.alternatives[i].Open(); err != nil {
		return err
	}
	c.chosen = c.alternatives[i]
	return nil
}

// Next implements Iterator.
func (c *ChoosePlan) Next() (Rec, bool, error) {
	if c.chosen == nil {
		return Rec{}, false, errState("chooseplan", "next before open")
	}
	return c.chosen.Next()
}

// Close implements Iterator.
func (c *ChoosePlan) Close() error {
	if c.chosen == nil {
		return errState("chooseplan", "close before open")
	}
	err := c.chosen.Close()
	c.chosen = nil
	return err
}
