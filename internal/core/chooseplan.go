package core

import (
	"fmt"

	"repro/internal/record"
)

// ChoosePlan implements dynamic query evaluation plans [Graefe & Ward,
// SIGMOD 1989] — the companion Volcano work the paper cites as developed
// alongside the exchange operator. A choose-plan node holds several
// alternative subplans prepared at optimisation time; the decision
// support function runs when the plan is *opened*, so it can consult
// run-time knowledge (actual parameter values, current cardinalities,
// resource availability) that the optimiser could not.
//
// Like every other Volcano operator it is an ordinary iterator: operators
// above and below are unaware that a choice happens at all.
type ChoosePlan struct {
	alternatives []Iterator
	decide       func() (int, error)
	schema       *record.Schema
	chosen       Iterator
	chosenBatch  BatchIterator // batch face of chosen, set at Open
	choice       int           // index of chosen, valid while chosen != nil
	batch        int           // EnableBatch size propagated to alternatives
	openFailed   bool          // Open ran and failed: next Close is a no-op
	onChoose     func(int)     // observability hook, may be nil
}

// NewChoosePlan builds the operator. All alternatives must produce the
// same schema; decide must return the index of the plan to run.
func NewChoosePlan(alternatives []Iterator, decide func() (int, error)) (*ChoosePlan, error) {
	if len(alternatives) == 0 {
		return nil, errState("chooseplan", "no alternatives")
	}
	if decide == nil {
		return nil, errState("chooseplan", "nil decision function")
	}
	s := alternatives[0].Schema()
	for i, alt := range alternatives[1:] {
		if !alt.Schema().Equal(s) {
			return nil, errState("chooseplan",
				fmt.Sprintf("alternative %d schema %s != %s", i+1, alt.Schema(), s))
		}
	}
	return &ChoosePlan{alternatives: alternatives, decide: decide, schema: s}, nil
}

// Schema implements Iterator.
func (c *ChoosePlan) Schema() *record.Schema { return c.schema }

// OnChoose registers a hook invoked with the chosen alternative's index
// every time Open decides (observability: EXPLAIN ANALYZE and planner
// metrics record which plan actually ran).
func (c *ChoosePlan) OnChoose(fn func(int)) { c.onChoose = fn }

// Chosen reports the index of the currently running alternative, or -1
// when the operator is not open.
func (c *ChoosePlan) Chosen() int {
	if c.chosen == nil {
		return -1
	}
	return c.choice
}

// Open implements Iterator: evaluates the decision support function and
// opens only the chosen alternative.
func (c *ChoosePlan) Open() error {
	if c.chosen != nil {
		return errState("chooseplan", "already open")
	}
	c.openFailed = false
	i, err := c.decide()
	if err != nil {
		c.openFailed = true
		return fmt.Errorf("core: chooseplan: decision: %w", err)
	}
	if i < 0 || i >= len(c.alternatives) {
		c.openFailed = true
		return errState("chooseplan", fmt.Sprintf("decision %d out of range 0..%d", i, len(c.alternatives)-1))
	}
	if err := c.alternatives[i].Open(); err != nil {
		// The failed alternative owns its own cleanup; remember the
		// failure so the caller's unconditional-Close drain does not
		// mask this error with "close before open".
		c.openFailed = true
		return err
	}
	c.chosen = c.alternatives[i]
	c.chosenBatch = AsBatch(c.chosen)
	c.choice = i
	if c.onChoose != nil {
		c.onChoose(i)
	}
	return nil
}

// Next implements Iterator.
func (c *ChoosePlan) Next() (Rec, bool, error) {
	if c.chosen == nil {
		return Rec{}, false, errState("chooseplan", "next before open")
	}
	return c.chosen.Next()
}

// NextBatch implements BatchIterator by passing batches straight through
// from the chosen alternative (via AsBatch, so row-only alternatives
// stay valid), preserving the batch protocol end to end instead of
// degrading the subtree above the choice to the row-at-a-time shim.
func (c *ChoosePlan) NextBatch(b *Batch) error {
	if c.chosenBatch == nil {
		return errState("chooseplan", "next before open")
	}
	return c.chosenBatch.NextBatch(b)
}

// EnableBatch implements BatchConfigurable: the batch size propagates to
// every alternative (the decision has not run yet at configure time, so
// all of them must be ready to serve batches).
func (c *ChoosePlan) EnableBatch(size int) {
	c.batch = size
	for _, alt := range c.alternatives {
		if bc, ok := alt.(BatchConfigurable); ok {
			bc.EnableBatch(size)
		}
	}
}

// Close implements Iterator. A Close directly after a failed Open is a
// no-op success: the failure already unwound the alternative, and the
// standard drain path closes unconditionally — returning a state error
// here would mask the root cause.
func (c *ChoosePlan) Close() error {
	if c.openFailed {
		c.openFailed = false
		return nil
	}
	if c.chosen == nil {
		return errState("chooseplan", "close before open")
	}
	err := c.chosen.Close()
	c.chosen = nil
	c.chosenBatch = nil
	return err
}
