package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/trace"
)

// NetExchange is the shared-nothing variant of the exchange operator —
// the extension the paper announces as under way: "very high degrees of
// parallelism and true high-performance query evaluation requires a
// closely tied network, e.g., a hypercube, of shared-memory machines",
// using the data-exchange paradigm "proven to perform well in a
// shared-nothing database machine" (§4.1, referring to GAMMA).
//
// Unlike Exchange, which passes pinned buffer residents between goroutine
// groups sharing one buffer pool, NetExchange connects groups on
// different "machines" (separate buffer pools and devices): record bytes
// are copied out of the producer machine's buffer, shipped through a
// simulated network link in packets, and materialised into the consumer
// machine's buffer on arrival. The iterator protocol, partitioning,
// broadcast, end-of-stream tagging and shutdown handshake are identical
// to the shared-memory exchange — operators above and below cannot tell
// which kind of boundary they cross.
type NetExchange struct {
	cfg   NetExchangeConfig
	start sync.Once
	err   atomic.Value
	xid   int64

	queues  []*netQueue
	pool    *netPacketPool
	done    sync.WaitGroup
	bytes   atomic.Int64
	packets atomic.Int64
	// Blocking-time counters, the network mirror of the in-process port's
	// stall/wait pair: sendStall is time producers spent blocked on a full
	// link (the bounded channel models the link's transmit window),
	// recvWait is time consumers spent blocked waiting for a packet to
	// arrive.
	sendStall atomic.Int64
	recvWait  atomic.Int64
	// basePID is the first trace pid of this hub's sites (tracing only).
	basePID int
}

// NetExchangeConfig is the state record of the shared-nothing exchange.
type NetExchangeConfig struct {
	Schema    *record.Schema
	Producers int
	Consumers int
	// NewProducer builds producer g's subtree, on whatever machine the
	// closure chooses (its iterators reference that machine's Env).
	NewProducer func(g int) (Iterator, error)
	// ConsumerEnv returns the environment (machine) consumer c
	// materialises received records into.
	ConsumerEnv func(c int) *Env
	// NewPartition, Broadcast, PacketSize as in ExchangeConfig.
	NewPartition func(g int) expr.Partitioner
	Broadcast    bool
	PacketSize   int
	// Transport, when non-nil, carries the packets over a real byte
	// stream — frames on net.Conns (see WireTransport, TCPLoopback) —
	// instead of the in-process loopback channels. Producers dial one
	// connection per consumer endpoint and the hub accepts one
	// connection per producer on each consumer's side; TCP's send window
	// replaces the loopback's bounded channel as flow control. The
	// iterator protocol is identical on both paths.
	Transport WireTransport
	// Latency and Bandwidth simulate the interconnect on the loopback
	// path: each packet sleeps Latency plus size/Bandwidth. Zero
	// disables simulation. Ignored when Transport is set — a real wire
	// brings its own latency.
	Latency   time.Duration
	Bandwidth int64 // bytes per second
	// BatchSize switches producers to the batch-at-a-time protocol: each
	// pulls records from its subtree in batches of this size (via
	// NextBatch) instead of one Next call per record, amortising the
	// per-record iterator overhead before images are copied onto the
	// wire. Zero keeps the record-at-a-time pull.
	BatchSize int
	// Tracer, when set, records the network protocol: wire-send and
	// wire-recv instants with packet sizes, send-stall and recv-wait
	// spans, and flow arrows from send to receive. Producer and consumer
	// tracks live on distinct trace pids — one per site — because each
	// group member models its own machine.
	Tracer *trace.Tracer

	// Meter, when set, attributes wire traffic (packets sent and the
	// bytes of their record images) to one query's resource meter.
	Meter *ResourceMeter
}

// netPacket carries copied record images. The images live in the
// packet's own arena (buf): each record is appended to buf and recs
// holds the per-record windows, so filling a recycled packet performs
// no per-record heap allocation — the arena and the recs slice both
// keep their capacity across lives. Entries stay valid even when a
// later append grows buf: they keep referencing the earlier backing
// array, which still holds their bytes.
type netPacket struct {
	buf  []byte
	recs [][]byte
	eos  bool
	err  error
	flow int64 // trace flow-arrow id (0 when untraced)
}

// add copies one record image into the packet's arena.
func (p *netPacket) add(data []byte) {
	off := len(p.buf)
	p.buf = append(p.buf, data...)
	p.recs = append(p.recs, p.buf[off:len(p.buf):len(p.buf)])
}

// netQueueDepth is the transmit window of the simulated link: how many
// packets may sit in a consumer's channel before the sender blocks.
const netQueueDepth = 8

// netQueue is one consumer's input queue (bounded channel: the bound acts
// as flow control, which a real network link always provides).
type netQueue struct {
	ch  chan *netPacket
	eos int
}

// netPacketPool mirrors the shared-memory exchange's packet free list
// for the wire packets: consumers return drained packets, producers
// refill them. Same ownership rule — once a packet is sent on a queue
// channel the producer must not read it again.
type netPacketPool struct {
	free     chan *netPacket
	hits     atomic.Int64
	misses   atomic.Int64
	discards atomic.Int64
}

func newNetPacketPool(producers, consumers int) *netPacketPool {
	bound := producers*(netQueueDepth+consumers) + consumers
	return &netPacketPool{free: make(chan *netPacket, bound)}
}

func (pp *netPacketPool) get() *netPacket {
	select {
	case p := <-pp.free:
		pp.hits.Add(1)
		xmPoolHits.Add(1)
		return p
	default:
		pp.misses.Add(1)
		xmPoolMisses.Add(1)
		return &netPacket{}
	}
}

func (pp *netPacketPool) put(p *netPacket) {
	if p == nil {
		return
	}
	for i := range p.recs {
		p.recs[i] = nil
	}
	p.recs = p.recs[:0]
	p.buf = p.buf[:0]
	p.eos = false
	p.err = nil
	p.flow = 0
	select {
	case pp.free <- p:
	default:
		pp.discards.Add(1)
		xmPoolDiscards.Add(1)
	}
}

// NewNetExchange validates the configuration.
func NewNetExchange(cfg NetExchangeConfig) (*NetExchange, error) {
	if cfg.Schema == nil {
		return nil, errState("netexchange", "nil schema")
	}
	if cfg.Producers < 1 || cfg.Consumers < 1 {
		return nil, errState("netexchange", "bad group sizes")
	}
	if cfg.NewProducer == nil || cfg.ConsumerEnv == nil {
		return nil, errState("netexchange", "nil NewProducer or ConsumerEnv")
	}
	if cfg.Broadcast && cfg.NewPartition != nil {
		return nil, errState("netexchange", "broadcast and partitioning are mutually exclusive")
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 83
	}
	if cfg.PacketSize < 1 || cfg.PacketSize > 255 {
		return nil, errState("netexchange", "packet size out of range 1..255")
	}
	if cfg.BatchSize < 0 {
		return nil, errState("netexchange", "negative batch size")
	}
	n := &NetExchange{cfg: cfg, xid: exchangeSeq.Add(1)}
	n.pool = newNetPacketPool(cfg.Producers, cfg.Consumers)
	for c := 0; c < cfg.Consumers; c++ {
		n.queues = append(n.queues, &netQueue{ch: make(chan *netPacket, netQueueDepth)})
	}
	if cfg.Tracer.Enabled() {
		// One trace pid per site: every group member models its own
		// machine, so its track gets its own process in the trace viewer.
		n.basePID = int(netSiteSeq.Add(int64(cfg.Producers+cfg.Consumers))) - cfg.Producers - cfg.Consumers + 1
		for g := 0; g < cfg.Producers; g++ {
			cfg.Tracer.NameProcess(n.producerPID(g), fmt.Sprintf("site:netx%d.p%d", n.xid, g))
		}
		for c := 0; c < cfg.Consumers; c++ {
			cfg.Tracer.NameProcess(n.consumerPID(c), fmt.Sprintf("site:netx%d.c%d", n.xid, c))
		}
	}
	return n, nil
}

// netSiteSeq allocates globally unique trace pids for sites so several
// NetExchange hubs in one trace never share a pid.
var netSiteSeq atomic.Int64

func (n *NetExchange) producerPID(g int) int { return n.basePID + g }
func (n *NetExchange) consumerPID(c int) int { return n.basePID + n.cfg.Producers + c }

// Stats reports shipped volume.
func (n *NetExchange) Stats() (packets, bytes int64) {
	return n.packets.Load(), n.bytes.Load()
}

// NetExchangeStats mirrors ExchangeStats for the shared-nothing variant:
// data volume over the wire plus the two blocking-time counters that
// attribute pipeline imbalance across the network boundary.
type NetExchangeStats struct {
	Packets int64
	Bytes   int64
	// PoolHits/PoolMisses/PoolDiscards report the wire-packet free list
	// (see ExchangeStats: same semantics, same steady-state expectation).
	PoolHits     int64
	PoolMisses   int64
	PoolDiscards int64
	// SendStall is cumulative time producers spent blocked on a full
	// link (the transmit window), the network analogue of the in-process
	// flow-control stall.
	SendStall time.Duration
	// RecvWait is cumulative time consumers spent blocked waiting for a
	// packet to arrive.
	RecvWait time.Duration
}

// NetStats returns a snapshot of all counters.
func (n *NetExchange) NetStats() NetExchangeStats {
	return NetExchangeStats{
		Packets:      n.packets.Load(),
		Bytes:        n.bytes.Load(),
		PoolHits:     n.pool.hits.Load(),
		PoolMisses:   n.pool.misses.Load(),
		PoolDiscards: n.pool.discards.Load(),
		SendStall:    time.Duration(n.sendStall.Load()),
		RecvWait:     time.Duration(n.recvWait.Load()),
	}
}

// netErrBox keeps every stored error the same concrete type:
// atomic.Value.CompareAndSwap panics when racing stores carry different
// dynamic types, and errors from the transport path and the operator
// path rarely share one.
type netErrBox struct{ err error }

func (n *NetExchange) setErr(err error) {
	if err != nil {
		n.err.CompareAndSwap(nil, netErrBox{err})
	}
}

func (n *NetExchange) firstErr() error {
	if b, ok := n.err.Load().(netErrBox); ok {
		return b.err
	}
	return nil
}

func (n *NetExchange) ensureStarted() {
	n.start.Do(func() {
		if n.cfg.Transport != nil {
			n.startReceivers()
		}
		n.done.Add(n.cfg.Producers)
		for g := 0; g < n.cfg.Producers; g++ {
			go n.producerLoop(g)
		}
	})
}

func (n *NetExchange) producerLoop(g int) {
	xmProducersLive.Add(1)
	defer xmProducersLive.Add(-1)
	defer n.done.Done()
	var tk *trace.Track
	var begin time.Time
	if n.cfg.Tracer.Enabled() {
		tk = n.cfg.Tracer.NewTrackOn(n.producerPID(g), fmt.Sprintf("netx%d.producer%d", n.xid, g))
		begin = time.Now()
		tk.Instant1("exchange", "producer-start", "producer", int64(g))
	}
	input, err := n.cfg.NewProducer(g)
	if err == nil && input != nil && !input.Schema().Equal(n.cfg.Schema) {
		err = fmt.Errorf("core: netexchange: producer %d schema %s != %s", g, input.Schema(), n.cfg.Schema)
	}
	if err != nil {
		n.setErr(err)
		n.broadcastEOS(tk)
		return
	}
	if err := input.Open(); err != nil {
		n.setErr(err)
		n.broadcastEOS(tk)
		return
	}
	out := make([]*netPacket, n.cfg.Consumers)
	var part expr.Partitioner
	if !n.cfg.Broadcast && n.cfg.Consumers > 1 {
		if n.cfg.NewPartition != nil {
			part = n.cfg.NewPartition(g)
		} else {
			part = expr.RoundRobin(n.cfg.Consumers)
		}
	}
	// Transport path: packets are framed onto per-consumer connections
	// and recycled immediately — the wire owns the bytes once written.
	var wo *wireOut
	if n.cfg.Transport != nil {
		wo = newWireOut(n)
		defer wo.close()
	}
	// Once a packet is handed to the queue channel it must not be read
	// again: the consumer may drain and recycle it, and another producer
	// may already be refilling it — so everything send needs (size, eos,
	// trace ids) is taken before the channel send.
	send := func(c int, eos bool) {
		p := out[c]
		out[c] = nil
		if wo != nil {
			errMsg := ""
			if eos {
				if e := n.firstErr(); e != nil {
					errMsg = e.Error()
				}
			}
			if _, err := wo.sendPacket(c, p, eos, errMsg); err != nil {
				n.setErr(err)
			}
			n.pool.put(p)
			return
		}
		if p == nil {
			if !eos {
				return
			}
			p = n.pool.get()
		}
		p.eos = eos
		if eos {
			p.err = n.firstErr()
		}
		size := 0
		for _, r := range p.recs {
			size += len(r)
		}
		n.simulateWire(size)
		n.packets.Add(1)
		n.bytes.Add(int64(size))
		xmNetPackets.Add(1)
		xmNetBytes.Add(int64(size))
		n.cfg.Meter.WireSend(size)
		if tk != nil {
			p.flow = n.cfg.Tracer.NextFlowID()
			tk.FlowOut("wire", "wire-send", p.flow, "bytes", int64(size))
			if eos {
				tk.Instant1("exchange", "eos", "consumer", int64(c))
			}
		}
		// A full link (transmit window) blocks the producer; attribute
		// the stall like the in-process flow-control semaphore does.
		select {
		case n.queues[c].ch <- p:
		default:
			start := time.Now()
			n.queues[c].ch <- p
			d := time.Since(start)
			n.sendStall.Add(int64(d))
			tk.SpanAt("flow", "send-stall", start, d)
		}
	}
	add := func(c int, data []byte) {
		p := out[c]
		if p == nil {
			p = n.pool.get()
			out[c] = p
		}
		p.add(data)
		if len(p.recs) >= n.cfg.PacketSize {
			send(c, false)
		}
	}
	// route copies one record image out of this machine's buffer straight
	// into the outgoing packet's arena — the shared-nothing boundary —
	// then releases the pin; no intermediate per-record allocation.
	route := func(r Rec) {
		switch {
		case n.cfg.Broadcast:
			for c := range out {
				add(c, r.Data)
			}
		case part != nil:
			if c := part(r.Data); c < 0 || c >= len(out) {
				n.setErr(fmt.Errorf("core: netexchange: partition returned %d", c))
			} else {
				add(c, r.Data)
			}
		default:
			add(0, r.Data)
		}
		r.Unfix()
	}
	if n.cfg.BatchSize > 0 {
		// Batch protocol: amortise the iterator boundary by pulling a
		// whole batch per call, then route its images as before. One
		// batch per producer is reused for the entire run.
		src := AsBatch(input)
		b := NewBatch(n.cfg.BatchSize)
		for {
			if nerr := src.NextBatch(b); nerr != nil {
				n.setErr(nerr)
				break
			}
			if b.Len() == 0 {
				break
			}
			xmBatchPulls.Add(1)
			xmBatchRecords.Add(int64(b.Len()))
			for _, r := range b.Recs() {
				route(r)
			}
			// Every pin was released by route; Reset drops the stale
			// references (and returns any lent packet) without unfixing.
			b.Reset()
			if wo != nil && wo.err != nil {
				// The wire is gone; pulling more records serves nobody.
				break
			}
		}
	} else {
		for {
			r, ok, nerr := input.Next()
			if nerr != nil {
				n.setErr(nerr)
				break
			}
			if !ok {
				break
			}
			route(r)
			if wo != nil && wo.err != nil {
				break
			}
		}
	}
	for c := range out {
		send(c, true)
	}
	if tk != nil {
		tk.SpanAt1("exchange", "produce", begin, time.Since(begin), "packets", n.packets.Load())
	}
	// No shared buffer: nothing the consumers hold can reference this
	// machine's memory, so the producer may close immediately — the
	// shutdown handshake of the shared-memory exchange is unnecessary.
	if cerr := input.Close(); cerr != nil {
		n.setErr(cerr)
	}
}

func (n *NetExchange) broadcastEOS(tk *trace.Track) {
	if n.cfg.Transport != nil {
		// The producer failed before streaming anything: still open its
		// connections so each consumer's accept loop sees the expected
		// conn count, and terminate each with an error-EOS frame.
		wo := newWireOut(n)
		defer wo.close()
		msg := "producer failed before start"
		if e := n.firstErr(); e != nil {
			msg = e.Error()
		}
		for c := range n.queues {
			tk.Instant1("exchange", "eos", "consumer", int64(c))
			if _, err := wo.sendPacket(c, nil, true, msg); err != nil {
				n.setErr(err)
			}
		}
		return
	}
	for c, q := range n.queues {
		n.packets.Add(1)
		xmNetPackets.Add(1)
		n.cfg.Meter.WireSend(0)
		tk.Instant1("exchange", "eos", "consumer", int64(c))
		p := n.pool.get()
		p.eos = true
		p.err = n.firstErr()
		q.ch <- p
	}
}

// simulateWire models the interconnect cost of one packet.
func (n *NetExchange) simulateWire(size int) {
	d := n.cfg.Latency
	if n.cfg.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / n.cfg.Bandwidth)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Consumer returns consumer endpoint c: an iterator on the consumer
// machine that materialises arriving records into that machine's buffer.
func (n *NetExchange) Consumer(c int) Iterator {
	return &netConsumer{x: n, idx: c}
}

type netConsumer struct {
	x   *NetExchange
	idx int
	tk  *trace.Track

	w    *ResultWriter
	cur  *netPacket
	pos  int
	open bool
	done bool

	// pendErr is an error carried by a packet whose record images were
	// already materialised into a batch: records go out first, the error
	// surfaces on the next NextBatch call, mirroring the row path's
	// records-then-error order.
	pendErr error
}

// Schema implements Iterator.
func (c *netConsumer) Schema() *record.Schema { return c.x.cfg.Schema }

// Open implements Iterator.
func (c *netConsumer) Open() error {
	if c.open {
		return errState("netexchange", "consumer already open")
	}
	if c.idx < 0 || c.idx >= c.x.cfg.Consumers {
		return errState("netexchange", "consumer index out of range")
	}
	env := c.x.cfg.ConsumerEnv(c.idx)
	if env == nil {
		return errState("netexchange", "nil consumer env")
	}
	w, err := env.NewResultWriter("netx", c.x.cfg.Schema)
	if err != nil {
		return err
	}
	c.w = w
	if c.tk == nil && c.x.cfg.Tracer.Enabled() {
		c.tk = c.x.cfg.Tracer.NewTrackOn(c.x.consumerPID(c.idx), fmt.Sprintf("netx%d.consumer%d", c.x.xid, c.idx))
	}
	c.x.ensureStarted()
	c.cur, c.pos, c.done = nil, 0, false
	c.pendErr = nil
	c.open = true
	return nil
}

// NextBatch implements BatchIterator natively: one popped wire packet's
// record images are materialised into the consumer machine's buffer and
// handed out as a whole batch — one channel receive and one packet
// recycle per batch instead of per record. A packet that also carries an
// error still hands its records out first; the error surfaces on the
// following call, as in the row path.
func (c *netConsumer) NextBatch(b *Batch) error {
	if !c.open {
		return errState("netexchange", "consumer next before open")
	}
	b.Reset()
	if c.pendErr != nil {
		err := c.pendErr
		c.pendErr = nil
		return err
	}
	q := c.x.queues[c.idx]
	for {
		if p := c.cur; p != nil {
			pos := c.pos
			c.cur, c.pos = nil, 0
			if p.err != nil {
				c.pendErr = p.err
			}
			for _, data := range p.recs[pos:] {
				r, err := c.w.WriteBytes(data)
				if err != nil {
					c.x.pool.put(p)
					// The local write failure wins, but the packet's own
					// error must not vanish with it: park it in the hub so
					// Close still reports the producer-side failure.
					if c.pendErr != nil {
						c.x.setErr(c.pendErr)
					}
					c.pendErr = nil
					b.Release()
					return err
				}
				b.Append(r)
			}
			c.x.pool.put(p)
			if b.Len() > 0 {
				return nil
			}
			if err := c.pendErr; err != nil {
				c.pendErr = nil
				return err
			}
			continue
		}
		if c.done {
			return nil
		}
		var p *netPacket
		select {
		case p = <-q.ch:
		default:
			start := time.Now()
			p = <-q.ch
			d := time.Since(start)
			c.x.recvWait.Add(int64(d))
			c.tk.SpanAt("flow", "recv-wait", start, d)
		}
		c.tk.FlowIn("wire", "wire-recv", p.flow, "records", int64(len(p.recs)))
		if p.eos {
			q.eos++
			if q.eos == c.x.cfg.Producers {
				c.done = true
			}
			if len(p.recs) == 0 && p.err == nil {
				c.x.pool.put(p)
				continue
			}
		}
		c.cur = p
	}
}

// Next implements Iterator: received images become pinned residents of
// the consumer machine's buffer.
func (c *netConsumer) Next() (Rec, bool, error) {
	if !c.open {
		return Rec{}, false, errState("netexchange", "consumer next before open")
	}
	q := c.x.queues[c.idx]
	for {
		if c.cur != nil && c.pos < len(c.cur.recs) {
			data := c.cur.recs[c.pos]
			c.pos++
			r, err := c.w.WriteBytes(data)
			if err != nil {
				return Rec{}, false, err
			}
			return r, true, nil
		}
		if c.cur != nil && c.cur.err != nil {
			err := c.cur.err
			c.x.pool.put(c.cur)
			c.cur = nil
			return Rec{}, false, err
		}
		if c.cur != nil {
			// Every image has been materialised into this machine's
			// buffer: return the drained packet to the free list.
			c.x.pool.put(c.cur)
		}
		c.cur, c.pos = nil, 0
		if c.done {
			return Rec{}, false, nil
		}
		var p *netPacket
		select {
		case p = <-q.ch:
		default:
			start := time.Now()
			p = <-q.ch
			d := time.Since(start)
			c.x.recvWait.Add(int64(d))
			c.tk.SpanAt("flow", "recv-wait", start, d)
		}
		c.tk.FlowIn("wire", "wire-recv", p.flow, "records", int64(len(p.recs)))
		if p.eos {
			q.eos++
			if q.eos == c.x.cfg.Producers {
				c.done = true
			}
			if len(p.recs) == 0 && p.err == nil {
				c.x.pool.put(p)
				continue
			}
		}
		c.cur = p
	}
}

// Close implements Iterator.
func (c *netConsumer) Close() error {
	if !c.open {
		return errState("netexchange", "consumer close before open")
	}
	c.open = false
	// Drain so producers never block on the bounded channel, recycling
	// everything that was still in flight.
	q := c.x.queues[c.idx]
	for q.eos < c.x.cfg.Producers {
		p := <-q.ch
		if p.eos {
			q.eos++
		}
		if p.err != nil {
			// A drained error packet is still an error: an early Close
			// (LIMIT, cancellation, a sibling's failure) must not fold a
			// transport failure into end-of-stream silence.
			c.x.setErr(p.err)
		}
		c.x.pool.put(p)
	}
	if c.cur != nil {
		c.x.pool.put(c.cur)
		c.cur = nil
	}
	err := c.w.Dispose()
	c.w = nil
	if e := c.x.firstErr(); err == nil && e != nil {
		// Surface producer errors that arrived after the last Next.
		err = e
	}
	return err
}
