package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
)

// TestExchangeStressParallelSchedulers forces several scheduler threads
// (even on a single CPU) and runs a deep exchange topology with flow
// control, partitioning and small packets many times — shaking out races
// in the port, the shutdown handshake, and the buffer's two-level locking.
func TestExchangeStressParallelSchedulers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for round := 0; round < 5; round++ {
		env := newTestEnv(t, 2048)
		const n = 3000
		files := env.makePartitionedInts(t, "p", n, 4)

		// 4 scanners -> 3 middle groups (filter) -> 1 consumer.
		lower, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   4,
			Consumers:   3,
			PacketSize:  3,
			FlowControl: true,
			Slack:       2,
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(intSchema, record.Key{0}, 3)
			},
			NewProducer: func(g int) (Iterator, error) {
				return NewFileScan(files[g], nil, false)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		upper, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   3,
			Consumers:   1,
			PacketSize:  5,
			FlowControl: true,
			Slack:       3,
			NewProducer: func(g int) (Iterator, error) {
				return NewFilterExpr(lower.Consumer(g), "v >= 0", expr.Compiled)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		count, err := Drain(upper.Consumer(0))
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("round %d: %d records, want %d", round, count, n)
		}
		env.checkNoPinLeak(t)
	}
}

// TestBufferContentionUnderParallelSchedulers drives many goroutines
// through a small pool so eviction, restart and write-back paths all
// contend — asserting only invariants (pins balanced, data intact).
func TestBufferContentionUnderParallelSchedulers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	env := newTestEnv(t, 16) // deliberately tiny pool
	const workers = 6
	files := env.makePartitionedInts(t, "p", 1200, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				sc, err := NewFileScan(files[w], nil, false)
				if err != nil {
					errs[w] = err
					return
				}
				n, err := Drain(sc)
				if err != nil {
					errs[w] = err
					return
				}
				if n != 200 {
					errs[w] = errState("stress", "lost records")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	env.checkNoPinLeak(t)
}

// TestExchangeShutdownAbandonStress hammers the shutdown handshake: a
// consumer abandons mid-stream while many producers are blocked on
// flow-control tokens and the port. Close returning at all proves no
// producer is stuck waiting for allowClose; the goroutine count
// returning to its baseline proves the drain released every producer
// and none leaked. Run under -race this also exercises the handshake's
// memory ordering.
func TestExchangeShutdownAbandonStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	env := newTestEnv(t, 2048)
	f := env.makeInts(t, "t", shuffled(2000, 7)...)
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		x, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   8,
			Consumers:   1,
			PacketSize:  2,
			FlowControl: true,
			Slack:       1, // minimal slack: producers block almost immediately
			NewProducer: func(g int) (Iterator, error) {
				return NewFileScan(f, nil, false)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c := x.Consumer(0)
		if err := c.Open(); err != nil {
			t.Fatal(err)
		}
		// Read a handful of rows so every producer is up and most are
		// parked on a flow-control token, then walk away.
		for i := 0; i < 3+round%5; i++ {
			r, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			r.Unfix()
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		env.checkNoPinLeak(t)
	}
	// Producers exit asynchronously after Close returns; give them a
	// bounded window to unwind before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after abandoning consumers\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExchangeEarlyCloseStress closes consumers at random points while
// producers are mid-stream, repeatedly.
func TestExchangeEarlyCloseStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	env := newTestEnv(t, 1024)
	f := env.makeInts(t, "t", shuffled(4000, 21)...)
	for round := 0; round < 10; round++ {
		x, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   3,
			Consumers:   1,
			PacketSize:  4,
			FlowControl: true,
			Slack:       1,
			NewProducer: func(g int) (Iterator, error) {
				return NewFileScan(f, nil, false)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c := x.Consumer(0)
		if err := c.Open(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < round*37; i++ {
			r, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			r.Unfix()
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		env.checkNoPinLeak(t)
	}
}
