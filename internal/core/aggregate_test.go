package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/record"
)

// runAgg executes an aggregation with either algorithm and returns rows
// sorted by the first column.
func runAgg(t *testing.T, algo string, env *testEnv, in Iterator, groupBy record.Key, aggs []AggSpec) [][]record.Value {
	t.Helper()
	var it Iterator
	var err error
	switch algo {
	case "hash":
		it, err = NewHashAggregate(env.Env, in, groupBy, aggs)
	case "sort":
		spec := make([]record.SortSpec, len(groupBy))
		for i, f := range groupBy {
			spec[i] = record.SortSpec{Field: f}
		}
		it, err = NewSortAggregate(env.Env, NewSort(env.Env, in, spec), groupBy, aggs)
	}
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return record.CompareValues(rows[i][0], rows[j][0]) < 0 })
	return rows
}

func TestAggregateBothAlgorithms(t *testing.T) {
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 256)
		f := env.makeEmp(t, "emp", 100, 4)
		rows := runAgg(t, algo, env, scanOf(t, f), record.Key{1}, []AggSpec{
			{Func: AggCount},
			{Func: AggSum, Field: 2},
			{Func: AggMin, Field: 0},
			{Func: AggMax, Field: 0},
			{Func: AggAvg, Field: 2},
		})
		if len(rows) != 4 {
			t.Fatalf("%s: %d groups, want 4", algo, len(rows))
		}
		// dept 0: ids 0,4,...,96 → count 25, min 0, max 96,
		// sum salary = sum(1000+i) = 25*1000 + (0+4+...+96) = 25000+1200.
		g0 := rows[0]
		if g0[0].I != 0 || g0[1].I != 25 || g0[2].F != 26200 || g0[3].I != 0 || g0[4].I != 96 {
			t.Fatalf("%s: dept0 = %v", algo, g0)
		}
		if math.Abs(g0[5].F-26200.0/25) > 1e-9 {
			t.Fatalf("%s: avg = %v", algo, g0[5])
		}
		env.checkNoPinLeak(t)
		if n := len(env.Temp.List()); n != 0 {
			t.Fatalf("%s: %d temp files left", algo, n)
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 64)
		f := env.makeInts(t, "t")
		rows := runAgg(t, algo, env, scanOf(t, f), record.Key{0}, []AggSpec{{Func: AggCount}})
		if len(rows) != 0 {
			t.Fatalf("%s: %d groups from empty input", algo, len(rows))
		}
		env.checkNoPinLeak(t)
	}
}

func TestAggregateSingleGroupPerKey(t *testing.T) {
	// Every key distinct: as many groups as rows.
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 256)
		f := env.makeInts(t, "t", 5, 3, 1, 4, 2)
		rows := runAgg(t, algo, env, scanOf(t, f), record.Key{0}, []AggSpec{{Func: AggCount}})
		if len(rows) != 5 {
			t.Fatalf("%s: %d groups, want 5", algo, len(rows))
		}
		for _, r := range rows {
			if r[1].I != 1 {
				t.Fatalf("%s: group %v count != 1", algo, r)
			}
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeEmp(t, "emp", 1, 1)
	if _, err := NewHashAggregate(env.Env, scanOf(t, f), record.Key{99}, nil); err == nil {
		t.Fatal("bad group field accepted")
	}
	if _, err := NewHashAggregate(env.Env, scanOf(t, f), record.Key{0},
		[]AggSpec{{Func: AggSum, Field: 3}}); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, err := NewSortAggregate(env.Env, scanOf(t, f), record.Key{0},
		[]AggSpec{{Func: AggAvg, Field: 3}}); err == nil {
		t.Fatal("avg over string accepted")
	}
	if _, err := NewHashAggregate(env.Env, scanOf(t, f), record.Key{0},
		[]AggSpec{{Func: AggMin, Field: -1}}); err == nil {
		t.Fatal("negative agg field accepted")
	}
}

func TestDistinctBothAlgorithms(t *testing.T) {
	mk := func(env *testEnv, in Iterator, algo string) (Iterator, error) {
		if algo == "hash" {
			return NewHashDistinct(env.Env, in)
		}
		return NewSortDistinct(env.Env, in)
	}
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 256)
		f := env.makeInts(t, "t", 3, 1, 3, 2, 1, 1, 3)
		d, err := mk(env, scanOf(t, f), algo)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(d)
		if err != nil {
			t.Fatal(err)
		}
		got := sortedInts(intsOf(rows, 0))
		if !equalInts(got, []int64{1, 2, 3}) {
			t.Fatalf("%s distinct = %v", algo, got)
		}
		env.checkNoPinLeak(t)
	}
}

func TestAggregateNamedColumns(t *testing.T) {
	env := newTestEnv(t, 64)
	f := env.makeEmp(t, "emp", 4, 2)
	agg, err := NewHashAggregate(env.Env, scanOf(t, f), record.Key{1}, []AggSpec{
		{Func: AggCount, Name: "n"},
		{Func: AggMax, Field: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := agg.Schema()
	if s.Index("n") != 1 || s.Index("max_salary") != 2 {
		t.Fatalf("schema = %v", s)
	}
	if s.Field(2).Type != record.TFloat {
		t.Fatal("max type not preserved")
	}
}

func TestDivisionBothAlgorithms(t *testing.T) {
	// Dividend: (student, course); divisor: required courses.
	dividend := [][2]int64{
		{1, 101}, {1, 102}, {1, 103}, // student 1 has all three
		{2, 101}, {2, 103}, // student 2 misses 102
		{3, 101}, {3, 102}, {3, 103}, {3, 104}, // student 3 has extra
		{4, 104}, // student 4 has only an irrelevant course
	}
	divisor := []int64{101, 102, 103}
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 256)
		dv := env.makePairs(t, "dividend", dividend)
		ds := env.makeInts(t, "divisor", divisor...)
		var it Iterator
		var err error
		if algo == "hash" {
			it, err = NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		} else {
			it, err = NewSortDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		got := sortedInts(intsOf(rows, 0))
		if !equalInts(got, []int64{1, 3}) {
			t.Fatalf("%s division = %v, want [1 3]", algo, got)
		}
		env.checkNoPinLeak(t)
		if n := len(env.Temp.List()); n != 0 {
			t.Fatalf("%s: %d temp files left", algo, n)
		}
	}
}

func TestDivisionEmptyDivisor(t *testing.T) {
	// x ÷ ∅ is conventionally all quotients; Volcano's hash division
	// returns none (a quotient must match at least one divisor row to be
	// seen). We assert the implemented behaviour: empty output.
	for _, algo := range []string{"hash", "sort"} {
		env := newTestEnv(t, 128)
		dv := env.makePairs(t, "dividend", [][2]int64{{1, 101}})
		ds := env.makeInts(t, "divisor")
		var it Iterator
		var err error
		if algo == "hash" {
			it, err = NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		} else {
			it, err = NewSortDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 0 {
			t.Fatalf("%s: empty divisor produced %v", algo, rows)
		}
	}
}

func TestDivisionPartialMode(t *testing.T) {
	env := newTestEnv(t, 256)
	dv := env.makePairs(t, "dividend", [][2]int64{{1, 101}, {1, 102}, {2, 101}})
	ds := env.makeInts(t, "divisor", 101, 102)
	d, err := NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
		record.Key{0}, record.Key{1}, record.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPartial(true); err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("partial rows = %d", len(rows))
	}
	counts := map[int64]int64{}
	for _, r := range rows {
		counts[r[0].I] = r[1].I
	}
	if counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("partial counts = %v", counts)
	}
	env.checkNoPinLeak(t)
}

func TestDivisionValidation(t *testing.T) {
	env := newTestEnv(t, 64)
	dv := env.makePairs(t, "d", nil)
	ds := env.makeInts(t, "s")
	if _, err := NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds), nil, record.Key{1}, record.Key{0}); err == nil {
		t.Fatal("empty quotient key accepted")
	}
	if _, err := NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds), record.Key{0}, record.Key{1}, record.Key{0, 1}); err == nil {
		t.Fatal("divisor key arity mismatch accepted")
	}
	if _, err := NewSortDivision(env.Env, scanOf(t, dv), scanOf(t, ds), record.Key{99}, record.Key{1}, record.Key{0}); err == nil {
		t.Fatal("out-of-range quotient field accepted")
	}
}
