package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/file"
)

// FuzzBatchDecode fuzzes the batch protocol's decode seam: a table of
// fuzzer-chosen size is scanned and filtered once record-at-a-time and
// once in batches of a fuzzer-chosen size — so the final batch is
// usually partial — with one record image corrupted in place at a
// fuzzer-chosen position. Record decode and support-function evaluation
// at every batch boundary must agree with row mode exactly: same rows
// in the same order, or an error in both modes. Corruption keeps the
// image's length (storage guarantees records at least fixed-section
// sized; the hot-path accessors trust that), so a flipped var-length
// bound must surface as a clean Decode error, never a panic or a mode
// divergence.
func FuzzBatchDecode(f *testing.F) {
	f.Add(uint16(0), uint8(0), []byte(nil))
	f.Add(uint16(1), uint8(1), []byte("x"))
	f.Add(uint16(83), uint8(7), []byte("hello"))
	f.Add(uint16(100), uint8(83), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint16(257), uint8(96), make([]byte, 40))

	schema := record.MustSchema(
		record.Field{Name: "v", Type: record.TInt},
		record.Field{Name: "s", Type: record.TString},
	)

	f.Fuzz(func(t *testing.T, n uint16, sizeByte uint8, raw []byte) {
		rows := int(n % 301)
		size := int(sizeByte%97) + 1
		env := newTestEnv(t, 256)
		tbl, err := env.base.Create("t", schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			tag := ""
			if len(raw) > 0 {
				tag = string(raw[i%len(raw)])
			}
			if _, err := tbl.Insert(schema.MustEncode(record.Int(int64(i)), record.Str(tag))); err != nil {
				t.Fatal(err)
			}
		}
		// Corrupt one record image in place: the scan hands it out like
		// any other record, and decode sees it at whatever batch offset
		// it lands on. XOR-ing a fuzzer-chosen byte can hit the int
		// payload (values differ, both modes equally) or a var-length
		// end offset (both modes must fail decode identically).
		if len(raw) >= 2 {
			img := schema.MustEncode(record.Int(int64(rows)), record.Str(string(raw)))
			if len(img) <= file.MaxRecordLen {
				img[int(raw[0])%len(img)] ^= raw[len(raw)-1]
				if _, err := tbl.Insert(img); err != nil {
					t.Fatal(err)
				}
			}
		}

		build := func(size int) Iterator {
			sc, err := NewFileScan(tbl, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			flt, err := NewFilterExpr(sc, "v % 3 <> 1", expr.Compiled)
			if err != nil {
				t.Fatal(err)
			}
			if size > 0 {
				flt.EnableBatch(size)
			}
			return flt
		}

		rowRows, rowErr := Collect(build(0))
		batchRows, batchErr := CollectBatch(build(size), size)
		if (rowErr == nil) != (batchErr == nil) {
			t.Fatalf("mode divergence: row err=%v, batch(size %d) err=%v", rowErr, size, batchErr)
		}
		if rowErr != nil {
			env.checkNoPinLeak(t)
			return
		}
		if len(rowRows) != len(batchRows) {
			t.Fatalf("row mode %d rows, batch size %d gave %d", len(rowRows), size, len(batchRows))
		}
		for i := range rowRows {
			if render(rowRows[i]) != render(batchRows[i]) {
				t.Fatalf("row %d: %q (row mode) vs %q (batch size %d)", i, render(rowRows[i]), render(batchRows[i]), size)
			}
		}

		// The batch predicate helper over the surviving images must agree
		// with per-record evaluation (partial final batch included).
		pred, err := expr.ParsePredicate("v % 3 <> 1", schema, expr.Interpreted)
		if err != nil {
			t.Fatal(err)
		}
		datas := make([][]byte, 0, len(rowRows))
		for _, r := range rowRows {
			data, err := schema.Encode(r)
			if err != nil {
				t.Fatal(err)
			}
			datas = append(datas, data)
		}
		for off := 0; off < len(datas); off += size {
			end := off + size
			if end > len(datas) {
				end = len(datas)
			}
			keep := make([]bool, end-off)
			nok, err := expr.PredicateBatch(pred, datas[off:end], keep)
			if err != nil {
				t.Fatalf("PredicateBatch at offset %d: %v", off, err)
			}
			if nok != end-off {
				t.Fatalf("PredicateBatch stopped at %d of %d", nok, end-off)
			}
			for i, k := range keep {
				if !k {
					t.Fatalf("batch predicate dropped surviving row %d", off+i)
				}
			}
		}
		env.checkNoPinLeak(t)
	})
}

func render(row []record.Value) string {
	cells := make([]string, len(row))
	for i, v := range row {
		cells[i] = v.String()
	}
	return strings.Join(cells, "\x1f")
}
