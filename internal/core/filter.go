package core

import (
	"repro/internal/expr"
	"repro/internal/record"
)

// Filter passes through input records satisfying a predicate support
// function; rejected records are unfixed immediately ("the operator can
// ... unfix it, e.g., when a predicate fails", paper §3). Filter creates
// no new records, so qualifying records flow through with their pins.
type Filter struct {
	input Iterator
	pred  expr.Predicate
	open  bool
}

// NewFilter wraps input with the given predicate.
func NewFilter(input Iterator, pred expr.Predicate) *Filter {
	return &Filter{input: input, pred: pred}
}

// NewFilterExpr compiles src against the input schema in the given support
// function mode and wraps input.
func NewFilterExpr(input Iterator, src string, mode expr.Mode) (*Filter, error) {
	pred, err := expr.ParsePredicate(src, input.Schema(), mode)
	if err != nil {
		return nil, err
	}
	return NewFilter(input, pred), nil
}

// Schema implements Iterator.
func (f *Filter) Schema() *record.Schema { return f.input.Schema() }

// Open implements Iterator.
func (f *Filter) Open() error {
	if f.open {
		return errState("filter", "already open")
	}
	if err := f.input.Open(); err != nil {
		return err
	}
	f.open = true
	return nil
}

// Next implements Iterator.
func (f *Filter) Next() (Rec, bool, error) {
	if !f.open {
		return Rec{}, false, errState("filter", "next before open")
	}
	for {
		r, ok, err := f.input.Next()
		if err != nil || !ok {
			return Rec{}, false, err
		}
		keep, err := f.pred(r.Data)
		if err != nil {
			r.Unfix()
			return Rec{}, false, err
		}
		if keep {
			return r, true, nil
		}
		r.Unfix()
	}
}

// Close implements Iterator.
func (f *Filter) Close() error {
	if !f.open {
		return errState("filter", "close before open")
	}
	f.open = false
	return f.input.Close()
}

// Project computes new records from input records using projection support
// functions, materialising the output in the buffer via a virtual file
// (new records must be fixed before being passed on) and unfixing inputs.
type Project struct {
	env    *Env
	input  Iterator
	proj   expr.Projector
	schema *record.Schema
	w      *ResultWriter
}

// NewProject builds a projection from expressions with optional output
// names.
func NewProject(env *Env, input Iterator, exprs []expr.Expr, names []string, mode expr.Mode) (*Project, error) {
	proj, out, err := expr.NewProjector(exprs, names, input.Schema(), mode)
	if err != nil {
		return nil, err
	}
	return &Project{env: env, input: input, proj: proj, schema: out}, nil
}

// NewProjectExprs parses the given expression sources and builds a
// projection.
func NewProjectExprs(env *Env, input Iterator, srcs []string, names []string, mode expr.Mode) (*Project, error) {
	exprs := make([]expr.Expr, len(srcs))
	for i, s := range srcs {
		e, err := expr.Parse(s)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	return NewProject(env, input, exprs, names, mode)
}

// Schema implements Iterator.
func (p *Project) Schema() *record.Schema { return p.schema }

// Open implements Iterator.
func (p *Project) Open() error {
	if p.w != nil {
		return errState("project", "already open")
	}
	w, err := p.env.NewResultWriter("project", p.schema)
	if err != nil {
		return err
	}
	if err := p.input.Open(); err != nil {
		_ = w.Dispose()
		return err
	}
	p.w = w
	return nil
}

// Next implements Iterator.
func (p *Project) Next() (Rec, bool, error) {
	if p.w == nil {
		return Rec{}, false, errState("project", "next before open")
	}
	r, ok, err := p.input.Next()
	if err != nil || !ok {
		return Rec{}, false, err
	}
	vals, err := p.proj(r.Data)
	if err != nil {
		r.Unfix()
		return Rec{}, false, err
	}
	out, err := p.w.Write(vals)
	r.Unfix()
	if err != nil {
		return Rec{}, false, err
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error {
	if p.w == nil {
		return errState("project", "close before open")
	}
	err := p.input.Close()
	if derr := p.w.Dispose(); err == nil {
		err = derr
	}
	p.w = nil
	return err
}
