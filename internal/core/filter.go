package core

import (
	"repro/internal/expr"
	"repro/internal/record"
)

// Filter passes through input records satisfying a predicate support
// function; rejected records are unfixed immediately ("the operator can
// ... unfix it, e.g., when a predicate fails", paper §3). Filter creates
// no new records, so qualifying records flow through with their pins.
type Filter struct {
	input Iterator
	pred  expr.Predicate
	open  bool

	// Batch-mode state: the input batch being filtered, the cursor into
	// it, and the scratch slices PredicateBatch evaluates over — one
	// support-function sweep per input batch instead of one closure call
	// per Next.
	batch int
	bin   BatchIterator
	inb   *Batch
	inpos int
	datas [][]byte
	keep  []bool
}

// NewFilter wraps input with the given predicate.
func NewFilter(input Iterator, pred expr.Predicate) *Filter {
	return &Filter{input: input, pred: pred}
}

// NewFilterExpr compiles src against the input schema in the given support
// function mode and wraps input.
func NewFilterExpr(input Iterator, src string, mode expr.Mode) (*Filter, error) {
	pred, err := expr.ParsePredicate(src, input.Schema(), mode)
	if err != nil {
		return nil, err
	}
	return NewFilter(input, pred), nil
}

// Schema implements Iterator.
func (f *Filter) Schema() *record.Schema { return f.input.Schema() }

// Open implements Iterator.
func (f *Filter) Open() error {
	if f.open {
		return errState("filter", "already open")
	}
	if err := f.input.Open(); err != nil {
		return err
	}
	f.open = true
	return nil
}

// Next implements Iterator.
func (f *Filter) Next() (Rec, bool, error) {
	if !f.open {
		return Rec{}, false, errState("filter", "next before open")
	}
	for {
		r, ok, err := f.input.Next()
		if err != nil || !ok {
			return Rec{}, false, err
		}
		keep, err := f.pred(r.Data)
		if err != nil {
			r.Unfix()
			return Rec{}, false, err
		}
		if keep {
			return r, true, nil
		}
		r.Unfix()
	}
}

// EnableBatch implements BatchConfigurable: NextBatch refills the input
// batch with pulls of the given size.
func (f *Filter) EnableBatch(size int) { f.batch = size }

// NextBatch implements BatchIterator natively: it pulls whole input
// batches, evaluates the predicate support function over each batch in
// one PredicateBatch sweep, and compacts the qualifying records into b,
// unfixing rejects immediately as the row path does.
func (f *Filter) NextBatch(b *Batch) error {
	if !f.open {
		return errState("filter", "next before open")
	}
	b.Reset()
	if f.bin == nil {
		f.bin = AsBatch(f.input)
		size := f.batch
		if size <= 0 {
			size = b.Target()
		}
		f.inb = NewBatch(size)
	}
	for {
		for f.inpos < f.inb.Len() {
			if b.Full() {
				return nil
			}
			r := f.inb.Recs()[f.inpos]
			if f.keep[f.inpos] {
				b.Append(r)
			} else {
				r.Unfix()
			}
			f.inpos++
		}
		if err := f.bin.NextBatch(f.inb); err != nil {
			f.inpos = 0
			b.Release()
			return err
		}
		f.inpos = 0
		n := f.inb.Len()
		if n == 0 {
			return nil // end of stream; b may carry a final partial batch
		}
		f.datas = f.datas[:0]
		for _, r := range f.inb.Recs() {
			f.datas = append(f.datas, r.Data)
		}
		if cap(f.keep) < n {
			f.keep = make([]bool, n)
		}
		f.keep = f.keep[:n]
		if _, err := expr.PredicateBatch(f.pred, f.datas, f.keep); err != nil {
			f.inb.Release()
			b.Release()
			return err
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error {
	if !f.open {
		return errState("filter", "close before open")
	}
	f.open = false
	if f.inb != nil {
		// Release input records judged but not yet served.
		for _, r := range f.inb.Recs()[f.inpos:] {
			r.Unfix()
		}
		f.inb.Reset()
		f.inpos = 0
	}
	return f.input.Close()
}

// Project computes new records from input records using projection support
// functions, materialising the output in the buffer via a virtual file
// (new records must be fixed before being passed on) and unfixing inputs.
type Project struct {
	env    *Env
	input  Iterator
	proj   expr.Projector
	schema *record.Schema
	w      *ResultWriter

	batch int
	src   recSource
}

// NewProject builds a projection from expressions with optional output
// names.
func NewProject(env *Env, input Iterator, exprs []expr.Expr, names []string, mode expr.Mode) (*Project, error) {
	proj, out, err := expr.NewProjector(exprs, names, input.Schema(), mode)
	if err != nil {
		return nil, err
	}
	return &Project{env: env, input: input, proj: proj, schema: out}, nil
}

// NewProjectExprs parses the given expression sources and builds a
// projection.
func NewProjectExprs(env *Env, input Iterator, srcs []string, names []string, mode expr.Mode) (*Project, error) {
	exprs := make([]expr.Expr, len(srcs))
	for i, s := range srcs {
		e, err := expr.Parse(s)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	return NewProject(env, input, exprs, names, mode)
}

// Schema implements Iterator.
func (p *Project) Schema() *record.Schema { return p.schema }

// Open implements Iterator.
func (p *Project) Open() error {
	if p.w != nil {
		return errState("project", "already open")
	}
	w, err := p.env.NewResultWriter("project", p.schema)
	if err != nil {
		return err
	}
	if err := p.input.Open(); err != nil {
		_ = w.Dispose()
		return err
	}
	p.w = w
	return nil
}

// Next implements Iterator.
func (p *Project) Next() (Rec, bool, error) {
	if p.w == nil {
		return Rec{}, false, errState("project", "next before open")
	}
	r, ok, err := p.input.Next()
	if err != nil || !ok {
		return Rec{}, false, err
	}
	vals, err := p.proj(r.Data)
	if err != nil {
		r.Unfix()
		return Rec{}, false, err
	}
	out, err := p.w.Write(vals)
	r.Unfix()
	if err != nil {
		return Rec{}, false, err
	}
	return out, true, nil
}

// EnableBatch implements BatchConfigurable.
func (p *Project) EnableBatch(size int) { p.batch = size }

// NextBatch implements BatchIterator: the projection still materialises
// one output record per input record, but both the input pull and the
// output delivery are amortised over whole batches.
func (p *Project) NextBatch(b *Batch) error {
	if p.w == nil {
		return errState("project", "next before open")
	}
	b.Reset()
	if p.src == nil {
		p.src = inputSource(p.input, p.batch)
	}
	for !b.Full() {
		r, ok, err := p.src.next()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			return nil
		}
		vals, err := p.proj(r.Data)
		if err != nil {
			r.Unfix()
			p.src.release()
			b.Release()
			return err
		}
		out, err := p.w.Write(vals)
		r.Unfix()
		if err != nil {
			p.src.release()
			b.Release()
			return err
		}
		b.Append(out)
	}
	return nil
}

// Close implements Iterator.
func (p *Project) Close() error {
	if p.w == nil {
		return errState("project", "close before open")
	}
	if p.src != nil {
		p.src.release()
		p.src = nil
	}
	err := p.input.Close()
	if derr := p.w.Dispose(); err == nil {
		err = derr
	}
	p.w = nil
	return err
}
