package core

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/record"
	"repro/internal/storage/file"
)

// batchRecBytes is the accounting size of one batch record slot, used to
// express batch-pool occupancy in bytes for per-query memory attribution.
const batchRecBytes = int64(unsafe.Sizeof(Rec{}))

// DefaultBatchSize is the default number of records per batch. It matches
// the standard exchange packet size so that in batch mode one producer
// pull fills exactly one packet and one popped packet serves exactly one
// consumer batch.
const DefaultBatchSize = 83

// Batch is the unit of the batch-at-a-time protocol: a bounded run of
// records handed from an operator to its caller in one NextBatch call,
// amortising the per-record iterator call chain that dominates the
// row-at-a-time hot path. Ownership follows the record protocol of §3
// unchanged — every record in a returned batch carries one buffer pin
// that the caller must release, hold, or pass on.
//
// A batch normally fills its own reusable storage, but an exchange
// consumer may instead lend it a drained packet wholesale: the packet's
// record slice *is* the batch, and the packet returns to its free list
// on the next Reset. Either way a Batch is single-goroutine state, like
// an iterator endpoint.
type Batch struct {
	recs []Rec
	// own is the batch's owned storage; recs aliases it except while a
	// packet is lent.
	own    []Rec
	target int

	// lent is a queue packet whose recs slice the batch currently serves
	// directly; Reset returns it to lpool.
	lent  *packet
	lpool *packetPool
}

// NewBatch builds an empty batch that aims for target records per refill
// (DefaultBatchSize when target < 1).
func NewBatch(target int) *Batch {
	if target < 1 {
		target = DefaultBatchSize
	}
	return &Batch{own: make([]Rec, 0, target), target: target}
}

// Target returns the batch's nominal fill size. A callee stops appending
// at Target records; a lending source may deliver more in one call (up
// to the packet size) since it hands over storage wholesale.
func (b *Batch) Target() int { return b.target }

// Len returns the number of records currently in the batch.
func (b *Batch) Len() int { return len(b.recs) }

// Full reports whether the batch has reached its target size.
func (b *Batch) Full() bool { return len(b.recs) >= b.target }

// Recs returns the batch's records. The slice is valid until the next
// Reset, Release, or NextBatch refill.
func (b *Batch) Recs() []Rec { return b.recs }

// Append adds one record (whose pin the batch now carries for its
// caller). Appending to a batch serving a lent packet first migrates the
// lent records into owned storage so the packet can return to its pool.
func (b *Batch) Append(r Rec) {
	if b.lent != nil {
		b.own = append(b.own[:0], b.recs...)
		b.recs = b.own
		p, pool := b.lent, b.lpool
		b.lent, b.lpool = nil, nil
		pool.put(p)
	}
	b.recs = append(b.recs, r)
	b.own = b.recs
}

// Reset empties the batch for the next refill: a lent packet goes back
// to its free list and owned storage keeps its capacity. Record
// references are dropped without unfixing — Reset is for records whose
// pins have already moved on. Use Release to discard unconsumed records.
func (b *Batch) Reset() {
	if b.lent != nil {
		p, pool := b.lent, b.lpool
		b.lent, b.lpool = nil, nil
		b.recs = b.own[:0]
		pool.put(p) // put clears the packet's record references
	}
	for i := range b.own {
		b.own[i] = Rec{}
	}
	b.own = b.own[:0]
	b.recs = b.own
}

// Release unfixes every record still in the batch and resets it: the
// error-path counterpart of Reset. Runs of records sharing a page are
// released in bulk.
func (b *Batch) Release() {
	file.UnfixBatch(b.recs)
	b.Reset()
}

// lend makes the batch serve a drained packet's record slice directly
// (the packet's record slice is the batch). The packet returns to pool
// on the batch's next Reset.
func (b *Batch) lend(p *packet, pool *packetPool) {
	b.Reset()
	b.lent, b.lpool = p, pool
	b.recs = p.recs
}

// BatchIterator is the batch-at-a-time face of an operator. NextBatch
// resets b and refills it with the next run of records; b.Len() == 0
// with a nil error means end of stream. On a non-nil error the callee
// leaves b empty (any partially appended records are unfixed by the
// callee). Mixing Next and NextBatch calls on one open iterator is
// allowed — the exchange consumer hands out any partially served packet
// before lending whole ones — but pointless; pick one per consumer.
type BatchIterator interface {
	Iterator
	NextBatch(b *Batch) error
}

// BatchConfigurable is implemented by operators whose *input* consumption
// can switch to batch pulls: EnableBatch(size) makes the operator drain
// its inputs through NextBatch refills of the given size. It affects how
// the operator consumes, not what it produces; output batching is always
// available through NextBatch (natively or via the AsBatch shim).
type BatchConfigurable interface {
	EnableBatch(size int)
}

// AsBatch returns it unchanged when it already speaks the batch protocol
// and otherwise wraps it in the row-at-a-time shim, which fills batches
// with repeated Next calls. The shim is what keeps every row-only
// operator (and external Iterator implementation) valid in batch mode.
func AsBatch(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &rowBatcher{it}
}

// rowBatcher is the row→batch shim.
type rowBatcher struct{ Iterator }

func (s *rowBatcher) NextBatch(b *Batch) error {
	b.Reset()
	for !b.Full() {
		r, ok, err := s.Iterator.Next()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			break
		}
		b.Append(r)
	}
	return nil
}

// recSource is a record-at-a-time cursor over an operator's input,
// letting the drain loops of stop-and-go operators (sort runs, hash
// builds, aggregation) stay record-shaped whether they pull rows or
// batches underneath.
type recSource interface {
	next() (Rec, bool, error)
	// release unfixes buffered records not yet handed out.
	release()
}

// rowSource is the row-pull cursor: a direct pass-through to Next.
type rowSource struct{ it Iterator }

func (s rowSource) next() (Rec, bool, error) { return s.it.Next() }
func (s rowSource) release()                 {}

// batchReader adapts batch pulls back to a record cursor: one NextBatch
// refill per batch amortises the per-record call chain for the consume
// loops of stop-and-go operators.
type batchReader struct {
	src BatchIterator
	b   *Batch
	pos int
}

func newBatchReader(it Iterator, size int) *batchReader {
	return &batchReader{src: AsBatch(it), b: NewBatch(size)}
}

func (r *batchReader) next() (Rec, bool, error) {
	for r.pos >= r.b.Len() {
		if err := r.src.NextBatch(r.b); err != nil {
			r.pos = 0
			return Rec{}, false, err
		}
		r.pos = 0
		if r.b.Len() == 0 {
			return Rec{}, false, nil
		}
	}
	rec := r.b.Recs()[r.pos]
	r.pos++
	return rec, true, nil
}

func (r *batchReader) release() {
	for _, rec := range r.b.Recs()[r.pos:] {
		rec.Unfix()
	}
	r.b.Reset()
	r.pos = 0
}

// inputSource picks the consume cursor for an operator's input: batch
// refills of the given size when the operator was switched with
// EnableBatch, plain Next otherwise.
func inputSource(it Iterator, batch int) recSource {
	if batch > 0 {
		return newBatchReader(it, batch)
	}
	return rowSource{it}
}

// BatchPool is a bounded free list of batches, the batch-protocol
// counterpart of the packet free list: exchange producers draw their
// pull batches here so the steady state allocates nothing per batch.
// Like packetPool it is used non-blockingly from both sides — Get falls
// back to a fresh batch when the list is empty (a miss), Put drops the
// batch when the list is full (a discard) — so every path that is unsure
// whether a batch may be reused can simply not return it.
type BatchPool struct {
	free   chan *Batch
	target int

	hits     atomic.Int64
	misses   atomic.Int64
	discards atomic.Int64

	// meter, when set, attributes the pool's memory footprint to one
	// query: allocations (misses) add to its live/high-water bytes,
	// discards subtract. Steady-state hits and puts touch nothing.
	meter *ResourceMeter
}

// MeterTo attributes the pool's batch memory to m (nil disables). Set
// before the pool is shared between goroutines.
func (p *BatchPool) MeterTo(m *ResourceMeter) { p.meter = m }

// NewBatchPool builds a free list bounded to size batches of the given
// target fill.
func NewBatchPool(size, target int) *BatchPool {
	if size < 1 {
		size = 1
	}
	if target < 1 {
		target = DefaultBatchSize
	}
	return &BatchPool{free: make(chan *Batch, size), target: target}
}

// Get returns a recycled batch, or a freshly allocated one when the free
// list is empty. The batch arrives reset.
func (p *BatchPool) Get() *Batch {
	select {
	case b := <-p.free:
		p.hits.Add(1)
		xmBatchPoolHits.Add(1)
		return b
	default:
		p.misses.Add(1)
		xmBatchPoolMisses.Add(1)
		p.meter.BatchAlloc(int64(p.target) * batchRecBytes)
		return NewBatch(p.target)
	}
}

// Put resets b (returning any lent packet, dropping stale record
// references without unfixing) and returns it to the free list, or drops
// it for the GC when the list is full. The caller must own the batch
// exclusively and must not touch it afterwards.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	b.Reset()
	select {
	case p.free <- b:
	default:
		p.discards.Add(1)
		xmBatchPoolDiscards.Add(1)
		p.meter.BatchFree(int64(cap(b.own)) * batchRecBytes)
	}
}

// Stats snapshots the pool counters.
func (p *BatchPool) Stats() (hits, misses, discards int64) {
	return p.hits.Load(), p.misses.Load(), p.discards.Load()
}

// DrainBatch pulls everything from it through the batch protocol
// (between Open and Close), unfixing each record, and returns the count:
// the batch-mode counterpart of Drain.
func DrainBatch(it Iterator, size int) (int, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	src := AsBatch(it)
	b := NewBatch(size)
	n := 0
	for {
		if err := src.NextBatch(b); err != nil {
			b.Release()
			_ = it.Close()
			return n, err
		}
		if b.Len() == 0 {
			break
		}
		n += b.Len()
		// Coalesced release: records created together share pages, so a
		// batch typically costs one or two pool-lock rounds to unpin.
		file.UnfixBatch(b.Recs())
	}
	b.Reset()
	return n, it.Close()
}

// CollectBatch runs the iterator to completion through the batch
// protocol and returns decoded rows: the batch-mode counterpart of
// Collect, used by the differential harness to compare modes.
func CollectBatch(it Iterator, size int) ([][]record.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	src := AsBatch(it)
	s := it.Schema()
	b := NewBatch(size)
	var rows [][]record.Value
	for {
		if err := src.NextBatch(b); err != nil {
			b.Release()
			_ = it.Close()
			return rows, err
		}
		if b.Len() == 0 {
			break
		}
		for i, r := range b.Recs() {
			vals, err := s.Decode(r.Data)
			if err != nil {
				for _, rest := range b.Recs()[i:] {
					rest.Unfix()
				}
				b.Reset()
				_ = it.Close()
				return rows, err
			}
			for j := range vals {
				vals[j] = vals[j].Copy()
			}
			rows = append(rows, vals)
			r.Unfix()
		}
	}
	b.Reset()
	return rows, it.Close()
}
