package core

import (
	"testing"

	"repro/internal/record"
)

// TestBushyParallelismSortMergeJoin reproduces the paper's §4.2 example
// of bushy parallelism: "in order to sort two inputs into a merge-join in
// parallel, the first or both inputs are separated from the merge-join by
// an exchange operation. The parent process turns to the second sort
// immediately after forking the child process that will produce the first
// input in sorted order. Thus, the two sort operations are working in
// parallel."
func TestBushyParallelismSortMergeJoin(t *testing.T) {
	env := newTestEnv(t, 1024)
	left := env.makePairs(t, "l", pairsMod(600, 37))
	right := env.makePairs(t, "r", pairsMod(400, 37))

	// Both join inputs are sorted behind their own exchange: the sorts
	// run in producer goroutines while the parent opens the join.
	xLeft, err := NewExchange(ExchangeConfig{
		Schema:    left.Schema(),
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			sc, err := NewFileScan(left, nil, false)
			if err != nil {
				return nil, err
			}
			return NewSort(env.Env, sc, []record.SortSpec{{Field: 0}}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	xRight, err := NewExchange(ExchangeConfig{
		Schema:    right.Schema(),
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			sc, err := NewFileScan(right, nil, false)
			if err != nil {
				return nil, err
			}
			return NewSort(env.Env, sc, []record.SortSpec{{Field: 0}}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The merge-join sees two anonymous, already-sorted inputs; it has no
	// way of knowing they are produced by parallel subtrees.
	join, err := NewMergeMatch(env.Env, MatchJoin, xLeft.Consumer(0), xRight.Consumer(0),
		record.Key{0}, record.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}

	// Reference cardinality via the serial hash join.
	ref, err := NewHashMatch(env.Env,
		MatchJoin, scanOf(t, left), scanOf(t, right), record.Key{0}, record.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(refRows) {
		t.Fatalf("bushy merge-join: %d rows, reference %d", len(rows), len(refRows))
	}
	// Output must be sorted on the join key (merge-join property).
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I < rows[i-1][0].I {
			t.Fatal("merge-join output not sorted")
		}
	}
	env.checkNoPinLeak(t)
}

func pairsMod(n int, mod int64) [][2]int64 {
	out := make([][2]int64, n)
	for i := range out {
		out[i] = [2]int64{int64(i) % mod, int64(i)}
	}
	return out
}

// TestBushyBothJoinInputsIntermediate checks the §4.6 comparison with
// GAMMA: "in Volcano, both join inputs can be intermediate results" —
// here each input is itself a filter over a parallel exchange, i.e.
// neither probing nor building relation is a stored file.
func TestBushyBothJoinInputsIntermediate(t *testing.T) {
	env := newTestEnv(t, 1024)
	base := env.makePairs(t, "base", pairsMod(1000, 100))

	mkSide := func(pred string) (Iterator, error) {
		x, err := NewExchange(ExchangeConfig{
			Schema:    base.Schema(),
			Producers: 2,
			Consumers: 1,
			NewProducer: func(g int) (Iterator, error) {
				sc, err := NewFileScan(base, nil, false)
				if err != nil {
					return nil, err
				}
				half, err := NewFilterExpr(sc, map[int]string{0: "b % 2 = 0", 1: "b % 2 = 1"}[g], 0)
				if err != nil {
					return nil, err
				}
				return NewFilterExpr(half, pred, 0)
			},
		})
		if err != nil {
			return nil, err
		}
		return x.Consumer(0), nil
	}
	l, err := mkSide("a < 50")
	if err != nil {
		t.Fatal(err)
	}
	r, err := mkSide("a >= 25")
	if err != nil {
		t.Fatal(err)
	}
	join, err := NewHashMatch(env.Env, MatchJoin, l, r, record.Key{0}, record.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	// Keys 25..49 qualify on both sides: 25 keys × 10 left rows × 10
	// right rows each = 2500 pairs.
	if len(rows) != 25*10*10 {
		t.Fatalf("rows = %d, want 2500", len(rows))
	}
	env.checkNoPinLeak(t)
}
