package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// failOpen is an iterator whose Open always fails with a recognisable
// root-cause error. Schema is valid so operators can be constructed.
type failOpen struct{ schema *record.Schema }

var errRootCause = errors.New("disk on fire")

func (f *failOpen) Schema() *record.Schema { return f.schema }
func (f *failOpen) Open() error            { return errRootCause }
func (f *failOpen) Next() (Rec, bool, error) {
	return Rec{}, false, errState("failopen", "next before open")
}
func (f *failOpen) Close() error { return errState("failopen", "close before open") }

// TestCloseAfterFailedOpen drives every stop-and-go operator through the
// standard drain sequence a plan executor uses on error — Open fails,
// Close runs unconditionally — and asserts (1) Open surfaces the input's
// root-cause error, (2) the Close is a no-op success instead of the
// "close before open" state error that used to mask the cause, (3) a
// *second* Close still reports the state error (the no-op consumes the
// failed-open condition, it does not disable the guard), and (4) no
// buffer pins leak from partially opened inputs.
func TestCloseAfterFailedOpen(t *testing.T) {
	pairSchema := record.MustSchema(
		record.Field{Name: "a", Type: record.TInt},
		record.Field{Name: "b", Type: record.TInt},
	)
	fail := func() Iterator { return &failOpen{schema: intSchema} }
	failPairs := func() Iterator { return &failOpen{schema: pairSchema} }

	cases := []struct {
		name  string
		build func(env *testEnv) (Iterator, error)
	}{
		{"sort", func(env *testEnv) (Iterator, error) {
			return NewSort(env.Env, fail(), []record.SortSpec{{Field: 0}}), nil
		}},
		{"merge-first", func(env *testEnv) (Iterator, error) {
			return NewMergeSpec([]Iterator{fail(), fail()}, []record.SortSpec{{Field: 0}})
		}},
		{"merge-partial", func(env *testEnv) (Iterator, error) {
			// The first input opens and contributes a pinned heap entry
			// before the second input's Open fails: the unwind must unfix
			// and close it (checked by checkNoPinLeak below).
			good := scanOf(t, env.makeInts(t, "good", 1, 2, 3))
			return NewMergeSpec([]Iterator{good, fail()}, []record.SortSpec{{Field: 0}})
		}},
		{"hashmatch-left", func(env *testEnv) (Iterator, error) {
			r := scanOf(t, env.makeInts(t, "r", 1))
			return NewHashMatch(env.Env, MatchJoin, fail(), r, record.Key{0}, record.Key{0})
		}},
		{"hashmatch-right", func(env *testEnv) (Iterator, error) {
			l := scanOf(t, env.makeInts(t, "l", 1))
			return NewHashMatch(env.Env, MatchJoin, l, fail(), record.Key{0}, record.Key{0})
		}},
		{"mergematch-left", func(env *testEnv) (Iterator, error) {
			r := scanOf(t, env.makeInts(t, "r", 1))
			return NewMergeMatchSorted(env.Env, MatchJoin, fail(), r, record.Key{0}, record.Key{0})
		}},
		{"mergematch-right", func(env *testEnv) (Iterator, error) {
			l := scanOf(t, env.makeInts(t, "l", 1))
			return NewMergeMatchSorted(env.Env, MatchJoin, l, fail(), record.Key{0}, record.Key{0})
		}},
		{"hashaggregate", func(env *testEnv) (Iterator, error) {
			return NewHashAggregate(env.Env, fail(), record.Key{0}, []AggSpec{{Func: AggCount}})
		}},
		{"sortaggregate", func(env *testEnv) (Iterator, error) {
			in := NewSort(env.Env, fail(), []record.SortSpec{{Field: 0}})
			return NewSortAggregate(env.Env, in, record.Key{0}, []AggSpec{{Func: AggCount}})
		}},
		{"hashdivision-left", func(env *testEnv) (Iterator, error) {
			ds := scanOf(t, env.makeInts(t, "ds", 1))
			return NewHashDivision(env.Env, failPairs(), ds, record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"hashdivision-right", func(env *testEnv) (Iterator, error) {
			dv := env.makePairs(t, "dv", [][2]int64{{1, 1}})
			return NewHashDivision(env.Env, scanOf(t, dv), fail(), record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"sortdivision", func(env *testEnv) (Iterator, error) {
			ds := scanOf(t, env.makeInts(t, "ds", 1))
			return NewSortDivision(env.Env, failPairs(), ds, record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"nestedloops-left", func(env *testEnv) (Iterator, error) {
			r := scanOf(t, env.makeInts(t, "r", 1))
			return NewNestedLoops(env.Env, fail(), r, "$0 < $1", expr.Interpreted)
		}},
		{"nestedloops-right", func(env *testEnv) (Iterator, error) {
			l := scanOf(t, env.makeInts(t, "l", 1))
			return NewNestedLoops(env.Env, l, fail(), "$0 < $1", expr.Interpreted)
		}},
		{"chooseplan", func(env *testEnv) (Iterator, error) {
			return NewChoosePlan([]Iterator{fail()}, func() (int, error) { return 0, nil })
		}},
		{"chooseplan-decision", func(env *testEnv) (Iterator, error) {
			good := scanOf(t, env.makeInts(t, "t", 1))
			return NewChoosePlan([]Iterator{good}, func() (int, error) { return 0, errRootCause })
		}},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			env := newTestEnv(t, 1024)
			it, err := c.build(env)
			if err != nil {
				t.Fatal(err)
			}
			err = it.Open()
			if err == nil {
				t.Fatal("open of a failing plan succeeded")
			}
			if !errors.Is(err, errRootCause) {
				t.Fatalf("open error does not carry the root cause: %v", err)
			}
			if err := it.Close(); err != nil {
				t.Fatalf("close after failed open must be a no-op, got: %v", err)
			}
			// The no-op consumed the failed-open condition; the protocol
			// guard is back in force.
			if err := it.Close(); err == nil {
				t.Error("second close after failed open succeeded; state guard lost")
			} else if !strings.Contains(err.Error(), "close before open") {
				t.Errorf("second close: unexpected error %v", err)
			}
			env.checkNoPinLeak(t)
			if n := len(env.Temp.List()); n != 0 {
				t.Fatalf("%d temp files left after failed open", n)
			}
		})
	}
}
