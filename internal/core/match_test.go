package core

import (
	"sort"
	"testing"

	"repro/internal/record"
)

// matchMaker builds either algorithm so every test runs against both.
type matchMaker func(env *testEnv, op MatchOp, l, r Iterator, lk, rk record.Key) (Iterator, error)

var matchAlgos = map[string]matchMaker{
	"hash": func(env *testEnv, op MatchOp, l, r Iterator, lk, rk record.Key) (Iterator, error) {
		return NewHashMatch(env.Env, op, l, r, lk, rk)
	},
	"merge": func(env *testEnv, op MatchOp, l, r Iterator, lk, rk record.Key) (Iterator, error) {
		return NewMergeMatchSorted(env.Env, op, l, r, lk, rk)
	},
}

// runMatch executes op over two pair-tables and returns the rows sorted
// for comparison.
func runMatch(t *testing.T, algo string, op MatchOp, left, right [][2]int64, lk, rk record.Key) [][]int64 {
	t.Helper()
	env := newTestEnv(t, 512)
	l := env.makePairs(t, "l", left)
	r := env.makePairs(t, "r", right)
	m, err := matchAlgos[algo](env, op, scanOf(t, l), scanOf(t, r), lk, rk)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	env.checkNoPinLeak(t)
	if n := len(env.Temp.List()); n != 0 {
		t.Fatalf("%s %v: %d temp files left", algo, op, n)
	}
	out := make([][]int64, len(rows))
	for i, row := range rows {
		vals := make([]int64, len(row))
		for j, v := range row {
			vals[j] = v.I
		}
		out[i] = vals
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func rowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

var (
	mLeft  = [][2]int64{{1, 10}, {2, 20}, {2, 21}, {3, 30}, {5, 50}}
	mRight = [][2]int64{{2, 200}, {2, 201}, {3, 300}, {4, 400}}
	k0     = record.Key{0}
)

func TestMatchJoin(t *testing.T) {
	want := [][]int64{
		{2, 20, 2, 200}, {2, 20, 2, 201},
		{2, 21, 2, 200}, {2, 21, 2, 201},
		{3, 30, 3, 300},
	}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchJoin, mLeft, mRight, k0, k0)
		if !rowsEqual(got, want) {
			t.Errorf("%s join = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchSemi(t *testing.T) {
	want := [][]int64{{2, 20}, {2, 21}, {3, 30}}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchSemi, mLeft, mRight, k0, k0)
		if !rowsEqual(got, want) {
			t.Errorf("%s semi = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchAnti(t *testing.T) {
	want := [][]int64{{1, 10}, {5, 50}}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchAnti, mLeft, mRight, k0, k0)
		if !rowsEqual(got, want) {
			t.Errorf("%s anti = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchOuterJoins(t *testing.T) {
	// Padded fields are zero (Volcano has no NULL).
	wantLeft := [][]int64{
		{1, 10, 0, 0},
		{2, 20, 2, 200}, {2, 20, 2, 201},
		{2, 21, 2, 200}, {2, 21, 2, 201},
		{3, 30, 3, 300},
		{5, 50, 0, 0},
	}
	wantRight := [][]int64{
		{0, 0, 4, 400},
		{2, 20, 2, 200}, {2, 20, 2, 201},
		{2, 21, 2, 200}, {2, 21, 2, 201},
		{3, 30, 3, 300},
	}
	wantFull := append(append([][]int64{}, wantLeft...), []int64{0, 0, 4, 400})
	sort.Slice(wantFull, func(i, j int) bool {
		for k := range wantFull[i] {
			if wantFull[i][k] != wantFull[j][k] {
				return wantFull[i][k] < wantFull[j][k]
			}
		}
		return false
	})
	for algo := range matchAlgos {
		if got := runMatch(t, algo, MatchLeftOuter, mLeft, mRight, k0, k0); !rowsEqual(got, wantLeft) {
			t.Errorf("%s leftouter = %v", algo, got)
		}
		if got := runMatch(t, algo, MatchRightOuter, mLeft, mRight, k0, k0); !rowsEqual(got, wantRight) {
			t.Errorf("%s rightouter = %v", algo, got)
		}
		if got := runMatch(t, algo, MatchFullOuter, mLeft, mRight, k0, k0); !rowsEqual(got, wantFull) {
			t.Errorf("%s fullouter = %v", algo, got)
		}
	}
}

// Set operations use whole-tuple keys.
var (
	setLeft  = [][2]int64{{1, 1}, {2, 2}, {2, 2}, {3, 3}}
	setRight = [][2]int64{{2, 2}, {3, 3}, {4, 4}, {4, 4}}
	k01      = record.Key{0, 1}
)

func TestMatchUnion(t *testing.T) {
	want := [][]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchUnion, setLeft, setRight, k01, k01)
		if !rowsEqual(got, want) {
			t.Errorf("%s union = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchIntersect(t *testing.T) {
	want := [][]int64{{2, 2}, {3, 3}}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchIntersect, setLeft, setRight, k01, k01)
		if !rowsEqual(got, want) {
			t.Errorf("%s intersect = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchDifference(t *testing.T) {
	want := [][]int64{{1, 1}}
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchDifference, setLeft, setRight, k01, k01)
		if !rowsEqual(got, want) {
			t.Errorf("%s difference = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchAntiDifference(t *testing.T) {
	want := [][]int64{{4, 4}} // R − L
	for algo := range matchAlgos {
		got := runMatch(t, algo, MatchAntiDifference, setLeft, setRight, k01, k01)
		if !rowsEqual(got, want) {
			t.Errorf("%s antidifference = %v, want %v", algo, got, want)
		}
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	for algo := range matchAlgos {
		if got := runMatch(t, algo, MatchJoin, nil, mRight, k0, k0); len(got) != 0 {
			t.Errorf("%s join with empty left = %v", algo, got)
		}
		if got := runMatch(t, algo, MatchJoin, mLeft, nil, k0, k0); len(got) != 0 {
			t.Errorf("%s join with empty right = %v", algo, got)
		}
		if got := runMatch(t, algo, MatchAnti, mLeft, nil, k0, k0); len(got) != len(mLeft) {
			t.Errorf("%s anti with empty right = %v", algo, got)
		}
		if got := runMatch(t, algo, MatchUnion, nil, nil, k01, k01); len(got) != 0 {
			t.Errorf("%s union of empties = %v", algo, got)
		}
	}
}

func TestMatchValidation(t *testing.T) {
	env := newTestEnv(t, 64)
	l := env.makeInts(t, "l", 1)
	r := env.makeEmp(t, "r", 1, 1)
	// Union needs equal schemas.
	if _, err := NewHashMatch(env.Env, MatchUnion, scanOf(t, l), scanOf(t, r), k0, k0); err == nil {
		t.Fatal("union with differing schemas accepted")
	}
	// Key arity mismatch.
	if _, err := NewHashMatch(env.Env, MatchJoin, scanOf(t, l), scanOf(t, r), record.Key{0}, record.Key{0, 1}); err == nil {
		t.Fatal("key arity mismatch accepted")
	}
	if _, err := NewMergeMatch(env.Env, MatchJoin, scanOf(t, l), scanOf(t, r), nil, nil); err == nil {
		t.Fatal("empty keys accepted")
	}
}

// Large randomized cross-check: hash and merge must agree with each other
// and with a naive reference join.
func TestMatchAlgorithmsAgreeRandom(t *testing.T) {
	left := make([][2]int64, 300)
	right := make([][2]int64, 200)
	for i := range left {
		left[i] = [2]int64{int64(i * 7 % 40), int64(i)}
	}
	for i := range right {
		right[i] = [2]int64{int64(i * 11 % 40), int64(1000 + i)}
	}
	for _, op := range []MatchOp{MatchJoin, MatchSemi, MatchAnti, MatchLeftOuter, MatchRightOuter, MatchFullOuter} {
		h := runMatch(t, "hash", op, left, right, k0, k0)
		m := runMatch(t, "merge", op, left, right, k0, k0)
		if !rowsEqual(h, m) {
			t.Errorf("%v: hash (%d rows) and merge (%d rows) disagree", op, len(h), len(m))
		}
	}
	// Reference check for plain join cardinality.
	counts := map[int64][2]int{}
	for _, l := range left {
		c := counts[l[0]]
		c[0]++
		counts[l[0]] = c
	}
	for _, r := range right {
		c := counts[r[0]]
		c[1]++
		counts[r[0]] = c
	}
	want := 0
	for _, c := range counts {
		want += c[0] * c[1]
	}
	if got := len(runMatch(t, "hash", MatchJoin, left, right, k0, k0)); got != want {
		t.Errorf("join cardinality = %d, want %d", got, want)
	}
}

func TestMatchOpString(t *testing.T) {
	if MatchJoin.String() != "join" || MatchAntiDifference.String() != "antidifference" {
		t.Fatal("MatchOp names broken")
	}
}
