package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/record"
)

// nopIter yields nothing; it exists to measure the wrapper itself.
type nopIter struct{ schema *record.Schema }

func (n *nopIter) Open() error              { return nil }
func (n *nopIter) Next() (Rec, bool, error) { return Rec{}, true, nil }
func (n *nopIter) Close() error             { return nil }
func (n *nopIter) Schema() *record.Schema   { return n.schema }

// TestInstrumentedNextZeroAlloc pins the acceptance criterion: with
// metrics disabled (nil histogram, nil tracer) the instrumented Next
// path allocates nothing, and attaching a histogram still allocates
// nothing — Observe is atomic adds over preallocated buckets.
func TestInstrumentedNextZeroAlloc(t *testing.T) {
	bare := Instrument(&nopIter{}, "nop")
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, err := bare.Next(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("disabled-metrics Next allocates %v per call", n)
	}

	withHist := Instrument(&nopIter{}, "nop").
		WithHistogram(metrics.NewRegistry().Histogram("volcano_op_next_seconds", "op latency", nil, metrics.Label{Key: "op", Value: "nop"}))
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, err := withHist.Next(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("histogram-enabled Next allocates %v per call", n)
	}
}

// TestInstrumentedHistogramObserves checks the wiring: every Next call
// lands one observation, shared across sibling wrappers like OpStats.
func TestInstrumentedHistogramObserves(t *testing.T) {
	h := metrics.NewHistogram(nil)
	st := &OpStats{}
	a := InstrumentWith(&nopIter{}, "op", st).WithHistogram(h)
	b := InstrumentWith(&nopIter{}, "op", st).WithHistogram(h)
	for i := 0; i < 5; i++ {
		if _, _, err := a.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, _, err := b.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("histogram observed %d Next calls, want 8", h.Count())
	}
	s := h.Snapshot()
	if s.Quantile(0.5) <= 0 {
		t.Fatal("median of real Next timings must be positive")
	}
	if a.Histogram() != h {
		t.Fatal("Histogram() accessor must return the attached histogram")
	}
}
