package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// TestParallelAggregationLocalGlobal exercises the classic two-phase
// parallel aggregation pattern the exchange operator enables: each
// producer computes local aggregates over its partition, the exchange
// repartitions the partial results by group key, and a global aggregation
// combines them — counts are summed, sums are summed, mins are min'd.
// Every building block is an unmodified single-process operator.
func TestParallelAggregationLocalGlobal(t *testing.T) {
	env := newTestEnv(t, 2048)
	const n, groups, producers = 6000, 10, 3
	parts := env.makePartitionedInts(t, "p", n, producers)

	// Local phase: per-producer hash aggregation on v % groups.
	localSchema := record.MustSchema(
		record.Field{Name: "g", Type: record.TInt},
		record.Field{Name: "cnt", Type: record.TInt},
		record.Field{Name: "sum", Type: record.TInt},
		record.Field{Name: "min", Type: record.TInt},
	)
	x, err := NewExchange(ExchangeConfig{
		Schema:    localSchema,
		Producers: producers,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			sc, err := NewFileScan(parts[g], nil, false)
			if err != nil {
				return nil, err
			}
			// Compute the group key as a derived column, then aggregate.
			proj, err := NewProjectExprs(env.Env, sc,
				[]string{"v % 10", "v"}, []string{"g", "v"}, expr.Compiled)
			if err != nil {
				return nil, err
			}
			agg, err := NewHashAggregate(env.Env, proj, record.Key{0}, []AggSpec{
				{Func: AggCount, Name: "cnt"},
				{Func: AggSum, Field: 1, Name: "sum"},
				{Func: AggMin, Field: 1, Name: "min"},
			})
			if err != nil {
				return nil, err
			}
			return agg, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Global phase: combine the partials.
	global, err := NewHashAggregate(env.Env, x.Consumer(0), record.Key{0}, []AggSpec{
		{Func: AggSum, Field: 1, Name: "cnt"},
		{Func: AggSum, Field: 2, Name: "sum"},
		{Func: AggMin, Field: 3, Name: "min"},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := NewSort(env.Env, global, []record.SortSpec{{Field: 0}})
	rows, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != groups {
		t.Fatalf("groups = %d, want %d", len(rows), groups)
	}
	for g, r := range rows {
		if r[0].I != int64(g) {
			t.Fatalf("group key %v at %d", r[0], g)
		}
		if r[1].I != n/groups {
			t.Fatalf("group %d count = %d, want %d", g, r[1].I, n/groups)
		}
		// sum over {g, g+10, ..., g+n-10} = (n/10)*g + 10*(0+1+...+(n/10-1))
		k := int64(n / groups)
		wantSum := k*int64(g) + int64(groups)*k*(k-1)/2
		if r[2].I != wantSum {
			t.Fatalf("group %d sum = %d, want %d", g, r[2].I, wantSum)
		}
		if r[3].I != int64(g) {
			t.Fatalf("group %d min = %d, want %d", g, r[3].I, g)
		}
	}
	env.checkNoPinLeak(t)
}

// TestParallelAggregationRepartitioned adds a middle exchange with hash
// partitioning on the group key, so the global phase itself can run
// partitioned — the full GAMMA-style aggregation pipeline.
func TestParallelAggregationRepartitioned(t *testing.T) {
	env := newTestEnv(t, 2048)
	const n, producers, combiners = 4000, 4, 2
	parts := env.makePartitionedInts(t, "p", n, producers)

	partialSchema := record.MustSchema(
		record.Field{Name: "g", Type: record.TInt},
		record.Field{Name: "cnt", Type: record.TInt},
	)
	// Level 1: local partial counts, hash-repartitioned by group key onto
	// the combiners.
	xPartials, err := NewExchange(ExchangeConfig{
		Schema:    partialSchema,
		Producers: producers,
		Consumers: combiners,
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(partialSchema, record.Key{0}, combiners)
		},
		NewProducer: func(g int) (Iterator, error) {
			sc, err := NewFileScan(parts[g], nil, false)
			if err != nil {
				return nil, err
			}
			proj, err := NewProjectExprs(env.Env, sc, []string{"v % 7"}, []string{"g"}, expr.Compiled)
			if err != nil {
				return nil, err
			}
			return NewHashAggregate(env.Env, proj, record.Key{0}, []AggSpec{{Func: AggCount, Name: "cnt"}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Level 2: each combiner sums the partials for its share of the
	// groups; a final gather brings the results to the root.
	gather, err := NewExchange(ExchangeConfig{
		Schema:    partialSchema,
		Producers: combiners,
		Consumers: 1,
		NewProducer: func(c int) (Iterator, error) {
			return NewHashAggregate(env.Env, xPartials.Consumer(c), record.Key{0},
				[]AggSpec{{Func: AggSum, Field: 1, Name: "cnt"}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewSort(env.Env, gather.Consumer(0), []record.SortSpec{{Field: 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("groups = %d, want 7", len(rows))
	}
	total := int64(0)
	for _, r := range rows {
		total += r[1].I
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
	env.checkNoPinLeak(t)
}
