package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/trace"
)

// Exchange is Volcano's exchange module (paper, §4): the one operator that
// encapsulates all parallelism. It is an iterator like any other — its
// consumer endpoints support open, next, close — so it can be inserted at
// any place (or several places) in a query tree. The consumer side is
// demand-driven like the rest of Volcano; the producer side drives its
// subtree eagerly and ships packets of records through a port, i.e. the
// exchange operator performs the translation between demand-driven
// dataflow within a process group and data-driven dataflow between groups.
//
// One Exchange value is the hub shared by a consumer group of size
// Consumers and a producer group of size Producers. Each consumer
// goroutine uses its own endpoint from Consumer(i); each producer g
// runs the subtree built by NewProducer(g).
type Exchange struct {
	cfg     ExchangeConfig
	port    *port
	pool    *packetPool // bounded free list recycling drained packets
	batches *BatchPool  // producer pull batches (batch mode only, else nil)
	xid     int64       // distinguishes this hub's trace tracks
	start   sync.Once
	err     atomic.Value // first async error (type error)
	closed  int32        // consumers that have closed
	lastWG  sync.WaitGroup

	// stats
	packetsSent atomic.Int64
	recordsSent atomic.Int64
	forks       atomic.Int64
	spawnTime   atomic.Int64 // nanoseconds spent in fork calls by the master
}

// ForkScheme selects how the master creates the producer group (§4.2).
type ForkScheme uint8

const (
	// ForkCentral has the master fork every producer itself.
	ForkCentral ForkScheme = iota
	// ForkTree uses the propagation-tree scheme: the master forks one
	// slave, then both fork one each, and so on — Gerber's observation
	// that centralised forking is suboptimal for high degrees of
	// parallelism.
	ForkTree
)

// ExchangeConfig is the exchange operator's state record: every variant
// of §4.4 is a run-time switch here.
type ExchangeConfig struct {
	// Schema of the records flowing through.
	Schema *record.Schema
	// Producers is the producer group size.
	Producers int
	// Consumers is the consumer group size.
	Consumers int
	// NewProducer builds producer g's input subtree. With intra-operator
	// parallelism each producer scans its own partition or embeds the
	// corresponding consumer endpoint of a lower exchange.
	NewProducer func(g int) (Iterator, error)

	// NewPartition builds the partitioning support function used by one
	// producer to pick a consumer queue for each record (round-robin,
	// hash or key range; §4.2). nil defaults to per-producer round-robin.
	// Ignored when Consumers == 1 or Broadcast is set.
	NewPartition func(g int) expr.Partitioner

	// Broadcast sends every record to every consumer, pinning it once per
	// consumer instead of copying (§4.4: hash-division, Baru's join).
	Broadcast bool

	// PacketSize is the number of records per packet, 1..255 (default 83,
	// "the standard packet size").
	PacketSize int

	// BatchSize, when positive, runs the exchange in batch mode: each
	// producer pulls its subtree through NextBatch refills of this size
	// (drawn from a bounded batch free list) and routes whole batches,
	// and consumer endpoints lend drained packets to their callers'
	// batches wholesale — the packet's record slice is the batch. Zero
	// keeps the per-record pull loop.
	BatchSize int

	// FlowControl enables the back-pressure semaphore; Slack is its
	// initial value (default 4): how many packets producers may get ahead.
	FlowControl bool
	Slack       int

	// Fork selects the spawn scheme; ForkCost simulates the cost of a
	// UNIX fork call (0 = none) so the central-vs-tree tradeoff can be
	// studied with goroutines, whose spawn cost is otherwise negligible.
	Fork     ForkScheme
	ForkCost time.Duration

	// Inline runs the exchange "in the middle of a process' operator
	// tree" (§4.4): no goroutines are forked; each group member is both
	// producer and consumer, pulling from its own input and routing
	// records until one for its own partition appears. Requires
	// Producers == Consumers. Flow control is obsolete in this mode.
	Inline bool

	// Done, when non-nil, cancels the producer group: once the channel is
	// closed, every producer abandons its subtree between records instead
	// of driving it to end-of-stream. The shutdown handshake still runs —
	// producers deliver their tagged final packet (carrying ErrCanceled)
	// and wait for the consumers' allow-close — so teardown ordering is
	// unchanged; cancellation only bounds how much work an abandoned
	// query's producers do first. nil (the default) disables the
	// per-record poll entirely.
	Done <-chan struct{}

	// KeepStreams keeps input records separated by producer so that a
	// merge iterator can consume each sorted producer stream individually
	// (§4.4). Use ConsumerStreams to obtain the per-producer streams.
	KeepStreams bool

	// Pool, when set, runs producers on primed worker goroutines instead
	// of forking fresh ones (§4.2's planned improvement). The pool must
	// have at least Producers workers available.
	Pool *WorkerPool

	// Tracer, when set, records the exchange protocol as structured trace
	// events: producer spawn, packet push/pop (connected by flow arrows),
	// flow-control token waits, end-of-stream tags and the shutdown
	// handshake, one track per goroutine. nil disables tracing at the
	// cost of one branch per event site.
	Tracer *trace.Tracer

	// Meter, when set, attributes the hub's port traffic (packets and
	// records pushed) to one query's resource meter. nil disables the
	// accounting at the cost of one branch per packet.
	Meter *ResourceMeter

	// QueryID, when set, tags every producer goroutine with pprof labels
	// (query_id, op) so CPU profiles segment by query. Labels are applied
	// once per producer spawn — never on the per-record path — and
	// propagate to any goroutines the producer subtree forks itself.
	QueryID string
}

// NewExchange validates the configuration and creates the hub.
func NewExchange(cfg ExchangeConfig) (*Exchange, error) {
	if cfg.Schema == nil {
		return nil, errState("exchange", "nil schema")
	}
	if cfg.Producers < 1 || cfg.Consumers < 1 {
		return nil, errState("exchange", fmt.Sprintf("bad group sizes %d/%d", cfg.Producers, cfg.Consumers))
	}
	if cfg.NewProducer == nil {
		return nil, errState("exchange", "nil NewProducer")
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 83 // 1 KB packets hold 83 NEXT_RECORD structures
	}
	if cfg.PacketSize < 1 || cfg.PacketSize > 255 {
		return nil, errState("exchange", fmt.Sprintf("packet size %d out of range 1..255", cfg.PacketSize))
	}
	if cfg.Slack == 0 {
		cfg.Slack = 4
	}
	if cfg.Inline && cfg.Producers != cfg.Consumers {
		return nil, errState("exchange", "inline mode requires equal group sizes")
	}
	if cfg.Inline && cfg.Pool != nil {
		return nil, errState("exchange", "inline mode does not fork onto a pool")
	}
	if cfg.Inline && cfg.KeepStreams {
		return nil, errState("exchange", "inline mode does not keep per-producer streams")
	}
	if cfg.Broadcast && cfg.NewPartition != nil {
		return nil, errState("exchange", "broadcast and partitioning are mutually exclusive")
	}
	x := &Exchange{cfg: cfg, xid: exchangeSeq.Add(1)}
	// Flow control is meaningless (and a deadlock hazard) in inline mode:
	// a member blocked on the semaphore could never drain its own queue.
	fc := cfg.FlowControl && !cfg.Inline
	if cfg.BatchSize < 0 {
		return nil, errState("exchange", fmt.Sprintf("negative batch size %d", cfg.BatchSize))
	}
	x.pool = newPacketPool(cfg.Producers, cfg.Consumers, cfg.Slack, cfg.PacketSize)
	x.port = newPort(cfg.Producers, cfg.Consumers, cfg.KeepStreams, fc, cfg.Slack, x.pool)
	if cfg.BatchSize > 0 {
		// Each producer holds one pull batch at a time; size the free
		// list with headroom so the shutdown race (a batch returned while
		// another producer refills) never forces a steady-state miss.
		x.batches = NewBatchPool(2*cfg.Producers, cfg.BatchSize)
		x.batches.MeterTo(cfg.Meter)
	}
	return x, nil
}

// exchangeSeq numbers exchange hubs so the trace tracks of nested or
// sibling exchanges stay distinguishable.
var exchangeSeq atomic.Int64

// ErrCanceled is the error producers report when the exchange's Done
// channel closes while they are still producing. Consumers that keep
// reading after cancellation see it in the final packet.
var ErrCanceled = fmt.Errorf("core: exchange: query canceled")

// canceled reports whether the Done channel has been closed.
func (x *Exchange) canceled() bool {
	select {
	case <-x.cfg.Done:
		return true
	default:
		return false
	}
}

// producerTrack registers producer g's trace track (nil when untraced).
func (x *Exchange) producerTrack(g int) *trace.Track {
	if !x.cfg.Tracer.Enabled() {
		return nil
	}
	return x.cfg.Tracer.NewTrack(fmt.Sprintf("x%d.producer%d", x.xid, g))
}

// consumerTrack registers consumer endpoint i's trace track.
func (x *Exchange) consumerTrack(i int) *trace.Track {
	if !x.cfg.Tracer.Enabled() {
		return nil
	}
	return x.cfg.Tracer.NewTrack(fmt.Sprintf("x%d.consumer%d", x.xid, i))
}

// ExchangeStats reports exchange activity counters: data volume through
// the port, fork effort, and the two blocking-time counters that attribute
// pipeline imbalance (producers throttled by flow control vs consumers
// starved for packets).
type ExchangeStats struct {
	Packets   int64
	Records   int64
	Forks     int64
	SpawnTime time.Duration
	// PoolHits/PoolMisses/PoolDiscards report the packet free list:
	// hits are refills that reused a drained packet, misses fell back to
	// a fresh allocation (cold start, or the window outran the list),
	// discards are returns dropped because the bounded list was full.
	// A warmed-up steady state shows hits growing while misses and
	// discards stay flat — the allocation-free hot path.
	PoolHits     int64
	PoolMisses   int64
	PoolDiscards int64
	// BatchPoolHits/BatchPoolMisses/BatchPoolDiscards report the batch
	// free list producers pull through in batch mode; all zero in row
	// mode. The same warmed-up shape applies: hits grow, misses and
	// discards stay flat.
	BatchPoolHits     int64
	BatchPoolMisses   int64
	BatchPoolDiscards int64
	// ProducerStall is cumulative time producers spent blocked on the
	// flow-control semaphore ("after a producer has inserted a new packet
	// into the port, it must request the flow control semaphore", §4.1).
	// Zero when flow control is off or consumers keep up.
	ProducerStall time.Duration
	// ConsumerWait is cumulative time consumers spent blocked on an empty
	// queue waiting for the producer group.
	ConsumerWait time.Duration
}

// Stats returns a snapshot of the hub's counters.
func (x *Exchange) Stats() ExchangeStats {
	hits, misses, discards := x.pool.stats()
	var bh, bm, bd int64
	if x.batches != nil {
		bh, bm, bd = x.batches.Stats()
	}
	return ExchangeStats{
		BatchPoolHits:     bh,
		BatchPoolMisses:   bm,
		BatchPoolDiscards: bd,
		Packets:           x.packetsSent.Load(),
		Records:           x.recordsSent.Load(),
		Forks:             x.forks.Load(),
		SpawnTime:         time.Duration(x.spawnTime.Load()),
		PoolHits:          hits,
		PoolMisses:        misses,
		PoolDiscards:      discards,
		ProducerStall:     time.Duration(x.port.stats.producerStall.Load()),
		ConsumerWait:      time.Duration(x.port.stats.consumerWait.Load()),
	}
}

func (x *Exchange) setErr(err error) {
	if err != nil {
		x.err.CompareAndSwap(nil, err)
	}
}

func (x *Exchange) firstErr() error {
	if e, ok := x.err.Load().(error); ok {
		return e
	}
	return nil
}

// Consumer returns consumer endpoint i (an ordinary iterator). Endpoints
// are single-goroutine; each consumer in the group must use its own.
func (x *Exchange) Consumer(i int) Iterator {
	return &xConsumer{x: x, idx: i}
}

// ConsumerStreams returns per-producer stream iterators for consumer i
// (KeepStreams mode), suitable as inputs of a Merge. Open/Close of the
// returned streams must all happen in consumer i's goroutine; the last
// stream closed completes the endpoint's shutdown handshake.
func (x *Exchange) ConsumerStreams(i int) ([]Iterator, error) {
	if !x.cfg.KeepStreams {
		return nil, errState("exchange", "ConsumerStreams requires KeepStreams")
	}
	if x.cfg.Inline {
		return nil, errState("exchange", "ConsumerStreams unsupported in inline mode")
	}
	shared := &streamGroup{}
	shared.remaining = x.cfg.Producers
	out := make([]Iterator, x.cfg.Producers)
	for p := 0; p < x.cfg.Producers; p++ {
		out[p] = &xStream{x: x, consumer: i, producer: p, group: shared}
	}
	return out, nil
}

// ensureStarted forks the producer group on first open (the opening
// consumer is the master: "when a query tree is opened, only one process
// is running, which is naturally the master", §4.2).
func (x *Exchange) ensureStarted() {
	x.start.Do(func() {
		if x.cfg.Inline {
			return // inline members run their own producers
		}
		x.port.producersDone.Add(x.cfg.Producers)
		var mtk *trace.Track
		if x.cfg.Tracer.Enabled() {
			mtk = x.cfg.Tracer.NewTrack(fmt.Sprintf("x%d.master", x.xid))
		}
		begin := time.Now()
		switch {
		case x.cfg.Pool != nil:
			for g := 0; g < x.cfg.Producers; g++ {
				g := g
				mtk.Instant1("exchange", "submit", "producer", int64(g))
				x.cfg.Pool.Submit(x.labeled(func() { x.producerLoop(g) }))
			}
		case x.cfg.Fork == ForkTree:
			ids := make([]int, x.cfg.Producers)
			for i := range ids {
				ids[i] = i
			}
			x.forkCall(mtk)
			// Labels set on the tree root propagate to every goroutine the
			// tree forks below it.
			go x.labeled(func() { x.spawnTree(ids) })()
		default: // ForkCentral
			for g := 0; g < x.cfg.Producers; g++ {
				g := g
				x.forkCall(mtk)
				go x.labeled(func() { x.producerLoop(g) })()
			}
		}
		x.spawnTime.Add(int64(time.Since(begin)))
		mtk.SpanAt1("exchange", "spawn", begin, time.Since(begin), "producers", int64(x.cfg.Producers))
	})
}

// labeled wraps a producer entry point with the query's pprof labels
// (query_id, op) via pprof.Do, so /debug/pprof profiles segment producer
// CPU by query. Without a QueryID it returns fn unchanged. Worker-pool
// goroutines outlive the query, so the labels are scoped to the wrapped
// call rather than inherited from the spawner.
func (x *Exchange) labeled(fn func()) func() {
	if x.cfg.QueryID == "" {
		return fn
	}
	labels := pprof.Labels("query_id", x.cfg.QueryID, "op", "exchange-producer")
	return func() {
		pprof.Do(context.Background(), labels, func(context.Context) { fn() })
	}
}

// forkCall models one fork(2) invocation, recorded as a fork instant on
// the forking goroutine's track (master in the central scheme, interior
// tree nodes in the propagation-tree scheme).
func (x *Exchange) forkCall(tk *trace.Track) {
	x.forks.Add(1)
	tk.Instant("exchange", "fork")
	if x.cfg.ForkCost > 0 {
		time.Sleep(x.cfg.ForkCost)
	}
}

// spawnTree implements the propagation-tree forking scheme: the current
// goroutine repeatedly forks half of its remaining range, then runs the
// first producer itself. Sub-forks are traced on the track of the
// producer this goroutine will become, making the propagation tree
// visible in the timeline.
func (x *Exchange) spawnTree(ids []int) {
	tk := x.producerTrack(ids[0])
	for len(ids) > 1 {
		mid := (len(ids) + 1) / 2
		rest := ids[mid:]
		ids = ids[:mid]
		x.forkCall(tk)
		go x.spawnTree(rest)
	}
	x.runProducer(ids[0], tk)
}

// producerLoop registers the producer's trace track in its own goroutine
// and runs the driver loop.
func (x *Exchange) producerLoop(g int) {
	x.runProducer(g, x.producerTrack(g))
}

// runProducer is the driver part of exchange (§4.1): it opens its
// subtree, exhausts it with next, routes records into consumer queues in
// packets, flags its last packet to each consumer with an end-of-stream
// tag, waits for permission to close, and closes the subtree.
func (x *Exchange) runProducer(g int, tk *trace.Track) {
	xmProducersLive.Add(1)
	defer xmProducersLive.Add(-1)
	defer x.port.producersDone.Done()
	var begin time.Time
	if tk != nil {
		begin = time.Now()
		tk.Instant1("exchange", "producer-start", "producer", int64(g))
	}
	input, err := x.cfg.NewProducer(g)
	if err == nil && input != nil && !input.Schema().Equal(x.cfg.Schema) {
		err = fmt.Errorf("core: exchange: producer %d schema %s != %s", g, input.Schema(), x.cfg.Schema)
	}
	if err != nil {
		x.setErr(err)
		x.finishProducer(g, nil, nil, tk)
		return
	}
	if err := input.Open(); err != nil {
		x.setErr(err)
		x.finishProducer(g, nil, nil, tk)
		return
	}
	if tk != nil {
		tk.SpanSince("exchange", "open-subtree", begin)
	}
	out := x.newOutbox(g)
	out.tk = tk
	var produced int64
	if x.cfg.BatchSize > 0 {
		produced = x.produceBatched(g, input, out, tk)
	} else {
		for {
			if x.cfg.Done != nil && x.canceled() {
				x.setErr(ErrCanceled)
				tk.Instant1("exchange", "canceled", "producer", int64(g))
				break
			}
			r, ok, nerr := input.Next()
			if nerr != nil {
				x.setErr(nerr)
				break
			}
			if !ok {
				break
			}
			out.route(r)
			produced++
		}
	}
	if tk != nil {
		tk.SpanAt1("exchange", "produce", begin, time.Since(begin), "records", produced)
	}
	x.finishProducer(g, out, input, tk)
}

// produceBatched is the batch-mode driver loop: the subtree is exhausted
// through NextBatch refills drawn from the hub's batch free list, and
// each refill is routed wholesale. Cancellation is polled once per batch
// instead of once per record, which bounds post-cancel work to one batch.
func (x *Exchange) produceBatched(g int, input Iterator, out *outbox, tk *trace.Track) int64 {
	src := AsBatch(input)
	b := x.batches.Get()
	defer x.batches.Put(b)
	var produced int64
	for {
		if x.cfg.Done != nil && x.canceled() {
			x.setErr(ErrCanceled)
			tk.Instant1("exchange", "canceled", "producer", int64(g))
			return produced
		}
		if err := src.NextBatch(b); err != nil {
			x.setErr(err)
			return produced
		}
		if b.Len() == 0 {
			return produced
		}
		xmBatchPulls.Add(1)
		xmBatchRecords.Add(int64(b.Len()))
		out.routeBatch(b.Recs())
		produced += int64(b.Len())
	}
}

// finishProducer flushes, tags end-of-stream, performs the close
// handshake, and closes the subtree.
func (x *Exchange) finishProducer(g int, out *outbox, input Iterator, tk *trace.Track) {
	if out != nil {
		out.flush(true)
	} else {
		// Error before the outbox existed: still deliver tagged packets.
		// These travel the same accounting path as outbox.push — bump the
		// per-exchange counter before q.push so ExchangeStats and the
		// process-wide metrics agree on every exit path.
		for c, q := range x.port.queues {
			tk.Instant1("exchange", "eos", "consumer", int64(c))
			p := x.pool.get(g)
			p.eos = true
			p.err = x.firstErr()
			x.packetsSent.Add(1)
			x.cfg.Meter.ExchangePush(0)
			q.push(p, tk)
		}
	}
	// Wait until the consumer allows closing all open files; necessary
	// because files on virtual devices must not be closed before all
	// their records are unpinned (§4.1).
	var wait time.Time
	if tk != nil {
		wait = time.Now()
	}
	<-x.port.allowClose
	if tk != nil {
		tk.SpanSince("exchange", "await-close", wait)
	}
	if input != nil {
		begin := time.Now()
		if err := input.Close(); err != nil {
			x.setErr(err)
		}
		tk.SpanSince("exchange", "close-subtree", begin)
	}
}

// outbox batches one producer's output into per-consumer packets.
type outbox struct {
	x       *Exchange
	g       int
	packets []*packet
	part    expr.Partitioner
	tk      *trace.Track // the owning goroutine's trace track (may be nil)

	// Batch-mode scratch for routeBatch's whole-batch partition sweep.
	datas [][]byte
	parts []int
	// rr marks the default (round-robin) partitioner: batch routing then
	// deals each batch in contiguous per-consumer chunks — same balance,
	// no per-record partition call. rrNext rotates the first-served
	// consumer across batches so uneven chunks even out.
	rr     bool
	rrNext int
}

func (x *Exchange) newOutbox(g int) *outbox {
	o := &outbox{x: x, g: g, packets: make([]*packet, x.cfg.Consumers)}
	switch {
	case x.cfg.Broadcast || x.cfg.Consumers == 1:
		// no partitioner needed
	case x.cfg.NewPartition != nil:
		o.part = x.cfg.NewPartition(g)
	default:
		o.part = expr.RoundRobin(x.cfg.Consumers)
		o.rr = true
	}
	return o
}

// route places one record (whose pin the outbox now owns) into the proper
// packet(s), pushing packets as they fill. The dirty flag is dropped once
// here — ownership passes to a reader — so add (which broadcast invokes
// once per consumer) appends the already-clean record without re-copying.
func (o *outbox) route(r Rec) {
	r = r.WithoutDirty()
	if o.x.cfg.Broadcast {
		// Pin once per additional consumer; never copy (§4.4).
		r.Share(len(o.packets) - 1)
		for c := range o.packets {
			o.add(c, r)
		}
		return
	}
	c := 0
	if o.part != nil {
		c = o.part(r.Data)
		if c < 0 || c >= len(o.packets) {
			o.x.setErr(fmt.Errorf("core: exchange: partition function returned %d of %d", c, len(o.packets)))
			r.Unfix()
			return
		}
	}
	o.add(c, r)
}

func (o *outbox) add(c int, r Rec) {
	p := o.packets[c]
	if p == nil {
		p = o.x.pool.get(o.g)
		o.packets[c] = p
	}
	p.recs = append(p.recs, r)
	if len(p.recs) >= o.x.cfg.PacketSize {
		o.push(c, false)
	}
}

// push sends consumer c's current packet (if eos, even when empty).
func (o *outbox) push(c int, eos bool) {
	p := o.packets[c]
	if p == nil {
		if !eos {
			return
		}
		p = o.x.pool.get(o.g)
	}
	o.packets[c] = nil
	p.eos = eos
	if eos {
		p.err = o.x.firstErr()
	}
	o.x.recordsSent.Add(int64(len(p.recs)))
	o.x.packetsSent.Add(1)
	o.x.cfg.Meter.ExchangePush(len(p.recs))
	if o.tk != nil {
		p.flow = o.x.cfg.Tracer.NextFlowID()
		o.tk.FlowOut("packet", "push", p.flow, "records", int64(len(p.recs)))
		if eos {
			o.tk.Instant1("exchange", "eos", "consumer", int64(c))
		}
	}
	o.x.port.queues[c].push(p, o.tk)
}

// routeBatch places a whole pulled batch, amortising the per-record
// dispatch of route: a single-consumer outbox appends the run into
// packets wholesale, and a partitioned outbox evaluates the partitioning
// support function over the whole batch in one PartitionBatch sweep
// before distributing. Broadcast keeps the per-record path (each record
// is shared across every consumer anyway).
func (o *outbox) routeBatch(recs []Rec) {
	switch {
	case o.x.cfg.Broadcast:
		for _, r := range recs {
			o.route(r)
		}
	case o.part == nil: // single consumer: bulk append
		o.bulkAppend(0, recs)
	case o.rr:
		// Round robin only balances load; dealing the batch in contiguous
		// chunks (rotating which consumer is served first) preserves the
		// balance without a partition call and packet append per record.
		nc := len(o.packets)
		per, extra := len(recs)/nc, len(recs)%nc
		for i := 0; i < nc; i++ {
			n := per
			if i < extra {
				n++
			}
			o.bulkAppend((o.rrNext+i)%nc, recs[:n])
			recs = recs[n:]
		}
		o.rrNext = (o.rrNext + extra) % nc
	default:
		o.datas = o.datas[:0]
		for _, r := range recs {
			o.datas = append(o.datas, r.Data)
		}
		if cap(o.parts) < len(recs) {
			o.parts = make([]int, len(recs))
		}
		o.parts = o.parts[:len(recs)]
		expr.PartitionBatch(o.part, o.datas, o.parts)
		for i, r := range recs {
			c := o.parts[i]
			if c < 0 || c >= len(o.packets) {
				o.x.setErr(fmt.Errorf("core: exchange: partition function returned %d of %d", c, len(o.packets)))
				r.Unfix()
				continue
			}
			o.add(c, r.WithoutDirty())
		}
	}
}

// bulkAppend moves a run of records into consumer c's packets wholesale,
// clearing the dirty flag as ownership passes and pushing packets as
// they fill.
func (o *outbox) bulkAppend(c int, recs []Rec) {
	size := o.x.cfg.PacketSize
	for len(recs) > 0 {
		p := o.packets[c]
		if p == nil {
			p = o.x.pool.get(o.g)
			o.packets[c] = p
		}
		n := size - len(p.recs)
		if n > len(recs) {
			n = len(recs)
		}
		for _, r := range recs[:n] {
			p.recs = append(p.recs, r.WithoutDirty())
		}
		recs = recs[n:]
		if len(p.recs) >= size {
			o.push(c, false)
		}
	}
}

// flush pushes all partial packets; with eos, every consumer receives a
// tagged final packet.
func (o *outbox) flush(eos bool) {
	for c := range o.packets {
		if eos {
			o.push(c, true)
		} else if o.packets[c] != nil {
			o.push(c, false)
		}
	}
}
