package core

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// TestNetExchangeOverTCP runs the shared-nothing exchange over real TCP
// loopback sockets: two producers, two partitioned consumers, every
// record crossing a kernel socket. The result must be indistinguishable
// from the in-process loopback path.
func TestNetExchangeOverTCP(t *testing.T) {
	src := newTestEnv(t, 256)
	m1 := newTestEnv(t, 256)
	m2 := newTestEnv(t, 256)
	f := src.makeInts(t, "t", shuffled(2000, 21)...)

	tl, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	envs := []*Env{m1.Env, m2.Env}
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 2,
		Consumers: 2,
		Transport: tl,
		NewProducer: func(g int) (Iterator, error) {
			sc, err := NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			preds := []string{"v % 2 = 0", "v % 2 = 1"}
			return NewFilterExpr(sc, preds[g], 0)
		},
		ConsumerEnv: func(c int) *Env { return envs[c] },
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(intSchema, record.Key{0}, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	errs := make([]error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			counts[c], errs[c] = Drain(x.Consumer(c))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("consumer %d: %v", c, err)
		}
	}
	if counts[0]+counts[1] != 2000 {
		t.Fatalf("lost records over the wire: %d + %d", counts[0], counts[1])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("partitioning sent everything to one consumer")
	}
	packets, bytes := x.Stats()
	if packets == 0 || bytes == 0 {
		t.Fatal("no wire traffic recorded")
	}
	src.checkNoPinLeak(t)
	m1.checkNoPinLeak(t)
	m2.checkNoPinLeak(t)
}

// TestNetExchangeOverTCPOrdered pins byte-level fidelity: the records
// that cross the socket arrive intact and complete for a single
// producer/consumer pair, in order.
func TestNetExchangeOverTCPOrdered(t *testing.T) {
	src := newTestEnv(t, 256)
	dst := newTestEnv(t, 256)
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i)
	}
	f := src.makeInts(t, "t", vals...)

	tl, err := NewTCPLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	x, err := NewNetExchange(NetExchangeConfig{
		Schema:     intSchema,
		Producers:  1,
		Consumers:  1,
		PacketSize: 7, // force many small frames
		Transport:  tl,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	src.checkNoPinLeak(t)
	dst.checkNoPinLeak(t)
}

// TestNetExchangeOverTCPErrorPropagation: a producer failure must cross
// the wire as an error frame and surface on the consumer, same as on the
// loopback path.
func TestNetExchangeOverTCPErrorPropagation(t *testing.T) {
	src := newTestEnv(t, 256)
	dst := newTestEnv(t, 256)
	f := src.makeInts(t, "t", 1, 0, 2)

	tl, err := NewTCPLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 1,
		Transport: tl,
		NewProducer: func(int) (Iterator, error) {
			sc, err := NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			return NewFilterExpr(sc, "10 / v > 0", 0)
		},
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(x.Consumer(0))
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("error not propagated across the wire: %v", err)
	}
}

// dyingConn kills its connection after a byte budget: writes past the
// budget close the socket and fail, modelling a producer whose machine
// drops off the network mid-stream.
type dyingConn struct {
	net.Conn
	budget int
}

func (d *dyingConn) Write(p []byte) (int, error) {
	if d.budget <= 0 {
		d.Conn.Close()
		return 0, errors.New("wire cut")
	}
	if len(p) > d.budget {
		n, _ := d.Conn.Write(p[:d.budget])
		d.budget = 0
		d.Conn.Close()
		return n, errors.New("wire cut")
	}
	d.budget -= len(p)
	return d.Conn.Write(p)
}

// flakyTransport is a TCPLoopback whose producer connections die after a
// byte budget.
type flakyTransport struct {
	*TCPLoopback
	budget int
}

func (t *flakyTransport) Dial(c int) (net.Conn, error) {
	conn, err := t.TCPLoopback.Dial(c)
	if err != nil {
		return nil, err
	}
	return &dyingConn{Conn: conn, budget: t.budget}, nil
}

// TestNetExchangeOverTCPDroppedConnection: a connection that dies before
// its EOS frame must turn into a query error — never a silent short
// result. This is the transport-error-as-EOS hazard the receive path
// guards against.
func TestNetExchangeOverTCPDroppedConnection(t *testing.T) {
	src := newTestEnv(t, 256)
	dst := newTestEnv(t, 256)
	f := src.makeInts(t, "t", shuffled(5000, 23)...)

	tl, err := NewTCPLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	x, err := NewNetExchange(NetExchangeConfig{
		Schema:     intSchema,
		Producers:  1,
		Consumers:  1,
		PacketSize: 50,
		Transport:  &flakyTransport{TCPLoopback: tl, budget: 4096},
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Drain(x.Consumer(0))
	if err == nil {
		t.Fatalf("dropped connection folded into EOS: drained %d rows with no error", n)
	}
}
