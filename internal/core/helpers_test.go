package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// testEnv builds a full environment: a virtual "disk" volume for base
// tables, a virtual temp volume, and a pool.
type testEnv struct {
	*Env
	base *file.Volume
	pool *buffer.Pool
}

func newTestEnv(t testing.TB, frames int) *testEnv {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	if err := reg.Mount(device.NewMem(baseID)); err != nil {
		t.Fatal(err)
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, frames, buffer.TwoLevel)
	// Every test using this env gets the pin-balance assertion for free:
	// cleanups run LIFO, so this fires after the test body but before the
	// registry closes. A query that returns with pins outstanding has lost
	// track of buffer ownership even if its answer was right.
	t.Cleanup(func() {
		if n := pool.Stats().CurrentlyFixedHint; n != 0 {
			t.Errorf("pin leak: %d pins outstanding at test end", n)
		}
	})
	base := file.NewVolume(pool, baseID)
	temp := file.NewVolume(pool, tempID)
	return &testEnv{Env: NewEnv(pool, temp), base: base, pool: pool}
}

// checkNoPinLeak asserts that all buffer pins are balanced.
func (e *testEnv) checkNoPinLeak(t testing.TB) {
	t.Helper()
	if n := e.pool.Stats().CurrentlyFixedHint; n != 0 {
		t.Fatalf("pin leak: %d pins outstanding", n)
	}
}

var empSchema = record.MustSchema(
	record.Field{Name: "id", Type: record.TInt},
	record.Field{Name: "dept", Type: record.TInt},
	record.Field{Name: "salary", Type: record.TFloat},
	record.Field{Name: "name", Type: record.TString},
)

// makeEmp creates an employee table with n rows: id=i, dept=i%ndept,
// salary=1000+i, name="emp-<i>".
func (e *testEnv) makeEmp(t testing.TB, name string, n, ndept int) *file.File {
	t.Helper()
	f, err := e.base.Create(name, empSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		data := empSchema.MustEncode(
			record.Int(int64(i)),
			record.Int(int64(i%ndept)),
			record.Float(1000+float64(i)),
			record.Str(fmt.Sprintf("emp-%d", i)),
		)
		if _, err := f.Insert(data); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// makeInts creates a one-column int table from the given values.
func (e *testEnv) makeInts(t testing.TB, name string, vals ...int64) *file.File {
	t.Helper()
	s := record.MustSchema(record.Field{Name: "v", Type: record.TInt})
	f, err := e.base.Create(name, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if _, err := f.Insert(s.MustEncode(record.Int(v))); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// makePairs creates a two-int-column table.
func (e *testEnv) makePairs(t testing.TB, name string, pairs [][2]int64) *file.File {
	t.Helper()
	s := record.MustSchema(
		record.Field{Name: "a", Type: record.TInt},
		record.Field{Name: "b", Type: record.TInt},
	)
	f, err := e.base.Create(name, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if _, err := f.Insert(s.MustEncode(record.Int(p[0]), record.Int(p[1]))); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func scanOf(t testing.TB, f *file.File) *FileScan {
	t.Helper()
	s, err := NewFileScan(f, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// intsOf extracts column col as int64s from collected rows.
func intsOf(rows [][]record.Value, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[col].I
	}
	return out
}

func sortedInts(in []int64) []int64 {
	out := append([]int64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func shuffled(n int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i, v := range r.Perm(n) {
		out[i] = int64(v)
	}
	return out
}
