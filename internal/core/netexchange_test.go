package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
)

func TestNetExchangeBetweenMachines(t *testing.T) {
	// Machine A holds the data; machine B runs the consumer. They share
	// no buffer pool — records are copied across the link.
	machineA := newTestEnv(t, 256)
	machineB := newTestEnv(t, 256)
	f := machineA.makeInts(t, "t", shuffled(2000, 11)...)

	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 2,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			sc, err := NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			preds := []string{"v % 2 = 0", "v % 2 = 1"}
			return NewFilterExpr(sc, preds[g], 0)
		},
		ConsumerEnv: func(int) *Env { return machineB.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The consumer tree runs entirely on machine B: sort what arrives.
	sorted := NewSort(machineB.Env, x.Consumer(0), []record.SortSpec{{Field: 0}})
	rows, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	machineA.checkNoPinLeak(t)
	machineB.checkNoPinLeak(t)
	packets, bytes := x.Stats()
	if packets == 0 || bytes == 0 {
		t.Fatal("no wire traffic recorded")
	}
}

func TestNetExchangePartitionedConsumersOnDistinctMachines(t *testing.T) {
	src := newTestEnv(t, 256)
	m1 := newTestEnv(t, 256)
	m2 := newTestEnv(t, 256)
	f := src.makeInts(t, "t", shuffled(1000, 12)...)

	envs := []*Env{m1.Env, m2.Env}
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 2,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(c int) *Env { return envs[c] },
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(intSchema, record.Key{0}, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	errs := make([]error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			counts[c], errs[c] = Drain(x.Consumer(c))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("consumer %d: %v", c, err)
		}
	}
	if counts[0]+counts[1] != 1000 {
		t.Fatalf("lost records: %d + %d", counts[0], counts[1])
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("partitioning sent everything to one machine")
	}
	src.checkNoPinLeak(t)
	m1.checkNoPinLeak(t)
	m2.checkNoPinLeak(t)
}

func TestNetExchangeBroadcast(t *testing.T) {
	src := newTestEnv(t, 256)
	m1 := newTestEnv(t, 256)
	m2 := newTestEnv(t, 256)
	f := src.makeInts(t, "t", shuffled(300, 13)...)
	envs := []*Env{m1.Env, m2.Env}
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 2,
		Broadcast: true,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(c int) *Env { return envs[c] },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			counts[c], _ = Drain(x.Consumer(c))
		}(c)
	}
	wg.Wait()
	if counts[0] != 300 || counts[1] != 300 {
		t.Fatalf("broadcast counts = %v", counts)
	}
}

func TestNetExchangeErrorPropagation(t *testing.T) {
	src := newTestEnv(t, 256)
	dst := newTestEnv(t, 256)
	f := src.makeInts(t, "t", 1, 0, 2)
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			sc, err := NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			return NewFilterExpr(sc, "10 / v > 0", 0)
		},
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(x.Consumer(0))
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("error not propagated across the link: %v", err)
	}
	src.checkNoPinLeak(t)
	dst.checkNoPinLeak(t)
}

func TestNetExchangeSimulatedWire(t *testing.T) {
	src := newTestEnv(t, 256)
	dst := newTestEnv(t, 256)
	f := src.makeInts(t, "t", shuffled(200, 14)...)
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:     intSchema,
		Producers:  1,
		Consumers:  1,
		PacketSize: 50,
		Latency:    2 * time.Millisecond,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n, err := Drain(x.Consumer(0))
	if err != nil || n != 200 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// 200 records / 50 per packet = 4 data packets + 1 eos ≥ 10ms.
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("latency simulation ineffective: %v", elapsed)
	}
}

func TestNetExchangeValidation(t *testing.T) {
	env := newTestEnv(t, 64)
	good := NetExchangeConfig{
		Schema: intSchema, Producers: 1, Consumers: 1,
		NewProducer: func(int) (Iterator, error) { return nil, nil },
		ConsumerEnv: func(int) *Env { return env.Env },
	}
	cases := map[string]func(*NetExchangeConfig){
		"nil schema":     func(c *NetExchangeConfig) { c.Schema = nil },
		"zero producers": func(c *NetExchangeConfig) { c.Producers = 0 },
		"nil consumer":   func(c *NetExchangeConfig) { c.ConsumerEnv = nil },
		"nil producer":   func(c *NetExchangeConfig) { c.NewProducer = nil },
		"bad packet":     func(c *NetExchangeConfig) { c.PacketSize = 999 },
		"bcast+part": func(c *NetExchangeConfig) {
			c.Broadcast = true
			c.NewPartition = func(int) expr.Partitioner { return expr.RoundRobin(1) }
		},
	}
	for name, mod := range cases {
		cfg := good
		mod(&cfg)
		if _, err := NewNetExchange(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	x, err := NewNetExchange(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Consumer(0).Next(); err == nil {
		t.Error("next before open accepted")
	}
	if err := x.Consumer(5).Open(); err == nil {
		t.Error("out-of-range consumer accepted")
	}
}
