package core

import (
	"strings"
	"sync"
	"testing"
)

// TestInstrumentCountsAndTimes drains a wrapped scan and checks the
// counters agree with the protocol: one open, rows + EOS Next calls,
// one close, and non-negative accumulated times.
func TestInstrumentCountsAndTimes(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", 1, 2, 3, 4, 5)
	ins := Instrument(scanOf(t, f), "scan t")
	n, err := Drain(ins)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("drained %d rows", n)
	}
	st := ins.Stats().Snapshot()
	if st.Rows != 5 || st.NextCalls != 6 || st.Opens != 1 || st.Closes != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.OpenTime < 0 || st.NextTime < 0 || st.CloseTime < 0 {
		t.Fatalf("negative time: %+v", st)
	}
	out := st.String()
	for _, want := range []string{"rows=5", "calls=6", "opens=1", "open=", "next=", "close="} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot %q missing %q", out, want)
		}
	}
	if ins.Name() != "scan t" {
		t.Fatalf("name = %q", ins.Name())
	}
	if ins.Unwrap() == nil {
		t.Fatal("unwrap lost the inner iterator")
	}
}

// TestInstrumentWithSharedStats runs several wrapped instances over one
// OpStats concurrently — the shape parallel plan instances produce —
// and checks the counters aggregate without losing updates.
func TestInstrumentWithSharedStats(t *testing.T) {
	env := newTestEnv(t, 1024)
	const workers, rows = 4, 50
	files := env.makePartitionedInts(t, "p", workers*rows, workers)
	shared := &OpStats{}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc, err := NewFileScan(files[w], nil, false)
			if err != nil {
				errs[w] = err
				return
			}
			_, errs[w] = Drain(InstrumentWith(sc, "pscan p", shared))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st := shared.Snapshot()
	if st.Rows != workers*rows {
		t.Fatalf("shared rows = %d, want %d", st.Rows, workers*rows)
	}
	if st.Opens != workers || st.Closes != workers {
		t.Fatalf("opens=%d closes=%d, want %d each", st.Opens, st.Closes, workers)
	}
	if st.NextCalls != workers*(rows+1) {
		t.Fatalf("calls = %d, want %d", st.NextCalls, workers*(rows+1))
	}
}
