package core

import "sync/atomic"

// packetPool is the bounded free list that makes the steady-state
// exchange data path allocation-free. In the paper, packets live in
// pre-allocated shared-memory segments whose population is bounded by
// the flow-control semaphore; in this port a drained packet is returned
// here by the consumer instead of being dropped for the garbage
// collector, and the next producer refill reuses it — including its
// recs slice's capacity, so the append loop in outbox.add settles into
// zero allocations per record.
//
// The free list is a buffered channel used non-blockingly from both
// sides: get falls back to a fresh allocation when the list is empty
// (a miss), put drops the packet when the list is full (a discard).
// Both paths are correct — the pool is purely an optimisation — which
// is what makes the recycling protocol safe against the shutdown
// races: any path that is unsure whether a packet may be reused can
// simply not return it.
//
// Ownership rule: a packet may be put only by the goroutine that owns
// it exclusively — a consumer that drained it, queue.drain holding the
// queue closed, or a producer whose push bounced off a closed queue.
// Once put, the packet must not be touched again: reads of packet
// fields after publication to a queue are forbidden (see queue.push,
// which snapshots eos/len before inserting).
type packetPool struct {
	free       chan *packet
	packetSize int

	hits     atomic.Int64
	misses   atomic.Int64
	discards atomic.Int64
}

// newPacketPool sizes the free list to the flow-control window:
// every producer may hold one partial packet per consumer plus Slack
// packets in flight in the queues (the semaphore bound), and every
// consumer holds at most one drained packet it has not yet returned —
// Producers × (PacketsInFlight + Consumers) + Consumers packets total,
// matching the paper's bounded-buffer design.
func newPacketPool(producers, consumers, slack, packetSize int) *packetPool {
	if slack < 1 {
		slack = 1
	}
	bound := producers*(slack+consumers) + consumers
	return &packetPool{free: make(chan *packet, bound), packetSize: packetSize}
}

// get returns a recycled packet, or a freshly allocated one when the
// free list is empty. The packet arrives reset: zero-length recs (with
// whatever capacity its previous life accumulated), no tags.
func (pp *packetPool) get(producer int) *packet {
	select {
	case p := <-pp.free:
		pp.hits.Add(1)
		xmPoolHits.Add(1)
		p.producer = producer
		return p
	default:
		pp.misses.Add(1)
		xmPoolMisses.Add(1)
		return &packet{recs: make([]Rec, 0, pp.packetSize), producer: producer}
	}
}

// put resets a drained packet and returns it to the free list, or
// drops it for the GC when the list is full. The caller must own the
// packet exclusively and must not touch it afterwards.
func (pp *packetPool) put(p *packet) {
	if p == nil {
		return
	}
	// Clear stale record references so recycled packets do not pin the
	// previous batch's Rec values in the backing array, then keep the
	// capacity for the next refill.
	for i := range p.recs {
		p.recs[i] = Rec{}
	}
	p.recs = p.recs[:0]
	p.eos = false
	p.err = nil
	p.flow = 0
	select {
	case pp.free <- p:
	default:
		pp.discards.Add(1)
		xmPoolDiscards.Add(1)
	}
}

// stats snapshots the pool counters.
func (pp *packetPool) stats() (hits, misses, discards int64) {
	return pp.hits.Load(), pp.misses.Load(), pp.discards.Load()
}
