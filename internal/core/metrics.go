package core

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Process-wide exchange-protocol counters, aggregated across every
// exchange and netexchange instance in the process. Per-query numbers
// stay with ExchangeStats / EXPLAIN ANALYZE; these are the always-on
// totals a scraper polls while queries run. They are plain atomics so
// the port hot path pays an atomic add per packet (never per record)
// and nothing when idle.
var (
	xmPackets           atomic.Int64 // packets pushed into consumer queues
	xmRecords           atomic.Int64 // records carried by those packets
	xmTokenWaits        atomic.Int64 // flow-control token acquisitions that blocked
	xmProducerStallNs   atomic.Int64 // ns producers spent blocked on flow control
	xmConsumerWaitNs    atomic.Int64 // ns consumers spent blocked on empty queues
	xmQueueDepth        atomic.Int64 // packets currently queued across all ports
	xmProducersLive     atomic.Int64 // producer goroutines currently running
	xmNetPackets        atomic.Int64 // packets serialised onto the wire (netexchange)
	xmNetBytes          atomic.Int64 // wire bytes sent (netexchange)
	xmPoolHits          atomic.Int64 // packet refills served from a free list
	xmPoolMisses        atomic.Int64 // packet refills that had to allocate
	xmPoolDiscards      atomic.Int64 // drained packets dropped because a free list was full
	xmBatchPulls        atomic.Int64 // batches pulled by exchange producers in batch mode
	xmBatchRecords      atomic.Int64 // records carried by those producer batch pulls
	xmBatchPoolHits     atomic.Int64 // batch refills served from a BatchPool free list
	xmBatchPoolMisses   atomic.Int64 // batch refills that had to allocate
	xmBatchPoolDiscards atomic.Int64 // returned batches dropped because a BatchPool was full
)

// RegisterMetrics exposes the exchange-protocol counters through a
// metrics registry. Durations become float seconds, the Prometheus
// convention. A nil registry is a no-op.
func RegisterMetrics(r *metrics.Registry) {
	if !r.Enabled() {
		return
	}
	counter := func(name, help string, v *atomic.Int64) {
		r.SetCounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	seconds := func(name, help string, v *atomic.Int64) {
		r.SetCounterFunc(name, help, func() float64 { return float64(v.Load()) / 1e9 })
	}
	counter("volcano_exchange_packets_total", "Packets pushed through exchange ports.", &xmPackets)
	counter("volcano_exchange_records_total", "Records carried by exchange packets.", &xmRecords)
	counter("volcano_exchange_token_waits_total", "Flow-control token acquisitions that blocked a producer.", &xmTokenWaits)
	seconds("volcano_exchange_producer_stall_seconds_total", "Time producers spent blocked on the flow-control semaphore.", &xmProducerStallNs)
	seconds("volcano_exchange_consumer_wait_seconds_total", "Time consumers spent blocked waiting for packets.", &xmConsumerWaitNs)
	counter("volcano_netexchange_packets_total", "Packets serialised onto the wire by netexchange.", &xmNetPackets)
	counter("volcano_netexchange_wire_bytes_total", "Bytes sent over netexchange connections.", &xmNetBytes)
	counter("volcano_exchange_pool_hits_total", "Packet refills served from an exchange free list.", &xmPoolHits)
	counter("volcano_exchange_pool_misses_total", "Packet refills that fell back to a fresh allocation.", &xmPoolMisses)
	counter("volcano_exchange_pool_discards_total", "Drained packets dropped because the bounded free list was full.", &xmPoolDiscards)
	counter("volcano_batch_pulls_total", "Batches pulled by exchange producers running the batch protocol.", &xmBatchPulls)
	counter("volcano_batch_records_total", "Records carried by producer batch pulls.", &xmBatchRecords)
	counter("volcano_batch_pool_hits_total", "Batch refills served from a batch free list.", &xmBatchPoolHits)
	counter("volcano_batch_pool_misses_total", "Batch refills that fell back to a fresh allocation.", &xmBatchPoolMisses)
	counter("volcano_batch_pool_discards_total", "Returned batches dropped because the bounded batch free list was full.", &xmBatchPoolDiscards)
	r.SetGaugeFunc("volcano_exchange_queue_depth", "Packets currently queued across all exchange ports.",
		func() float64 { return float64(xmQueueDepth.Load()) })
	r.SetGaugeFunc("volcano_exchange_producers_live", "Producer goroutines currently running.",
		func() float64 { return float64(xmProducersLive.Load()) })
}
