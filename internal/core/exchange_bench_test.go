package core

import (
	"fmt"
	"testing"

	"repro/internal/record"
)

// countedSource hands out the same frameless record n times with zero
// allocations, so the benchmarks below measure the exchange protocol —
// packet refill, port push/pop, flow control, recycling — and not a data
// source or the buffer manager.
type countedSource struct {
	rec  Rec
	n    int
	left int
}

func (s *countedSource) Schema() *record.Schema { return intSchema }
func (s *countedSource) Open() error            { s.left = s.n; return nil }
func (s *countedSource) Next() (Rec, bool, error) {
	if s.left == 0 {
		return Rec{}, false, nil
	}
	s.left--
	return s.rec, true, nil
}
func (s *countedSource) Close() error { return nil }

// benchRecordsPerProducer keeps one b.N iteration around a millisecond.
const benchRecordsPerProducer = 10000

// BenchmarkExchangeThroughput drives one full exchange per iteration:
// `producers` goroutines each push benchRecordsPerProducer records
// through a flow-controlled port to a single draining consumer. allocs/op
// is part of the committed baseline: with packet recycling it stays flat
// in the number of records (setup-only), which the BENCH_5.json gate in
// CI enforces.
func BenchmarkExchangeThroughput(b *testing.B) {
	for _, producers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			rec := staticIntRec()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, err := NewExchange(ExchangeConfig{
					Schema:      intSchema,
					Producers:   producers,
					Consumers:   1,
					PacketSize:  83,
					FlowControl: true,
					Slack:       4,
					NewProducer: func(g int) (Iterator, error) {
						return &countedSource{rec: rec, n: benchRecordsPerProducer}, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				n, err := Drain(x.Consumer(0))
				if err != nil {
					b.Fatal(err)
				}
				if n != producers*benchRecordsPerProducer {
					b.Fatalf("drained %d records", n)
				}
			}
			b.StopTimer()
			recs := float64(producers * benchRecordsPerProducer)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*recs), "ns/record")
		})
	}
}

// BenchmarkNetExchangeThroughput is the shared-nothing variant: two
// producers copy record images into wire packets that a consumer on a
// different "machine" materialises into its own buffer pool. The wire
// packets recycle through the netPacketPool, so allocs/op stays flat in
// the record count here too.
func BenchmarkNetExchangeThroughput(b *testing.B) {
	dst := newTestEnv(b, 1024)
	rec := staticIntRec()
	const producers = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := NewNetExchange(NetExchangeConfig{
			Schema:     intSchema,
			Producers:  producers,
			Consumers:  1,
			PacketSize: 83,
			NewProducer: func(g int) (Iterator, error) {
				return &countedSource{rec: rec, n: benchRecordsPerProducer}, nil
			},
			ConsumerEnv: func(int) *Env { return dst.Env },
		})
		if err != nil {
			b.Fatal(err)
		}
		n, err := Drain(x.Consumer(0))
		if err != nil {
			b.Fatal(err)
		}
		if n != producers*benchRecordsPerProducer {
			b.Fatalf("drained %d records", n)
		}
	}
	b.StopTimer()
	recs := float64(producers * benchRecordsPerProducer)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*recs), "ns/record")
}

// BenchmarkNetExchangeTCPThroughput is the real-wire variant: the same
// shared-nothing exchange, but every packet is framed by a WireSender,
// crosses a real TCP loopback socket, and is decoded back into a pooled
// wire packet by the consumer's reader goroutine. The delta against
// BenchmarkNetExchangeThroughput is the cost of the wire format plus two
// kernel socket crossings per frame. allocs/op is part of the committed
// BENCH_7.json gate: frame encode reuses the sender's scratch/arena and
// frame decode reuses the pooled packets' arenas, so allocations must
// stay flat in the record count (setup plus goroutine/socket bring-up
// only).
func BenchmarkNetExchangeTCPThroughput(b *testing.B) {
	dst := newTestEnv(b, 1024)
	rec := staticIntRec()
	const producers = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := NewTCPLoopback(1)
		if err != nil {
			b.Fatal(err)
		}
		x, err := NewNetExchange(NetExchangeConfig{
			Schema:     intSchema,
			Producers:  producers,
			Consumers:  1,
			PacketSize: 83,
			Transport:  tl,
			NewProducer: func(g int) (Iterator, error) {
				return &countedSource{rec: rec, n: benchRecordsPerProducer}, nil
			},
			ConsumerEnv: func(int) *Env { return dst.Env },
		})
		if err != nil {
			b.Fatal(err)
		}
		n, err := Drain(x.Consumer(0))
		if err != nil {
			b.Fatal(err)
		}
		if n != producers*benchRecordsPerProducer {
			b.Fatalf("drained %d records", n)
		}
		if err := tl.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recs := float64(producers * benchRecordsPerProducer)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*recs), "ns/record")
}
