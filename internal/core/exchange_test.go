package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/file"
)

// intSchema matches makeInts tables.
var intSchema = record.MustSchema(record.Field{Name: "v", Type: record.TInt})

// makePartitionedInts creates nparts files, value i going to file i%nparts.
func (e *testEnv) makePartitionedInts(t testing.TB, prefix string, n, nparts int) []*file.File {
	t.Helper()
	files := make([]*file.File, nparts)
	for p := range files {
		f, err := e.base.Create(prefix+string(rune('0'+p)), intSchema)
		if err != nil {
			t.Fatal(err)
		}
		files[p] = f
	}
	for i := 0; i < n; i++ {
		data := intSchema.MustEncode(record.Int(int64(i)))
		if _, err := files[i%nparts].Insert(data); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// collectConcurrently runs one goroutine per consumer endpoint and merges
// the collected int columns.
func collectConcurrently(t *testing.T, its []Iterator) [][]int64 {
	t.Helper()
	out := make([][]int64, len(its))
	errs := make([]error, len(its))
	var wg sync.WaitGroup
	for i, it := range its {
		wg.Add(1)
		go func(i int, it Iterator) {
			defer wg.Done()
			rows, err := Collect(it)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = intsOf(rows, 0)
		}(i, it)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("consumer %d: %v", i, err)
		}
	}
	return out
}

func TestExchangeVerticalPipeline(t *testing.T) {
	// One producer, one consumer: plain pipelining between "processes".
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", shuffled(1000, 2)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(sortedInts(intsOf(rows, 0)), sortedInts(shuffled(1000, 2))) {
		t.Fatal("records lost or duplicated through exchange")
	}
	st := x.Stats()
	if st.Records != 1000 || st.Packets < 1000/83 {
		t.Fatalf("stats = %+v", st)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeIntraOperatorParallelism(t *testing.T) {
	// Four producers scanning partitioned files into one consumer.
	env := newTestEnv(t, 512)
	const n = 2000
	files := env.makePartitionedInts(t, "p", n, 4)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 4,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(files[g], nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	got := sortedInts(intsOf(rows, 0))
	want := make([]int64, n)
	for i := range want {
		want[i] = int64(i)
	}
	if !equalInts(got, want) {
		t.Fatalf("lost/duplicated records: %d of %d", len(got), n)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeHashPartitioning(t *testing.T) {
	// 3 producers -> 3 consumers, hash partitioned: every consumer sees
	// exactly the keys hashing to it, and the union is complete.
	env := newTestEnv(t, 512)
	const n = 3000
	files := env.makePartitionedInts(t, "p", n, 3)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 3,
		Consumers: 3,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(files[g], nil, false)
		},
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(intSchema, record.Key{0}, 3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := collectConcurrently(t, []Iterator{x.Consumer(0), x.Consumer(1), x.Consumer(2)})
	ref := expr.HashPartition(intSchema, record.Key{0}, 3)
	var total int
	for c, vals := range parts {
		total += len(vals)
		for _, v := range vals {
			if ref(intSchema.MustEncode(record.Int(v))) != c {
				t.Fatalf("value %d landed on consumer %d", v, c)
			}
		}
	}
	if total != n {
		t.Fatalf("total %d, want %d", total, n)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeRangePartitioning(t *testing.T) {
	env := newTestEnv(t, 512)
	f := env.makeInts(t, "t", shuffled(900, 3)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 3,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
		NewPartition: func(int) expr.Partitioner {
			return expr.RangePartition(intSchema, 0, []record.Value{record.Int(300), record.Int(600)})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := collectConcurrently(t, []Iterator{x.Consumer(0), x.Consumer(1), x.Consumer(2)})
	for c, vals := range parts {
		if len(vals) != 300 {
			t.Fatalf("consumer %d got %d values", c, len(vals))
		}
		for _, v := range vals {
			if v/300 != int64(c) {
				t.Fatalf("value %d on consumer %d", v, c)
			}
		}
	}
	env.checkNoPinLeak(t)
}

func TestExchangeBroadcast(t *testing.T) {
	// Every consumer receives every record; records are pinned multiple
	// times, never copied.
	env := newTestEnv(t, 512)
	f := env.makeInts(t, "t", shuffled(500, 4)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 3,
		Broadcast: true,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := collectConcurrently(t, []Iterator{x.Consumer(0), x.Consumer(1), x.Consumer(2)})
	want := sortedInts(shuffled(500, 4))
	for c, vals := range parts {
		if !equalInts(sortedInts(vals), want) {
			t.Fatalf("consumer %d did not receive the full broadcast", c)
		}
	}
	env.checkNoPinLeak(t)
}

func TestExchangeFlowControlOnOff(t *testing.T) {
	for _, fc := range []bool{true, false} {
		env := newTestEnv(t, 512)
		f := env.makeInts(t, "t", shuffled(2000, 5)...)
		x, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   2,
			Consumers:   1,
			FlowControl: fc,
			Slack:       2,
			PacketSize:  16,
			NewProducer: func(g int) (Iterator, error) {
				fs, err := NewFileScan(f, nil, false)
				if err != nil {
					return nil, err
				}
				// Both producers scan the same file; filter to disjoint halves.
				if g == 0 {
					return NewFilterExpr(fs, "v % 2 = 0", expr.Compiled)
				}
				return NewFilterExpr(fs, "v % 2 = 1", expr.Compiled)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(x.Consumer(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2000 {
			t.Fatalf("fc=%v: got %d rows", fc, len(rows))
		}
		env.checkNoPinLeak(t)
	}
}

func TestExchangeMergeNetwork(t *testing.T) {
	// The parallel sort of §4.4: producers sort partitions, the consumer
	// merges per-producer streams kept separate by the exchange operator.
	env := newTestEnv(t, 1024)
	const n = 3000
	files := env.makePartitionedInts(t, "p", n, 3)
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   3,
		Consumers:   1,
		KeepStreams: true,
		PacketSize:  7,
		NewProducer: func(g int) (Iterator, error) {
			fs, err := NewFileScan(files[g], nil, false)
			if err != nil {
				return nil, err
			}
			return NewSort(env.Env, fs, []record.SortSpec{{Field: 0}}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := x.ConsumerStreams(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMergeSpec(streams, []record.SortSpec{{Field: 0}})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	got := intsOf(rows, 0)
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("merge network broke order at %d: %d", i, got[i])
		}
	}
	env.checkNoPinLeak(t)
	if n := len(env.Temp.List()); n != 0 {
		t.Fatalf("%d temp files left", n)
	}
}

func TestExchangeInlineMode(t *testing.T) {
	// §4.4's no-fork variant: each group member is both producer and
	// consumer in its own goroutine, repartitioning data among the group.
	env := newTestEnv(t, 1024)
	const n = 1200
	files := env.makePartitionedInts(t, "p", n, 3)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 3,
		Consumers: 3,
		Inline:    true,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(files[g], nil, false)
		},
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(intSchema, record.Key{0}, 3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := collectConcurrently(t, []Iterator{x.Consumer(0), x.Consumer(1), x.Consumer(2)})
	ref := expr.HashPartition(intSchema, record.Key{0}, 3)
	total := 0
	for c, vals := range parts {
		total += len(vals)
		for _, v := range vals {
			if ref(intSchema.MustEncode(record.Int(v))) != c {
				t.Fatalf("value %d on member %d", v, c)
			}
		}
	}
	if total != n {
		t.Fatalf("total %d, want %d", total, n)
	}
	if x.Stats().Forks != 0 {
		t.Fatal("inline mode forked")
	}
	env.checkNoPinLeak(t)
}

func TestExchangePaperExampleTopology(t *testing.T) {
	// §4.3: operators A(BC(D)) in groups A0, BC0-2, D0-3 with exchanges
	// X (BC->A) and Y (D->BC). 3*4 = 12 tagged packets flow through Y.
	env := newTestEnv(t, 2048)
	const n = 4000
	files := env.makePartitionedInts(t, "d", n, 4)

	y, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 4,
		Consumers: 3,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(files[g], nil, false) // operator D
		},
		NewPartition: func(int) expr.Partitioner {
			return expr.HashPartition(intSchema, record.Key{0}, 3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 3,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			// Operators B(C(...)): a filter over the lower exchange.
			return NewFilterExpr(y.Consumer(g), "v >= 0", expr.Compiled)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Operator A: the root collector.
	rows, err := Collect(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	got := sortedInts(intsOf(rows, 0))
	if len(got) != n || got[0] != 0 || got[n-1] != int64(n-1) {
		t.Fatalf("topology lost records: %d of %d", len(got), n)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeForkSchemesAndPool(t *testing.T) {
	run := func(cfgMod func(*ExchangeConfig)) {
		env := newTestEnv(t, 512)
		files := env.makePartitionedInts(t, "p", 800, 8)
		cfg := ExchangeConfig{
			Schema:    intSchema,
			Producers: 8,
			Consumers: 1,
			NewProducer: func(g int) (Iterator, error) {
				return NewFileScan(files[g], nil, false)
			},
		}
		cfgMod(&cfg)
		x, err := NewExchange(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(x.Consumer(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 800 {
			t.Fatalf("got %d rows", len(rows))
		}
		if cfg.Pool == nil && x.Stats().Forks != 8 {
			t.Fatalf("forks = %d, want 8", x.Stats().Forks)
		}
		if cfg.Pool != nil && x.Stats().Forks != 0 {
			t.Fatalf("primed pool still forked %d times", x.Stats().Forks)
		}
		env.checkNoPinLeak(t)
	}
	run(func(c *ExchangeConfig) { c.Fork = ForkCentral })
	run(func(c *ExchangeConfig) { c.Fork = ForkTree })
	pool := NewWorkerPool(8)
	defer pool.Close()
	run(func(c *ExchangeConfig) { c.Pool = pool })
}

func TestExchangeForkCostModel(t *testing.T) {
	// With a simulated fork cost, the propagation tree's master spends
	// less wall time forking than the central scheme (§4.2).
	mkCfg := func(env *testEnv, files []*file.File, scheme ForkScheme) ExchangeConfig {
		return ExchangeConfig{
			Schema:    intSchema,
			Producers: 8,
			Consumers: 1,
			Fork:      scheme,
			ForkCost:  2 * time.Millisecond,
			NewProducer: func(g int) (Iterator, error) {
				return NewFileScan(files[g], nil, false)
			},
		}
	}
	spawn := map[ForkScheme]time.Duration{}
	for _, scheme := range []ForkScheme{ForkCentral, ForkTree} {
		env := newTestEnv(t, 512)
		files := env.makePartitionedInts(t, "p", 80, 8)
		x, err := NewExchange(mkCfg(env, files, scheme))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Collect(x.Consumer(0)); err != nil {
			t.Fatal(err)
		}
		spawn[scheme] = x.Stats().SpawnTime
	}
	if spawn[ForkTree] >= spawn[ForkCentral] {
		t.Fatalf("tree fork (%v) not faster than central (%v)", spawn[ForkTree], spawn[ForkCentral])
	}
}

func TestExchangePacketSizes(t *testing.T) {
	for _, ps := range []int{1, 2, 83, 255} {
		env := newTestEnv(t, 512)
		f := env.makeInts(t, "t", shuffled(500, 6)...)
		x, err := NewExchange(ExchangeConfig{
			Schema:     intSchema,
			Producers:  1,
			Consumers:  1,
			PacketSize: ps,
			NewProducer: func(int) (Iterator, error) {
				return NewFileScan(f, nil, false)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Collect(x.Consumer(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 500 {
			t.Fatalf("packet size %d: %d rows", ps, len(rows))
		}
		env.checkNoPinLeak(t)
	}
}

func TestExchangeConfigValidation(t *testing.T) {
	mk := func(mod func(*ExchangeConfig)) error {
		cfg := ExchangeConfig{
			Schema:      intSchema,
			Producers:   1,
			Consumers:   1,
			NewProducer: func(int) (Iterator, error) { return nil, nil },
		}
		mod(&cfg)
		_, err := NewExchange(cfg)
		return err
	}
	cases := map[string]func(*ExchangeConfig){
		"nil schema":          func(c *ExchangeConfig) { c.Schema = nil },
		"zero producers":      func(c *ExchangeConfig) { c.Producers = 0 },
		"zero consumers":      func(c *ExchangeConfig) { c.Consumers = 0 },
		"nil producer":        func(c *ExchangeConfig) { c.NewProducer = nil },
		"packet size 256":     func(c *ExchangeConfig) { c.PacketSize = 256 },
		"packet size -1":      func(c *ExchangeConfig) { c.PacketSize = -1 },
		"inline mismatch":     func(c *ExchangeConfig) { c.Inline = true; c.Consumers = 2 },
		"inline with pool":    func(c *ExchangeConfig) { c.Inline = true; c.Pool = NewWorkerPool(1) },
		"inline keep streams": func(c *ExchangeConfig) { c.Inline = true; c.KeepStreams = true },
		"broadcast+partition": func(c *ExchangeConfig) {
			c.Broadcast = true
			c.NewPartition = func(int) expr.Partitioner { return expr.RoundRobin(1) }
		},
	}
	for name, mod := range cases {
		if err := mk(mod); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// ConsumerStreams without KeepStreams.
	x, err := NewExchange(ExchangeConfig{
		Schema: intSchema, Producers: 1, Consumers: 1,
		NewProducer: func(int) (Iterator, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ConsumerStreams(0); err == nil {
		t.Error("ConsumerStreams without KeepStreams accepted")
	}
}

func TestExchangeErrorPropagation(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", 5, 0, 7)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			fs, err := NewFileScan(f, nil, false)
			if err != nil {
				return nil, err
			}
			return NewFilterExpr(fs, "10 / v > 0", expr.Compiled)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(x.Consumer(0))
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("producer error not propagated: %v", err)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeProducerBuildError(t *testing.T) {
	env := newTestEnv(t, 256)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 2,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			if g == 1 {
				return nil, errState("test", "boom")
			}
			f := env.makeInts(t, "ok", 1, 2, 3)
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(x.Consumer(0)); err == nil {
		t.Fatal("producer construction error not propagated")
	}
	env.checkNoPinLeak(t)
}

func TestExchangeEarlyConsumerClose(t *testing.T) {
	// The consumer stops after a few records (LIMIT-like): producers must
	// still shut down orderly and no pins may leak, even with flow
	// control active.
	env := newTestEnv(t, 512)
	f := env.makeInts(t, "t", shuffled(5000, 7)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   2,
		Consumers:   1,
		FlowControl: true,
		Slack:       2,
		PacketSize:  8,
		NewProducer: func(g int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Consumer(0)
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("next %d: %v %v", i, ok, err)
		}
		r.Unfix()
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	env.checkNoPinLeak(t)
}

func TestExchangeSchemaMismatchDetected(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeEmp(t, "emp", 10, 2)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema, // wrong: producer yields empSchema
		Producers: 1,
		Consumers: 1,
		NewProducer: func(int) (Iterator, error) {
			return NewFileScan(f, nil, false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(x.Consumer(0)); err == nil {
		t.Fatal("schema mismatch not detected")
	}
	env.checkNoPinLeak(t)
}

func TestExchangeProtocolErrors(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", 1)
	x, _ := NewExchange(ExchangeConfig{
		Schema: intSchema, Producers: 1, Consumers: 1,
		NewProducer: func(int) (Iterator, error) { return NewFileScan(f, nil, false) },
	})
	c := x.Consumer(0)
	if _, _, err := c.Next(); err == nil {
		t.Fatal("next before open succeeded")
	}
	if err := c.Close(); err == nil {
		t.Fatal("close before open succeeded")
	}
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	if err := c.Open(); err == nil {
		t.Fatal("double open succeeded")
	}
	if _, err := Collect(x.Consumer(99)); err == nil {
		t.Fatal("out-of-range consumer accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPool(t *testing.T) {
	p := NewWorkerPool(3)
	if p.Size() != 3 {
		t.Fatal("wrong size")
	}
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	wg.Wait()
	if count != 10 {
		t.Fatalf("ran %d tasks", count)
	}
	p.Close()
}
