package core

import (
	"fmt"

	"repro/internal/record"
)

// HashMatch is the hash-based one-to-one match algorithm. On open it
// builds an in-memory hash table over the right ("build") input, holding
// its records pinned in the buffer; next probes with left ("probe")
// records. Records created for combined outputs are materialised through a
// virtual file, and consumed input records are unfixed, per the ownership
// protocol of §3.
type HashMatch struct {
	env      *Env
	op       MatchOp
	left     Iterator
	right    Iterator
	leftKey  record.Key
	rightKey record.Key
	schema   *record.Schema

	table     map[uint64][]*buildEntry
	order     []*buildEntry // build order, for deterministic trailing output
	w         *ResultWriter // for combined outputs
	seen      map[string]struct{}
	pending   []Rec
	trail     int // cursor over order for right-only emission
	probing   bool
	rightOpen bool
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
	batch     int
	probeSrc  recSource
}

// EnableBatch implements BatchConfigurable: both the build-phase drain of
// the right input and the probe-phase consumption of the left input pull
// batches of the given size.
func (h *HashMatch) EnableBatch(size int) { h.batch = size }

type buildEntry struct {
	rec     Rec
	matched bool
}

// NewHashMatch builds the operator. leftKey and rightKey must have equal
// length and pairwise-comparable field types.
func NewHashMatch(env *Env, op MatchOp, left, right Iterator, leftKey, rightKey record.Key) (*HashMatch, error) {
	if len(leftKey) != len(rightKey) || len(leftKey) == 0 {
		return nil, fmt.Errorf("core: hashmatch: bad key arity %d/%d", len(leftKey), len(rightKey))
	}
	schema, err := matchOutputSchema(op, left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	return &HashMatch{
		env: env, op: op, left: left, right: right,
		leftKey: leftKey, rightKey: rightKey, schema: schema,
	}, nil
}

// Schema implements Iterator.
func (h *HashMatch) Schema() *record.Schema { return h.schema }

// distinctBuild reports whether the build side dedupes on key.
func (h *HashMatch) distinctBuild() bool {
	switch h.op {
	case MatchUnion, MatchIntersect, MatchAntiDifference, MatchSemi, MatchAnti, MatchDifference:
		return true
	}
	return false
}

// distinctProbe reports whether probe-side outputs dedupe on key.
func (h *HashMatch) distinctProbe() bool {
	switch h.op {
	case MatchUnion, MatchIntersect, MatchDifference:
		return true
	}
	return false
}

// Open implements Iterator: the build phase.
func (h *HashMatch) Open() error {
	if h.open {
		return errState("hashmatch", "already open")
	}
	err := h.openImpl()
	h.openFailed = err != nil
	return err
}

func (h *HashMatch) openImpl() error {
	if h.op.combinesSchemas() {
		w, err := h.env.NewResultWriter("hashmatch", h.schema)
		if err != nil {
			return err
		}
		h.w = w
	}
	h.table = make(map[uint64][]*buildEntry)
	h.seen = make(map[string]struct{})
	if err := h.right.Open(); err != nil {
		h.abort()
		return err
	}
	h.rightOpen = true
	rs := h.right.Schema()
	build := inputSource(h.right, h.batch)
	for {
		r, ok, err := build.next()
		if err != nil {
			build.release()
			h.abort()
			return err
		}
		if !ok {
			break
		}
		hk := rs.Hash(r.Data, h.rightKey)
		if h.distinctBuild() && h.bucketHasKey(hk, rs, r.Data) {
			r.Unfix()
			continue
		}
		e := &buildEntry{rec: r}
		h.table[hk] = append(h.table[hk], e)
		h.order = append(h.order, e)
	}
	// NOTE: the build input stays open until our own close — its records
	// remain pinned in the hash table, and a materialising input (e.g. a
	// projection's virtual file) must not be shut down before all its
	// records are unpinned (the same rule exchange enforces across
	// process boundaries, §4.1).
	if err := h.left.Open(); err != nil {
		h.abort()
		return err
	}
	h.probeSrc = inputSource(h.left, h.batch)
	h.probing = true
	h.open = true
	return nil
}

func (h *HashMatch) bucketHasKey(hk uint64, rs *record.Schema, data []byte) bool {
	for _, e := range h.table[hk] {
		if keysEqual(rs, e.rec.Data, h.rightKey, rs, data, h.rightKey) {
			return true
		}
	}
	return false
}

// Next implements Iterator: the probe phase, then right-only emission.
func (h *HashMatch) Next() (Rec, bool, error) {
	if !h.open {
		return Rec{}, false, errState("hashmatch", "next before open")
	}
	for {
		if len(h.pending) > 0 {
			out := h.pending[0]
			h.pending = h.pending[1:]
			return out, true, nil
		}
		if h.probing {
			l, ok, err := h.probeSrc.next()
			if err != nil {
				return Rec{}, false, err
			}
			if !ok {
				h.probing = false
				continue
			}
			if err := h.probe(l); err != nil {
				return Rec{}, false, err
			}
			continue
		}
		// Trailing phase: right-only classes.
		r, ok, err := h.trailNext()
		if err != nil || ok {
			return r, ok, err
		}
		return Rec{}, false, nil
	}
}

// NextBatch implements BatchIterator natively: queued outputs move into
// the batch wholesale, and the probe loop keeps going until the batch
// fills or both phases are exhausted.
func (h *HashMatch) NextBatch(b *Batch) error {
	if !h.open {
		return errState("hashmatch", "next before open")
	}
	b.Reset()
	for {
		if len(h.pending) > 0 {
			for _, r := range h.pending {
				b.Append(r)
			}
			h.pending = h.pending[:0]
		}
		if b.Full() {
			return nil
		}
		if h.probing {
			l, ok, err := h.probeSrc.next()
			if err != nil {
				b.Release()
				return err
			}
			if !ok {
				h.probing = false
				continue
			}
			if err := h.probe(l); err != nil {
				b.Release()
				return err
			}
			continue
		}
		r, ok, err := h.trailNext()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			return nil
		}
		b.Append(r)
	}
}

// probe handles one left record, queueing outputs on h.pending and
// disposing of the left pin.
func (h *HashMatch) probe(l Rec) error {
	ls, rs := h.left.Schema(), h.right.Schema()
	hk := ls.Hash(l.Data, h.leftKey)
	var matches []*buildEntry
	for _, e := range h.table[hk] {
		if keysEqual(ls, l.Data, h.leftKey, rs, e.rec.Data, h.rightKey) {
			matches = append(matches, e)
		}
	}
	matched := len(matches) > 0
	if h.distinctProbe() {
		key := record.KeyString(ls.KeyValues(l.Data, h.leftKey))
		if _, dup := h.seen[key]; dup {
			l.Unfix()
			for _, e := range matches {
				e.matched = true
			}
			return nil
		}
		h.seen[key] = struct{}{}
	}
	defer l.Unfix()
	switch h.op {
	case MatchJoin, MatchLeftOuter, MatchRightOuter, MatchFullOuter:
		for _, e := range matches {
			e.matched = true
			out, err := h.combine(l.Data, e.rec.Data)
			if err != nil {
				return err
			}
			h.pending = append(h.pending, out)
		}
		if !matched && (h.op == MatchLeftOuter || h.op == MatchFullOuter) {
			out, err := h.combinePadRight(l.Data)
			if err != nil {
				return err
			}
			h.pending = append(h.pending, out)
		}
	case MatchSemi:
		if matched {
			// Pass the left record through; it keeps its pin.
			h.pending = append(h.pending, h.holdLeft(l))
			return nil
		}
	case MatchAnti:
		if !matched {
			h.pending = append(h.pending, h.holdLeft(l))
			return nil
		}
	case MatchUnion:
		for _, e := range matches {
			e.matched = true
		}
		h.pending = append(h.pending, h.holdLeft(l))
		return nil
	case MatchIntersect:
		if matched {
			for _, e := range matches {
				e.matched = true
			}
			h.pending = append(h.pending, h.holdLeft(l))
			return nil
		}
	case MatchDifference:
		if !matched {
			h.pending = append(h.pending, h.holdLeft(l))
			return nil
		}
	case MatchAntiDifference:
		for _, e := range matches {
			e.matched = true
		}
	}
	return nil
}

// holdLeft cancels the deferred unfix by taking an extra pin: the record
// passes through to the consumer.
func (h *HashMatch) holdLeft(l Rec) Rec {
	l.Share(1)
	return l.WithoutDirty()
}

// trailNext emits right-side records after the probe phase: unmatched
// build entries for right-outer/full-outer/union/anti-difference.
func (h *HashMatch) trailNext() (Rec, bool, error) {
	emitUnmatched := false
	pad := false
	switch h.op {
	case MatchRightOuter, MatchFullOuter:
		emitUnmatched, pad = true, true
	case MatchUnion, MatchAntiDifference:
		emitUnmatched = true
	}
	if !emitUnmatched {
		return Rec{}, false, nil
	}
	for h.trail < len(h.order) {
		e := h.order[h.trail]
		h.trail++
		if e.matched {
			continue
		}
		if pad {
			out, err := h.combinePadLeft(e.rec.Data)
			if err != nil {
				return Rec{}, false, err
			}
			return out, true, nil
		}
		// Pass the build record through with its own pin.
		e.rec.Share(1)
		return e.rec.WithoutDirty(), true, nil
	}
	return Rec{}, false, nil
}

// combine materialises a concatenated output record.
func (h *HashMatch) combine(l, r []byte) (Rec, error) {
	lv, err := h.left.Schema().Decode(l)
	if err != nil {
		return Rec{}, err
	}
	rv, err := h.right.Schema().Decode(r)
	if err != nil {
		return Rec{}, err
	}
	return h.w.Write(append(lv, rv...))
}

func (h *HashMatch) combinePadRight(l []byte) (Rec, error) {
	lv, err := h.left.Schema().Decode(l)
	if err != nil {
		return Rec{}, err
	}
	return h.w.Write(append(lv, zeroValues(h.right.Schema())...))
}

func (h *HashMatch) combinePadLeft(r []byte) (Rec, error) {
	rv, err := h.right.Schema().Decode(r)
	if err != nil {
		return Rec{}, err
	}
	return h.w.Write(append(zeroValues(h.left.Schema()), rv...))
}

// Close implements Iterator: releases the hash table pins, closes both
// inputs (the build side stayed open to keep its records pinnable), and
// drops the temp file.
func (h *HashMatch) Close() error {
	if h.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		h.openFailed = false
		return nil
	}
	if !h.open {
		return errState("hashmatch", "close before open")
	}
	h.open = false
	if h.probeSrc != nil {
		h.probeSrc.release()
		h.probeSrc = nil
	}
	err := h.left.Close()
	h.release()
	if h.rightOpen {
		h.rightOpen = false
		if rerr := h.right.Close(); err == nil {
			err = rerr
		}
	}
	if derr := h.dispose(); err == nil {
		err = derr
	}
	return err
}

func (h *HashMatch) abort() {
	h.release()
	if h.rightOpen {
		h.rightOpen = false
		_ = h.right.Close()
	}
	_ = h.dispose()
}

func (h *HashMatch) release() {
	for _, r := range h.pending {
		r.Unfix()
	}
	h.pending = nil
	for _, e := range h.order {
		e.rec.Unfix()
	}
	h.order = nil
	h.table = nil
}

func (h *HashMatch) dispose() error {
	if h.w == nil {
		return nil
	}
	err := h.w.Dispose()
	h.w = nil
	return err
}
