package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
)

// staticSource is an endless iterator that hands out the same pinned-free
// record forever: Data points at a process-lifetime byte slice and there
// is no frame, so Unfix is a no-op. Next performs zero allocations, which
// makes the source suitable for AllocsPerRun measurements of the exchange
// itself — any allocation the harness observes belongs to the exchange
// hot path, not to the data source.
type staticSource struct {
	rec Rec
}

func (s *staticSource) Schema() *record.Schema { return intSchema }
func (s *staticSource) Open() error            { return nil }
func (s *staticSource) Next() (Rec, bool, error) {
	return s.rec, true, nil
}
func (s *staticSource) Close() error { return nil }

func staticIntRec() Rec {
	return Rec{Data: intSchema.MustEncode(record.Int(7))}
}

// TestExchangePacketRecycling proves the free list actually carries the
// steady state: after a run long enough to warm the pool, refills are
// dominated by hits, and the get/push pairing is exact — every packet
// pushed through the port was obtained from the pool exactly once, so
// hits+misses equals the packet count.
func TestExchangePacketRecycling(t *testing.T) {
	env := newTestEnv(t, 1024)
	const n = 20000
	f := env.makeInts(t, "t", shuffled(n, 21)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   2,
		Consumers:   1,
		PacketSize:  10,
		FlowControl: true,
		Slack:       4,
		NewProducer: func(g int) (Iterator, error) { return NewFileScan(f, nil, false) },
	})
	if err != nil {
		t.Fatal(err)
	}
	count, err := Drain(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("count = %d, want %d", count, 2*n)
	}
	st := x.Stats()
	if st.PoolHits == 0 {
		t.Fatal("pool recorded no hits: packets are not being recycled")
	}
	if got := st.PoolHits + st.PoolMisses; got != st.Packets {
		t.Fatalf("pool gets (%d hits + %d misses = %d) != packets pushed (%d): a push or a get escaped the pairing",
			st.PoolHits, st.PoolMisses, got, st.Packets)
	}
	// The warmed-up steady state must be hit-dominated: misses are the
	// cold start plus the rare window overrun, never a steady trickle.
	if st.PoolMisses*4 > st.Packets {
		t.Fatalf("pool misses %d of %d packets: free list is not retaining packets", st.PoolMisses, st.Packets)
	}
	env.checkNoPinLeak(t)
}

// TestNetExchangePacketRecycling is the same invariant for the wire-packet
// free list of the shared-nothing exchange.
func TestNetExchangePacketRecycling(t *testing.T) {
	src := newTestEnv(t, 512)
	dst := newTestEnv(t, 512)
	const n = 8000
	f := src.makeInts(t, "t", shuffled(n, 22)...)
	x, err := NewNetExchange(NetExchangeConfig{
		Schema:      intSchema,
		Producers:   2,
		Consumers:   1,
		PacketSize:  10,
		NewProducer: func(g int) (Iterator, error) { return NewFileScan(f, nil, false) },
		ConsumerEnv: func(int) *Env { return dst.Env },
	})
	if err != nil {
		t.Fatal(err)
	}
	count, err := Drain(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("count = %d, want %d", count, 2*n)
	}
	st := x.NetStats()
	if st.PoolHits == 0 {
		t.Fatal("net pool recorded no hits: wire packets are not being recycled")
	}
	if got := st.PoolHits + st.PoolMisses; got != st.Packets {
		t.Fatalf("net pool gets (%d hits + %d misses = %d) != packets sent (%d)",
			st.PoolHits, st.PoolMisses, got, st.Packets)
	}
	if st.PoolMisses*4 > st.Packets {
		t.Fatalf("net pool misses %d of %d packets", st.PoolMisses, st.Packets)
	}
	src.checkNoPinLeak(t)
	dst.checkNoPinLeak(t)
}

// TestPacketRefillZeroAlloc measures the port-level packet cycle in
// isolation: get a packet from the pool, refill it to the packet size,
// push it through a flow-controlled queue, pop it, return it. After the
// warm-up run the cycle must not allocate at all — the packet, its recs
// backing array, the queue FIFO's backing array and the flow-control
// token all come from reused storage.
func TestPacketRefillZeroAlloc(t *testing.T) {
	const packetSize = 8
	pool := newPacketPool(1, 1, 4, packetSize)
	q := newQueue(1, false, true, 4, &portStats{}, pool)
	rec := staticIntRec()
	avg := testing.AllocsPerRun(1000, func() {
		p := pool.get(0)
		for i := 0; i < packetSize; i++ {
			p.recs = append(p.recs, rec)
		}
		q.push(p, nil)
		got := q.pop(1, nil)
		if got == nil {
			t.Fatal("pop returned nil")
		}
		pool.put(got)
	})
	if avg != 0 {
		t.Fatalf("packet refill cycle allocates %.2f objects per packet, want 0", avg)
	}
}

// TestExchangeConsumerNextZeroAlloc is the end-to-end allocation guard
// for the tentpole: with a zero-alloc source, a running producer
// goroutine and a warmed packet pool, the consumer's Next path must
// settle into zero amortised allocations per record. AllocsPerRun counts
// process-global mallocs, so the producer side of the port (outbox
// refill, push, flow control) is inside the measurement too.
func TestExchangeConsumerNextZeroAlloc(t *testing.T) {
	done := make(chan struct{})
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   1,
		Consumers:   1,
		PacketSize:  83,
		FlowControl: true,
		Slack:       4,
		Done:        done,
		NewProducer: func(g int) (Iterator, error) { return &staticSource{rec: staticIntRec()}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Consumer(0)
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	next := func() {
		r, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("next: ok=%v err=%v", ok, err)
		}
		r.Unfix()
	}
	// Warm the pool and let producer and consumer reach steady state.
	for i := 0; i < 20000; i++ {
		next()
	}
	const perRun = 8300 // 100 packets per measured run
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < perRun; i++ {
			next()
		}
	})
	if perRecord := avg / perRun; perRecord > 0.01 {
		t.Fatalf("consumer Next allocates %.4f objects per record (%.1f per run), want 0 amortised", perRecord, avg)
	}
	// The source never ends: cancel, drain to the tagged final packet,
	// and run the ordinary shutdown handshake.
	close(done)
	for {
		r, ok, err := c.Next()
		if err != nil || !ok {
			break
		}
		r.Unfix()
	}
	if err := c.Close(); err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("close: %v", err)
	}
}

// TestExchangeRecycleShutdownStress hammers the racy corner of the
// recycling protocol under the race detector: one consumer closes early
// while producers are mid-flush, so packets simultaneously travel
// producer→queue, queue→drain→pool, and closed-queue-push→pool while the
// surviving consumer keeps popping and recycling. Run with -race this
// proves the snapshot-before-publish discipline in queue.push and the
// exclusive-owner rule for pool.put.
func TestExchangeRecycleShutdownStress(t *testing.T) {
	env := newTestEnv(t, 2048)
	const n = 2000
	f := env.makeInts(t, "t", shuffled(n, 23)...)
	iters := 30
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		x, err := NewExchange(ExchangeConfig{
			Schema:      intSchema,
			Producers:   4,
			Consumers:   2,
			PacketSize:  3,
			FlowControl: true,
			Slack:       1,
			NewProducer: func(g int) (Iterator, error) { return NewFileScan(f, nil, false) },
		})
		if err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		var wg sync.WaitGroup
		for ci := 0; ci < 2; ci++ {
			wg.Add(1)
			go func(ci, iter int) {
				defer wg.Done()
				c := x.Consumer(ci)
				if err := c.Open(); err != nil {
					errs <- err
					return
				}
				// Consumer 0 walks away mid-stream at a varying point;
				// consumer 1 drains everything routed to it.
				limit := -1
				if ci == 0 {
					limit = 5 * (iter%7 + 1)
				}
				got := 0
				for limit < 0 || got < limit {
					r, ok, err := c.Next()
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						break
					}
					r.Unfix()
					got++
				}
				errs <- c.Close()
			}(ci, iter)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("iter %d: shutdown hung", iter)
		}
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
		env.checkNoPinLeak(t)
	}
}

// TestExchangeStatsMatchMetricsOnShutdownPaths is the accounting
// reconciliation regression test: on every exit path — cancellation of
// endless producers, and an early consumer Close that bounces remaining
// producer pushes off a closed queue — the per-exchange counters, the
// process-wide metrics counters and the queue-depth gauge must agree.
// The exchange tests never run in parallel, so counter deltas observed
// around one hub belong to that hub.
func TestExchangeStatsMatchMetricsOnShutdownPaths(t *testing.T) {
	env := newTestEnv(t, 1024)
	f := env.makeInts(t, "t", shuffled(1000, 24)...)

	check := func(t *testing.T, mk func() (*Exchange, func())) {
		t.Helper()
		basePackets := xmPackets.Load()
		baseRecords := xmRecords.Load()
		baseDepth := xmQueueDepth.Load()
		x, run := mk()
		run()
		st := x.Stats()
		if d := xmPackets.Load() - basePackets; d != st.Packets {
			t.Fatalf("metrics saw %d packets, ExchangeStats %d", d, st.Packets)
		}
		if d := xmRecords.Load() - baseRecords; d != st.Records {
			t.Fatalf("metrics saw %d records, ExchangeStats %d", d, st.Records)
		}
		if d := xmQueueDepth.Load(); d != baseDepth {
			t.Fatalf("queue depth gauge leaked: %d before, %d after teardown", baseDepth, d)
		}
		if got := st.PoolHits + st.PoolMisses; got != st.Packets {
			t.Fatalf("pool gets %d != packets %d", got, st.Packets)
		}
	}

	t.Run("cancel", func(t *testing.T) {
		check(t, func() (*Exchange, func()) {
			done := make(chan struct{})
			x, err := NewExchange(ExchangeConfig{
				Schema:      intSchema,
				Producers:   4,
				Consumers:   1,
				PacketSize:  3,
				FlowControl: true,
				Slack:       1,
				Done:        done,
				NewProducer: func(g int) (Iterator, error) {
					mk := func() (Iterator, error) { return NewFileScan(f, nil, false) }
					sc, err := mk()
					if err != nil {
						return nil, err
					}
					return &loopScan{newScan: mk, cur: sc}, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return x, func() {
				c := x.Consumer(0)
				if err := c.Open(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 25; i++ {
					r, ok, err := c.Next()
					if err != nil || !ok {
						t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
					}
					r.Unfix()
				}
				close(done)
				if err := c.Close(); err != nil && !errors.Is(err, ErrCanceled) {
					t.Fatalf("close: %v", err)
				}
				env.checkNoPinLeak(t)
			}
		})
	})

	t.Run("early-close", func(t *testing.T) {
		check(t, func() (*Exchange, func()) {
			x, err := NewExchange(ExchangeConfig{
				Schema:      intSchema,
				Producers:   4,
				Consumers:   1,
				PacketSize:  3,
				FlowControl: true,
				Slack:       1,
				NewProducer: func(g int) (Iterator, error) { return NewFileScan(f, nil, false) },
			})
			if err != nil {
				t.Fatal(err)
			}
			return x, func() {
				c := x.Consumer(0)
				if err := c.Open(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 10; i++ {
					r, ok, err := c.Next()
					if err != nil || !ok {
						t.Fatalf("next %d: ok=%v err=%v", i, ok, err)
					}
					r.Unfix()
				}
				// Close with thousands of records unread: the drain closes
				// the queue and the remaining producer pushes take the
				// closed-queue path — which must still count.
				if err := c.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				env.checkNoPinLeak(t)
			}
		})
	})
}
