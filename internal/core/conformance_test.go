package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// TestIteratorProtocolConformance checks every operator against the
// open-next-close contract uniformly:
//
//   - Next before Open fails
//   - Close before Open fails
//   - double Open fails
//   - Open → drain → Close works and leaks no pins
//   - double Close (after a successful Close) fails
//   - Open → Close without draining works and leaks no pins
//   - Schema() is non-nil and stable
//
// Every case runs twice: on the bare operator and wrapped in
// core.Instrument, proving the instrumentation adapter is protocol-
// transparent (errors, EOS and pin ownership pass through unchanged)
// and that its counters reflect exactly the calls made.
//
// Anonymous inputs only work if every operator honours the same protocol;
// this is the uniformity §3 of the paper is about.
func TestIteratorProtocolConformance(t *testing.T) {
	type mk struct {
		name  string
		build func(env *testEnv) (Iterator, error)
	}
	makers := []mk{
		{"filescan", func(env *testEnv) (Iterator, error) {
			return NewFileScan(env.makeEmp(t, "t", 50, 4), nil, false)
		}},
		{"filter", func(env *testEnv) (Iterator, error) {
			return NewFilterExpr(scanOf(t, env.makeEmp(t, "t", 50, 4)), "dept = 1", expr.Compiled)
		}},
		{"project", func(env *testEnv) (Iterator, error) {
			return NewProjectExprs(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				[]string{"id + 1"}, []string{"x"}, expr.Interpreted)
		}},
		{"sort", func(env *testEnv) (Iterator, error) {
			return NewSort(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				[]record.SortSpec{{Field: 0, Desc: true}}), nil
		}},
		{"merge", func(env *testEnv) (Iterator, error) {
			a := env.makeInts(t, "a", 1, 3)
			b := env.makeInts(t, "b", 2, 4)
			return NewMergeSpec([]Iterator{scanOf(t, a), scanOf(t, b)}, []record.SortSpec{{Field: 0}})
		}},
		{"hashmatch", func(env *testEnv) (Iterator, error) {
			l := env.makePairs(t, "l", [][2]int64{{1, 2}, {3, 4}})
			r := env.makePairs(t, "r", [][2]int64{{1, 5}})
			return NewHashMatch(env.Env, MatchJoin, scanOf(t, l), scanOf(t, r), record.Key{0}, record.Key{0})
		}},
		{"mergematch", func(env *testEnv) (Iterator, error) {
			l := env.makePairs(t, "l", [][2]int64{{1, 2}, {3, 4}})
			r := env.makePairs(t, "r", [][2]int64{{1, 5}})
			return NewMergeMatchSorted(env.Env, MatchFullOuter, scanOf(t, l), scanOf(t, r), record.Key{0}, record.Key{0})
		}},
		{"nestedloops", func(env *testEnv) (Iterator, error) {
			l := env.makeInts(t, "l", 1, 2)
			r := env.makeInts(t, "r", 3)
			return NewNestedLoops(env.Env, scanOf(t, l), scanOf(t, r), "$0 < $1", expr.Compiled)
		}},
		{"hashaggregate", func(env *testEnv) (Iterator, error) {
			return NewHashAggregate(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				record.Key{1}, []AggSpec{{Func: AggCount}})
		}},
		{"sortaggregate", func(env *testEnv) (Iterator, error) {
			in := NewSort(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)), []record.SortSpec{{Field: 1}})
			return NewSortAggregate(env.Env, in, record.Key{1}, []AggSpec{{Func: AggCount}})
		}},
		{"hashdistinct", func(env *testEnv) (Iterator, error) {
			return NewHashDistinct(env.Env, scanOf(t, env.makeInts(t, "t", 1, 1, 2)))
		}},
		{"hashdivision", func(env *testEnv) (Iterator, error) {
			dv := env.makePairs(t, "dv", [][2]int64{{1, 1}, {1, 2}})
			ds := env.makeInts(t, "ds", 1, 2)
			return NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"sortdivision", func(env *testEnv) (Iterator, error) {
			dv := env.makePairs(t, "dv", [][2]int64{{1, 1}, {1, 2}})
			ds := env.makeInts(t, "ds", 1, 2)
			return NewSortDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"chooseplan", func(env *testEnv) (Iterator, error) {
			return NewChoosePlan([]Iterator{scanOf(t, env.makeInts(t, "t", 1, 2))},
				func() (int, error) { return 0, nil })
		}},
		{"exchange", func(env *testEnv) (Iterator, error) {
			f := env.makeInts(t, "t", shuffled(100, 33)...)
			x, err := NewExchange(ExchangeConfig{
				Schema: intSchema, Producers: 2, Consumers: 1,
				FlowControl: true, Slack: 2, PacketSize: 4,
				NewProducer: func(int) (Iterator, error) { return NewFileScan(f, nil, false) },
			})
			if err != nil {
				return nil, err
			}
			return x.Consumer(0), nil
		}},
	}

	for _, m := range makers {
		m := m
		for _, wrapped := range []bool{false, true} {
			wrapped := wrapped
			name := m.name
			if wrapped {
				name += "/instrumented"
			}
			// build constructs the iterator under test, optionally wrapped;
			// the second return is non-nil only in the instrumented variant.
			build := func(env *testEnv) (Iterator, *Instrumented, error) {
				it, err := m.build(env)
				if err != nil || !wrapped {
					return it, nil, err
				}
				ins := Instrument(it, m.name)
				return ins, ins, nil
			}
			t.Run(name, func(t *testing.T) {
				// Protocol violations.
				env := newTestEnv(t, 1024)
				it, ins, err := build(env)
				if err != nil {
					t.Fatal(err)
				}
				if it.Schema() == nil {
					t.Fatal("nil schema")
				}
				if _, _, err := it.Next(); err == nil {
					t.Error("next before open succeeded")
				}
				if err := it.Close(); err == nil {
					t.Error("close before open succeeded")
				}
				if err := it.Open(); err != nil {
					t.Fatal(err)
				}
				if err := it.Open(); err == nil {
					t.Error("double open succeeded")
				}
				schema := it.Schema()
				// Full drain.
				rows := int64(0)
				for {
					r, ok, err := it.Next()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					if len(r.Data) < schema.FixedLen() {
						t.Fatal("record shorter than schema's fixed area")
					}
					r.Unfix()
					rows++
				}
				if rows == 0 {
					t.Fatal("operator produced no rows; conformance fixture broken")
				}
				if err := it.Close(); err != nil {
					t.Fatal(err)
				}
				if err := it.Close(); err == nil {
					t.Error("double close succeeded")
				}
				env.checkNoPinLeak(t)

				if ins != nil {
					// The wrapper counted every call above, including the
					// rejected misuse ones: next-before-open + drain + EOS;
					// close-before-open + close + double close; open + double
					// open. Counting failures too is deliberate — misuse
					// shows up in the report rather than vanishing.
					st := ins.Stats().Snapshot()
					if st.Rows != rows {
						t.Errorf("instrumented rows = %d, drained %d", st.Rows, rows)
					}
					if want := rows + 2; st.NextCalls != want {
						t.Errorf("instrumented calls = %d, want %d", st.NextCalls, want)
					}
					if st.Opens != 2 {
						t.Errorf("instrumented opens = %d, want 2", st.Opens)
					}
					if st.Closes != 3 {
						t.Errorf("instrumented closes = %d, want 3", st.Closes)
					}
					if ins.Unwrap() == nil || ins.Name() != m.name {
						t.Errorf("wrapper identity lost: name=%q", ins.Name())
					}
				}

				// Early close without draining (fresh instance, fresh world).
				env2 := newTestEnv(t, 1024)
				it2, ins2, err := build(env2)
				if err != nil {
					t.Fatal(err)
				}
				if err := it2.Open(); err != nil {
					t.Fatal(err)
				}
				r, ok, err := it2.Next()
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					r.Unfix()
				}
				if err := it2.Close(); err != nil {
					t.Fatal(err)
				}
				env2.checkNoPinLeak(t)
				if n := len(env2.Temp.List()); n != 0 {
					t.Fatalf("%d temp files left after early close", n)
				}
				if ins2 != nil {
					st := ins2.Stats().Snapshot()
					if st.Opens != 1 || st.Closes != 1 || st.NextCalls != 1 {
						t.Errorf("early-close counters: opens=%d closes=%d calls=%d, want 1/1/1",
							st.Opens, st.Closes, st.NextCalls)
					}
				}
			})
		}
	}
}
