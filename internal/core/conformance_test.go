package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/record"
)

// TestIteratorProtocolConformance checks every operator against the
// open-next-close contract uniformly:
//
//   - Next before Open fails
//   - Close before Open fails
//   - double Open fails
//   - Open → drain → Close works and leaks no pins
//   - Open → Close without draining works and leaks no pins
//   - Schema() is non-nil and stable
//
// Anonymous inputs only work if every operator honours the same protocol;
// this is the uniformity §3 of the paper is about.
func TestIteratorProtocolConformance(t *testing.T) {
	type mk struct {
		name  string
		build func(env *testEnv) (Iterator, error)
	}
	makers := []mk{
		{"filescan", func(env *testEnv) (Iterator, error) {
			return NewFileScan(env.makeEmp(t, "t", 50, 4), nil, false)
		}},
		{"filter", func(env *testEnv) (Iterator, error) {
			return NewFilterExpr(scanOf(t, env.makeEmp(t, "t", 50, 4)), "dept = 1", expr.Compiled)
		}},
		{"project", func(env *testEnv) (Iterator, error) {
			return NewProjectExprs(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				[]string{"id + 1"}, []string{"x"}, expr.Interpreted)
		}},
		{"sort", func(env *testEnv) (Iterator, error) {
			return NewSort(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				[]record.SortSpec{{Field: 0, Desc: true}}), nil
		}},
		{"merge", func(env *testEnv) (Iterator, error) {
			a := env.makeInts(t, "a", 1, 3)
			b := env.makeInts(t, "b", 2, 4)
			return NewMergeSpec([]Iterator{scanOf(t, a), scanOf(t, b)}, []record.SortSpec{{Field: 0}})
		}},
		{"hashmatch", func(env *testEnv) (Iterator, error) {
			l := env.makePairs(t, "l", [][2]int64{{1, 2}, {3, 4}})
			r := env.makePairs(t, "r", [][2]int64{{1, 5}})
			return NewHashMatch(env.Env, MatchJoin, scanOf(t, l), scanOf(t, r), record.Key{0}, record.Key{0})
		}},
		{"mergematch", func(env *testEnv) (Iterator, error) {
			l := env.makePairs(t, "l", [][2]int64{{1, 2}, {3, 4}})
			r := env.makePairs(t, "r", [][2]int64{{1, 5}})
			return NewMergeMatchSorted(env.Env, MatchFullOuter, scanOf(t, l), scanOf(t, r), record.Key{0}, record.Key{0})
		}},
		{"nestedloops", func(env *testEnv) (Iterator, error) {
			l := env.makeInts(t, "l", 1, 2)
			r := env.makeInts(t, "r", 3)
			return NewNestedLoops(env.Env, scanOf(t, l), scanOf(t, r), "$0 < $1", expr.Compiled)
		}},
		{"hashaggregate", func(env *testEnv) (Iterator, error) {
			return NewHashAggregate(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)),
				record.Key{1}, []AggSpec{{Func: AggCount}})
		}},
		{"sortaggregate", func(env *testEnv) (Iterator, error) {
			in := NewSort(env.Env, scanOf(t, env.makeEmp(t, "t", 50, 4)), []record.SortSpec{{Field: 1}})
			return NewSortAggregate(env.Env, in, record.Key{1}, []AggSpec{{Func: AggCount}})
		}},
		{"hashdistinct", func(env *testEnv) (Iterator, error) {
			return NewHashDistinct(env.Env, scanOf(t, env.makeInts(t, "t", 1, 1, 2)))
		}},
		{"hashdivision", func(env *testEnv) (Iterator, error) {
			dv := env.makePairs(t, "dv", [][2]int64{{1, 1}, {1, 2}})
			ds := env.makeInts(t, "ds", 1, 2)
			return NewHashDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"sortdivision", func(env *testEnv) (Iterator, error) {
			dv := env.makePairs(t, "dv", [][2]int64{{1, 1}, {1, 2}})
			ds := env.makeInts(t, "ds", 1, 2)
			return NewSortDivision(env.Env, scanOf(t, dv), scanOf(t, ds),
				record.Key{0}, record.Key{1}, record.Key{0})
		}},
		{"chooseplan", func(env *testEnv) (Iterator, error) {
			return NewChoosePlan([]Iterator{scanOf(t, env.makeInts(t, "t", 1, 2))},
				func() (int, error) { return 0, nil })
		}},
		{"exchange", func(env *testEnv) (Iterator, error) {
			f := env.makeInts(t, "t", shuffled(100, 33)...)
			x, err := NewExchange(ExchangeConfig{
				Schema: intSchema, Producers: 2, Consumers: 1,
				FlowControl: true, Slack: 2, PacketSize: 4,
				NewProducer: func(int) (Iterator, error) { return NewFileScan(f, nil, false) },
			})
			if err != nil {
				return nil, err
			}
			return x.Consumer(0), nil
		}},
	}

	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			// Protocol violations.
			env := newTestEnv(t, 1024)
			it, err := m.build(env)
			if err != nil {
				t.Fatal(err)
			}
			if it.Schema() == nil {
				t.Fatal("nil schema")
			}
			if _, _, err := it.Next(); err == nil {
				t.Error("next before open succeeded")
			}
			if err := it.Close(); err == nil {
				t.Error("close before open succeeded")
			}
			if err := it.Open(); err != nil {
				t.Fatal(err)
			}
			if err := it.Open(); err == nil {
				t.Error("double open succeeded")
			}
			schema := it.Schema()
			// Full drain.
			for {
				r, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if len(r.Data) < schema.FixedLen() {
					t.Fatal("record shorter than schema's fixed area")
				}
				r.Unfix()
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			env.checkNoPinLeak(t)

			// Early close without draining (fresh instance, fresh world).
			env2 := newTestEnv(t, 1024)
			it2, err := m.build(env2)
			if err != nil {
				t.Fatal(err)
			}
			if err := it2.Open(); err != nil {
				t.Fatal(err)
			}
			r, ok, err := it2.Next()
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				r.Unfix()
			}
			if err := it2.Close(); err != nil {
				t.Fatal(err)
			}
			env2.checkNoPinLeak(t)
			if n := len(env2.Temp.List()); n != 0 {
				t.Fatalf("%d temp files left after early close", n)
			}
		})
	}
}
