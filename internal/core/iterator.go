// Package core implements Volcano's query processing layer: the iterator
// (open-next-close) protocol with anonymous inputs, the full operator set
// of the paper (§1: scans, selection, sorting, two algorithms each for the
// binary matching operators, aggregation, duplicate elimination, relational
// division, ...), and the exchange operator that encapsulates all
// parallelism (§4).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/meter"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/file"
)

// ResourceMeter accumulates one query's resource usage across every
// layer: buffer-pool fixes, device I/O, exchange and wire traffic,
// batch-pool memory, rows streamed, CPU time. It is an alias for the
// low-level meter type so the storage layer can account against it
// without importing core. A nil meter disables accounting everywhere.
type ResourceMeter = meter.Meter

// ResourceSnapshot is the plain-value copy of a ResourceMeter (the wire
// shape of the server's `resources` block).
type ResourceSnapshot = meter.Snapshot

// Rec is the element type of all streams: Volcano's NEXT_RECORD, a pinned
// buffer resident owned by exactly one operator at a time.
type Rec = file.Record

// Iterator is the uniform operator interface (paper, §3): every query
// processing algorithm supports open, next and close. Inputs are
// anonymous — an operator never knows whether its input is a file scan or
// a complex subtree, which is what makes operators freely composable and
// lets exchange splice in transparently.
//
// Next returns ok=false at end of stream. Each record returned transfers
// ownership of one buffer pin to the caller, which must Unfix it, hold it,
// or pass it on.
type Iterator interface {
	Open() error
	Next() (Rec, bool, error)
	Close() error
	// Schema describes the records the iterator produces.
	Schema() *record.Schema
}

// Env is the execution environment shared by the operators of a query:
// the buffer pool and a volume on a virtual device for intermediate
// results. All "processes" (goroutines) of a parallel query share one Env,
// mirroring the shared-memory architecture of the paper.
type Env struct {
	Pool *buffer.Pool
	Temp *file.Volume

	// meter, when set, attributes the resource usage of operators built
	// over this Env — temp-file spills in particular — to one query.
	meter *ResourceMeter

	// tmpSeq is shared between an Env and every meter-scoped derivation
	// (WithMeter), so temp names stay unique across concurrent queries.
	tmpSeq *atomic.Uint64
}

// NewEnv builds an Env over the given pool and temp volume. The temp
// volume should live on a virtual (Mem) device.
func NewEnv(pool *buffer.Pool, temp *file.Volume) *Env {
	return &Env{Pool: pool, Temp: temp, tmpSeq: new(atomic.Uint64)}
}

// WithMeter returns a derived Env attributing resource usage to m. The
// pool, temp volume and temp-name sequence are shared with the receiver;
// only the attribution differs. A nil meter returns the receiver.
func (e *Env) WithMeter(m *ResourceMeter) *Env {
	if m == nil {
		return e
	}
	return &Env{Pool: e.Pool, Temp: e.Temp, meter: m, tmpSeq: e.tmpSeq}
}

// Meter returns the meter usage is attributed to (nil = disabled).
func (e *Env) Meter() *ResourceMeter { return e.meter }

// TempName returns a fresh unique name for an intermediate-result file.
func (e *Env) TempName(prefix string) string {
	return fmt.Sprintf("%s.%d", prefix, e.tmpSeq.Add(1))
}

// CreateTemp creates an intermediate-result file on the temp volume. When
// the Env carries a meter the file's pool activity — the spill I/O of
// sort, hash join and aggregation — is attributed to it.
func (e *Env) CreateTemp(prefix string, schema *record.Schema) (*file.File, error) {
	return e.Temp.CreateWith(e.TempName(prefix), schema, e.meter)
}

// DropTemp deletes an intermediate-result file. All of its records must
// have been unpinned (paper, §4.1: "files on virtual devices must not be
// closed before all its records are unpinned in the buffer").
func (e *Env) DropTemp(f *file.File) error {
	if f == nil {
		return nil
	}
	return e.Temp.Delete(f.Name())
}

// Drain pulls all records from it (between Open and Close), unfixing each,
// and returns the count. Useful as a sink.
func Drain(it Iterator) (int, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	n := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			return n, err
		}
		if !ok {
			break
		}
		r.Unfix()
		n++
	}
	return n, it.Close()
}

// Collect runs the iterator to completion and returns decoded rows; a
// convenience for tests, examples, and small result sets.
func Collect(it Iterator) ([][]record.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	s := it.Schema()
	var rows [][]record.Value
	for {
		r, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			return rows, err
		}
		if !ok {
			break
		}
		vals, err := s.Decode(r.Data)
		if err != nil {
			r.Unfix()
			_ = it.Close()
			return rows, err
		}
		for i := range vals {
			vals[i] = vals[i].Copy()
		}
		rows = append(rows, vals)
		r.Unfix()
	}
	return rows, it.Close()
}

// errState standardises the open/close protocol violations.
func errState(op, what string) error {
	return fmt.Errorf("core: %s: %s", op, what)
}
