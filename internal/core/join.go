package core

import (
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/file"
)

// NestedLoops is the nested-loops join: for every left record, the right
// input is rescanned and an arbitrary join predicate evaluated over the
// combined record. The right input is materialised once into a temp file
// so it can be rescanned cheaply regardless of what produced it.
//
// A nil predicate yields the Cartesian product.
type NestedLoops struct {
	env    *Env
	left   Iterator
	right  Iterator
	pred   expr.Predicate // over the combined schema; nil = always true
	schema *record.Schema

	w     *ResultWriter
	inner *file.File
	lrec  Rec
	lok   bool
	scan  *file.Scan
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
}

// NewNestedLoops builds the operator. predSrc is an expression over the
// concatenated schema (empty = Cartesian product).
func NewNestedLoops(env *Env, left, right Iterator, predSrc string, mode expr.Mode) (*NestedLoops, error) {
	schema := left.Schema().Concat(right.Schema())
	var pred expr.Predicate
	if predSrc != "" {
		p, err := expr.ParsePredicate(predSrc, schema, mode)
		if err != nil {
			return nil, err
		}
		pred = p
	}
	return &NestedLoops{env: env, left: left, right: right, pred: pred, schema: schema}, nil
}

// NewCartesianProduct builds the Cartesian product of the inputs.
func NewCartesianProduct(env *Env, left, right Iterator) (*NestedLoops, error) {
	return NewNestedLoops(env, left, right, "", expr.Compiled)
}

// Schema implements Iterator.
func (n *NestedLoops) Schema() *record.Schema { return n.schema }

// Open implements Iterator: materialises the inner (right) input.
func (n *NestedLoops) Open() error {
	if n.open {
		return errState("nestedloops", "already open")
	}
	err := n.openImpl()
	n.openFailed = err != nil
	return err
}

func (n *NestedLoops) openImpl() error {
	w, err := n.env.NewResultWriter("nljoin", n.schema)
	if err != nil {
		return err
	}
	inner, err := n.env.CreateTemp("nlinner", n.right.Schema())
	if err != nil {
		_ = w.Dispose()
		return err
	}
	if err := n.right.Open(); err != nil {
		_ = w.Dispose()
		_ = n.env.DropTemp(inner)
		return err
	}
	for {
		r, ok, err := n.right.Next()
		if err != nil {
			_ = n.right.Close()
			_ = w.Dispose()
			_ = n.env.DropTemp(inner)
			return err
		}
		if !ok {
			break
		}
		_, err = inner.Insert(r.Data)
		r.Unfix()
		if err != nil {
			_ = n.right.Close()
			_ = w.Dispose()
			_ = n.env.DropTemp(inner)
			return err
		}
	}
	if err := n.right.Close(); err != nil {
		_ = w.Dispose()
		_ = n.env.DropTemp(inner)
		return err
	}
	if err := n.left.Open(); err != nil {
		_ = w.Dispose()
		_ = n.env.DropTemp(inner)
		return err
	}
	n.w, n.inner = w, inner
	n.lok = false
	n.open = true
	return nil
}

// Next implements Iterator.
func (n *NestedLoops) Next() (Rec, bool, error) {
	if !n.open {
		return Rec{}, false, errState("nestedloops", "next before open")
	}
	for {
		if !n.lok {
			var err error
			n.lrec, n.lok, err = n.left.Next()
			if err != nil {
				return Rec{}, false, err
			}
			if !n.lok {
				return Rec{}, false, nil
			}
			n.scan = n.inner.NewScan(false)
		}
		r, ok, err := n.scan.Next()
		if err != nil {
			return Rec{}, false, err
		}
		if !ok {
			// Inner exhausted: advance outer.
			n.scan.Close()
			n.scan = nil
			n.lrec.Unfix()
			n.lok = false
			continue
		}
		out, keep, err := n.combineFiltered(n.lrec.Data, r.Data)
		r.Unfix()
		if err != nil {
			return Rec{}, false, err
		}
		if keep {
			return out, true, nil
		}
	}
}

func (n *NestedLoops) combineFiltered(l, r []byte) (Rec, bool, error) {
	lv, err := n.left.Schema().Decode(l)
	if err != nil {
		return Rec{}, false, err
	}
	rv, err := n.right.Schema().Decode(r)
	if err != nil {
		return Rec{}, false, err
	}
	combined, err := n.schema.Encode(append(lv, rv...))
	if err != nil {
		return Rec{}, false, err
	}
	if n.pred != nil {
		keep, err := n.pred(combined)
		if err != nil || !keep {
			return Rec{}, false, err
		}
	}
	out, err := n.w.WriteBytes(combined)
	if err != nil {
		return Rec{}, false, err
	}
	return out, true, nil
}

// Close implements Iterator.
func (n *NestedLoops) Close() error {
	if n.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		n.openFailed = false
		return nil
	}
	if !n.open {
		return errState("nestedloops", "close before open")
	}
	n.open = false
	if n.scan != nil {
		n.scan.Close()
		n.scan = nil
	}
	if n.lok {
		n.lrec.Unfix()
		n.lok = false
	}
	err := n.left.Close()
	if derr := n.env.DropTemp(n.inner); err == nil {
		err = derr
	}
	n.inner = nil
	if derr := n.w.Dispose(); err == nil {
		err = derr
	}
	n.w = nil
	return err
}
