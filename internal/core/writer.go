package core

import (
	"repro/internal/record"
	"repro/internal/storage/file"
)

// ResultWriter materialises operator output records into an intermediate
// file on the temp volume, following the ownership protocol: every record
// written is returned pinned ("complex operations like join that create
// new records have to fix them in the buffer before passing them on",
// paper §3).
type ResultWriter struct {
	env    *Env
	schema *record.Schema
	f      *file.File
}

// NewResultWriter creates a writer with a fresh temp file.
func (e *Env) NewResultWriter(prefix string, schema *record.Schema) (*ResultWriter, error) {
	f, err := e.CreateTemp(prefix, schema)
	if err != nil {
		return nil, err
	}
	return &ResultWriter{env: e, schema: schema, f: f}, nil
}

// Schema returns the writer's record schema.
func (w *ResultWriter) Schema() *record.Schema { return w.schema }

// File returns the backing temp file (for operators that rescan output).
func (w *ResultWriter) File() *file.File { return w.f }

// Write encodes the values and appends them, returning the pinned record.
func (w *ResultWriter) Write(vals []record.Value) (Rec, error) {
	data, err := w.schema.Encode(vals)
	if err != nil {
		return Rec{}, err
	}
	return w.f.InsertPinned(data)
}

// WriteBytes appends pre-encoded record bytes, returning the pinned record.
func (w *ResultWriter) WriteBytes(data []byte) (Rec, error) {
	return w.f.InsertPinned(data)
}

// WriteBytesBatch appends len(datas) pre-encoded records, filling out
// with the pinned results — the batch protocol's materialisation path:
// one page fix per page instead of one per record. out must have the
// same length as datas.
func (w *ResultWriter) WriteBytesBatch(datas [][]byte, out []Rec) error {
	return w.f.InsertPinnedBatch(datas, out)
}

// Dispose deletes the temp file. All written records must have been
// unpinned by their consumers.
func (w *ResultWriter) Dispose() error {
	if w.f == nil {
		return nil
	}
	err := w.env.DropTemp(w.f)
	w.f = nil
	return err
}
