package core

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireFrameDecode hammers the frame decoder with arbitrary bytes:
// truncated frames, oversized length prefixes and corrupt payloads must
// all surface as errors — never a panic, and never an allocation beyond
// the decoder's frame-size bound (enforced here with a small maxFrame so
// the fuzzer cannot "legitimately" allocate its way to an OOM).
func FuzzWireFrameDecode(f *testing.F) {
	f.Add(AppendWireFrame(nil, [][]byte{[]byte("seed"), {}}, 0))
	f.Add(AppendWireFrame(nil, nil, WireFlagEOS))
	f.Add(AppendWireControl(nil, WireFlagEOS|WireFlagErr, []byte("boom")))
	f.Add(AppendWireControl(nil, WireFlagHello, []byte(`{"q":"x"}`)))
	f.Add(appendWireHeader(nil, 0, 1<<30))
	f.Add([]byte{0x56, 0x57, 0x46, 0x31, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr WireFrame
		r := bytes.NewReader(data)
		for {
			err := ReadWireFrame(r, &fr, maxFrame)
			if err != nil {
				if err == io.EOF && r.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes unread", r.Len())
				}
				break
			}
			// A decoded frame's windows must all land inside its arena.
			if cap(fr.buf) > maxFrame+64 {
				t.Fatalf("decoder over-allocated: cap=%d limit=%d", cap(fr.buf), maxFrame)
			}
			total := 0
			for _, rec := range fr.Recs {
				total += len(rec)
			}
			if total > len(fr.buf) {
				t.Fatalf("records (%dB) overrun arena (%dB)", total, len(fr.buf))
			}
		}
	})
}
