package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
)

// The netexchange wire format. One frame carries one wire packet — the
// unit the shared-nothing exchange already ships between "machines" —
// as a length-prefixed binary message, so the same packet/record
// encoding that crosses the in-process loopback crosses a real TCP
// connection unchanged:
//
//	frame  := header payload
//	header := magic(4) flags(1) reserved(3) payloadLen(4)   big endian
//	payload (data frames)  := { recLen(4) recBytes(recLen) }*
//	payload (error frames) := utf-8 error message
//	payload (hello frames) := opaque handshake bytes (dist uses JSON)
//
// A frame with WireFlagEOS terminates one producer's stream on the
// connection; WireFlagErr marks the payload as an error message instead
// of records (EOS|Err is how a producer reports failure); WireFlagHello
// marks the connection-opening handshake frame the distributed layer
// uses to say which query/fragment/producer the connection carries.
const (
	wireMagic = 0x56574631 // "VWF1"

	// WireFlagEOS marks the sender's final frame on this stream.
	WireFlagEOS = 1 << 0
	// WireFlagErr marks the payload as an error message, not records.
	WireFlagErr = 1 << 1
	// WireFlagHello marks the handshake frame that opens a connection.
	WireFlagHello = 1 << 2

	wireHeaderLen = 12

	// MaxWireFrame bounds one frame's payload: a decoder never allocates
	// more than this no matter what the length prefix claims, so a
	// corrupt or hostile prefix cannot balloon memory.
	MaxWireFrame = 16 << 20
)

// WireFrame is one decoded frame. Recs windows into the frame's own
// arena (buf), which keeps its capacity across Decode calls — a reader
// reusing one WireFrame allocates only while the largest frame seen so
// far still grows.
type WireFrame struct {
	Flags byte
	Recs  [][]byte
	Msg   []byte // error message (WireFlagErr) or hello payload
	buf   []byte
}

// EOS reports whether this is the sender's final frame.
func (f *WireFrame) EOS() bool { return f.Flags&WireFlagEOS != 0 }

// Err returns the carried error, or nil.
func (f *WireFrame) Err() error {
	if f.Flags&WireFlagErr == 0 || len(f.Msg) == 0 {
		return nil
	}
	return fmt.Errorf("core: wire: remote error: %s", f.Msg)
}

// reset clears the frame for reuse, keeping arena capacity.
func (f *WireFrame) reset() {
	for i := range f.Recs {
		f.Recs[i] = nil
	}
	f.Recs = f.Recs[:0]
	f.Msg = nil
	f.buf = f.buf[:0]
	f.Flags = 0
}

// AppendWireFrame encodes one data frame carrying the record images and
// appends it to dst. flags must not include WireFlagErr or WireFlagHello
// (use AppendWireControl for those).
func AppendWireFrame(dst []byte, recs [][]byte, flags byte) []byte {
	payload := 0
	for _, r := range recs {
		payload += 4 + len(r)
	}
	dst = appendWireHeader(dst, flags, payload)
	for _, r := range recs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r)))
		dst = append(dst, r...)
	}
	return dst
}

// AppendWireControl encodes a control frame (error or hello) whose
// payload is an opaque message.
func AppendWireControl(dst []byte, flags byte, msg []byte) []byte {
	dst = appendWireHeader(dst, flags, len(msg))
	return append(dst, msg...)
}

func appendWireHeader(dst []byte, flags byte, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, wireMagic)
	dst = append(dst, flags, 0, 0, 0)
	return binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
}

// WireError describes a malformed frame. It is distinct from transport
// errors (io.EOF and friends) so a receiver can tell "the peer went
// away" from "the peer is speaking garbage".
type WireError struct{ What string }

func (e *WireError) Error() string { return "core: wire: " + e.What }

// ReadWireFrame reads and decodes one frame from r into f, reusing f's
// arena. maxFrame bounds the payload a single frame may claim (0 means
// MaxWireFrame); a larger length prefix fails without allocating. A
// clean EOF before the first header byte returns io.EOF; a truncation
// anywhere later returns io.ErrUnexpectedEOF.
func ReadWireFrame(r io.Reader, f *WireFrame, maxFrame int) error {
	f.reset()
	flags, err := readWireInto(r, &f.buf, &f.Recs, maxFrame)
	if err != nil {
		return err
	}
	f.Flags = flags
	if flags&(WireFlagErr|WireFlagHello) != 0 {
		f.Msg = f.buf
	}
	return nil
}

// readWireInto is the decoder core: it reads one frame into the caller's
// arena and record-window slice (both reused across calls; control-frame
// payloads land in the arena with recs untouched). The netexchange
// receive path decodes straight into pooled wire packets through this.
func readWireInto(r io.Reader, buf *[]byte, recs *[][]byte, maxFrame int) (byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxWireFrame
	}
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, err // io.EOF here means a clean end of stream
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if got := binary.BigEndian.Uint32(hdr[0:4]); got != wireMagic {
		return 0, &WireError{What: fmt.Sprintf("bad magic %#08x", got)}
	}
	flags := hdr[4]
	payloadLen := int(binary.BigEndian.Uint32(hdr[8:12]))
	if payloadLen > maxFrame {
		return 0, &WireError{What: fmt.Sprintf("frame of %d bytes exceeds limit %d", payloadLen, maxFrame)}
	}
	if cap(*buf) < payloadLen {
		*buf = make([]byte, 0, payloadLen)
	}
	*buf = (*buf)[:payloadLen]
	if _, err := io.ReadFull(r, *buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if flags&(WireFlagErr|WireFlagHello) != 0 {
		return flags, nil
	}
	// Data frame: split the payload into record windows.
	rest := *buf
	for len(rest) > 0 {
		if len(rest) < 4 {
			return 0, &WireError{What: "truncated record length"}
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n > len(rest) {
			return 0, &WireError{What: fmt.Sprintf("record of %d bytes overruns frame (%d left)", n, len(rest))}
		}
		*recs = append(*recs, rest[:n:n])
		rest = rest[n:]
	}
	return flags, nil
}

// WireSender packs record images into frames of up to packetSize records
// on one writer — the producer half of a wire link. It buffers via
// bufio, so one frame is one or a few large writes, never a syscall per
// record. Not safe for concurrent use; each producer goroutine owns one.
type WireSender struct {
	w          *bufio.Writer
	packetSize int
	recs       [][]byte // windows into arena, like netPacket
	arena      []byte
	scratch    []byte
	meter      *ResourceMeter

	frames atomic.Int64
	bytes  atomic.Int64
}

// NewWireSender wraps w. packetSize <= 0 uses the exchange default (83).
func NewWireSender(w io.Writer, packetSize int) *WireSender {
	if packetSize <= 0 {
		packetSize = 83
	}
	return &WireSender{w: bufio.NewWriterSize(w, 64<<10), packetSize: packetSize}
}

// WithMeter attributes sent frames/bytes to a query's resource meter.
func (s *WireSender) WithMeter(m *ResourceMeter) *WireSender {
	s.meter = m
	return s
}

// Stats reports frames and payload bytes sent so far.
func (s *WireSender) Stats() (frames, bytes int64) {
	return s.frames.Load(), s.bytes.Load()
}

// Hello sends the connection-opening handshake frame immediately.
func (s *WireSender) Hello(payload []byte) error {
	s.scratch = AppendWireControl(s.scratch[:0], WireFlagHello, payload)
	if err := s.writeScratch(); err != nil {
		return err
	}
	return s.w.Flush()
}

// Add stages one record image; a full packet is framed and written.
// The image is copied into the sender's arena before Add returns, so
// the caller may release its pin immediately. Entries stay valid when a
// later append grows the arena: they keep referencing the earlier
// backing array, which still holds their bytes.
func (s *WireSender) Add(data []byte) error {
	off := len(s.arena)
	s.arena = append(s.arena, data...)
	s.recs = append(s.recs, s.arena[off:len(s.arena):len(s.arena)])
	if len(s.recs) >= s.packetSize {
		return s.flushData(0)
	}
	return nil
}

// CloseEOS flushes staged records and terminates the stream: a trailing
// EOS frame, carrying errMsg as an EOS|Err frame when non-empty.
func (s *WireSender) CloseEOS(errMsg string) error {
	if errMsg != "" {
		if len(s.recs) > 0 {
			if err := s.flushData(0); err != nil {
				return err
			}
		}
		s.scratch = AppendWireControl(s.scratch[:0], WireFlagEOS|WireFlagErr, []byte(errMsg))
		if err := s.writeScratch(); err != nil {
			return err
		}
		return s.w.Flush()
	}
	if err := s.flushData(WireFlagEOS); err != nil {
		return err
	}
	return s.w.Flush()
}

// flushData frames the staged records (possibly zero of them, for a bare
// EOS) and writes the frame.
func (s *WireSender) flushData(flags byte) error {
	s.scratch = AppendWireFrame(s.scratch[:0], s.recs, flags)
	for i := range s.recs {
		s.recs[i] = nil
	}
	s.recs = s.recs[:0]
	s.arena = s.arena[:0]
	if err := s.writeScratch(); err != nil {
		return err
	}
	// Data frames are pushed promptly so the consumer pipeline never
	// waits on a half-filled bufio buffer.
	return s.w.Flush()
}

func (s *WireSender) writeScratch() error {
	if _, err := s.w.Write(s.scratch); err != nil {
		return err
	}
	payload := len(s.scratch) - wireHeaderLen
	s.frames.Add(1)
	s.bytes.Add(int64(payload))
	s.meter.WireSend(payload)
	return nil
}
