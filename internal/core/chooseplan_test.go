package core

import (
	"fmt"
	"testing"

	"repro/internal/record"
	"repro/internal/storage/btree"
)

func TestChoosePlanPicksAlternative(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeEmp(t, "emp", 200, 4)

	// Build an index on id so a plan choice is meaningful.
	tree, err := btree.Create(env.Pool, env.base.Device())
	if err != nil {
		t.Fatal(err)
	}
	sc := f.NewScan(false)
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		key, _ := btree.EncodeRecordKey(empSchema, r.Data, record.Key{0})
		if err := tree.Insert(key, r.RID); err != nil {
			t.Fatal(err)
		}
		r.Unfix()
	}
	sc.Close()

	// A parameterised query: id in [lo, lo+9]. The optimiser prepared two
	// plans — an index range scan and a full scan with a filter — and a
	// choose-plan decides per execution based on the run-time parameter.
	runWithParam := func(lo int64, selectivityThreshold int64) (rows int, choseIndex bool) {
		idx, err := NewIndexScan(tree, f, nil,
			btree.EncodeKey(record.Int(lo)), btree.EncodeKey(record.Int(lo+9)), true, true)
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewFilterExpr(scanOf(t, f),
			fmt.Sprintf("id >= %d AND id <= %d", lo, lo+9), 0)
		if err != nil {
			t.Fatal(err)
		}
		decided := -1
		cp, err := NewChoosePlan([]Iterator{idx, full}, func() (int, error) {
			// The decision support function consults the run-time value.
			if lo < selectivityThreshold {
				decided = 0
			} else {
				decided = 1
			}
			return decided, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(cp)
		if err != nil {
			t.Fatal(err)
		}
		return len(got), decided == 0
	}

	n, choseIndex := runWithParam(50, 100)
	if n != 10 || !choseIndex {
		t.Fatalf("param 50: rows=%d index=%v", n, choseIndex)
	}
	n, choseIndex = runWithParam(150, 100)
	if n != 10 || choseIndex {
		t.Fatalf("param 150: rows=%d index=%v", n, choseIndex)
	}
	env.checkNoPinLeak(t)
}

func TestChoosePlanValidation(t *testing.T) {
	env := newTestEnv(t, 64)
	a := env.makeInts(t, "a", 1)
	b := env.makeEmp(t, "b", 1, 1)
	if _, err := NewChoosePlan(nil, func() (int, error) { return 0, nil }); err == nil {
		t.Fatal("no alternatives accepted")
	}
	if _, err := NewChoosePlan([]Iterator{scanOf(t, a)}, nil); err == nil {
		t.Fatal("nil decision accepted")
	}
	if _, err := NewChoosePlan([]Iterator{scanOf(t, a), scanOf(t, b)},
		func() (int, error) { return 0, nil }); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	cp, err := NewChoosePlan([]Iterator{scanOf(t, a)}, func() (int, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Open(); err == nil {
		t.Fatal("out-of-range decision accepted")
	}
	cp2, _ := NewChoosePlan([]Iterator{scanOf(t, a)}, func() (int, error) { return 0, fmt.Errorf("boom") })
	if err := cp2.Open(); err == nil {
		t.Fatal("decision error swallowed")
	}
	// Protocol errors.
	cp3, _ := NewChoosePlan([]Iterator{scanOf(t, a)}, func() (int, error) { return 0, nil })
	if _, _, err := cp3.Next(); err == nil {
		t.Fatal("next before open accepted")
	}
	if err := cp3.Close(); err == nil {
		t.Fatal("close before open accepted")
	}
}

// TestChoosePlanBatchParity drives both alternatives of a choose-plan
// through the batch protocol at several sizes and checks the stream
// matches row mode — whether the chosen alternative is batch-native
// (file scan) or row-only behind the AsBatch shim (filter). This is the
// conformance case for ChoosePlan's NextBatch pass-through and
// EnableBatch propagation.
func TestChoosePlanBatchParity(t *testing.T) {
	env := newTestEnv(t, 256)
	f := env.makeInts(t, "t", shuffled(500, 7)...)
	mkChoose := func(alt int) Iterator {
		native := scanOf(t, f)
		rowOnly, err := NewFilterExpr(scanOf(t, f), "v >= 0", 0)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := NewChoosePlan([]Iterator{native, rowOnly}, func() (int, error) { return alt, nil })
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	for alt := 0; alt < 2; alt++ {
		rowCount, err := Drain(mkChoose(alt))
		if err != nil {
			t.Fatalf("alt %d row mode: %v", alt, err)
		}
		if rowCount != 500 {
			t.Fatalf("alt %d row mode: %d rows, want 500", alt, rowCount)
		}
		for _, size := range []int{1, 7, 83} {
			cp := mkChoose(alt)
			if bc, ok := cp.(BatchConfigurable); ok {
				bc.EnableBatch(size)
			}
			if err := cp.Open(); err != nil {
				t.Fatalf("alt %d size %d: open: %v", alt, size, err)
			}
			src := AsBatch(cp)
			b := NewBatch(size)
			n := 0
			for {
				if err := src.NextBatch(b); err != nil {
					t.Fatalf("alt %d size %d: %v", alt, size, err)
				}
				if b.Len() == 0 {
					break
				}
				n += b.Len()
				b.Release()
			}
			if err := cp.Close(); err != nil {
				t.Fatalf("alt %d size %d: close: %v", alt, size, err)
			}
			if n != rowCount {
				t.Fatalf("alt %d size %d: %d rows, row mode gave %d", alt, size, n, rowCount)
			}
		}
	}
	env.checkNoPinLeak(t)
}

func TestChoosePlanUnderExchange(t *testing.T) {
	// A choose-plan inside each producer of an exchange: every producer
	// makes its own run-time decision — plan choice and parallelism
	// compose because both are plain iterators.
	env := newTestEnv(t, 512)
	f := env.makeInts(t, "t", shuffled(600, 9)...)
	x, err := NewExchange(ExchangeConfig{
		Schema:    intSchema,
		Producers: 3,
		Consumers: 1,
		NewProducer: func(g int) (Iterator, error) {
			mk := func(pred string) (Iterator, error) {
				return NewFilterExpr(scanOf(t, f), pred, 0)
			}
			a, err := mk(fmt.Sprintf("v %% 3 = %d", g))
			if err != nil {
				return nil, err
			}
			b, err := mk(fmt.Sprintf("v - (v / 3) * 3 = %d", g)) // same predicate, different plan
			if err != nil {
				return nil, err
			}
			return NewChoosePlan([]Iterator{a, b}, func() (int, error) { return g % 2, nil })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Drain(x.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("rows = %d, want 600", n)
	}
	env.checkNoPinLeak(t)
}
