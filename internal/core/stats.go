package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/trace"
)

// OpStats holds one operator's runtime counters. All fields are atomic so
// one OpStats value can be shared by the parallel instances of a plan node
// — the per-producer subtrees an exchange instantiates — and updated
// concurrently without coordination beyond the counter itself.
type OpStats struct {
	Rows      atomic.Int64 // records returned by Next
	NextCalls atomic.Int64 // Next invocations (including the EOS call)
	Opens     atomic.Int64 // Open invocations (parallel instances add up)
	Closes    atomic.Int64 // Close invocations

	OpenNanos  atomic.Int64 // wall time inside Open
	NextNanos  atomic.Int64 // cumulative wall time inside Next
	CloseNanos atomic.Int64 // wall time inside Close
}

// OpStatsSnapshot is a plain-value copy of an OpStats, safe to compare,
// print and store after the query has finished — and, because every
// OpStats field is atomic, equally safe to take mid-flight: a live
// observability view (the serving layer's /debug/queries) snapshots the
// operators of a running query with the same call. The JSON tags are the
// wire shape of that view; durations marshal as nanosecond integers.
type OpStatsSnapshot struct {
	Rows      int64         `json:"rows"`
	NextCalls int64         `json:"calls"`
	Opens     int64         `json:"opens"`
	Closes    int64         `json:"closes"`
	OpenTime  time.Duration `json:"open_ns"`
	NextTime  time.Duration `json:"next_ns"`
	CloseTime time.Duration `json:"close_ns"`
}

// Snapshot reads all counters.
func (s *OpStats) Snapshot() OpStatsSnapshot {
	return OpStatsSnapshot{
		Rows:      s.Rows.Load(),
		NextCalls: s.NextCalls.Load(),
		Opens:     s.Opens.Load(),
		Closes:    s.Closes.Load(),
		OpenTime:  time.Duration(s.OpenNanos.Load()),
		NextTime:  time.Duration(s.NextNanos.Load()),
		CloseTime: time.Duration(s.CloseNanos.Load()),
	}
}

// String renders the snapshot in the compact form used by EXPLAIN ANALYZE.
func (s OpStatsSnapshot) String() string {
	return fmt.Sprintf("rows=%d calls=%d opens=%d open=%v next=%v close=%v",
		s.Rows, s.NextCalls, s.Opens,
		s.OpenTime.Round(time.Microsecond),
		s.NextTime.Round(time.Microsecond),
		s.CloseTime.Round(time.Microsecond))
}

// Instrumented is the instrumentation adapter: a plain iterator that
// forwards to an inner iterator while counting rows, calls and wall time.
// Because it is itself an iterator it composes with everything else —
// including exchange, whose producer subtrees may each carry their own
// wrapper updating one shared OpStats.
//
// The uninstrumented path pays nothing: plans built without analysis never
// allocate or touch an Instrumented.
//
// With a tracer attached (WithTracer) the wrapper additionally records
// its Open, Next and Close calls as spans on a private trace track,
// reusing the wall-time measurements it already takes for OpStats — so
// tracing adds no extra clock reads, and a nil tracer costs one branch.
type Instrumented struct {
	inner Iterator
	name  string
	st    *OpStats

	tracer    *trace.Tracer
	tk        *trace.Track
	openName  string
	closeName string

	// hist, when attached, receives every Next duration so a scraper (or
	// EXPLAIN ANALYZE) can report latency quantiles, not just totals. The
	// nil histogram costs one branch, like the nil tracer.
	hist *metrics.Histogram

	// bin caches the inner iterator's batch face so NextBatch forwarding
	// does not re-wrap per call.
	bin BatchIterator
}

// Instrument wraps it with a fresh, private OpStats.
func Instrument(it Iterator, name string) *Instrumented {
	return InstrumentWith(it, name, &OpStats{})
}

// InstrumentWith wraps it updating the given (possibly shared) OpStats.
func InstrumentWith(it Iterator, name string, st *OpStats) *Instrumented {
	return &Instrumented{inner: it, name: name, st: st}
}

// WithTracer attaches a tracer: the wrapper's calls become spans on a
// track registered at first Open (in the goroutine that runs the
// operator, so parallel instances get one track each). Returns i.
func (i *Instrumented) WithTracer(t *trace.Tracer) *Instrumented {
	i.tracer = t
	return i
}

// WithHistogram attaches a latency histogram fed one observation per
// Next call, reusing the wall-time measurement the wrapper already
// takes. Sibling wrappers of parallel instances may share one
// histogram; Observe is atomic. Returns i.
func (i *Instrumented) WithHistogram(h *metrics.Histogram) *Instrumented {
	i.hist = h
	return i
}

// Histogram returns the attached latency histogram (nil when none).
func (i *Instrumented) Histogram() *metrics.Histogram { return i.hist }

// Name returns the label given at wrap time.
func (i *Instrumented) Name() string { return i.name }

// Stats returns the live counters (shared with any sibling wrappers).
func (i *Instrumented) Stats() *OpStats { return i.st }

// Unwrap returns the iterator being observed.
func (i *Instrumented) Unwrap() Iterator { return i.inner }

// Schema implements Iterator.
func (i *Instrumented) Schema() *record.Schema { return i.inner.Schema() }

// Open implements Iterator.
func (i *Instrumented) Open() error {
	if i.tracer.Enabled() && i.tk == nil {
		i.tk = i.tracer.NewTrack("op:" + i.name)
		i.openName = i.name + ".open"
		i.closeName = i.name + ".close"
	}
	start := time.Now()
	err := i.inner.Open()
	d := time.Since(start)
	i.st.OpenNanos.Add(int64(d))
	i.st.Opens.Add(1)
	i.tk.SpanAt("op", i.openName, start, d)
	return err
}

// Next implements Iterator.
func (i *Instrumented) Next() (Rec, bool, error) {
	start := time.Now()
	r, ok, err := i.inner.Next()
	d := time.Since(start)
	i.st.NextNanos.Add(int64(d))
	i.st.NextCalls.Add(1)
	if ok {
		i.st.Rows.Add(1)
	}
	i.hist.Observe(d)
	i.tk.SpanAt("op", i.name, start, d)
	return r, ok, err
}

// NextBatch implements BatchIterator: the wrapper times the whole batch
// call and counts every delivered record, so EXPLAIN ANALYZE row counts
// agree between modes while NextCalls reflects the amortisation.
func (i *Instrumented) NextBatch(b *Batch) error {
	if i.bin == nil {
		i.bin = AsBatch(i.inner)
	}
	start := time.Now()
	err := i.bin.NextBatch(b)
	d := time.Since(start)
	i.st.NextNanos.Add(int64(d))
	i.st.NextCalls.Add(1)
	i.st.Rows.Add(int64(b.Len()))
	i.hist.Observe(d)
	i.tk.SpanAt("op", i.name, start, d)
	return err
}

// EnableBatch implements BatchConfigurable by forwarding to the wrapped
// operator, so instrumented builds batch exactly like plain ones.
func (i *Instrumented) EnableBatch(size int) {
	if bc, ok := i.inner.(BatchConfigurable); ok {
		bc.EnableBatch(size)
	}
}

// Close implements Iterator.
func (i *Instrumented) Close() error {
	start := time.Now()
	err := i.inner.Close()
	d := time.Since(start)
	i.st.CloseNanos.Add(int64(d))
	i.st.Closes.Add(1)
	i.tk.SpanAt("op", i.closeName, start, d)
	return err
}
