package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

func TestWireFrameRoundTrip(t *testing.T) {
	recs := [][]byte{[]byte("alpha"), {}, []byte("a much longer record payload \x00 with zeros")}
	enc := AppendWireFrame(nil, recs, 0)
	enc = AppendWireFrame(enc, nil, WireFlagEOS)

	r := bytes.NewReader(enc)
	var f WireFrame
	if err := ReadWireFrame(r, &f, 0); err != nil {
		t.Fatal(err)
	}
	if f.EOS() || len(f.Recs) != len(recs) {
		t.Fatalf("frame 1: eos=%v recs=%d", f.EOS(), len(f.Recs))
	}
	for i := range recs {
		if !bytes.Equal(f.Recs[i], recs[i]) {
			t.Fatalf("rec %d: got %q want %q", i, f.Recs[i], recs[i])
		}
	}
	if err := ReadWireFrame(r, &f, 0); err != nil {
		t.Fatal(err)
	}
	if !f.EOS() || len(f.Recs) != 0 || f.Err() != nil {
		t.Fatalf("frame 2: eos=%v recs=%d err=%v", f.EOS(), len(f.Recs), f.Err())
	}
	if err := ReadWireFrame(r, &f, 0); err != io.EOF {
		t.Fatalf("after last frame: %v", err)
	}
}

func TestWireFrameErrorAndHello(t *testing.T) {
	enc := AppendWireControl(nil, WireFlagHello, []byte(`{"producer":3}`))
	enc = AppendWireControl(enc, WireFlagEOS|WireFlagErr, []byte("scan failed: page torn"))

	r := bytes.NewReader(enc)
	var f WireFrame
	if err := ReadWireFrame(r, &f, 0); err != nil {
		t.Fatal(err)
	}
	if f.Flags&WireFlagHello == 0 || string(f.Msg) != `{"producer":3}` {
		t.Fatalf("hello frame: flags=%x msg=%q", f.Flags, f.Msg)
	}
	if err := ReadWireFrame(r, &f, 0); err != nil {
		t.Fatal(err)
	}
	if !f.EOS() || f.Err() == nil || !strings.Contains(f.Err().Error(), "page torn") {
		t.Fatalf("error frame: eos=%v err=%v", f.EOS(), f.Err())
	}
}

func TestWireFrameTruncationAndCorruption(t *testing.T) {
	full := AppendWireFrame(nil, [][]byte{[]byte("hello"), []byte("world")}, 0)
	// Every strict prefix must fail with EOF (empty) or ErrUnexpectedEOF.
	for cut := 0; cut < len(full); cut++ {
		var f WireFrame
		err := ReadWireFrame(bytes.NewReader(full[:cut]), &f, 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: %v", err)
			}
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xff
	var f WireFrame
	var we *WireError
	if err := ReadWireFrame(bytes.NewReader(bad), &f, 0); !errors.As(err, &we) {
		t.Fatalf("bad magic: %v", err)
	}

	// Oversized length prefix must error before allocating.
	huge := appendWireHeader(nil, 0, 1<<30)
	if err := ReadWireFrame(bytes.NewReader(huge), &f, 0); !errors.As(err, &we) {
		t.Fatalf("huge prefix: %v", err)
	}

	// A record length overrunning the payload.
	overrun := append([]byte(nil), full...)
	binary.BigEndian.PutUint32(overrun[wireHeaderLen:], 1<<20)
	if err := ReadWireFrame(bytes.NewReader(overrun), &f, 0); !errors.As(err, &we) {
		t.Fatalf("overrun record: %v", err)
	}
}

// TestWireSenderOverTCP drives the sender/decoder pair over a real TCP
// loopback connection: records in, identical records out, EOS observed,
// and an error message surviving the trip.
func TestWireSenderOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 1000
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		s := NewWireSender(conn, 7)
		if err := s.Hello([]byte("hi")); err != nil {
			return
		}
		for i := 0; i < n; i++ {
			if err := s.Add([]byte{byte(i), byte(i >> 8)}); err != nil {
				return
			}
		}
		_ = s.CloseEOS("deliberate failure")
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var f WireFrame
	if err := ReadWireFrame(conn, &f, 0); err != nil || f.Flags&WireFlagHello == 0 {
		t.Fatalf("hello: %v flags=%x", err, f.Flags)
	}
	got, sawErr := 0, false
	for {
		if err := ReadWireFrame(conn, &f, 0); err != nil {
			t.Fatalf("after %d recs: %v", got, err)
		}
		for i, r := range f.Recs {
			want := got + i
			if len(r) != 2 || r[0] != byte(want) || r[1] != byte(want>>8) {
				t.Fatalf("rec %d corrupted: %v", want, r)
			}
		}
		got += len(f.Recs)
		if e := f.Err(); e != nil {
			sawErr = strings.Contains(e.Error(), "deliberate failure")
		}
		if f.EOS() {
			break
		}
	}
	if got != n || !sawErr {
		t.Fatalf("got %d records, sawErr=%v", got, sawErr)
	}
}
