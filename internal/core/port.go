package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// A port is the shared data structure the exchange operator creates for
// synchronisation and data exchange between a producer group and a
// consumer group (paper, §4.1). It holds one queue per consumer; producers
// deposit packets of records into consumer queues, and an optional flow
// control semaphore per queue bounds how far producers may run ahead.

// packet is the unit of data exchange: up to PacketSize NEXT_RECORD
// structures, an end-of-stream tag, and (in this implementation) an error
// slot so producer failures propagate to consumers.
//
// Packets are recycled through the exchange's packetPool: once a packet
// has been inserted into a queue the producer must not read it again —
// the consumer that pops it may drain it and return it to the pool,
// where another producer can immediately claim and refill it.
type packet struct {
	recs     []Rec
	eos      bool
	err      error
	producer int
	// flow is the trace flow-arrow id binding this packet's push event to
	// its pop event; 0 when tracing is off.
	flow int64
}

// portStats aggregates the port's blocking-time counters. Both sides are
// timed only when they actually block — the uncontended paths add a single
// branch — so the numbers attribute pipeline imbalance: producer stall
// means consumers are the bottleneck (flow control throttling, §4.1),
// consumer wait means producers are.
type portStats struct {
	producerStall atomic.Int64 // ns producers spent blocked on the flow-control semaphore
	consumerWait  atomic.Int64 // ns consumers spent blocked waiting for a packet
}

// packetFIFO is a queue of packets that reuses its backing array: pop
// advances a head index instead of re-slicing, and push compacts the
// live window to the front before appending when the array is full.
// Once the array has grown to the queue's high-water mark the
// steady-state push/pop cycle allocates nothing.
type packetFIFO struct {
	buf  []*packet
	head int
}

func (f *packetFIFO) empty() bool { return f.head == len(f.buf) }

// size reports the number of queued packets.
func (f *packetFIFO) size() int { return len(f.buf) - f.head }

func (f *packetFIFO) push(p *packet) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = nil
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, p)
}

func (f *packetFIFO) pop() *packet {
	if f.empty() {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return p
}

// queue is one consumer's input queue. In merge mode (keepStreams) the
// packets are kept separated by producer so a merge iterator can consume
// each sorted stream individually (paper, §4.4).
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ps   *portStats
	pool *packetPool

	shared packetFIFO   // normal mode: one FIFO
	byProd []packetFIFO // merge mode: one FIFO per producer

	eosSeen   int    // producers that have delivered their final packet
	eosByProd []bool // merge mode: per-producer end-of-stream
	closed    bool   // consumer abandoned the queue

	// fc is the flow control semaphore: producers take a token after each
	// insertion, consumers return one after each removal. Initialised with
	// `slack` tokens; nil when flow control is disabled.
	fc chan struct{}
}

func newQueue(producers int, keepStreams bool, flowControl bool, slack int, ps *portStats, pool *packetPool) *queue {
	q := &queue{ps: ps, pool: pool}
	q.cond = sync.NewCond(&q.mu)
	if keepStreams {
		q.byProd = make([]packetFIFO, producers)
		q.eosByProd = make([]bool, producers)
	}
	if flowControl {
		if slack < 1 {
			slack = 1
		}
		q.fc = make(chan struct{}, slack)
		for i := 0; i < slack; i++ {
			q.fc <- struct{}{}
		}
	}
	return q
}

// push inserts a packet and signals the consumer; with flow control it
// then acquires a semaphore token, blocking if the producers are already
// `slack` packets ahead ("after a producer has inserted a new packet into
// the port, it must request the flow control semaphore", §4.1). tk is the
// pushing producer's trace track (nil when tracing is off).
//
// The packet's fields are snapshotted before it becomes visible to the
// consumer: the instant the queue mutex drops, the consumer may pop,
// drain, and recycle the packet into the free list, where another
// producer can claim and refill it — so reading p.eos or p.recs after
// insertion would race with its next life.
func (q *queue) push(p *packet, tk *trace.Track) {
	eos := p.eos
	nrecs := int64(len(p.recs))
	q.mu.Lock()
	if q.closed {
		// Consumer is gone: release the records and recycle the packet
		// instead of queueing it. The packet was still pushed through the
		// port, so the process-wide counters record it (keeping them
		// consistent with the per-exchange packetsSent/recordsSent the
		// outbox already counted), but it never contributes queue depth.
		if eos {
			q.noteEOS(p)
			q.cond.Broadcast()
		}
		q.mu.Unlock()
		for _, r := range p.recs {
			r.Unfix()
		}
		q.pool.put(p)
		xmPackets.Add(1)
		xmRecords.Add(nrecs)
		return
	}
	if q.byProd != nil {
		q.byProd[p.producer].push(p)
	} else {
		q.shared.push(p)
	}
	if eos {
		q.noteEOS(p)
	}
	q.cond.Broadcast()
	// Bump the depth gauge before releasing the mutex: a consumer can pop
	// this packet (and decrement) the instant the lock drops, and the gauge
	// must never transiently read negative on a scrape.
	xmQueueDepth.Add(1)
	q.mu.Unlock()
	xmPackets.Add(1)
	xmRecords.Add(nrecs)
	if q.fc != nil && !eos {
		q.takeToken(tk)
	}
}

// takeToken acquires one flow-control token, recording the stall time if
// the producer group is already `slack` packets ahead. A stall that
// actually blocks is also recorded as a token-wait span on the producer's
// trace track; the uncontended path emits nothing.
func (q *queue) takeToken(tk *trace.Track) {
	select {
	case <-q.fc:
	default:
		start := time.Now()
		<-q.fc
		d := time.Since(start)
		q.ps.producerStall.Add(int64(d))
		xmTokenWaits.Add(1)
		xmProducerStallNs.Add(int64(d))
		tk.SpanAt("flow", "token-wait", start, d)
	}
}

// waitLocked blocks on the condition variable until ready() holds,
// charging the blocked time to the consumer-wait counter and — when it
// actually blocks — recording a consumer-wait span on the caller's trace
// track. Callers hold q.mu; ready is evaluated under it.
func (q *queue) waitLocked(tk *trace.Track, ready func() bool) {
	if ready() {
		return
	}
	start := time.Now()
	for !ready() {
		q.cond.Wait()
	}
	d := time.Since(start)
	q.ps.consumerWait.Add(int64(d))
	xmConsumerWaitNs.Add(int64(d))
	tk.SpanAt("flow", "consumer-wait", start, d)
}

// noteEOS records an end-of-stream tag. Callers hold q.mu.
func (q *queue) noteEOS(p *packet) {
	q.eosSeen++
	if q.eosByProd != nil {
		q.eosByProd[p.producer] = true
	}
}

// pop removes the next packet from the shared FIFO, blocking until one is
// available or all producers have delivered end-of-stream and the queue is
// empty (returns nil).
func (q *queue) pop(producers int, tk *trace.Track) *packet {
	q.mu.Lock()
	q.waitLocked(tk, func() bool { return !q.shared.empty() || q.eosSeen >= producers })
	p := q.shared.pop()
	q.mu.Unlock()
	if p != nil {
		xmQueueDepth.Add(-1)
		if q.fc != nil && !p.eos {
			q.fc <- struct{}{}
		}
	}
	return p
}

// popFrom removes the next packet of one producer's stream (merge mode).
// Returns nil when that stream has delivered end-of-stream and is empty.
func (q *queue) popFrom(producer int, tk *trace.Track) *packet {
	q.mu.Lock()
	q.waitLocked(tk, func() bool { return !q.byProd[producer].empty() || q.eosByProd[producer] })
	p := q.byProd[producer].pop()
	q.mu.Unlock()
	if p != nil {
		xmQueueDepth.Add(-1)
		if q.fc != nil && !p.eos {
			q.fc <- struct{}{}
		}
	}
	return p
}

// tryPop removes the next available packet without blocking (inline mode).
func (q *queue) tryPop() *packet {
	q.mu.Lock()
	var p *packet
	if q.byProd != nil {
		for i := range q.byProd {
			if !q.byProd[i].empty() {
				p = q.byProd[i].pop()
				break
			}
		}
	} else {
		p = q.shared.pop()
	}
	q.mu.Unlock()
	if p != nil {
		xmQueueDepth.Add(-1)
		if q.fc != nil && !p.eos {
			q.fc <- struct{}{}
		}
	}
	return p
}

// drain unfixes everything still queued (consumer shutdown), recycles the
// packets, and marks the queue closed so producers stop queueing into it.
func (q *queue) drain() {
	q.mu.Lock()
	q.closed = true
	var all []*packet
	for !q.shared.empty() {
		all = append(all, q.shared.pop())
	}
	for i := range q.byProd {
		for !q.byProd[i].empty() {
			all = append(all, q.byProd[i].pop())
		}
	}
	q.mu.Unlock()
	xmQueueDepth.Add(-int64(len(all)))
	for _, p := range all {
		for _, r := range p.recs {
			r.Unfix()
		}
		eos := p.eos
		q.pool.put(p)
		if q.fc != nil && !eos {
			q.fc <- struct{}{}
		}
	}
}

// waitAllEOS blocks until every producer has delivered end-of-stream.
func (q *queue) waitAllEOS(producers int) {
	q.mu.Lock()
	for q.eosSeen < producers {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// port ties the queues together with the shutdown handshake.
type port struct {
	queues []*queue
	stats  portStats

	// allowClose is the semaphore the (last) consumer releases to permit
	// producers to shut down; producers wait on it after their final
	// packet ("waits until the consumer allows closing all open files",
	// §4.1 — the delay protects records of virtual files still pinned).
	allowClose chan struct{}

	// producersDone is the acknowledgement the consumer waits for before
	// returning from close.
	producersDone sync.WaitGroup
}

func newPort(producers, consumers int, keepStreams, flowControl bool, slack int, pool *packetPool) *port {
	pt := &port{allowClose: make(chan struct{})}
	for i := 0; i < consumers; i++ {
		pt.queues = append(pt.queues, newQueue(producers, keepStreams, flowControl, slack, &pt.stats, pool))
	}
	return pt
}
