package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/record"
	"repro/internal/trace"
)

// consumerClosed records one endpoint's shutdown. The last consumer to
// close releases the semaphore that permits producers to shut down and —
// in fork mode — waits for their acknowledgement (§4.1/§4.3: orderly,
// self-scheduling shutdown of the whole tree). tk is the closing
// endpoint's trace track: the allow-close release and the wait for the
// producers' acknowledgement are the two halves of the shutdown
// handshake made visible in the timeline.
func (x *Exchange) consumerClosed(tk *trace.Track) error {
	n := atomic.AddInt32(&x.closed, 1)
	if int(n) == x.cfg.Consumers {
		tk.Instant("exchange", "allow-close")
		close(x.port.allowClose)
		if !x.cfg.Inline {
			var begin time.Time
			if tk != nil {
				begin = time.Now()
			}
			x.port.producersDone.Wait()
			if tk != nil {
				tk.SpanSince("exchange", "await-producers", begin)
			}
		}
	}
	return x.firstErr()
}

// xConsumer is one consumer endpoint of an exchange. In fork mode it is
// "a normal iterator, the only difference ... is that it receives its
// input via inter-process communication" (§4.1). In inline mode (§4.4) it
// additionally drives its own producer subtree between queue polls.
type xConsumer struct {
	x   *Exchange
	idx int
	tk  *trace.Track

	cur  *packet
	pos  int
	open bool
	done bool

	// pendErr is an error carried by a packet whose records were lent to
	// a batch: the records go out first, the error surfaces on the next
	// NextBatch call, mirroring the row path's records-then-error order.
	pendErr error

	// Inline mode state.
	input     Iterator
	out       *outbox
	inputDone bool
}

// Schema implements Iterator.
func (c *xConsumer) Schema() *record.Schema { return c.x.cfg.Schema }

// Open implements Iterator.
func (c *xConsumer) Open() error {
	if c.open {
		return errState("exchange", "consumer already open")
	}
	if c.idx < 0 || c.idx >= c.x.cfg.Consumers {
		return errState("exchange", "consumer index out of range")
	}
	if c.tk == nil {
		c.tk = c.x.consumerTrack(c.idx)
	}
	if c.x.cfg.Inline {
		input, err := c.x.cfg.NewProducer(c.idx)
		if err != nil {
			return err
		}
		if err := input.Open(); err != nil {
			return err
		}
		c.input = input
		c.out = c.x.newOutbox(c.idx)
		c.out.tk = c.tk
		c.inputDone = false
	} else {
		// The first consumer to open acts as the master and forks the
		// producer group.
		c.x.ensureStarted()
	}
	c.cur, c.pos, c.done = nil, 0, false
	c.pendErr = nil
	c.open = true
	return nil
}

// NextBatch implements BatchIterator natively: a popped packet's record
// slice is lent to the caller's batch wholesale — no per-record repack —
// and the packet returns to the free list when the caller's next call
// (or Reset) recycles the batch. A packet that also carries an error
// still hands its records out first; the error surfaces on the following
// call, as in the row path.
func (c *xConsumer) NextBatch(b *Batch) error {
	if !c.open {
		return errState("exchange", "consumer next before open")
	}
	b.Reset()
	if c.pendErr != nil {
		err := c.pendErr
		c.pendErr = nil
		return err
	}
	for {
		if p := c.cur; p != nil {
			pos := c.pos
			c.cur, c.pos = nil, 0
			if p.err != nil {
				c.pendErr = p.err
			}
			if pos == 0 && len(p.recs) > 0 {
				b.lend(p, c.x.pool)
				return nil
			}
			if pos < len(p.recs) {
				// Mixed-mode leftover: hand out what remains of a packet
				// partially served through Next.
				for _, r := range p.recs[pos:] {
					b.Append(r)
				}
				c.x.pool.put(p)
				return nil
			}
			c.x.pool.put(p)
			if c.pendErr != nil {
				err := c.pendErr
				c.pendErr = nil
				return err
			}
			continue
		}
		if c.done {
			return nil
		}
		if c.x.cfg.Inline {
			if err := c.inlineStep(); err != nil {
				return err
			}
			continue
		}
		p := c.x.port.queues[c.idx].pop(c.x.cfg.Producers, c.tk)
		if p == nil {
			c.done = true
			return c.x.firstErr()
		}
		c.tk.FlowIn("packet", "pop", p.flow, "records", int64(len(p.recs)))
		c.cur = p
	}
}

// Next implements Iterator.
func (c *xConsumer) Next() (Rec, bool, error) {
	if !c.open {
		return Rec{}, false, errState("exchange", "consumer next before open")
	}
	for {
		if c.cur != nil && c.pos < len(c.cur.recs) {
			r := c.cur.recs[c.pos]
			c.pos++
			return r, true, nil
		}
		if c.cur != nil && c.cur.err != nil {
			err := c.cur.err
			c.x.pool.put(c.cur)
			c.cur = nil
			return Rec{}, false, err
		}
		if c.cur != nil {
			// Every record has been handed out: return the drained packet
			// to the free list instead of dropping it for the GC.
			c.x.pool.put(c.cur)
		}
		c.cur, c.pos = nil, 0
		if c.done {
			return Rec{}, false, nil
		}
		if c.x.cfg.Inline {
			if err := c.inlineStep(); err != nil {
				return Rec{}, false, err
			}
			continue
		}
		p := c.x.port.queues[c.idx].pop(c.x.cfg.Producers, c.tk)
		if p == nil {
			c.done = true
			if err := c.x.firstErr(); err != nil {
				return Rec{}, false, err
			}
			return Rec{}, false, nil
		}
		c.tk.FlowIn("packet", "pop", p.flow, "records", int64(len(p.recs)))
		c.cur = p
	}
}

// inlineStep makes progress in the no-fork variant: take whatever the
// queue already holds; otherwise request records from our own input tree,
// "possibly sending them off to other processes in the group, until a
// record for its own partition is found" (§4.4); once our input is
// exhausted, block on the queue for the remaining peers.
func (c *xConsumer) inlineStep() error {
	q := c.x.port.queues[c.idx]
	if p := q.tryPop(); p != nil {
		c.tk.FlowIn("packet", "pop", p.flow, "records", int64(len(p.recs)))
		c.cur = p
		return nil
	}
	if !c.inputDone {
		r, ok, err := c.input.Next()
		if err != nil {
			c.x.setErr(err)
			c.out.flush(true)
			c.inputDone = true
			return err
		}
		if !ok {
			c.out.flush(true)
			c.inputDone = true
			return nil
		}
		c.out.route(r)
		return nil
	}
	p := q.pop(c.x.cfg.Producers, c.tk)
	if p == nil {
		c.done = true
		return c.x.firstErr()
	}
	c.tk.FlowIn("packet", "pop", p.flow, "records", int64(len(p.recs)))
	c.cur = p
	return nil
}

// Close implements Iterator.
func (c *xConsumer) Close() error {
	if !c.open {
		return errState("exchange", "consumer close before open")
	}
	c.open = false
	// Release anything we still hold, then abandon the queue.
	if c.cur != nil {
		for _, r := range c.cur.recs[c.pos:] {
			r.Unfix()
		}
		c.x.pool.put(c.cur)
		c.cur = nil
	}
	if c.x.cfg.Inline {
		if !c.inputDone {
			// Cancelled early: our peers still need our end-of-stream tags.
			c.out.flush(true)
			c.inputDone = true
		}
		c.x.port.queues[c.idx].drain()
		err := c.x.consumerClosed(c.tk)
		// Wait until the whole group may close, then shut our subtree
		// down: records we produced may still be pinned by peers.
		var begin time.Time
		if c.tk != nil {
			begin = time.Now()
		}
		<-c.x.port.allowClose
		if c.tk != nil {
			c.tk.SpanSince("exchange", "await-close", begin)
		}
		if cerr := c.input.Close(); err == nil {
			err = cerr
		}
		c.input = nil
		return err
	}
	// Fork mode: make sure producers are running (an endpoint could be
	// closed before any Next), then abandon the queue and hand over to
	// the shutdown handshake.
	c.x.ensureStarted()
	c.x.port.queues[c.idx].drain()
	return c.x.consumerClosed(c.tk)
}

// streamGroup coordinates the per-producer stream endpoints of one
// consumer (KeepStreams mode): the last stream to close completes the
// endpoint's shutdown.
type streamGroup struct {
	mu        sync.Mutex
	remaining int
	started   bool
	// tk is the endpoint's shared trace track: every stream of one
	// consumer runs in that consumer's goroutine, so sharing keeps the
	// single-writer rule.
	tk *trace.Track
}

// xStream is a single-producer stream of one consumer endpoint, used
// beneath merge iterators (§4.4: "the merge iterator requires to
// distinguish the input records by their producer").
type xStream struct {
	x        *Exchange
	consumer int
	producer int
	group    *streamGroup

	cur  *packet
	pos  int
	open bool
	done bool
}

// Schema implements Iterator.
func (s *xStream) Schema() *record.Schema { return s.x.cfg.Schema }

// Open implements Iterator.
func (s *xStream) Open() error {
	if s.open {
		return errState("exchange", "stream already open")
	}
	s.group.mu.Lock()
	if !s.group.started {
		s.group.started = true
		s.group.tk = s.x.consumerTrack(s.consumer)
	}
	s.group.mu.Unlock()
	s.x.ensureStarted()
	s.cur, s.pos, s.done = nil, 0, false
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *xStream) Next() (Rec, bool, error) {
	if !s.open {
		return Rec{}, false, errState("exchange", "stream next before open")
	}
	for {
		if s.cur != nil && s.pos < len(s.cur.recs) {
			r := s.cur.recs[s.pos]
			s.pos++
			return r, true, nil
		}
		if s.cur != nil && s.cur.err != nil {
			err := s.cur.err
			s.x.pool.put(s.cur)
			s.cur = nil
			return Rec{}, false, err
		}
		if s.cur != nil {
			s.x.pool.put(s.cur)
		}
		s.cur, s.pos = nil, 0
		if s.done {
			return Rec{}, false, nil
		}
		p := s.x.port.queues[s.consumer].popFrom(s.producer, s.group.tk)
		if p == nil {
			s.done = true
			if err := s.x.firstErr(); err != nil {
				return Rec{}, false, err
			}
			return Rec{}, false, nil
		}
		s.group.tk.FlowIn("packet", "pop", p.flow, "records", int64(len(p.recs)))
		s.cur = p
	}
}

// Close implements Iterator.
func (s *xStream) Close() error {
	if !s.open {
		return errState("exchange", "stream close before open")
	}
	s.open = false
	if s.cur != nil {
		for _, r := range s.cur.recs[s.pos:] {
			r.Unfix()
		}
		s.x.pool.put(s.cur)
		s.cur = nil
	}
	s.group.mu.Lock()
	s.group.remaining--
	last := s.group.remaining == 0
	s.group.mu.Unlock()
	if !last {
		return nil
	}
	s.x.port.queues[s.consumer].drain()
	return s.x.consumerClosed(s.group.tk)
}

// WorkerPool is a set of primed processes (§4.2): goroutines that are
// always present and wait for work packets, so exchange does not pay the
// fork cost per producer. The pool must be at least as large as the
// number of producers that need to run concurrently.
type WorkerPool struct {
	tasks chan func()
	wg    sync.WaitGroup
	size  int
}

// NewWorkerPool primes n workers.
func NewWorkerPool(n int) *WorkerPool {
	p := &WorkerPool{tasks: make(chan func()), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Size returns the number of primed workers.
func (p *WorkerPool) Size() int { return p.size }

// Submit hands a task to a free worker, blocking until one accepts it.
func (p *WorkerPool) Submit(f func()) { p.tasks <- f }

// Close shuts the pool down after all running tasks complete.
func (p *WorkerPool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
