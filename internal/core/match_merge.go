package core

import (
	"fmt"

	"repro/internal/record"
)

// MergeMatch is the sort-based one-to-one match algorithm: both inputs
// must arrive sorted ascending on their key fields (wrap them in Sort
// iterators or use NewMergeMatchSorted). It walks groups of equal keys on
// both sides and emits the classes the operation selects.
type MergeMatch struct {
	env      *Env
	op       MatchOp
	left     Iterator
	right    Iterator
	leftKey  record.Key
	rightKey record.Key
	schema   *record.Schema

	w       *ResultWriter
	lrec    Rec
	lok     bool
	rrec    Rec
	rok     bool
	pending []Rec
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
	batch   int
	lsrc    recSource
	rsrc    recSource
}

// EnableBatch implements BatchConfigurable: both inputs are consumed
// through batch refills of the given size. The size also propagates to
// batch-capable inputs, so the hidden Sorts of NewMergeMatchSorted
// switch along with the match itself.
func (m *MergeMatch) EnableBatch(size int) {
	m.batch = size
	if bc, ok := m.left.(BatchConfigurable); ok {
		bc.EnableBatch(size)
	}
	if bc, ok := m.right.(BatchConfigurable); ok {
		bc.EnableBatch(size)
	}
}

// NewMergeMatch builds the operator over already-sorted inputs.
func NewMergeMatch(env *Env, op MatchOp, left, right Iterator, leftKey, rightKey record.Key) (*MergeMatch, error) {
	if len(leftKey) != len(rightKey) || len(leftKey) == 0 {
		return nil, fmt.Errorf("core: mergematch: bad key arity %d/%d", len(leftKey), len(rightKey))
	}
	schema, err := matchOutputSchema(op, left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	return &MergeMatch{
		env: env, op: op, left: left, right: right,
		leftKey: leftKey, rightKey: rightKey, schema: schema,
	}, nil
}

// NewMergeMatchSorted wraps both inputs in Sort iterators on the key
// fields and builds a MergeMatch — the classic sort-merge join plan.
func NewMergeMatchSorted(env *Env, op MatchOp, left, right Iterator, leftKey, rightKey record.Key) (*MergeMatch, error) {
	lspec := make([]record.SortSpec, len(leftKey))
	for i, f := range leftKey {
		lspec[i] = record.SortSpec{Field: f}
	}
	rspec := make([]record.SortSpec, len(rightKey))
	for i, f := range rightKey {
		rspec[i] = record.SortSpec{Field: f}
	}
	return NewMergeMatch(env, op, NewSort(env, left, lspec), NewSort(env, right, rspec), leftKey, rightKey)
}

// Schema implements Iterator.
func (m *MergeMatch) Schema() *record.Schema { return m.schema }

// Open implements Iterator.
func (m *MergeMatch) Open() error {
	if m.open {
		return errState("mergematch", "already open")
	}
	err := m.openImpl()
	m.openFailed = err != nil
	return err
}

func (m *MergeMatch) openImpl() error {
	if m.op.combinesSchemas() {
		w, err := m.env.NewResultWriter("mergematch", m.schema)
		if err != nil {
			return err
		}
		m.w = w
	}
	if err := m.left.Open(); err != nil {
		_ = m.dispose()
		return err
	}
	if err := m.right.Open(); err != nil {
		_ = m.left.Close()
		_ = m.dispose()
		return err
	}
	m.lsrc = inputSource(m.left, m.batch)
	m.rsrc = inputSource(m.right, m.batch)
	var err error
	if m.lrec, m.lok, err = m.lsrc.next(); err != nil {
		m.abort()
		return err
	}
	if m.rrec, m.rok, err = m.rsrc.next(); err != nil {
		m.abort()
		return err
	}
	m.open = true
	return nil
}

// advanceLeft fetches the next left record.
func (m *MergeMatch) advanceLeft() error {
	var err error
	m.lrec, m.lok, err = m.lsrc.next()
	return err
}

func (m *MergeMatch) advanceRight() error {
	var err error
	m.rrec, m.rok, err = m.rsrc.next()
	return err
}

// Next implements Iterator.
func (m *MergeMatch) Next() (Rec, bool, error) {
	if !m.open {
		return Rec{}, false, errState("mergematch", "next before open")
	}
	for {
		if len(m.pending) > 0 {
			out := m.pending[0]
			m.pending = m.pending[1:]
			return out, true, nil
		}
		done, err := m.step()
		if err != nil {
			return Rec{}, false, err
		}
		if done {
			return Rec{}, false, nil
		}
	}
}

// step consumes the next key group from whichever side is due, queueing
// outputs on m.pending; done reports that both inputs are exhausted.
func (m *MergeMatch) step() (done bool, err error) {
	switch {
	case m.lok && m.rok:
		c := record.CompareKeys(m.left.Schema(), m.lrec.Data, m.leftKey,
			m.right.Schema(), m.rrec.Data, m.rightKey)
		switch {
		case c < 0:
			return false, m.leftOnlyGroup()
		case c > 0:
			return false, m.rightOnlyGroup()
		default:
			return false, m.matchedGroup()
		}
	case m.lok:
		return false, m.leftOnlyGroup()
	case m.rok:
		return false, m.rightOnlyGroup()
	default:
		return true, nil
	}
}

// NextBatch implements BatchIterator natively: queued outputs move into
// the batch wholesale, and group consumption keeps going until the batch
// fills or both inputs are exhausted.
func (m *MergeMatch) NextBatch(b *Batch) error {
	if !m.open {
		return errState("mergematch", "next before open")
	}
	b.Reset()
	for {
		if len(m.pending) > 0 {
			for _, r := range m.pending {
				b.Append(r)
			}
			m.pending = m.pending[:0]
		}
		if b.Full() {
			return nil
		}
		done, err := m.step()
		if err != nil {
			b.Release()
			return err
		}
		if done {
			return nil
		}
	}
}

// sameLeftKey reports whether data shares the current left group key.
func (m *MergeMatch) sameKey(s *record.Schema, a []byte, ka record.Key, b []byte, kb record.Key) bool {
	return record.CompareKeys(s, a, ka, s, b, kb) == 0
}

// leftOnlyGroup consumes the group of left records equal to the current
// one, emitting them if the operation outputs the left-only class.
func (m *MergeMatch) leftOnlyGroup() error {
	emitEach, emitOne, pad := false, false, false
	switch m.op {
	case MatchAnti:
		emitEach = true
	case MatchLeftOuter, MatchFullOuter:
		emitEach, pad = true, true
	case MatchUnion, MatchDifference:
		emitOne = true
	}
	groupKey := append([]byte(nil), m.lrec.Data...)
	first := true
	for m.lok && m.sameKey(m.left.Schema(), m.lrec.Data, m.leftKey, groupKey, m.leftKey) {
		switch {
		case emitEach && pad:
			out, err := m.combinePadRight(m.lrec.Data)
			if err != nil {
				m.lrec.Unfix()
				return err
			}
			m.pending = append(m.pending, out)
			m.lrec.Unfix()
		case emitEach:
			m.pending = append(m.pending, m.lrec.WithoutDirty())
		case emitOne && first:
			m.pending = append(m.pending, m.lrec.WithoutDirty())
		default:
			m.lrec.Unfix()
		}
		first = false
		if err := m.advanceLeft(); err != nil {
			return err
		}
	}
	return nil
}

// rightOnlyGroup mirrors leftOnlyGroup for the right input.
func (m *MergeMatch) rightOnlyGroup() error {
	emitEach, emitOne, pad := false, false, false
	switch m.op {
	case MatchRightOuter, MatchFullOuter:
		emitEach, pad = true, true
	case MatchUnion, MatchAntiDifference:
		emitOne = true
	}
	groupKey := append([]byte(nil), m.rrec.Data...)
	first := true
	for m.rok && m.sameKey(m.right.Schema(), m.rrec.Data, m.rightKey, groupKey, m.rightKey) {
		switch {
		case emitEach && pad:
			out, err := m.combinePadLeft(m.rrec.Data)
			if err != nil {
				m.rrec.Unfix()
				return err
			}
			m.pending = append(m.pending, out)
			m.rrec.Unfix()
		case emitEach:
			m.pending = append(m.pending, m.rrec.WithoutDirty())
		case emitOne && first:
			m.pending = append(m.pending, m.rrec.WithoutDirty())
		default:
			m.rrec.Unfix()
		}
		first = false
		if err := m.advanceRight(); err != nil {
			return err
		}
	}
	return nil
}

// matchedGroup handles equal key groups on both sides.
func (m *MergeMatch) matchedGroup() error {
	// Buffer the right group (records stay pinned in the buffer, as the
	// hash-based algorithm keeps its hash table pinned).
	groupKey := append([]byte(nil), m.rrec.Data...)
	var rgroup []Rec
	for m.rok && m.sameKey(m.right.Schema(), m.rrec.Data, m.rightKey, groupKey, m.rightKey) {
		rgroup = append(rgroup, m.rrec)
		if err := m.advanceRight(); err != nil {
			for _, r := range rgroup {
				r.Unfix()
			}
			return err
		}
	}
	releaseGroup := func() {
		for _, r := range rgroup {
			r.Unfix()
		}
	}

	lKeySample := append([]byte(nil), m.lrec.Data...)
	first := true
	for m.lok && m.sameKey(m.left.Schema(), m.lrec.Data, m.leftKey, lKeySample, m.leftKey) {
		switch m.op {
		case MatchJoin, MatchLeftOuter, MatchRightOuter, MatchFullOuter:
			for _, r := range rgroup {
				out, err := m.combine(m.lrec.Data, r.Data)
				if err != nil {
					m.lrec.Unfix()
					releaseGroup()
					return err
				}
				m.pending = append(m.pending, out)
			}
			m.lrec.Unfix()
		case MatchSemi:
			m.pending = append(m.pending, m.lrec.WithoutDirty())
		case MatchUnion, MatchIntersect:
			if first {
				m.pending = append(m.pending, m.lrec.WithoutDirty())
			} else {
				m.lrec.Unfix()
			}
		default: // anti, difference, anti-difference: matched class dropped
			m.lrec.Unfix()
		}
		first = false
		if err := m.advanceLeft(); err != nil {
			releaseGroup()
			return err
		}
	}
	releaseGroup()
	return nil
}

func (m *MergeMatch) combine(l, r []byte) (Rec, error) {
	lv, err := m.left.Schema().Decode(l)
	if err != nil {
		return Rec{}, err
	}
	rv, err := m.right.Schema().Decode(r)
	if err != nil {
		return Rec{}, err
	}
	return m.w.Write(append(lv, rv...))
}

func (m *MergeMatch) combinePadRight(l []byte) (Rec, error) {
	lv, err := m.left.Schema().Decode(l)
	if err != nil {
		return Rec{}, err
	}
	return m.w.Write(append(lv, zeroValues(m.right.Schema())...))
}

func (m *MergeMatch) combinePadLeft(r []byte) (Rec, error) {
	rv, err := m.right.Schema().Decode(r)
	if err != nil {
		return Rec{}, err
	}
	return m.w.Write(append(zeroValues(m.left.Schema()), rv...))
}

// Close implements Iterator.
func (m *MergeMatch) Close() error {
	if m.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		m.openFailed = false
		return nil
	}
	if !m.open {
		return errState("mergematch", "close before open")
	}
	m.open = false
	m.releasePending()
	err := m.left.Close()
	if rerr := m.right.Close(); err == nil {
		err = rerr
	}
	if derr := m.dispose(); err == nil {
		err = derr
	}
	return err
}

func (m *MergeMatch) abort() {
	m.releasePending()
	_ = m.left.Close()
	_ = m.right.Close()
	_ = m.dispose()
}

func (m *MergeMatch) releasePending() {
	for _, r := range m.pending {
		r.Unfix()
	}
	m.pending = nil
	if m.lok {
		m.lrec.Unfix()
		m.lok = false
	}
	if m.rok {
		m.rrec.Unfix()
		m.rok = false
	}
	if m.lsrc != nil {
		m.lsrc.release()
		m.lsrc = nil
	}
	if m.rsrc != nil {
		m.rsrc.release()
		m.rsrc = nil
	}
}

func (m *MergeMatch) dispose() error {
	if m.w == nil {
		return nil
	}
	err := m.w.Dispose()
	m.w = nil
	return err
}
