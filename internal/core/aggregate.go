package core

import (
	"fmt"
	"math"

	"repro/internal/record"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggFunc]string{
	AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
}

// String names the aggregate function.
func (a AggFunc) String() string { return aggNames[a] }

// AggSpec is one aggregate column: a function over an input field.
// AggCount ignores Field.
type AggSpec struct {
	Func  AggFunc
	Field int
	Name  string
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	minV  record.Value
	maxV  record.Value
	has   bool
}

func (a *aggState) add(v record.Value) {
	a.count++
	switch v.Kind {
	case record.TInt:
		a.sumI += v.I
		a.sumF += float64(v.I)
	case record.TFloat:
		a.sumF += v.F
	}
	if !a.has {
		a.minV, a.maxV, a.has = v.Copy(), v.Copy(), true
		return
	}
	if record.CompareValues(v, a.minV) < 0 {
		a.minV = v.Copy()
	}
	if record.CompareValues(v, a.maxV) > 0 {
		a.maxV = v.Copy()
	}
}

// result renders the aggregate output value.
func (a *aggState) result(f AggFunc, fieldType record.Type) record.Value {
	switch f {
	case AggCount:
		return record.Int(a.count)
	case AggSum:
		if fieldType == record.TFloat {
			return record.Float(a.sumF)
		}
		return record.Int(a.sumI)
	case AggMin:
		if !a.has {
			return record.Value{Kind: fieldType}
		}
		return a.minV
	case AggMax:
		if !a.has {
			return record.Value{Kind: fieldType}
		}
		return a.maxV
	case AggAvg:
		if a.count == 0 {
			return record.Float(math.NaN())
		}
		return record.Float(a.sumF / float64(a.count))
	}
	return record.Value{}
}

// aggOutputSchema builds the output schema: group fields then aggregates.
func aggOutputSchema(in *record.Schema, groupBy record.Key, aggs []AggSpec) (*record.Schema, error) {
	var fields []record.Field
	for _, g := range groupBy {
		if g < 0 || g >= in.NumFields() {
			return nil, fmt.Errorf("core: aggregate: group field %d out of range", g)
		}
		fields = append(fields, in.Field(g))
	}
	for i, a := range aggs {
		name := a.Name
		if name == "" {
			if a.Func == AggCount {
				name = "count"
			} else {
				name = fmt.Sprintf("%s_%s", a.Func, in.Field(a.Field).Name)
			}
		}
		var t record.Type
		switch a.Func {
		case AggCount:
			t = record.TInt
		case AggAvg:
			t = record.TFloat
		default:
			if a.Field < 0 || a.Field >= in.NumFields() {
				return nil, fmt.Errorf("core: aggregate: agg %d field out of range", i)
			}
			t = in.Field(a.Field).Type
			if a.Func == AggSum && t != record.TInt && t != record.TFloat {
				return nil, fmt.Errorf("core: aggregate: sum over non-numeric field %q", in.Field(a.Field).Name)
			}
		}
		fields = append(fields, record.Field{Name: name, Type: t})
	}
	return record.NewSchema(fields...)
}

// validateAggInput checks the agg field kinds.
func validateAggInput(in *record.Schema, aggs []AggSpec) error {
	for _, a := range aggs {
		if a.Func == AggCount {
			continue
		}
		if a.Field < 0 || a.Field >= in.NumFields() {
			return fmt.Errorf("core: aggregate: field %d out of range", a.Field)
		}
		t := in.Field(a.Field).Type
		if (a.Func == AggSum || a.Func == AggAvg) && t != record.TInt && t != record.TFloat {
			return fmt.Errorf("core: aggregate: %s over non-numeric field %q", a.Func, in.Field(a.Field).Name)
		}
	}
	return nil
}

// HashAggregate is hash-based grouping and aggregation; with no aggregate
// specs it performs duplicate elimination on the group key.
type HashAggregate struct {
	env     *Env
	input   Iterator
	groupBy record.Key
	aggs    []AggSpec
	schema  *record.Schema

	w      *ResultWriter
	groups map[string]*group
	order  []string
	emit   int
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
	batch  int
}

type group struct {
	keyVals []record.Value
	states  []aggState
}

// NewHashAggregate constructs the operator.
func NewHashAggregate(env *Env, input Iterator, groupBy record.Key, aggs []AggSpec) (*HashAggregate, error) {
	if err := validateAggInput(input.Schema(), aggs); err != nil {
		return nil, err
	}
	schema, err := aggOutputSchema(input.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggregate{env: env, input: input, groupBy: groupBy, aggs: aggs, schema: schema}, nil
}

// Schema implements Iterator.
func (h *HashAggregate) Schema() *record.Schema { return h.schema }

// Open implements Iterator: consumes the whole input, building groups.
func (h *HashAggregate) Open() error {
	if h.open {
		return errState("hashaggregate", "already open")
	}
	err := h.openImpl()
	h.openFailed = err != nil
	return err
}

func (h *HashAggregate) openImpl() error {
	w, err := h.env.NewResultWriter("hashagg", h.schema)
	if err != nil {
		return err
	}
	h.w = w
	h.groups = make(map[string]*group)
	if err := h.input.Open(); err != nil {
		_ = h.w.Dispose()
		h.w = nil
		return err
	}
	in := h.input.Schema()
	src := inputSource(h.input, h.batch)
	for {
		r, ok, err := src.next()
		if err != nil {
			_ = h.input.Close()
			_ = h.w.Dispose()
			h.w = nil
			return err
		}
		if !ok {
			break
		}
		kv := in.KeyValues(r.Data, h.groupBy)
		key := record.KeyString(kv)
		g, exists := h.groups[key]
		if !exists {
			g = &group{keyVals: kv, states: make([]aggState, len(h.aggs))}
			h.groups[key] = g
			h.order = append(h.order, key)
		}
		for i, a := range h.aggs {
			if a.Func == AggCount {
				g.states[i].count++
				continue
			}
			v, err := in.Get(r.Data, a.Field)
			if err != nil {
				r.Unfix()
				src.release()
				_ = h.input.Close()
				_ = h.w.Dispose()
				h.w = nil
				return err
			}
			g.states[i].add(v)
		}
		r.Unfix()
	}
	if err := h.input.Close(); err != nil {
		_ = h.w.Dispose()
		h.w = nil
		return err
	}
	h.emit = 0
	h.open = true
	return nil
}

// EnableBatch implements BatchConfigurable: Open consumes the input
// through batch refills of the given size.
func (h *HashAggregate) EnableBatch(size int) { h.batch = size }

// emitGroup materialises the next group's output record.
func (h *HashAggregate) emitGroup() (Rec, error) {
	g := h.groups[h.order[h.emit]]
	h.emit++
	vals := append([]record.Value(nil), g.keyVals...)
	in := h.input.Schema()
	for i, a := range h.aggs {
		var t record.Type
		if a.Func != AggCount {
			t = in.Field(a.Field).Type
		}
		vals = append(vals, g.states[i].result(a.Func, t))
	}
	return h.w.Write(vals)
}

// Next implements Iterator: emits one group per call, in first-seen order.
func (h *HashAggregate) Next() (Rec, bool, error) {
	if !h.open {
		return Rec{}, false, errState("hashaggregate", "next before open")
	}
	if h.emit >= len(h.order) {
		return Rec{}, false, nil
	}
	r, err := h.emitGroup()
	return r, err == nil, err
}

// NextBatch implements BatchIterator natively: one call emits a whole
// run of groups in first-seen order.
func (h *HashAggregate) NextBatch(b *Batch) error {
	if !h.open {
		return errState("hashaggregate", "next before open")
	}
	b.Reset()
	for !b.Full() && h.emit < len(h.order) {
		r, err := h.emitGroup()
		if err != nil {
			b.Release()
			return err
		}
		b.Append(r)
	}
	return nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error {
	if h.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		h.openFailed = false
		return nil
	}
	if !h.open {
		return errState("hashaggregate", "close before open")
	}
	h.open = false
	h.groups = nil
	h.order = nil
	err := h.w.Dispose()
	h.w = nil
	return err
}

// SortAggregate is the sort-based aggregation algorithm: the input must
// arrive sorted on the group-by fields; groups are emitted on key change,
// so the operator uses constant memory.
type SortAggregate struct {
	env     *Env
	input   Iterator
	groupBy record.Key
	aggs    []AggSpec
	schema  *record.Schema

	w     *ResultWriter
	cur   *group
	done  bool
	open       bool
	openFailed bool // Open ran and failed: next Close is a no-op
	batch int
	src   recSource
}

// NewSortAggregate constructs the operator over a sorted input.
func NewSortAggregate(env *Env, input Iterator, groupBy record.Key, aggs []AggSpec) (*SortAggregate, error) {
	if err := validateAggInput(input.Schema(), aggs); err != nil {
		return nil, err
	}
	schema, err := aggOutputSchema(input.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &SortAggregate{env: env, input: input, groupBy: groupBy, aggs: aggs, schema: schema}, nil
}

// Schema implements Iterator.
func (s *SortAggregate) Schema() *record.Schema { return s.schema }

// Open implements Iterator.
func (s *SortAggregate) Open() error {
	if s.open {
		return errState("sortaggregate", "already open")
	}
	err := s.openImpl()
	s.openFailed = err != nil
	return err
}

func (s *SortAggregate) openImpl() error {
	w, err := s.env.NewResultWriter("sortagg", s.schema)
	if err != nil {
		return err
	}
	if err := s.input.Open(); err != nil {
		_ = w.Dispose()
		return err
	}
	s.w = w
	s.cur = nil
	s.done = false
	s.src = inputSource(s.input, s.batch)
	s.open = true
	return nil
}

// EnableBatch implements BatchConfigurable. The size also propagates to
// a batch-capable input — NewSortDistinct and the sort-based aggregation
// plans wrap the visible input in a hidden Sort that would otherwise
// stay row-at-a-time.
func (s *SortAggregate) EnableBatch(size int) {
	s.batch = size
	if bc, ok := s.input.(BatchConfigurable); ok {
		bc.EnableBatch(size)
	}
}

// Next implements Iterator.
func (s *SortAggregate) Next() (Rec, bool, error) {
	if !s.open {
		return Rec{}, false, errState("sortaggregate", "next before open")
	}
	return s.nextGroup()
}

// NextBatch implements BatchIterator natively: one call emits a whole
// run of finished groups.
func (s *SortAggregate) NextBatch(b *Batch) error {
	if !s.open {
		return errState("sortaggregate", "next before open")
	}
	b.Reset()
	for !b.Full() {
		r, ok, err := s.nextGroup()
		if err != nil {
			b.Release()
			return err
		}
		if !ok {
			break
		}
		b.Append(r)
	}
	return nil
}

// nextGroup emits the next finished group, consuming input until a key
// change or end of stream.
func (s *SortAggregate) nextGroup() (Rec, bool, error) {
	if s.done {
		return Rec{}, false, nil
	}
	in := s.input.Schema()
	for {
		r, ok, err := s.src.next()
		if err != nil {
			return Rec{}, false, err
		}
		if !ok {
			s.done = true
			if s.cur == nil {
				return Rec{}, false, nil
			}
			out, err := s.emit(s.cur)
			s.cur = nil
			return out, true, err
		}
		kv := in.KeyValues(r.Data, s.groupBy)
		if s.cur != nil && record.KeyString(kv) != record.KeyString(s.cur.keyVals) {
			// Key change: emit the finished group, start a new one.
			finished := s.cur
			s.cur = &group{keyVals: kv, states: make([]aggState, len(s.aggs))}
			if err := s.accumulate(s.cur, r); err != nil {
				return Rec{}, false, err
			}
			out, err := s.emit(finished)
			return out, true, err
		}
		if s.cur == nil {
			s.cur = &group{keyVals: kv, states: make([]aggState, len(s.aggs))}
		}
		if err := s.accumulate(s.cur, r); err != nil {
			return Rec{}, false, err
		}
	}
}

func (s *SortAggregate) accumulate(g *group, r Rec) error {
	in := s.input.Schema()
	for i, a := range s.aggs {
		if a.Func == AggCount {
			g.states[i].count++
			continue
		}
		v, err := in.Get(r.Data, a.Field)
		if err != nil {
			r.Unfix()
			return err
		}
		g.states[i].add(v)
	}
	r.Unfix()
	return nil
}

func (s *SortAggregate) emit(g *group) (Rec, error) {
	vals := append([]record.Value(nil), g.keyVals...)
	in := s.input.Schema()
	for i, a := range s.aggs {
		var t record.Type
		if a.Func != AggCount {
			t = in.Field(a.Field).Type
		}
		vals = append(vals, g.states[i].result(a.Func, t))
	}
	return s.w.Write(vals)
}

// Close implements Iterator.
func (s *SortAggregate) Close() error {
	if s.openFailed {
		// A failed Open already unwound this operator's state; the
		// standard drain path closes unconditionally, and a state error
		// here would mask the root cause.
		s.openFailed = false
		return nil
	}
	if !s.open {
		return errState("sortaggregate", "close before open")
	}
	s.open = false
	if s.src != nil {
		s.src.release()
		s.src = nil
	}
	err := s.input.Close()
	if derr := s.w.Dispose(); err == nil {
		err = derr
	}
	s.w = nil
	return err
}

// NewHashDistinct performs duplicate elimination on the whole tuple using
// the hash-based aggregation algorithm.
func NewHashDistinct(env *Env, input Iterator) (*HashAggregate, error) {
	return NewHashAggregate(env, input, allFields(input.Schema()), nil)
}

// NewSortDistinct performs duplicate elimination on the whole tuple using
// the sort-based algorithm; the input is wrapped in a Sort on all fields.
func NewSortDistinct(env *Env, input Iterator) (*SortAggregate, error) {
	key := allFields(input.Schema())
	spec := make([]record.SortSpec, len(key))
	for i, f := range key {
		spec[i] = record.SortSpec{Field: f}
	}
	return NewSortAggregate(env, NewSort(env, input, spec), key, nil)
}

func allFields(s *record.Schema) record.Key {
	key := make(record.Key, s.NumFields())
	for i := range key {
		key[i] = i
	}
	return key
}
