package core

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/record"
)

// gateScan blocks in Next until its gate closes, then reports end of
// stream: it parks exchange producer goroutines somewhere a goroutine
// profile can observe them.
type gateScan struct{ gate chan struct{} }

func (g *gateScan) Open() error              { return nil }
func (g *gateScan) Next() (Rec, bool, error) { <-g.gate; return Rec{}, false, nil }
func (g *gateScan) Close() error             { return nil }
func (g *gateScan) Schema() *record.Schema   { return intSchema }

// TestExchangeProducerPprofLabels pins the profiling attribution
// contract: when a build carries a query ID, every exchange producer
// goroutine runs under pprof labels query_id=<id> op=exchange-producer,
// so a CPU or goroutine profile of the process slices by query. The
// producers are parked on a gate mid-stream and the goroutine profile
// (debug=1, which prints label sets) must show the labels.
func TestExchangeProducerPprofLabels(t *testing.T) {
	const qid = "pprof-label-probe"
	gate := make(chan struct{})
	x, err := NewExchange(ExchangeConfig{
		Schema:      intSchema,
		Producers:   2,
		Consumers:   1,
		PacketSize:  4,
		QueryID:     qid,
		NewProducer: func(g int) (Iterator, error) { return &gateScan{gate: gate}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Consumer(0)
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		prof := buf.String()
		if strings.Contains(prof, `"query_id":"`+qid+`"`) &&
			strings.Contains(prof, `"op":"exchange-producer"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine profile never showed producer labels for %s:\n%s", qid, prof)
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(gate)
	for {
		_, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
