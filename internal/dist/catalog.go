package dist

import (
	"fmt"
	"os"

	"repro/internal/storage/file"
)

// CatalogVersion derives the catalog epoch for a served database file.
// Volumes are read-only while serving, so file identity (path), mtime
// and table population pin the contents well enough: a coordinator and
// its workers serving the same database file derive the same version,
// and reloading the database produces a new one — invalidating cached
// plans on the server and making stale workers reject dispatches.
func CatalogVersion(path string, base *file.Volume) string {
	mtime := int64(0)
	if st, err := os.Stat(path); err == nil {
		mtime = st.ModTime().UnixNano()
	}
	return fmt.Sprintf("%s|%d|%d|%d", path, mtime, len(base.List()), len(base.Indexes()))
}
