package dist

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// distDB is one process's copy of the test data: nums.0..nums.3 with
// rows values dealt round robin, each row padded so the stream is fat
// enough to outrun socket buffering when a test needs that.
type distDB struct {
	env  *core.Env
	cat  plan.MapCatalog
	pool *buffer.Pool
}

// newDistDB builds the fixture deterministically, so the coordinator's
// copy and every worker's copy hold identical tables — the shared-volume
// assumption of the fleet, reproduced per process.
func newDistDB(t testing.TB, rows, pad int) *distDB {
	t.Helper()
	reg := device.NewRegistry()
	baseID := reg.NextID()
	if err := reg.Mount(device.NewMem(baseID)); err != nil {
		t.Fatal(err)
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, 2048, buffer.TwoLevel)
	vol := file.NewVolume(pool, baseID)
	db := &distDB{
		env:  core.NewEnv(pool, file.NewVolume(pool, tempID)),
		cat:  plan.MapCatalog{},
		pool: pool,
	}
	schema := record.MustSchema(
		record.Field{Name: "v", Type: record.TInt},
		record.Field{Name: "pad", Type: record.TString},
	)
	parts := make([]*file.File, 4)
	for p := range parts {
		f, err := vol.Create(fmt.Sprintf("nums.%d", p), schema)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = f
		db.cat[fmt.Sprintf("nums.%d", p)] = f
	}
	padding := strings.Repeat("x", pad)
	for i := 0; i < rows; i++ {
		if _, err := parts[i%4].Insert(schema.MustEncode(record.Int(int64(i)), record.Str(padding))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// fleet is a coordinator plus in-process workers on httptest listeners.
type fleet struct {
	c       *Coordinator
	workers map[string]*Worker // dispatch addr -> worker
}

func newFleet(t testing.TB, rows, pad, workers int, mutate func(i int, cfg *WorkerConfig)) *fleet {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	c, err := NewCoordinator(CoordinatorConfig{
		HeartbeatEvery: 100 * time.Millisecond,
		ConnWait:       5 * time.Second,
		Log:            quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	f := &fleet{c: c, workers: map[string]*Worker{}}
	for i := 0; i < workers; i++ {
		db := newDistDB(t, rows, pad)
		cfg := WorkerConfig{Env: db.env, Catalog: db.cat, Log: quiet}
		if mutate != nil {
			mutate(i, &cfg)
		}
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(w.Stop)
		addr := strings.TrimPrefix(srv.URL, "http://")
		if err := c.Register(addr); err != nil {
			t.Fatal(err)
		}
		f.workers[addr] = w
	}
	return f
}

const distScript = "pscan nums 4 | exchange producers=4 packet=16"

// bind compiles the script and returns the iterator built with the
// coordinator's binder installed, plus the summary it fills.
func bind(t testing.TB, c *Coordinator, db *distDB, queryID, script string) (core.Iterator, *Summary) {
	t.Helper()
	tpl, err := plan.Compile(script)
	if err != nil {
		t.Fatal(err)
	}
	sum := &Summary{}
	it, _, err := plan.BuildWith(db.env, db.cat, tpl.Root(), plan.BuildOptions{
		Remote: c.Binder(BindRequest{
			QueryID: queryID,
			Source:  tpl.Source(),
			Root:    tpl.Root(),
			Env:     db.env,
			Cat:     db.cat,
			Summary: sum,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return it, sum
}

func renderSorted(rows [][]record.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "\x1f")
	}
	sort.Strings(out)
	return out
}

// TestDistTwoWorkersEndToEnd runs a partitioned plan with its producer
// fragments spread over two worker processes' iterators and real TCP,
// and checks the result set matches single-process execution exactly.
func TestDistTwoWorkersEndToEnd(t *testing.T) {
	const rows = 2000
	f := newFleet(t, rows, 8, 2, nil)
	db := newDistDB(t, rows, 8)

	n, err := plan.Parse(distScript)
	if err != nil {
		t.Fatal(err)
	}
	localRows, err := plan.Run(db.env, db.cat, n)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSorted(localRows)

	it, sum := bind(t, f.c, db, "q-e2e", distScript)
	gotRows, err := core.Collect(it)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	got := renderSorted(gotRows)
	if len(got) != len(want) {
		t.Fatalf("distributed run returned %d rows, local %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\n got %q\nwant %q", i, got[i], want[i])
		}
	}

	frags := sum.Fragments()
	if len(frags) != 4 {
		t.Fatalf("expected 4 fragments, summary has %d", len(frags))
	}
	seen := map[string]bool{}
	for _, fr := range frags {
		if fr.State != "done" {
			t.Errorf("fragment %s/%d state %q, want done", fr.Path, fr.Producer, fr.State)
		}
		if fr.Attempts != 1 {
			t.Errorf("fragment %s/%d took %d attempts, want 1", fr.Path, fr.Producer, fr.Attempts)
		}
		if fr.Records != rows/4 {
			t.Errorf("fragment %s/%d delivered %d records, want %d", fr.Path, fr.Producer, fr.Records, rows/4)
		}
		if fr.WireBytes <= 0 {
			t.Errorf("fragment %s/%d reports no wire bytes", fr.Path, fr.Producer)
		}
		seen[fr.Worker] = true
	}
	if len(seen) != 2 {
		t.Errorf("fragments ran on %d distinct workers, want 2 (%v)", len(seen), seen)
	}
	if sum.WireRecv.Load() <= 0 {
		t.Error("summary counted no wire bytes")
	}
	if sum.Retries.Load() != 0 {
		t.Errorf("summary counted %d retries on a healthy run", sum.Retries.Load())
	}
	if pinned := db.pool.PinnedFrames(); pinned != 0 {
		t.Fatalf("%d frames still pinned", pinned)
	}
}

// TestDistWorkerLossRetry kills one worker while its fragments are
// mid-stream and checks the coordinator re-dispatches them to the
// survivor with an exact skip: the query completes with every value
// delivered exactly once.
func TestDistWorkerLossRetry(t *testing.T) {
	// Fat rows, far beyond socket buffering: the victim's fragments
	// cannot finish before the kill.
	const rows = 40000
	f := newFleet(t, rows, 400, 2, nil)
	db := newDistDB(t, rows, 400)

	it, sum := bind(t, f.c, db, "q-loss", distScript)
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	schema := it.Schema()
	counts := map[string]int{}
	drain := func(limit int) error {
		for n := 0; limit <= 0 || n < limit; n++ {
			r, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			vals, err := schema.Decode(r.Data)
			if err != nil {
				r.Unfix()
				return err
			}
			counts[vals[0].String()]++
			r.Unfix()
		}
		return nil
	}
	if err := drain(500); err != nil {
		t.Fatalf("initial drain: %v", err)
	}

	// Kill a worker that still has a fragment running.
	victim := ""
	for _, fr := range sum.Fragments() {
		if fr.State == "running" && fr.Worker != "" {
			victim = fr.Worker
			break
		}
	}
	if victim == "" {
		t.Fatal("no running fragment to kill — fixture too small to outlast the initial drain")
	}
	f.workers[victim].Stop()

	if err := drain(0); err != nil {
		t.Fatalf("drain after worker loss: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	if len(counts) != rows {
		t.Fatalf("saw %d distinct values, want %d", len(counts), rows)
	}
	for v, n := range counts {
		if n != 1 {
			t.Fatalf("value %s delivered %d times", v, n)
		}
	}
	if sum.Retries.Load() == 0 {
		t.Error("no retries recorded despite worker kill")
	}
	retried := false
	for _, fr := range sum.Fragments() {
		if fr.State != "done" {
			t.Errorf("fragment %s/%d ended in state %q", fr.Path, fr.Producer, fr.State)
		}
		if fr.Attempts > 1 {
			retried = true
			if fr.Worker == victim {
				t.Errorf("retried fragment %s/%d still attributed to dead worker %s", fr.Path, fr.Producer, victim)
			}
		}
	}
	if !retried {
		t.Error("no fragment shows more than one attempt")
	}
	if pinned := db.pool.PinnedFrames(); pinned != 0 {
		t.Fatalf("%d frames still pinned", pinned)
	}
}

// TestDistNoWorkersLocalFallback: with an empty fleet the binder
// declines and the plan builds its exchanges locally.
func TestDistNoWorkersLocalFallback(t *testing.T) {
	const rows = 1000
	f := newFleet(t, rows, 8, 0, nil)
	db := newDistDB(t, rows, 8)

	it, sum := bind(t, f.c, db, "q-local", distScript)
	gotRows, err := core.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != rows {
		t.Fatalf("local fallback returned %d rows, want %d", len(gotRows), rows)
	}
	if frags := sum.Fragments(); len(frags) != 0 {
		t.Fatalf("local fallback still registered %d fragments", len(frags))
	}
}

// TestDistCatalogVersionMismatch: a worker planned against a different
// catalog epoch rejects the dispatch, and the rejection is a permanent
// query error, not a retry loop.
func TestDistCatalogVersionMismatch(t *testing.T) {
	const rows = 400
	f := newFleet(t, rows, 8, 1, func(i int, cfg *WorkerConfig) {
		cfg.CatalogVersion = "epoch-2"
	})
	db := newDistDB(t, rows, 8)

	tpl, err := plan.Compile(distScript)
	if err != nil {
		t.Fatal(err)
	}
	sum := &Summary{}
	it, _, err := plan.BuildWith(db.env, db.cat, tpl.Root(), plan.BuildOptions{
		Remote: f.c.Binder(BindRequest{
			QueryID:        "q-epoch",
			Source:         tpl.Source(),
			Root:           tpl.Root(),
			CatalogVersion: "epoch-1",
			Env:            db.env,
			Cat:            db.cat,
			Summary:        sum,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Collect(it)
	if err == nil {
		t.Fatal("expected catalog mismatch to fail the query")
	}
	if !strings.Contains(err.Error(), "catalog version mismatch") {
		t.Fatalf("error %q does not mention the catalog mismatch", err)
	}
	if sum.Retries.Load() != 0 {
		t.Errorf("deterministic rejection was retried %d times", sum.Retries.Load())
	}
}

// TestDistRemoteBuildError: a fragment that cannot build on the worker
// (missing table partition) reports its error back over the wire as an
// error-EOS, failing the query permanently with the root cause intact.
func TestDistRemoteBuildError(t *testing.T) {
	const rows = 400
	f := newFleet(t, rows, 8, 1, func(i int, cfg *WorkerConfig) {
		cat := cfg.Catalog.(plan.MapCatalog)
		delete(cat, "nums.3")
	})
	db := newDistDB(t, rows, 8)

	it, _ := bind(t, f.c, db, "q-builderr", distScript)
	_, err := core.Collect(it)
	if err == nil {
		t.Fatal("expected remote build failure to fail the query")
	}
	if !strings.Contains(err.Error(), "nums.3") {
		t.Fatalf("error %q does not carry the remote cause", err)
	}
}
