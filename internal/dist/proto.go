// Package dist is the distributed-execution layer: a coordinator that
// splits plans at exchange boundaries (see plan.Cuts) and ships producer
// fragments to a fleet of volcano-worker processes, and the worker that
// executes them. Control travels over HTTP (register, dispatch,
// heartbeat); data travels over raw TCP in the netexchange wire format
// of internal/core — the same length-prefixed frames that cross a
// NetExchange's transport, so a fragment's output stream is
// indistinguishable from a local shared-nothing exchange's.
//
// A fragment ships by position, not by value: the coordinator sends the
// whole normalized plan source plus the dotted child-index path of the
// exchange cut and one producer index. Compilation is deterministic, so
// the worker recompiles, navigates to the cut and builds exactly the
// producer subtree the local exchange's NewProducer closure would have
// built — no plan serialization format to maintain.
//
// Worker loss is survived by skip-replay: the coordinator counts the
// records each fragment delivered into the consuming operator and
// re-dispatches a dead fragment with that count as Skip; the replacement
// worker re-executes the (deterministic) fragment and discards the
// first Skip records before streaming. Fragments whose subtree contains
// a nested non-inline exchange are not order-deterministic and are only
// retried from zero (see plan.Deterministic).
package dist

import "encoding/json"

// FragmentSpec is the dispatch request the coordinator POSTs to a
// worker's /fragment endpoint.
type FragmentSpec struct {
	// QueryID is the coordinator-side query identity; it joins the
	// worker's logs and the data-plane hello with the coordinator's
	// registry, traces and slow-query log.
	QueryID string `json:"query_id"`
	// Plan is the full normalized plan source the query compiled from.
	Plan string `json:"plan"`
	// CatalogVersion guards against executing against a different
	// catalog epoch than the coordinator planned under; a worker whose
	// version differs rejects the dispatch.
	CatalogVersion string `json:"catalog_version,omitempty"`
	// Path locates the exchange cut in the compiled tree (plan.NodeAtPath)
	// and Producer selects which of its producer subtrees to run.
	Path     string `json:"path"`
	Producer int    `json:"producer"`
	// Attempt numbers the dispatch (1 = first); it travels in the
	// data-plane hello so the coordinator can tell a replacement stream
	// from a stale one.
	Attempt int `json:"attempt"`
	// Skip is the number of leading records the worker must produce and
	// discard before streaming — the skip-replay resume point.
	Skip int64 `json:"skip"`
	// BatchSize, when positive, builds and pulls the fragment under the
	// batch-at-a-time protocol, mirroring the coordinator's own build.
	BatchSize int `json:"batch_size,omitempty"`
	// Endpoint is the coordinator's data-plane TCP address the worker
	// must dial and stream frames to.
	Endpoint string `json:"endpoint"`
}

// Hello is the JSON payload of the WireFlagHello frame that opens every
// data-plane connection: it tells the coordinator which fragment stream
// the connection carries.
type Hello struct {
	QueryID  string `json:"query_id"`
	Path     string `json:"path"`
	Producer int    `json:"producer"`
	Attempt  int    `json:"attempt"`
}

func (h Hello) encode() []byte {
	b, _ := json.Marshal(h)
	return b
}

// RegisterRequest is what a worker POSTs to the coordinator's
// /dist/register endpoint (volcano-serve mounts it): the address the
// coordinator should dispatch fragments to and health-check.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// WorkerInfo describes one registered worker on /debug/workers.
type WorkerInfo struct {
	Addr      string `json:"addr"`
	Live      bool   `json:"live"`
	Fragments int64  `json:"fragments"` // dispatches sent to this worker
	Failures  int64  `json:"failures"`  // dispatches that ended in failure/loss
}
