package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/record"
)

// BindRequest is the per-query context a Coordinator needs to take over
// a plan's exchange cuts. The serving layer fills one per query and
// installs Coordinator.Binder(req) as BuildOptions.Remote.
type BindRequest struct {
	// QueryID must be unique among in-flight queries: it keys the
	// data-plane routing of fragment streams back to this query.
	QueryID string
	// Source is the normalized plan text (Template.Source); workers
	// recompile it to reach the fragment by position.
	Source string
	// Root is the compiled tree the build walks (Template.Root).
	Root *plan.Node
	// CatalogVersion travels in every dispatch; workers on a different
	// catalog epoch reject it.
	CatalogVersion string
	// BatchSize mirrors BuildOptions.BatchSize into dispatched fragments.
	BatchSize int
	// Env and Cat build probe instances (fragment schemas) and
	// materialise arriving records.
	Env *core.Env
	Cat plan.Catalog
	// Meter, when non-nil, is billed for the wire traffic and temp-file
	// activity the remote cuts cause on the coordinator.
	Meter *core.ResourceMeter
	// Summary, when non-nil, accumulates fragment stats and wire bytes
	// for the query's trailer and EXPLAIN ANALYZE.
	Summary *Summary
	// Done, when closed, makes fragment controllers abandon their work.
	Done <-chan struct{}
}

// Binder returns the plan.RemoteBinder for one query: offered a
// distributable exchange cut, it replaces the whole exchange subtree
// with a remoteSource whose producers run on the worker fleet. With no
// live workers the binder declines and the plan builds locally.
func (c *Coordinator) Binder(req BindRequest) plan.RemoteBinder {
	return func(path string, n *plan.Node) (core.Iterator, bool, error) {
		if c.LiveWorkers() == 0 {
			return nil, false, nil
		}
		env := req.Env
		if env != nil && req.Meter != nil {
			env = env.WithMeter(req.Meter)
		}
		schema, err := plan.FragmentSchema(env, req.Cat, req.Root, path)
		if err != nil {
			return nil, false, fmt.Errorf("dist: fragment %q schema probe: %w", path, err)
		}
		producers := 1
		if n.X != nil && n.X.Producers > 1 {
			producers = n.X.Producers
		}
		src := &remoteSource{
			c:         c,
			req:       req,
			env:       env,
			path:      path,
			producers: producers,
			resumable: plan.Deterministic(n.Inputs[0]),
			schema:    schema,
			done:      req.Done,
		}
		return src, true, nil
	}
}

// Summary accumulates one query's distributed-execution facts for its
// trailer and EXPLAIN ANALYZE output. All methods are nil-safe.
type Summary struct {
	// WireRecv is fragment payload bytes received on the data plane.
	WireRecv atomic.Int64
	// Retries counts fragment re-dispatches after worker loss.
	Retries atomic.Int64

	mu  sync.Mutex
	fns []func() plan.FragmentStat
}

func (s *Summary) addFrag(fn func() plan.FragmentStat) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.fns = append(s.fns, fn)
	s.mu.Unlock()
}

// StatFuncs returns the live per-fragment stat closures (for wiring into
// an Analysis via AddFragment).
func (s *Summary) StatFuncs() []func() plan.FragmentStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]func() plan.FragmentStat(nil), s.fns...)
}

// Fragments snapshots every fragment's current stats.
func (s *Summary) Fragments() []plan.FragmentStat {
	fns := s.StatFuncs()
	out := make([]plan.FragmentStat, len(fns))
	for i, fn := range fns {
		out[i] = fn()
	}
	return out
}

// srcItem is one unit flowing from a fragment controller to Next: a
// bundle of record images (copied out of the wire frame's arena), or a
// producer's terminal EOS/error.
type srcItem struct {
	g       int
	attempt int
	recs    [][]byte
	eos     bool
	err     error
}

// fragState is one producer fragment's shared state. remoteSource.mu
// guards every field; the attempt/delivered pair under one lock is what
// makes skip-replay exact (see runProducer).
type fragState struct {
	worker    string
	attempt   int   // attempt whose records Next accepts
	delivered int64 // records handed to the consumer
	wireBytes int64
	state     string // running | done | failed
}

var errCanceled = errors.New("dist: query canceled")

// remoteSource is the receiving end of one exchange cut: a core.Iterator
// standing where the exchange node stood, pulling record streams that
// producer fragments on remote workers push over the data plane.
//
// One controller goroutine per producer owns that fragment's lifecycle —
// dispatch, await the dialed-in connection, decode frames, and on worker
// loss re-dispatch with Skip set to the records already delivered. The
// delivered count and the accepted-attempt number share one mutex, so a
// retry's skip value is exact: once the controller bumps the attempt,
// Next drops any stale buffered records instead of counting them.
type remoteSource struct {
	c         *Coordinator
	req       BindRequest
	env       *core.Env
	path      string
	producers int
	resumable bool
	schema    *record.Schema
	done      <-chan struct{}

	w      *core.ResultWriter
	items  chan srcItem
	cancel chan struct{}
	wg     sync.WaitGroup
	closed sync.Once

	mu       sync.Mutex
	frags    []*fragState
	conns    map[net.Conn]struct{}
	firstErr error

	eosLeft  int
	pend     srcItem
	pendIdx  int
	havePend bool
}

func (s *remoteSource) Schema() *record.Schema { return s.schema }

func (s *remoteSource) Open() error {
	w, err := s.env.NewResultWriter("dist", s.schema)
	if err != nil {
		return err
	}
	s.w = w
	s.items = make(chan srcItem, 8)
	s.cancel = make(chan struct{})
	s.conns = map[net.Conn]struct{}{}
	s.eosLeft = s.producers
	s.frags = make([]*fragState, s.producers)
	for g := 0; g < s.producers; g++ {
		f := &fragState{state: "running"}
		s.frags[g] = f
		g := g
		s.req.Summary.addFrag(func() plan.FragmentStat {
			s.mu.Lock()
			defer s.mu.Unlock()
			return plan.FragmentStat{
				Path:      s.path,
				Producer:  g,
				Worker:    f.worker,
				Attempts:  f.attempt,
				Records:   f.delivered,
				WireBytes: f.wireBytes,
				State:     f.state,
			}
		})
		s.wg.Add(1)
		go s.runProducer(g)
	}
	return nil
}

func (s *remoteSource) Next() (core.Rec, bool, error) {
	for {
		if s.havePend && s.pendIdx < len(s.pend.recs) {
			data := s.pend.recs[s.pendIdx]
			s.pendIdx++
			s.mu.Lock()
			f := s.frags[s.pend.g]
			if f.attempt != s.pend.attempt {
				// The controller moved on to a replacement attempt;
				// everything left in this bundle will be re-delivered by
				// the replay, so it must not reach the consumer twice.
				s.havePend = false
				s.mu.Unlock()
				continue
			}
			f.delivered++
			s.mu.Unlock()
			rec, err := s.w.WriteBytes(data)
			if err != nil {
				return core.Rec{}, false, err
			}
			return rec, true, nil
		}
		s.havePend = false
		if s.eosLeft == 0 {
			s.mu.Lock()
			err := s.firstErr
			s.mu.Unlock()
			if err != nil {
				return core.Rec{}, false, err
			}
			return core.Rec{}, false, nil
		}
		var item srcItem
		select {
		case item = <-s.items:
		case <-s.done:
			return core.Rec{}, false, errCanceled
		}
		switch {
		case item.err != nil:
			s.mu.Lock()
			if s.firstErr == nil {
				s.firstErr = item.err
			}
			err := s.firstErr
			s.mu.Unlock()
			s.eosLeft--
			return core.Rec{}, false, err
		case item.eos:
			s.eosLeft--
		default:
			s.pend = item
			s.pendIdx = 0
			s.havePend = true
		}
	}
}

func (s *remoteSource) Close() error {
	s.closed.Do(func() {
		close(s.cancel)
		// Sever live data-plane reads: a controller blocked in
		// ReadWireFrame on a healthy-but-slow worker would otherwise
		// hold up Close indefinitely.
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	if s.w != nil {
		err := s.w.Dispose()
		s.w = nil
		return err
	}
	return nil
}

// push hands an item to Next, giving up when the query is closed or
// canceled so controllers never block on an abandoned channel.
func (s *remoteSource) push(item srcItem) bool {
	select {
	case s.items <- item:
		return true
	case <-s.cancel:
		return false
	case <-s.done:
		return false
	}
}

// beginAttempt moves producer g's accepted attempt forward and returns
// the exact number of records already delivered — the Skip value a
// replacement dispatch must carry. Holding the same lock as Next's
// delivered++ makes the count final: no attempt-(n-1) record is counted
// after this returns.
func (s *remoteSource) beginAttempt(g, attempt int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.frags[g]
	f.attempt = attempt
	return f.delivered
}

func (s *remoteSource) setWorker(g int, addr string) {
	s.mu.Lock()
	s.frags[g].worker = addr
	s.mu.Unlock()
}

func (s *remoteSource) setState(g int, state string) {
	s.mu.Lock()
	s.frags[g].state = state
	s.mu.Unlock()
}

// trackConn registers a routed conn for Close to sever; if the source
// is already closing, the conn is closed immediately.
func (s *remoteSource) trackConn(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isCanceled() {
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
}

func (s *remoteSource) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *remoteSource) isCanceled() bool {
	select {
	case <-s.cancel:
		return true
	default:
	}
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// fail reports producer g's permanent failure into the stream.
func (s *remoteSource) fail(g int, err error) {
	s.setState(g, "failed")
	s.c.m.failures.Inc()
	s.push(srcItem{g: g, err: err})
}

// runProducer is producer g's controller: it drives dispatch attempts
// until one streams to EOS or the retry budget is spent.
func (s *remoteSource) runProducer(g int) {
	defer s.wg.Done()
	var lastWorker string
	var lastErr error
	max := s.c.cfg.MaxAttempts
	for attempt := 1; attempt <= max; attempt++ {
		if s.isCanceled() {
			s.setState(g, "failed")
			return
		}
		skip := s.beginAttempt(g, attempt)
		if attempt > 1 {
			if !s.resumable && skip > 0 {
				s.fail(g, fmt.Errorf("dist: fragment %s producer %d: worker lost mid-stream and fragment is not resumable (nested exchange): %v",
					s.path, g, lastErr))
				return
			}
			s.c.m.retries.Inc()
			s.req.Summary.bumpRetries()
			s.c.cfg.Log.Printf("dist: query %s fragment %s/%d: retrying (attempt %d, skip %d): %v",
				s.req.QueryID, s.path, g, attempt, skip, lastErr)
		}
		err, retryable := s.runAttempt(g, attempt, skip, &lastWorker)
		if err == nil {
			s.setState(g, "done")
			return
		}
		if errors.Is(err, errCanceled) {
			s.setState(g, "failed")
			return
		}
		if !retryable {
			s.fail(g, err)
			return
		}
		lastErr = err
	}
	s.fail(g, fmt.Errorf("dist: fragment %s producer %d: lost after %d attempts: %v", s.path, g, max, lastErr))
}

// runAttempt runs one dispatch attempt end to end. A nil error means the
// fragment streamed to EOS. retryable marks transport-shaped failures
// (worker loss) as eligible for another attempt.
func (s *remoteSource) runAttempt(g, attempt int, skip int64, lastWorker *string) (err error, retryable bool) {
	key := routeKey(s.req.QueryID, s.path, g, attempt)
	ch := s.c.expectConn(key)
	w := s.c.pickWorker(*lastWorker)
	if w == nil {
		s.c.forgetConn(key)
		return fmt.Errorf("dist: fragment %s producer %d: no live workers", s.path, g), false
	}
	spec := FragmentSpec{
		QueryID:        s.req.QueryID,
		Plan:           s.req.Source,
		CatalogVersion: s.req.CatalogVersion,
		Path:           s.path,
		Producer:       g,
		Attempt:        attempt,
		Skip:           skip,
		BatchSize:      s.req.BatchSize,
		Endpoint:       s.c.cfg.AdvertiseAddr,
	}
	if derr := s.c.dispatch(w.addr, spec); derr != nil {
		s.c.forgetConn(key)
		var rej *dispatchRejected
		if errors.As(derr, &rej) {
			return derr, false
		}
		s.c.markLost(w.addr)
		return derr, true
	}
	*lastWorker = w.addr
	s.setWorker(g, w.addr)

	timer := time.NewTimer(s.c.cfg.ConnWait)
	defer timer.Stop()
	var rc *routedConn
	select {
	case rc = <-ch:
	case <-timer.C:
		s.c.forgetConn(key)
		s.c.markLost(w.addr)
		return fmt.Errorf("dist: fragment %s producer %d: worker %s accepted but never dialed in", s.path, g, w.addr), true
	case <-s.cancel:
		s.c.forgetConn(key)
		return errCanceled, false
	case <-s.done:
		s.c.forgetConn(key)
		return errCanceled, false
	}
	defer rc.conn.Close()
	s.trackConn(rc.conn)
	defer s.untrackConn(rc.conn)

	var f core.WireFrame
	for {
		if rerr := core.ReadWireFrame(rc.br, &f, 0); rerr != nil {
			if s.isCanceled() {
				return errCanceled, false
			}
			s.c.markLost(w.addr)
			return fmt.Errorf("dist: fragment %s producer %d: connection to %s lost before EOS: %v", s.path, g, w.addr, rerr), true
		}
		payload := 0
		for _, r := range f.Recs {
			payload += 4 + len(r)
		}
		payload += len(f.Msg)
		s.accountWire(g, payload)
		if ferr := f.Err(); ferr != nil {
			return fmt.Errorf("dist: fragment %s producer %d on %s: %w", s.path, g, w.addr, ferr), false
		}
		if len(f.Recs) > 0 {
			// Copy out of the frame's arena: the next ReadWireFrame
			// overwrites it, and the item outlives this loop iteration.
			total := 0
			for _, r := range f.Recs {
				total += len(r)
			}
			buf := make([]byte, 0, total)
			recs := make([][]byte, 0, len(f.Recs))
			for _, r := range f.Recs {
				off := len(buf)
				buf = append(buf, r...)
				recs = append(recs, buf[off:len(buf):len(buf)])
			}
			if !s.push(srcItem{g: g, attempt: attempt, recs: recs}) {
				return errCanceled, false
			}
		}
		if f.EOS() {
			if !s.push(srcItem{g: g, attempt: attempt, eos: true}) {
				return errCanceled, false
			}
			return nil, false
		}
	}
}

// accountWire attributes one received frame's payload bytes everywhere
// they are owed: the fragment's stats, the query's resource meter and
// trailer summary, and the process-wide metric family.
func (s *remoteSource) accountWire(g, payload int) {
	s.mu.Lock()
	s.frags[g].wireBytes += int64(payload)
	s.mu.Unlock()
	s.req.Meter.WireRecv(payload)
	s.req.Summary.bumpWire(int64(payload))
	s.c.m.wireRecv.Add(int64(payload))
}

func (s *Summary) bumpWire(n int64) {
	if s == nil {
		return
	}
	s.WireRecv.Add(n)
}

func (s *Summary) bumpRetries() {
	if s == nil {
		return
	}
	s.Retries.Add(1)
}
