package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// CoordinatorConfig configures the fragment-shipping coordinator.
type CoordinatorConfig struct {
	// DataAddr is the TCP address the data plane listens on (default
	// "127.0.0.1:0"). Workers dial it to deliver fragment streams.
	DataAddr string
	// AdvertiseAddr is the data-plane address put into dispatched
	// fragment specs; defaults to the listener's own address. Set it when
	// workers reach the coordinator through a different route.
	AdvertiseAddr string
	// MaxAttempts bounds dispatch attempts per fragment, first try
	// included (default 3).
	MaxAttempts int
	// HeartbeatEvery is the worker health-probe interval (default 2s).
	HeartbeatEvery time.Duration
	// ConnWait bounds how long a dispatched fragment may take to dial in
	// before the attempt counts as lost (default 10s).
	ConnWait time.Duration
	// Metrics, when non-nil, receives the volcano_dist_* families.
	Metrics *metrics.Registry
	// Log receives dispatch and worker-loss lines (nil = log.Default).
	Log *log.Logger
}

// Coordinator owns the worker registry and the data plane. It does not
// build plans itself: the serving layer hands each query's build a
// RemoteBinder (see Coordinator.Binder) and the coordinator takes over
// every distributable exchange cut the build reaches.
type Coordinator struct {
	cfg CoordinatorConfig
	m   *distMetrics
	ln  net.Listener

	mu      sync.Mutex
	workers map[string]*workerState
	order   []string // registration order, for round-robin
	next    int      // round-robin cursor
	routes  map[string]chan *routedConn
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type workerState struct {
	addr      string
	live      bool
	fragments int64
	failures  int64
}

// routedConn is an accepted data-plane connection plus its buffered
// reader — the hello was read through the reader, and the frames behind
// it may already be buffered there, so both halves travel together.
type routedConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewCoordinator opens the data plane and starts the heartbeat loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Second
	}
	if cfg.ConnWait <= 0 {
		cfg.ConnWait = 10 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	ln, err := net.Listen("tcp", cfg.DataAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: data plane: %w", err)
	}
	if cfg.AdvertiseAddr == "" {
		cfg.AdvertiseAddr = ln.Addr().String()
	}
	c := &Coordinator{
		cfg:     cfg,
		m:       newDistMetrics(cfg.Metrics),
		ln:      ln,
		workers: map[string]*workerState{},
		routes:  map[string]chan *routedConn{},
		stop:    make(chan struct{}),
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.heartbeatLoop()
	return c, nil
}

// DataAddr returns the data plane's listen address.
func (c *Coordinator) DataAddr() string { return c.ln.Addr().String() }

// Close stops the heartbeat loop and the data plane. In-flight queries
// see their pending routes fail.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	_ = c.ln.Close()
	c.wg.Wait()
}

// Register adds (or revives) a worker by dispatch address. Workers
// re-register periodically; that is idempotent.
func (c *Coordinator) Register(addr string) error {
	if addr == "" {
		return fmt.Errorf("dist: register: empty worker address")
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("dist: register: bad worker address %q: %w", addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[addr]
	if !ok {
		w = &workerState{addr: addr}
		c.workers[addr] = w
		c.order = append(c.order, addr)
		c.m.workers.Set(int64(len(c.workers)))
	}
	if !w.live {
		w.live = true
		c.updateLiveLocked()
	}
	return nil
}

// Workers snapshots the registry for /debug/workers.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{Addr: w.addr, Live: w.live, Fragments: w.fragments, Failures: w.failures})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// LiveWorkers reports how many workers are currently passing heartbeats.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.live {
			n++
		}
	}
	return n
}

func (c *Coordinator) updateLiveLocked() {
	n := 0
	for _, w := range c.workers {
		if w.live {
			n++
		}
	}
	c.m.workersLive.Set(int64(n))
}

// pickWorker returns the next live worker round-robin, preferring any
// worker other than avoid (the one that just failed the fragment).
func (c *Coordinator) pickWorker(avoid string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fallback *workerState
	for i := 0; i < len(c.order); i++ {
		w := c.workers[c.order[c.next%len(c.order)]]
		c.next++
		if !w.live {
			continue
		}
		if w.addr == avoid {
			fallback = w
			continue
		}
		return w
	}
	return fallback
}

// markLost records a dispatch failure against a worker and, because a
// lost fragment is strong evidence, takes the worker out of rotation
// until a heartbeat or re-registration revives it.
func (c *Coordinator) markLost(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		w.failures++
		if w.live {
			w.live = false
			c.updateLiveLocked()
		}
	}
}

// heartbeatLoop probes every registered worker's /healthz.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	// The probe deadline is floored well above the interval's lower
	// bounds: a worker busy streaming fragments answers /healthz slowly,
	// and a slow answer must not read as death.
	probeTimeout := c.cfg.HeartbeatEvery
	if probeTimeout < 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	client := &http.Client{Timeout: probeTimeout}
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		addrs := append([]string(nil), c.order...)
		c.mu.Unlock()
		for _, addr := range addrs {
			ok := false
			resp, err := client.Get("http://" + addr + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
			if !ok {
				c.m.heartbeatKO.Inc()
			}
			c.mu.Lock()
			if w := c.workers[addr]; w != nil && w.live != ok {
				w.live = ok
				c.updateLiveLocked()
				if !ok {
					c.cfg.Log.Printf("dist: worker %s failed heartbeat", addr)
				}
			}
			c.mu.Unlock()
		}
	}
}

// routeKey identifies one expected fragment stream.
func routeKey(queryID, path string, producer, attempt int) string {
	return fmt.Sprintf("%s|%s|%d|%d", queryID, path, producer, attempt)
}

// expectConn registers interest in one fragment stream before its
// dispatch, so the arrival cannot race the registration.
func (c *Coordinator) expectConn(key string) chan *routedConn {
	ch := make(chan *routedConn, 1)
	c.mu.Lock()
	c.routes[key] = ch
	c.mu.Unlock()
	return ch
}

// forgetConn withdraws interest; a conn already delivered is closed.
func (c *Coordinator) forgetConn(key string) {
	c.mu.Lock()
	ch := c.routes[key]
	delete(c.routes, key)
	c.mu.Unlock()
	if ch != nil {
		select {
		case rc := <-ch:
			_ = rc.conn.Close()
		default:
		}
	}
}

// acceptLoop routes inbound data-plane connections by their hello frame.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func(conn net.Conn) {
			defer c.wg.Done()
			c.routeConn(conn)
		}(conn)
	}
}

// dataRcvBuf caps the kernel receive buffer of each data-plane
// connection. TCP autotuning would otherwise grow it toward the system
// maximum (megabytes per connection), which both unbounds the
// coordinator's memory per in-flight fragment and lets a worker park an
// entire fragment stream in kernel buffers — flow control exists so
// producers run at most this far ahead of the consuming query, exactly
// like the in-process exchange's bounded queue depth.
const dataRcvBuf = 256 << 10

func (c *Coordinator) routeConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(dataRcvBuf)
	}
	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.ConnWait))
	br := bufio.NewReaderSize(conn, 64<<10)
	var f core.WireFrame
	if err := core.ReadWireFrame(br, &f, 0); err != nil || f.Flags&core.WireFlagHello == 0 {
		c.m.helloRej.Inc()
		_ = conn.Close()
		return
	}
	var h Hello
	if err := json.Unmarshal(f.Msg, &h); err != nil {
		c.m.helloRej.Inc()
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	key := routeKey(h.QueryID, h.Path, h.Producer, h.Attempt)
	c.mu.Lock()
	ch := c.routes[key]
	delete(c.routes, key)
	c.mu.Unlock()
	if ch == nil {
		// Nobody is waiting: a stale attempt (already retried) or a
		// worker bug. Either way the stream has no consumer.
		c.m.helloRej.Inc()
		_ = conn.Close()
		return
	}
	ch <- &routedConn{conn: conn, br: br}
}

// dispatch POSTs one fragment spec to a worker. A transport failure or
// non-2xx acknowledgment is returned; retryability is the caller's call.
func (c *Coordinator) dispatch(worker string, spec FragmentSpec) error {
	body, _ := json.Marshal(spec)
	client := &http.Client{Timeout: c.cfg.ConnWait}
	resp, err := client.Post("http://"+worker+"/fragment", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: dispatch to %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		if resp.StatusCode >= 500 {
			// The worker is unwell (stopping, overloaded), not refusing
			// this fragment in particular: worker-loss shaped, retryable
			// elsewhere.
			return fmt.Errorf("dist: worker %s unavailable (%d): %s", worker, resp.StatusCode, string(bytes.TrimSpace(msg)))
		}
		return &dispatchRejected{worker: worker, status: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	io.Copy(io.Discard, resp.Body)
	c.m.dispatched.Inc()
	c.mu.Lock()
	if w := c.workers[worker]; w != nil {
		w.fragments++
	}
	c.mu.Unlock()
	return nil
}

// dispatchRejected is a worker's synchronous refusal (4xx): the
// worker is alive and said no, so retrying the same spec elsewhere is
// pointless when the refusal is deterministic (bad plan, catalog skew).
type dispatchRejected struct {
	worker string
	status int
	msg    string
}

func (e *dispatchRejected) Error() string {
	return fmt.Sprintf("dist: worker %s rejected fragment (%d): %s", e.worker, e.status, e.msg)
}
