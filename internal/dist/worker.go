package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plan"
)

// WorkerConfig configures a fragment worker.
type WorkerConfig struct {
	// Env and Catalog are the worker's execution environment — its own
	// buffer pool over (a replica of) the same volume the coordinator
	// serves. Both required.
	Env     *core.Env
	Catalog plan.Catalog
	// CatalogVersion is compared against each dispatch; a mismatch is
	// rejected with 409 (the coordinator planned against different data).
	// Empty disables the check.
	CatalogVersion string
	// Metrics, when non-nil, receives the worker's volcano_dist_*
	// families.
	Metrics *metrics.Registry
	// DialTimeout bounds the data-plane dial back to the coordinator
	// (default 5s).
	DialTimeout time.Duration
	// Log receives one line per fragment outcome (nil = log.Default).
	Log *log.Logger
}

// Worker executes plan fragments on behalf of a coordinator. Mount
// Handler on an HTTP listener and register the address with the
// coordinator; dispatches arrive as POST /fragment and their record
// streams leave over raw TCP toward the coordinator's data plane.
type Worker struct {
	cfg WorkerConfig
	m   *workerMetrics
	mux *http.ServeMux

	mu      sync.Mutex
	stopped bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// NewWorker validates the configuration.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Env == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("dist: WorkerConfig.Env and Catalog are required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	w := &Worker{
		cfg:   cfg,
		m:     newWorkerMetrics(cfg.Metrics),
		mux:   http.NewServeMux(),
		conns: map[net.Conn]struct{}{},
	}
	w.mux.HandleFunc("/fragment", w.handleFragment)
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	metrics.Mount(w.mux, cfg.Metrics)
	return w, nil
}

// Handler returns the worker's HTTP handler (POST /fragment,
// GET /healthz, GET /metrics).
func (w *Worker) Handler() http.Handler { return w.mux }

// Stop makes the worker refuse new fragments, severs every active
// data-plane connection mid-stream — exactly what a process kill does to
// the coordinator, which is the point: tests exercise worker loss
// through it — and waits for fragment goroutines to unwind.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.stopped = true
	for c := range w.conns {
		_ = c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	stopped := w.stopped
	w.mu.Unlock()
	if stopped {
		http.Error(rw, "stopping", http.StatusServiceUnavailable)
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ok")
}

// handleFragment validates a dispatch and runs it. The HTTP response
// only acknowledges acceptance — the fragment's actual outcome travels
// on the data plane (an EOS or error frame), where the coordinator is
// already listening.
func (w *Worker) handleFragment(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		http.Error(rw, "POST a fragment spec", http.StatusMethodNotAllowed)
		return
	}
	var spec FragmentSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		w.m.rejected.Inc()
		http.Error(rw, fmt.Sprintf("dist: bad fragment spec: %v", err), http.StatusBadRequest)
		return
	}
	if spec.Endpoint == "" || spec.Producer < 0 {
		w.m.rejected.Inc()
		http.Error(rw, "dist: fragment spec missing endpoint or producer", http.StatusBadRequest)
		return
	}
	if w.cfg.CatalogVersion != "" && spec.CatalogVersion != "" && spec.CatalogVersion != w.cfg.CatalogVersion {
		w.m.rejected.Inc()
		http.Error(rw, fmt.Sprintf("dist: catalog version mismatch: coordinator %q, worker %q",
			spec.CatalogVersion, w.cfg.CatalogVersion), http.StatusConflict)
		return
	}
	// Compile before accepting: a plan that cannot parse is the
	// coordinator's bug and deserves a synchronous 400, not a dangling
	// data-plane wait.
	tpl, err := plan.Compile(spec.Plan)
	if err != nil {
		w.m.rejected.Inc()
		http.Error(rw, fmt.Sprintf("dist: compile: %v", err), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		w.m.rejected.Inc()
		http.Error(rw, "dist: worker stopping", http.StatusServiceUnavailable)
		return
	}
	w.wg.Add(1)
	w.mu.Unlock()
	go func() {
		defer w.wg.Done()
		w.runFragment(tpl, spec)
	}()
	rw.WriteHeader(http.StatusAccepted)
}

// track registers a live data-plane connection for Stop to sever;
// returns false when the worker is already stopping.
func (w *Worker) track(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		return false
	}
	w.conns[c] = struct{}{}
	return true
}

func (w *Worker) untrack(c net.Conn) {
	w.mu.Lock()
	delete(w.conns, c)
	w.mu.Unlock()
}

// runFragment executes one dispatched fragment: dial the coordinator's
// data plane, identify the stream with a hello frame, build the producer
// subtree, and stream its records — skipping the first Skip on a
// skip-replay resume. Build and execution errors travel back as an
// error-EOS frame; transport errors just sever the stream (the
// coordinator treats a missing EOS as worker loss).
func (w *Worker) runFragment(tpl *plan.Template, spec FragmentSpec) {
	w.m.active.Inc()
	defer w.m.active.Dec()
	conn, err := net.DialTimeout("tcp", spec.Endpoint, w.cfg.DialTimeout)
	if err != nil {
		w.m.failed.Inc()
		w.cfg.Log.Printf("dist: worker: query %s fragment %s/%d attempt %d: dial %s: %v",
			spec.QueryID, spec.Path, spec.Producer, spec.Attempt, spec.Endpoint, err)
		return
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Cap the kernel send buffer: together with the coordinator's
		// capped receive buffer this bounds how far a fragment stream can
		// run ahead of the consuming query — the wire path's transmit
		// window, mirroring the in-process exchange's bounded queue.
		_ = tc.SetWriteBuffer(64 << 10)
	}
	if !w.track(conn) {
		return
	}
	defer w.untrack(conn)

	s := core.NewWireSender(conn, 0)
	if err := s.Hello(Hello{
		QueryID:  spec.QueryID,
		Path:     spec.Path,
		Producer: spec.Producer,
		Attempt:  spec.Attempt,
	}.encode()); err != nil {
		w.m.failed.Inc()
		return
	}
	streamErr := w.streamFragment(s, tpl, spec)
	frames, bytes := s.Stats()
	_ = frames
	w.m.wireSent.Add(bytes)
	if streamErr != nil {
		w.m.failed.Inc()
		w.cfg.Log.Printf("dist: worker: query %s fragment %s/%d attempt %d: %v",
			spec.QueryID, spec.Path, spec.Producer, spec.Attempt, streamErr)
		return
	}
	w.m.accepted.Inc()
}

// streamFragment builds and drains the producer subtree into the
// sender. The returned error is what went wrong locally; whatever could
// be reported to the coordinator already has been (as an error-EOS).
func (w *Worker) streamFragment(s *core.WireSender, tpl *plan.Template, spec FragmentSpec) error {
	fail := func(err error) error {
		// Best effort: the coordinator would otherwise wait out its
		// frame timeout.
		_ = s.CloseEOS(err.Error())
		return err
	}
	it, err := plan.BuildFragmentProducer(w.cfg.Env, w.cfg.Catalog, tpl.Root(), spec.Path, spec.Producer,
		plan.BuildOptions{BatchSize: spec.BatchSize, QueryID: spec.QueryID, Metrics: w.cfg.Metrics})
	if err != nil {
		return fail(fmt.Errorf("build: %w", err))
	}
	if err := it.Open(); err != nil {
		return fail(fmt.Errorf("open: %w", err))
	}
	skip := spec.Skip
	emit := func(r core.Rec) error {
		if skip > 0 {
			skip--
			r.Unfix()
			return nil
		}
		err := s.Add(r.Data)
		r.Unfix()
		return err
	}
	var runErr error
	if spec.BatchSize > 0 {
		src := core.AsBatch(it)
		b := core.NewBatch(spec.BatchSize)
		for {
			if err := src.NextBatch(b); err != nil {
				runErr = err
				break
			}
			if b.Len() == 0 {
				break
			}
			for _, r := range b.Recs() {
				if err := emit(r); err != nil {
					// Transport gone: stop pulling, skip the EOS.
					b.Release()
					_ = it.Close()
					return err
				}
			}
			b.Release()
		}
	} else {
		for {
			r, ok, err := it.Next()
			if err != nil {
				runErr = err
				break
			}
			if !ok {
				break
			}
			if err := emit(r); err != nil {
				_ = it.Close()
				return err
			}
		}
	}
	if cerr := it.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	if runErr != nil {
		_ = s.CloseEOS(runErr.Error())
		return runErr
	}
	return s.CloseEOS("")
}
