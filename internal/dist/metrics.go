package dist

import "repro/internal/metrics"

// distMetrics are the coordinator-side volcano_dist_* instrument
// handles. All nil-safe, following the nil-registry convention.
type distMetrics struct {
	workers     *metrics.Gauge   // registered workers
	workersLive *metrics.Gauge   // workers passing heartbeats
	dispatched  *metrics.Counter // volcano_dist_fragments_dispatched_total
	retries     *metrics.Counter // volcano_dist_fragment_retries_total
	failures    *metrics.Counter // volcano_dist_fragment_failures_total
	heartbeatKO *metrics.Counter // volcano_dist_heartbeat_failures_total
	wireRecv    *metrics.Counter // volcano_dist_wire_bytes_total{direction="recv"}
	helloRej    *metrics.Counter // volcano_dist_hello_rejects_total
}

func newDistMetrics(r *metrics.Registry) *distMetrics {
	return &distMetrics{
		workers: r.Gauge("volcano_dist_workers",
			"Workers registered with the coordinator."),
		workersLive: r.Gauge("volcano_dist_workers_live",
			"Registered workers currently passing heartbeats."),
		dispatched: r.Counter("volcano_dist_fragments_dispatched_total",
			"Plan fragments dispatched to workers, including retries."),
		retries: r.Counter("volcano_dist_fragment_retries_total",
			"Fragment dispatches that were retries after worker loss."),
		failures: r.Counter("volcano_dist_fragment_failures_total",
			"Fragments that failed permanently (attempt budget exhausted or non-resumable)."),
		heartbeatKO: r.Counter("volcano_dist_heartbeat_failures_total",
			"Worker heartbeat probes that failed."),
		wireRecv: r.Counter("volcano_dist_wire_bytes_total",
			"Fragment payload bytes crossing the coordinator's data plane.",
			metrics.Label{Key: "direction", Value: "recv"}),
		helloRej: r.Counter("volcano_dist_hello_rejects_total",
			"Data-plane connections rejected (bad or unexpected hello)."),
	}
}

// workerMetrics are the worker-side volcano_dist_* handles, registered
// on the worker process's own registry.
type workerMetrics struct {
	accepted *metrics.Counter // volcano_dist_worker_fragments_total{outcome="ok"}
	failed   *metrics.Counter // volcano_dist_worker_fragments_total{outcome="error"}
	rejected *metrics.Counter // volcano_dist_worker_fragments_total{outcome="rejected"}
	wireSent *metrics.Counter // volcano_dist_wire_bytes_total{direction="sent"}
	active   *metrics.Gauge   // volcano_dist_worker_active_fragments
}

func newWorkerMetrics(r *metrics.Registry) *workerMetrics {
	const fam = "volcano_dist_worker_fragments_total"
	const help = "Fragments this worker finished, by outcome."
	return &workerMetrics{
		accepted: r.Counter(fam, help, metrics.Label{Key: "outcome", Value: "ok"}),
		failed:   r.Counter(fam, help, metrics.Label{Key: "outcome", Value: "error"}),
		rejected: r.Counter(fam, help, metrics.Label{Key: "outcome", Value: "rejected"}),
		wireSent: r.Counter("volcano_dist_wire_bytes_total",
			"Fragment payload bytes crossing this worker's data plane.",
			metrics.Label{Key: "direction", Value: "sent"}),
		active: r.Gauge("volcano_dist_worker_active_fragments",
			"Fragments currently executing on this worker."),
	}
}
