// Package metrics is the process-wide metrics layer: a dependency-free
// registry of counters, gauges and fixed-bucket latency histograms with
// Prometheus text exposition (version 0.0.4), built so the hooks can stay
// wired into every hot path permanently:
//
//   - Updates are single atomic adds: no locks, no allocations, no time
//     formatting on the update path.
//   - A nil *Registry is the disabled registry. It hands out nil
//     instrument handles whose methods are a nil-check and return, exactly
//     like the nil tracer in internal/trace — instrumented code pays one
//     predictable branch when metrics are off.
//   - Instruments are process-lifetime aggregates (the Prometheus model):
//     a scraper polls GET /metrics while queries run and computes rates
//     and deltas itself. Per-query attribution stays with EXPLAIN ANALYZE;
//     this layer is the always-on view across queries.
//
// Registration is get-or-create: asking twice for the same family and
// label set returns the same instrument, so the parallel instances of an
// operator (or successive benchmark passes) share one time series instead
// of fighting over a name. Callback collectors (SetCounterFunc,
// SetGaugeFunc) read state that a subsystem already maintains — e.g. the
// buffer pool's counters — at scrape time, for zero additional cost on
// the subsystem's own hot path; re-registering a callback replaces it, so
// a fresh pool can take over its families.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name/value pair attached to an instrument.
// Labels distinguish the children of a family, e.g. op="sort" under
// volcano_op_next_seconds.
type Label struct {
	Key, Value string
}

// familyKind discriminates what a family holds.
type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindHistogramFunc
)

// typeName returns the Prometheus TYPE keyword.
func (k familyKind) typeName() string {
	switch k {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram, kindHistogramFunc:
		return "histogram"
	default:
		return "counter"
	}
}

// child is one instrument of a family, identified by its rendered labels.
type child struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one metric name: help text, type, and either children
// (instruments) or a scrape-time callback.
type family struct {
	name, help string
	kind       familyKind
	fn         func() float64
	hfn        func() HistogramSnapshot
	children   map[string]*child
}

// Registry holds the families. A nil Registry is valid and disabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// lookup returns the family, creating it if absent; panics on a type
// conflict (a programmer error — metric names are static).
func (r *Registry) lookup(name, help string, kind familyKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: map[string]*child{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind.typeName(), f.kind.typeName()))
	}
	return f
}

// Counter returns the counter with the given name and labels, creating
// family and child as needed. The nil registry returns a nil handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	c := f.child(labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge returns the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	c := f.child(labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// Histogram returns the histogram with the given name, labels and bucket
// bounds (nil buckets = DefLatencyBuckets). Asking again for an existing
// child returns it regardless of the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	c := f.child(labels)
	if c.hist == nil {
		c.hist = NewHistogram(buckets)
	}
	return c.hist
}

// SetCounterFunc registers (or replaces) a callback-valued counter: the
// function is invoked at scrape time and must return a monotonically
// non-decreasing value. Use it to expose counters a subsystem already
// maintains without double counting on its hot path.
func (r *Registry) SetCounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounterFunc)
	f.fn = fn
}

// SetGaugeFunc registers (or replaces) a callback-valued gauge.
func (r *Registry) SetGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGaugeFunc)
	f.fn = fn
}

// SetHistogramFunc registers (or replaces) a callback-valued histogram:
// the function is invoked at scrape time and must return a snapshot with
// non-decreasing cumulative contents. Use it for distributions another
// subsystem already maintains — e.g. the runtime's GC pause histogram —
// without mirroring every observation into a registry Histogram.
func (r *Registry) SetHistogramFunc(name, help string, fn func() HistogramSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogramFunc)
	f.hfn = fn
}

// child returns the instrument slot for a label set, creating it if new.
func (f *family) child(labels []Label) *child {
	key := renderLabels(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
	}
	return c
}

// renderLabels produces the canonical {k="v",...} form, keys sorted, or
// "" for no labels. The rendered string doubles as the child map key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Counter is a monotonically increasing counter. The nil handle (from a
// nil registry) discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc increments by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for the nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// formatValue renders a sample value: integers without exponent, other
// floats in Go's shortest round-trip form (matches Prometheus output).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
