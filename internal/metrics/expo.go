package metrics

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition
// format, version 0.0.4: families sorted by name, children sorted by
// label set, histograms as cumulative _bucket/_sum/_count series with
// bounds in seconds. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot everything mutable — the family list, each family's fn and
	// child set — under the lock, then render without it so a slow writer
	// never blocks registration and a scrape never races a concurrent
	// Counter/Histogram/SetGaugeFunc call. Children are immutable once
	// created, instrument reads are atomic, and callbacks are invoked
	// outside the lock, so a callback may itself use the registry.
	type famSnap struct {
		name, help string
		kind       familyKind
		fn         func() float64
		hfn        func() HistogramSnapshot
		kids       []*child
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		s := famSnap{name: f.name, help: f.help, kind: f.kind, fn: f.fn, hfn: f.hfn}
		s.kids = make([]*child, 0, len(f.children))
		for _, c := range f.children {
			s.kids = append(s.kids, c)
		}
		fams = append(fams, s)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.typeName())
		bw.WriteByte('\n')
		if f.kind == kindCounterFunc || f.kind == kindGaugeFunc {
			writeSample(bw, f.name, "", formatValue(f.fn()))
			continue
		}
		if f.kind == kindHistogramFunc {
			writeHistogram(bw, f.name, "", f.hfn())
			continue
		}
		sort.Slice(f.kids, func(i, j int) bool { return f.kids[i].labels < f.kids[j].labels })
		for _, c := range f.kids {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, c.labels, strconv.FormatInt(c.counter.Value(), 10))
			case kindGauge:
				writeSample(bw, f.name, c.labels, strconv.FormatInt(c.gauge.Value(), 10))
			case kindHistogram:
				writeHistogram(bw, f.name, c.labels, c.hist.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeSample emits `name{labels} value\n`.
func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket series, sum and count.
// Internal nanoseconds become seconds on the wire, the Prometheus
// convention for `*_seconds` histograms.
func writeHistogram(bw *bufio.Writer, name, labels string, s HistogramSnapshot) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		le := strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
		writeSample(bw, name+"_bucket", addLabel(labels, "le", le), strconv.FormatInt(cum, 10))
	}
	cum += s.Counts[len(s.Bounds)]
	writeSample(bw, name+"_bucket", addLabel(labels, "le", "+Inf"), strconv.FormatInt(cum, 10))
	writeSample(bw, name+"_sum", labels, formatValue(float64(s.SumNanos)/1e9))
	writeSample(bw, name+"_count", labels, strconv.FormatInt(cum, 10))
}

// addLabel appends one label pair to an already-rendered label string.
func addLabel(labels, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(h string) string {
	var out []byte
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}
