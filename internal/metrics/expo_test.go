package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildGoldenRegistry populates one instrument of every kind with
// deterministic values so the exposition output is byte-stable.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("volcano_buffer_hits_total", "Buffer pool fix requests satisfied from memory.").Add(1047)
	r.Counter("volcano_buffer_misses_total", "Buffer pool fix requests that read from the device.").Add(17)
	r.Counter("volcano_exchange_packets_total", "Packets pushed through exchange ports.").Add(32)
	g := r.Gauge("volcano_buffer_pinned_frames", "Frames currently pinned.")
	g.Set(12)
	r.Gauge("volcano_exchange_producers_live", "Producer goroutines currently running.").Set(4)
	r.SetCounterFunc("volcano_device_page_reads_total", "Pages read from devices.", func() float64 { return 128 })
	r.SetGaugeFunc("volcano_buffer_frames", "Total frames in the buffer pool.", func() float64 { return 1024 })

	h := r.Histogram("volcano_op_next_seconds", "Operator Next call latency.",
		[]time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond},
		Label{"op", "sort"})
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Nanosecond)
	}
	h.Observe(50 * time.Microsecond)
	h.Observe(time.Second) // overflow
	h2 := r.Histogram("volcano_op_next_seconds", "Operator Next call latency.",
		[]time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond},
		Label{"op", "scan"})
	h2.Observe(2 * time.Microsecond)
	return r
}

// TestExpositionGolden pins the Prometheus text output byte-for-byte.
// Regenerate with: go test ./internal/metrics -run Golden -update
func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The golden output must itself be valid exposition format.
	fams, err := ParseText(strings.NewReader(got))
	if err != nil {
		t.Fatalf("golden output does not parse: %v", err)
	}
	if fams["volcano_op_next_seconds"] == 0 {
		t.Fatal("histogram family missing from parse result")
	}
}

func TestExpositionDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildGoldenRegistry().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildGoldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition output is not deterministic across identical registries")
	}
}

func TestHistogramExpositionShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.001"} 1`,
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_sum 2.0005",
		"h_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
