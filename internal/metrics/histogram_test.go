package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond})
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Nanosecond) // all in bucket 0
	}
	s := h.Snapshot()
	if s.Count() != 100 || s.Counts[0] != 100 {
		t.Fatalf("counts = %v, want all 100 in bucket 0", s.Counts)
	}
	// Median of a uniform fill of (0, 1µs] interpolates to ~500ns.
	if q := s.Quantile(0.5); q < 400*time.Nanosecond || q > 600*time.Nanosecond {
		t.Fatalf("p50 = %v, want ~500ns", q)
	}
	if m := s.Mean(); m != 500*time.Nanosecond {
		t.Fatalf("mean = %v, want 500ns", m)
	}

	// Overflow saturates at the last bound.
	h.Observe(time.Second)
	s = h.Snapshot()
	if s.Counts[3] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[3])
	}
	if q := s.Quantile(1); q != 100*time.Microsecond {
		t.Fatalf("p100 with overflow = %v, want saturation at 100µs", q)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("nil histogram must snapshot empty")
	}
	if got := NewHistogram(nil).Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestHistogramEmptyBucketSlice pins the fix for a constructor hole: an
// empty non-nil bucket slice used to build a zero-bound histogram whose
// Quantile indexed Bounds[-1] after the first Observe.
func TestHistogramEmptyBucketSlice(t *testing.T) {
	h := NewHistogram([]time.Duration{})
	if len(h.bounds) != len(DefLatencyBuckets) {
		t.Fatalf("empty bucket slice must fall back to defaults, got %d bounds", len(h.bounds))
	}
	h.Observe(time.Millisecond)
	if got := h.Snapshot().Quantile(0.99); got <= 0 {
		t.Fatalf("quantile after observe = %v, want > 0", got)
	}
	// A hand-built snapshot with counts but no bounds must not panic.
	s := HistogramSnapshot{Counts: []int64{3}, SumNanos: 9}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("boundless snapshot quantile = %v, want 0", got)
	}
}

func TestHistogramNegativeClampedToZero(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.SumNanos != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bad := range [][]time.Duration{
		{0, time.Second},
		{time.Second, time.Second},
		{2 * time.Second, time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v must panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// TestHistogramConcurrentUpdates drives one histogram from many
// goroutines; under -race this proves Observe and Snapshot are safe to
// run concurrently, and the final counts prove no update was lost.
func TestHistogramConcurrentUpdates(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(int64(g))
	}
	// Snapshot concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Quantile(0.95)
		}
	}()
	wg.Wait()
	if n := h.Snapshot().Count(); n != goroutines*per {
		t.Fatalf("lost observations: %d, want %d", n, goroutines*per)
	}
}

// TestHistogramMergeProperty: for any two sequences of observations,
// merging their separate histograms equals one histogram fed the union.
func TestHistogramMergeProperty(t *testing.T) {
	bounds := []time.Duration{time.Microsecond, 100 * time.Microsecond, 10 * time.Millisecond}
	f := func(a, b []uint32) bool {
		ha, hb, hu := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
		for _, v := range a {
			ha.Observe(time.Duration(v))
			hu.Observe(time.Duration(v))
		}
		for _, v := range b {
			hb.Observe(time.Duration(v))
			hu.Observe(time.Duration(v))
		}
		merged := ha.Snapshot()
		if err := merged.Merge(hb.Snapshot()); err != nil {
			return false
		}
		union := hu.Snapshot()
		if merged.SumNanos != union.SumNanos || len(merged.Counts) != len(union.Counts) {
			return false
		}
		for i := range merged.Counts {
			if merged.Counts[i] != union.Counts[i] {
				return false
			}
		}
		// Equal state implies equal derived statistics.
		return merged.Quantile(0.5) == union.Quantile(0.5) &&
			merged.Quantile(0.99) == union.Quantile(0.99) &&
			merged.Mean() == union.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]time.Duration{time.Microsecond}).Snapshot()
	b := NewHistogram([]time.Duration{2 * time.Microsecond}).Snapshot()
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of different bounds must error")
	}
	c := NewHistogram([]time.Duration{time.Microsecond, time.Second}).Snapshot()
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of different bucket counts must error")
	}
}

// TestObserveZeroAlloc pins the hot-path contract: Observe allocates
// nothing, enabled or nil.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v per call", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(3 * time.Microsecond) }); n != 0 {
		t.Fatalf("nil Observe allocates %v per call", n)
	}
	c := NewRegistry().Counter("x_total", "x")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per call", n)
	}
	g := NewRegistry().Gauge("g", "g")
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per call", n)
	}
}
