package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("volcano_test_total", "test counter").Add(9)
	r.Histogram("volcano_test_seconds", "test latency", nil).Observe(time.Millisecond)

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if !strings.Contains(body, "volcano_test_total 9") {
		t.Fatalf("counter missing from scrape:\n%s", body)
	}
	if !strings.Contains(body, `volcano_test_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("histogram missing from scrape:\n%s", body)
	}
	if _, err := ParseText(strings.NewReader(body)); err != nil {
		t.Fatalf("live scrape does not parse: %v", err)
	}

	if code, body = get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("pprof index: status %d body %q", code, body)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", code)
	}
}

func TestServeNilRegistry(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(b) != 0 {
		t.Fatalf("nil registry scrape: status %d body %q", resp.StatusCode, b)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", nil); err == nil {
		t.Fatal("expected listen error")
	}
}

func TestServerNilClose(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
