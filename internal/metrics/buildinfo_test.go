package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// TestBuildInfo pins the process-identity surface: ReadBuildInfo always
// reports the toolchain, /buildinfo serves it as JSON, and mounting the
// monitoring surface stamps the registry with a constant-1
// volcano_build_info gauge whose labels carry the same facts.
func TestBuildInfo(t *testing.T) {
	b := ReadBuildInfo()
	if b.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", b.GoVersion, runtime.Version())
	}
	if b.Version == "" {
		t.Error("Version is empty; want a version string or the unknown sentinel")
	}
	if !strings.Contains(b.String(), "go="+runtime.Version()) {
		t.Errorf("String() = %q, want it to name the toolchain", b.String())
	}

	rec := httptest.NewRecorder()
	HandleBuildInfo(rec, httptest.NewRequest("GET", "/buildinfo", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/buildinfo body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body.GoVersion != runtime.Version() || body.Version == "" {
		t.Errorf("/buildinfo = %+v, want go_version %q and a version", body, runtime.Version())
	}

	r := NewRegistry()
	RegisterBuildInfo(r)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if _, err := ParseText(strings.NewReader(doc)); err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, doc)
	}
	if !strings.Contains(doc, "volcano_build_info{") || !strings.Contains(doc, `go="`+runtime.Version()+`"`) {
		t.Errorf("volcano_build_info gauge missing or unlabeled:\n%s", doc)
	}
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "volcano_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("volcano_build_info sample %q, want constant 1", line)
		}
	}
}
