package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the process identity: module version, Go toolchain, and
// the VCS stamp the toolchain embedded (when built from a checkout). It
// is the JSON shape of GET /buildinfo and the label source of the
// volcano_build_info gauge, so a scraper and a human curl read the same
// facts.
type BuildInfo struct {
	Main      string `json:"main,omitempty"` // main module path
	Version   string `json:"version"`        // main module version ("(devel)" from a checkout)
	GoVersion string `json:"go_version"`
	VCSRev    string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"` // dirty working tree at build time
}

// ReadBuildInfo collects the process identity from runtime/debug. It
// never fails: binaries built without module support still report the
// toolchain version.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Main = bi.Main.Path
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.VCSRev = s.Value
		case "vcs.time":
			info.VCSTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form logged at process startup.
func (b BuildInfo) String() string {
	s := fmt.Sprintf("version=%s go=%s", b.Version, b.GoVersion)
	if b.VCSRev != "" {
		rev := b.VCSRev
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " revision=" + rev
		if b.Modified {
			s += "+dirty"
		}
	}
	return s
}

// RegisterBuildInfo exposes the identity as volcano_build_info, the
// Prometheus convention for build metadata: a constant-1 gauge whose
// labels carry the facts, joinable against any other family.
func RegisterBuildInfo(r *Registry) {
	if !r.Enabled() {
		return
	}
	b := ReadBuildInfo()
	r.Gauge("volcano_build_info",
		"Build metadata of the running binary; the value is always 1.",
		Label{Key: "version", Value: b.Version},
		Label{Key: "go", Value: b.GoVersion}).Set(1)
}

// HandleBuildInfo serves GET /buildinfo.
func HandleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(ReadBuildInfo())
}
