package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// ParseText validates a Prometheus text-exposition document (format
// 0.0.4) without external dependencies: metric-name and label-name
// syntax, label-value quoting and escapes, parseable sample values,
// TYPE consistency, and the histogram suffix discipline (_bucket series
// carry `le`, cumulative counts don't decrease, a `+Inf` bucket exists
// and equals _count). It returns per-family sample counts so callers
// can assert coverage, e.g. that a scrape taken mid-query contains the
// buffer, device, btree, exchange and operator families.
//
// The CI smoke job feeds the mid-run scrape artifact through this via a
// test, so the format stays verified end-to-end with no external
// scraper in the loop.
func ParseText(r io.Reader) (map[string]int, error) {
	var (
		nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	)
	families := map[string]string{} // name -> TYPE
	samples := map[string]int{}
	// Histogram bookkeeping, keyed by base name + non-le labels.
	histPrev := map[string]float64{}  // last cumulative bucket value
	histInf := map[string]float64{}   // +Inf bucket value
	histCount := map[string]float64{} // _count value

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !nameRE.MatchString(fields[2]) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE line missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := families[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				families[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line, nameRE, labelRE)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && families[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		typ, known := families[base]
		if !known {
			return nil, fmt.Errorf("line %d: sample %s without TYPE declaration", lineNo, name)
		}
		samples[base]++
		if typ != "histogram" {
			continue
		}
		// Histogram discipline.
		le, rest := splitLE(labels)
		key := base + "|" + rest
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					return nil, fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
			}
			if prev, ok := histPrev[key]; ok && value < prev {
				return nil, fmt.Errorf("line %d: bucket counts decrease for %s", lineNo, base)
			}
			histPrev[key] = value
			if le == "+Inf" {
				histInf[key] = value
			}
		case strings.HasSuffix(name, "_count"):
			histCount[key] = value
		case strings.HasSuffix(name, "_sum"):
			// value already validated as a float
		default:
			return nil, fmt.Errorf("line %d: bare sample %s for histogram %s", lineNo, name, base)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, cnt := range histCount {
		inf, ok := histInf[key]
		if !ok {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if inf != cnt {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, cnt)
		}
	}
	return samples, nil
}

// parseSampleLine splits `name{labels} value` and validates each part.
func parseSampleLine(line string, nameRE, labelRE *regexp.Regexp) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[i+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		if err := validateLabels(labels, labelRE); err != nil {
			return "", "", 0, err
		}
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("sample without value: %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !nameRE.MatchString(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	// A timestamp may follow the value; we only emit values, but accept both.
	valStr := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valStr = rest[:i]
	}
	v, perr := parseFloatLoose(valStr)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", valStr)
	}
	return name, labels, v, nil
}

// parseFloatLoose accepts the exposition-format value forms, including
// +Inf/-Inf/NaN spellings.
func parseFloatLoose(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels walks a rendered label body (`k="v",k2="v2"`) checking
// name syntax, quoting, and escape sequences.
func validateLabels(body string, labelRE *regexp.Regexp) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := body[i : i+eq]
		if !labelRE.MatchString(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		for {
			if i >= len(body) {
				return fmt.Errorf("unterminated label value in %q", body)
			}
			switch body[i] {
			case '\\':
				if i+1 >= len(body) {
					return fmt.Errorf("dangling escape in %q", body)
				}
				switch body[i+1] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("bad escape \\%c in %q", body[i+1], body)
				}
				i += 2
				continue
			case '"':
			default:
				i++
				continue
			}
			break
		}
		i++ // closing quote
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected ',' between labels in %q", body)
			}
			i++
		}
	}
	return nil
}

// splitLE removes the le pair from a rendered label body, returning its
// value and the remaining labels (used to key histogram series).
func splitLE(body string) (le, rest string) {
	if body == "" {
		return "", ""
	}
	var kept []string
	for _, part := range splitLabelPairs(body) {
		if strings.HasPrefix(part, `le="`) && strings.HasSuffix(part, `"`) {
			le = part[len(`le="`) : len(part)-1]
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(body string) []string {
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, body[start:])
}
