package metrics

import (
	"bytes"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestGoRuntimeExposition registers the volcano_go_* families, forces a
// GC so the pause histogram has observations, and feeds the rendered
// exposition through the strict parser: every family present, every
// line well-formed, histogram bucket discipline intact.
func TestGoRuntimeExposition(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	runtime.GC()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	counts, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, doc)
	}
	for _, fam := range []string{
		"volcano_go_goroutines",
		"volcano_go_heap_objects_bytes",
		"volcano_go_memory_total_bytes",
		"volcano_go_alloc_bytes_total",
		"volcano_go_gc_cycles_total",
		"volcano_go_gc_pause_seconds",
	} {
		if counts[fam] == 0 {
			t.Errorf("family %s missing from exposition:\n%s", fam, doc)
		}
	}

	// Value sanity beyond syntax: this process has goroutines and, after
	// the forced GC above, at least one observed pause.
	if v := sampleValue(t, doc, "volcano_go_goroutines "); v < 1 {
		t.Errorf("volcano_go_goroutines = %v, want >= 1", v)
	}
	if v := sampleValue(t, doc, "volcano_go_gc_pause_seconds_count "); v < 1 {
		t.Errorf("volcano_go_gc_pause_seconds_count = %v, want >= 1 after runtime.GC()", v)
	}
}

// sampleValue extracts the value of the first sample line starting with
// the given prefix (metric name plus trailing space for unlabeled
// samples).
func sampleValue(t *testing.T, doc, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q in:\n%s", prefix, doc)
	return 0
}

// TestConvertRuntimeHistogram pins the shape mapping from a
// runtime/metrics float-seconds histogram (boundaries with ±Inf edges,
// counts per interval) to HistogramSnapshot (nanosecond upper bounds,
// trailing overflow bucket).
func TestConvertRuntimeHistogram(t *testing.T) {
	s := convertRuntimeHistogram(
		[]float64{math.Inf(-1), 0.001, 0.01, math.Inf(1)},
		[]uint64{1, 2, 3},
	)
	wantBounds := []int64{1e6, 1e7}
	if len(s.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if s.Bounds[i] != b {
			t.Errorf("bound[%d] = %d, want %d", i, s.Bounds[i], b)
		}
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("len(Counts) = %d, want len(Bounds)+1 = %d", len(s.Counts), len(s.Bounds)+1)
	}
	for i, want := range []int64{1, 2, 3} {
		if s.Counts[i] != want {
			t.Errorf("count[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count() != 6 {
		t.Errorf("total = %d, want 6", s.Count())
	}

	// No +Inf edge: an empty overflow bucket keeps the invariant.
	s = convertRuntimeHistogram([]float64{0, 0.5, 1}, []uint64{4, 5})
	if len(s.Counts) != len(s.Bounds)+1 || s.Counts[len(s.Counts)-1] != 0 {
		t.Errorf("missing empty overflow bucket: bounds=%v counts=%v", s.Bounds, s.Counts)
	}
}
