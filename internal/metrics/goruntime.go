package metrics

import (
	"math"
	rtm "runtime/metrics"
)

// RegisterGoRuntime exposes the Go runtime's own health through a
// registry as volcano_go_* families: scheduler load, heap footprint,
// allocation throughput, GC count and the GC stop-the-world pause
// distribution. Everything is read from runtime/metrics at scrape time
// (SetGaugeFunc / SetCounterFunc / SetHistogramFunc callbacks), so the
// process pays nothing between scrapes and no third-party collector is
// involved. Metrics the running toolchain does not provide are skipped
// rather than exported as zeros. A nil registry is a no-op.
func RegisterGoRuntime(r *Registry) {
	if !r.Enabled() {
		return
	}
	gauge := func(name, help, metric string) {
		if !runtimeMetricSupported(metric) {
			return
		}
		r.SetGaugeFunc(name, help, func() float64 { return readRuntimeValue(metric) })
	}
	counter := func(name, help, metric string) {
		if !runtimeMetricSupported(metric) {
			return
		}
		r.SetCounterFunc(name, help, func() float64 { return readRuntimeValue(metric) })
	}
	gauge("volcano_go_goroutines",
		"Goroutines currently live in the process.",
		"/sched/goroutines:goroutines")
	gauge("volcano_go_heap_objects_bytes",
		"Bytes occupied by live and not-yet-swept heap objects.",
		"/memory/classes/heap/objects:bytes")
	gauge("volcano_go_memory_total_bytes",
		"Total bytes of memory mapped by the Go runtime.",
		"/memory/classes/total:bytes")
	counter("volcano_go_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.",
		"/gc/heap/allocs:bytes")
	counter("volcano_go_gc_cycles_total",
		"Completed GC cycles.",
		"/gc/cycles/total:gc-cycles")
	if runtimeMetricSupported(gcPauseMetric) {
		r.SetHistogramFunc("volcano_go_gc_pause_seconds",
			"Distribution of GC stop-the-world pause latencies.",
			readGCPauses)
	}
}

// gcPauseMetric is the runtime's GC stop-the-world pause histogram.
const gcPauseMetric = "/sched/pauses/total/gc:seconds"

// runtimeMetricSupported reports whether the running toolchain provides
// the metric (names come and go across Go releases).
func runtimeMetricSupported(name string) bool {
	s := []rtm.Sample{{Name: name}}
	rtm.Read(s)
	return s[0].Value.Kind() != rtm.KindBad
}

// readRuntimeValue reads one scalar runtime metric as a float.
func readRuntimeValue(name string) float64 {
	s := []rtm.Sample{{Name: name}}
	rtm.Read(s)
	switch s[0].Value.Kind() {
	case rtm.KindUint64:
		return float64(s[0].Value.Uint64())
	case rtm.KindFloat64:
		return s[0].Value.Float64()
	default:
		return 0
	}
}

// readGCPauses converts the runtime's float-seconds pause histogram into
// a HistogramSnapshot (nanosecond bounds, per-bucket counts, trailing
// overflow bucket). The runtime reports bucket boundaries, possibly
// including ±Inf at the edges, but no sum; SumNanos is estimated from
// bucket midpoints (overflow observations count their lower edge), which
// keeps the exposition's _sum/_count consistent with the buckets without
// claiming precision the source does not have.
func readGCPauses() HistogramSnapshot {
	s := []rtm.Sample{{Name: gcPauseMetric}}
	rtm.Read(s)
	if s[0].Value.Kind() != rtm.KindFloat64Histogram {
		return HistogramSnapshot{}
	}
	h := s[0].Value.Float64Histogram()
	return convertRuntimeHistogram(h.Buckets, h.Counts)
}

// convertRuntimeHistogram maps a runtime/metrics histogram (boundaries
// in float seconds, counts per interval) onto HistogramSnapshot.
func convertRuntimeHistogram(buckets []float64, counts []uint64) HistogramSnapshot {
	if len(buckets) < 2 || len(counts) != len(buckets)-1 {
		return HistogramSnapshot{}
	}
	var snap HistogramSnapshot
	var sum float64
	for i, c := range counts {
		lo, hi := buckets[i], buckets[i+1]
		n := int64(c)
		if math.IsInf(hi, +1) {
			// Overflow interval: our +Inf bucket.
			snap.Counts = append(snap.Counts, n)
			if !math.IsInf(lo, -1) {
				sum += float64(n) * lo
			}
			break
		}
		snap.Bounds = append(snap.Bounds, int64(hi*1e9))
		snap.Counts = append(snap.Counts, n)
		mid := hi
		if !math.IsInf(lo, -1) {
			mid = (lo + hi) / 2
		}
		sum += float64(n) * mid
	}
	// No +Inf boundary at the end: add an empty overflow bucket so the
	// snapshot keeps its len(Counts) == len(Bounds)+1 invariant.
	if len(snap.Counts) == len(snap.Bounds) {
		snap.Counts = append(snap.Counts, 0)
	}
	snap.SumNanos = int64(sum * 1e9)
	return snap
}
