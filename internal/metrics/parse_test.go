package metrics

import (
	"os"
	"strings"
	"testing"
)

func TestParseTextAccepts(t *testing.T) {
	doc := `# HELP a_total things
# TYPE a_total counter
a_total 5
# HELP g a gauge
# TYPE g gauge
g{host="x",zone="a b"} -3.5
# HELP h_seconds hist
# TYPE h_seconds histogram
h_seconds_bucket{le="0.001"} 1
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 1.5
h_seconds_count 2
`
	fams, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fams["a_total"] != 1 || fams["g"] != 1 || fams["h_seconds"] != 4 {
		t.Fatalf("family sample counts wrong: %v", fams)
	}
}

func TestParseTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "a_total 5\n",
		"bad metric name":     "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE a counter\na five\n",
		"missing value":       "# TYPE a counter\na\n",
		"unquoted label":      "# TYPE a counter\na{x=1} 1\n",
		"bad label name":      "# TYPE a counter\na{9x=\"1\"} 1\n",
		"unterminated labels": "# TYPE a counter\na{x=\"1\" 1\n",
		"bad escape":          "# TYPE a counter\na{x=\"\\q\"} 1\n",
		"dup TYPE":            "# TYPE a counter\n# TYPE a gauge\na 1\n",
		"unknown type":        "# TYPE a enum\na 1\n",
		"malformed comment":   "# NOPE a\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\n",
		"bad le":              "# TYPE h histogram\nh_bucket{le=\"x\"} 1\n",
		"decreasing buckets":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"no +Inf bucket":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",
		"Inf != count":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
		"bare histogram name": "# TYPE h histogram\nh 1\n",
	}
	for name, doc := range cases {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error for:\n%s", name, doc)
		}
	}
}

func TestParseTextInfNaNValues(t *testing.T) {
	doc := "# TYPE g gauge\ng{k=\"a\"} +Inf\ng{k=\"b\"} -Inf\ng{k=\"c\"} NaN\ng{k=\"d\"} 1e-9\n"
	if _, err := ParseText(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
}

// TestParseScrapeArtifact validates a scrape file captured externally
// (the CI bench-smoke job scrapes /metrics mid-run and hands the file
// over via VOLCANO_SCRAPE_FILE). Skips when the variable is unset.
func TestParseScrapeArtifact(t *testing.T) {
	path := os.Getenv("VOLCANO_SCRAPE_FILE")
	if path == "" {
		t.Skip("VOLCANO_SCRAPE_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := ParseText(f)
	if err != nil {
		t.Fatalf("scrape artifact does not parse: %v", err)
	}
	// A mid-run scrape of the bench pipeline must cover the major
	// subsystem families.
	for _, want := range []string{
		"volcano_buffer_fixes_total",
		"volcano_device_page_reads_total",
		"volcano_exchange_packets_total",
		"volcano_op_next_seconds",
	} {
		if fams[want] == 0 {
			t.Errorf("scrape missing family %s (got %v)", want, fams)
		}
	}
}
