package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilRegistryIsDisabledAndSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x_total", "x")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All nil-handle operations are no-ops, not panics.
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	r.SetCounterFunc("f_total", "f", func() float64 { return 1 })
	r.SetGaugeFunc("fg", "fg", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry WriteText: err=%v out=%q", err, sb.String())
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("volcano_x_total", "x", Label{"op", "sort"})
	b := r.Counter("volcano_x_total", "x", Label{"op", "sort"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("volcano_x_total", "x", Label{"op", "scan"})
	if other == a {
		t.Fatal("different labels must return a different child")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Value())
	}

	h1 := r.Histogram("volcano_h_seconds", "h", nil, Label{"op", "join"})
	h2 := r.Histogram("volcano_h_seconds", "h", nil, Label{"op", "join"})
	if h1 != h2 {
		t.Fatal("same name+labels must return the same histogram")
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("g", "g", Label{"b", "2"}, Label{"a", "1"})
	b := r.Gauge("g", "g", Label{"a", "1"}, Label{"b", "2"})
	if a != b {
		t.Fatal("label order must not matter")
	}
	a.Set(7)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `g{a="1",b="2"} 7`) {
		t.Fatalf("labels not rendered sorted:\n%s", sb.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "x")
}

func TestFuncCollectorsReplace(t *testing.T) {
	r := NewRegistry()
	r.SetGaugeFunc("pool_pinned", "pinned frames", func() float64 { return 1 })
	r.SetGaugeFunc("pool_pinned", "pinned frames", func() float64 { return 42 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "pool_pinned 42") {
		t.Fatalf("replacement callback not used:\n%s", out)
	}
	if strings.Contains(out, "pool_pinned 1\n") {
		t.Fatalf("stale callback still rendered:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", Label{"q", "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong, want %s in:\n%s", want, sb.String())
	}
	if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("escaped output must re-parse: %v", err)
	}
}

// TestRegistryConcurrentAccess hammers registration, updates and scrapes
// from many goroutines; run under -race it proves the registry locking
// and the atomic instruments are sound.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ops := []string{"scan", "sort", "join", "agg"}
			for n := 0; n < 500; n++ {
				op := ops[n%len(ops)]
				r.Counter("volcano_next_total", "next calls", Label{"op", op}).Inc()
				r.Gauge("volcano_depth", "queue depth", Label{"op", op}).Add(1)
				r.Histogram("volcano_next_seconds", "latency", nil, Label{"op", op}).
					Observe(time.Duration(n) * time.Microsecond)
			}
		}(i)
	}
	// Concurrent scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 50; n++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
				t.Errorf("mid-run scrape unparseable: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	total := int64(0)
	for _, op := range []string{"scan", "sort", "join", "agg"} {
		total += r.Counter("volcano_next_total", "", Label{"op", op}).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost updates: total=%d want %d", total, 8*500)
	}
}

// TestScrapeRacesRegistration pins the WriteText locking fix: scrapes
// run concurrently with family/child registration (fresh label sets, so
// the child maps keep growing) and with callback replacement
// (SetGaugeFunc swapping fn). The registering goroutines run until the
// scrape loop finishes, so every scrape overlaps live registration —
// before the fix WriteText iterated family.children and read f.fn
// outside the registry lock, a fatal concurrent map iteration/write
// under this load. Run with -race.
func TestScrapeRacesRegistration(t *testing.T) {
	r := NewRegistry()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				// Cap the child count so late scrapes stay cheap; map
				// writes still happen throughout the warm-up, and the fn
				// swap below races the scraper for the whole run.
				lbl := Label{"worker", fmt.Sprintf("w%d-%d", id, n%256)}
				r.Counter("volcano_race_total", "per-worker children", lbl).Inc()
				r.Histogram("volcano_race_seconds", "per-worker children", nil, lbl).
					Observe(time.Duration(n) * time.Microsecond)
				v := float64(n)
				r.SetGaugeFunc("volcano_race_fn", "replaced every call", func() float64 { return v })
			}
		}(i)
	}
	for n := 0; n < 30; n++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Errorf("WriteText: %v", err)
			break
		}
		if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
			t.Errorf("mid-registration scrape unparseable: %v", err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}
