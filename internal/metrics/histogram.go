package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds for operator and
// protocol latencies: roughly ×4 steps from sub-microsecond (a cached
// Next call) to seconds (a blocking sort or a stalled port).
var DefLatencyBuckets = []time.Duration{
	250 * time.Nanosecond,
	1 * time.Microsecond,
	4 * time.Microsecond,
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1 * time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
	64 * time.Millisecond,
	256 * time.Millisecond,
	1 * time.Second,
	4 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observe is a linear
// scan over ~a dozen bounds plus two atomic adds — no locks, no
// allocations — so it sits directly on the operator Next path. The nil
// handle discards observations.
type Histogram struct {
	bounds []int64 // upper bounds in ns, ascending
	counts []atomic.Int64
	over   atomic.Int64 // observations above the last bound (+Inf bucket)
	sum    atomic.Int64 // total observed ns
	total  atomic.Int64 // observation count
}

// NewHistogram creates a standalone histogram with the given bucket
// upper bounds (nil or empty = DefLatencyBuckets). Bounds must be
// positive and strictly ascending.
func NewHistogram(buckets []time.Duration) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	h := &Histogram{
		bounds: make([]int64, len(buckets)),
		counts: make([]atomic.Int64, len(buckets)),
	}
	for i, b := range buckets {
		h.bounds[i] = int64(b)
		if b <= 0 || (i > 0 && h.bounds[i] <= h.bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds must be positive ascending, got %v", buckets))
		}
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.total.Add(1)
	for i, b := range h.bounds {
		if ns <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// Count returns the number of observations so far (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to
// aggregate and query after the fact. Counts are per-bucket (not
// cumulative); Counts has one more entry than Bounds, the overflow.
type HistogramSnapshot struct {
	Bounds   []int64 // upper bounds in ns, ascending
	Counts   []int64 // len(Bounds)+1; last entry is the +Inf bucket
	SumNanos int64
}

// Snapshot copies the current state. Nil histograms snapshot to a
// zero-observation snapshot over the default bounds.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return NewHistogram(nil).Snapshot()
	}
	s := HistogramSnapshot{
		Bounds:   append([]int64(nil), h.bounds...),
		Counts:   make([]int64, len(h.bounds)+1),
		SumNanos: h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Counts[len(h.bounds)] = h.over.Load()
	return s
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge combines another snapshot into s. The bounds must match —
// snapshots merge across instances of the same metric, not across
// differently-shaped histograms.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("metrics: merge of histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("metrics: merge of histograms with different bounds at bucket %d", i)
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumNanos += o.SumNanos
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds by
// linear interpolation within the containing bucket, the standard
// fixed-bucket estimator. Observations in the overflow bucket are
// attributed to the last finite bound — the estimate saturates there.
// Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 || len(s.Bounds) == 0 {
		// len(s.Bounds) == 0 can only come from a hand-built snapshot —
		// NewHistogram always has at least one bound — but guard it so a
		// zero-value HistogramSnapshot with counts never indexes Bounds[-1].
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i >= len(s.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return time.Duration(s.Bounds[len(s.Bounds)-1])
			}
			lo := int64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum = next
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1])
}

// Mean returns the average observation, or 0 if empty.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / n)
}
