package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry as text
// exposition on any path. Scrapes are safe while queries run — that is
// the point.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Mount registers the monitoring endpoints on an existing mux: GET
// /metrics serving the registry (which may be nil — the exposition is
// then empty), GET /buildinfo identifying the binary, and the standard
// pprof handlers under /debug/pprof/. Both Serve and servers that own
// their mux (the query service) use this, so every process exposes the
// same monitoring surface. Mounting also stamps the registry with the
// volcano_build_info gauge — any scrape surface identifies its process.
func Mount(mux *http.ServeMux, r *Registry) {
	RegisterBuildInfo(r)
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/buildinfo", HandleBuildInfo)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a live monitoring endpoint: GET /metrics plus the pprof
// handlers under /debug/pprof/.
type Server struct {
	// Addr is the address actually bound, useful when the flag asked for
	// port 0.
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:9090" or ":0") and serves the
// registry in a background goroutine until Close. The registry may be
// nil — the endpoint then exposes an empty document and pprof, which is
// still useful for profiling.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	Mount(mux, r)
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the listener. In-flight scrapes are allowed to finish by
// the net/http machinery; we don't wait for them.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
