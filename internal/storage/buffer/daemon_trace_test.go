package buffer

import (
	"testing"

	"repro/internal/trace"
)

// TestDaemonTraceEvents checks that with a tracer attached every daemon
// records its own track with flush, read-ahead and quit events.
func TestDaemonTraceEvents(t *testing.T) {
	p, _, diskID, _ := env(t, 8, TwoLevel)
	tr := trace.New()
	p.SetTracer(tr)
	if err := p.StartDaemons(2); err != nil {
		t.Fatal(err)
	}
	f, pid, err := p.FixNew(diskID)
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), "traced")
	p.Unfix(f, true)
	p.RequestFlush(pid)
	p.StopDaemons()

	// Evict the page, then bring it back via a traced read-ahead.
	for i := 0; i < 16; i++ {
		g, _, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(g, true)
	}
	if err := p.StartDaemons(1); err != nil {
		t.Fatal(err)
	}
	p.RequestReadAhead(pid)
	p.StopDaemons()

	names := map[string]int{}
	tracks := map[string]bool{}
	for _, s := range tr.Snapshot() {
		tracks[s.Name] = true
		for _, e := range s.Events {
			names[e.Name]++
		}
	}
	for _, want := range []string{"flush", "read-ahead", "quit"} {
		if names[want] == 0 {
			t.Errorf("no %q event recorded; got %v", want, names)
		}
	}
	// Two daemons in the first generation, one in the second; each owns a
	// track (track names repeat across generations by index).
	if !tracks["buffer.daemon0"] || !tracks["buffer.daemon1"] {
		t.Errorf("daemon tracks missing: %v", tracks)
	}
	if names["quit"] != 3 {
		t.Errorf("quit events = %d, want 3 (one per daemon per generation)", names["quit"])
	}
}
