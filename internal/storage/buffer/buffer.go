// Package buffer implements Volcano's shared buffer manager (paper, §3 and
// §4.5). All goroutines ("processes") share one pool; records are passed
// between operators as pinned buffer residents, with each pinned record
// owned by exactly one operator at a time.
//
// Locking follows the paper's two-level scheme: one pool lock protects the
// hash table and the LRU chain and is never held during I/O; each frame
// (descriptor/cluster) has its own lock, acquired with an atomic try-lock.
// If the try-lock fails, the whole operation — including the hash-table
// lookup — is restarted, because the lock holder might be reading or
// replacing the requested cluster. The restart scheme never holds one lock
// while waiting for another, so deadlock is impossible (no hold-and-wait).
//
// A single-global-lock mode is provided for the ablation the paper
// discusses ("we could have used one exclusive lock as in the memory
// module [but] decreased concurrency would have removed most or all
// advantages of parallel query processing").
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/meter"
	"repro/internal/record"
	"repro/internal/storage/device"
	"repro/internal/trace"
)

// LockMode selects the pool's locking discipline.
type LockMode uint8

const (
	// TwoLevel is the paper's pool-lock + per-descriptor try-lock scheme.
	TwoLevel LockMode = iota
	// Global holds the pool lock across everything, including I/O.
	Global
)

// ErrBufferFull is returned when no frame can be evicted because every
// frame is pinned.
var ErrBufferFull = errors.New("buffer: all frames pinned")

// Frame is a buffer descriptor plus its page image. Callers receive *Frame
// from Fix/FixNew and must balance every fix with exactly one Unfix.
type Frame struct {
	mu   sync.Mutex // the descriptor ("cluster") lock
	pid  record.PageID
	data []byte

	// The fields below are protected by the pool lock.
	fixCount int
	dirty    bool
	valid    bool

	// LRU chain links, protected by the pool lock. A frame is on the
	// chain exactly when fixCount == 0.
	prev, next *Frame
	onChain    bool
}

// PageID returns the identity of the page currently held by the frame.
// Valid only while the caller holds a fix on the frame.
func (f *Frame) PageID() record.PageID { return f.pid }

// Data returns the page image. Valid only while the caller holds a fix;
// the slice must not be retained past Unfix.
func (f *Frame) Data() []byte { return f.data }

// Stats aggregates pool activity counters. All counters are cumulative.
type Stats struct {
	Fixes, Unfixes     int64
	Hits, Misses       int64
	Reads, Writes      int64
	Evictions          int64
	Restarts           int64
	DaemonReads        int64
	DaemonWrites       int64
	ExtraPins          int64
	CurrentlyFixedHint int64 // Fixes+ExtraPins-Unfixes; 0 when all pins balanced
}

// Sub returns the counter deltas since a previous snapshot, for
// attributing pool activity to one query or phase. CurrentlyFixedHint is
// recomputed from the deltas: 0 means the interval's pins balanced.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Fixes:        s.Fixes - prev.Fixes,
		Unfixes:      s.Unfixes - prev.Unfixes,
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Reads:        s.Reads - prev.Reads,
		Writes:       s.Writes - prev.Writes,
		Evictions:    s.Evictions - prev.Evictions,
		Restarts:     s.Restarts - prev.Restarts,
		DaemonReads:  s.DaemonReads - prev.DaemonReads,
		DaemonWrites: s.DaemonWrites - prev.DaemonWrites,
		ExtraPins:    s.ExtraPins - prev.ExtraPins,
	}
	d.CurrentlyFixedHint = d.Fixes + d.ExtraPins - d.Unfixes
	return d
}

// Pool is the shared buffer pool.
type Pool struct {
	reg  *device.Registry
	mode LockMode

	mu     sync.Mutex // the pool lock
	table  map[record.PageID]*Frame
	frames []*Frame
	// lru is a circular doubly-linked list through prev/next with a
	// sentinel head; head.next is least recently used.
	lru Frame

	// Activity counters. Atomic so a live scraper (internal/metrics) can
	// read them while queries and the flush/read-ahead daemons run,
	// without taking the pool lock.
	fixes, unfixes, hits, misses  atomic.Int64
	reads, writes                 atomic.Int64
	evictions, restarts, xtraPins atomic.Int64
	daemonReads, daemonWrites     atomic.Int64

	daemon *daemon
	tracer *trace.Tracer
}

// SetTracer attaches a tracer for buffer-daemon activity. Call before
// StartDaemons; daemons started earlier keep running untraced.
func (p *Pool) SetTracer(t *trace.Tracer) {
	p.mu.Lock()
	p.tracer = t
	p.mu.Unlock()
}

// NewPool creates a pool of nframes frames over the given device registry.
func NewPool(reg *device.Registry, nframes int, mode LockMode) *Pool {
	p := &Pool{
		reg:   reg,
		mode:  mode,
		table: make(map[record.PageID]*Frame, nframes),
	}
	p.lru.prev, p.lru.next = &p.lru, &p.lru
	p.frames = make([]*Frame, nframes)
	// One arena and one frame slab instead of per-frame allocations: pool
	// construction is two large allocations regardless of size, and the
	// page images are contiguous (fewer GC objects to scan for a
	// pointer-free 8 MB region).
	arena := make([]byte, nframes*device.PageSize)
	slab := make([]Frame, nframes)
	for i := range p.frames {
		f := &slab[i]
		f.data = arena[i*device.PageSize : (i+1)*device.PageSize : (i+1)*device.PageSize]
		p.frames[i] = f
		p.chainPush(f)
	}
	return p
}

// NumFrames returns the configured pool size.
func (p *Pool) NumFrames() int { return len(p.frames) }

// Registry returns the device registry the pool reads and writes through.
func (p *Pool) Registry() *device.Registry { return p.reg }

// chainPush appends f at the MRU end. Pool lock must be held.
func (p *Pool) chainPush(f *Frame) {
	if f.onChain {
		panic("buffer: frame already on LRU chain")
	}
	tail := p.lru.prev
	tail.next = f
	f.prev = tail
	f.next = &p.lru
	p.lru.prev = f
	f.onChain = true
}

// chainRemove unlinks f from the LRU chain. Pool lock must be held.
func (p *Pool) chainRemove(f *Frame) {
	if !f.onChain {
		panic("buffer: frame not on LRU chain")
	}
	f.prev.next = f.next
	f.next.prev = f.prev
	f.prev, f.next = nil, nil
	f.onChain = false
}

// lruHead returns the least recently used unpinned frame, or nil.
func (p *Pool) lruHead() *Frame {
	if p.lru.next == &p.lru {
		return nil
	}
	return p.lru.next
}

// lockFrame acquires f's descriptor lock under the current mode. In Global
// mode the pool lock already serialises everything, so it is a no-op.
// Returns false if the try-lock failed and the operation must restart.
func (p *Pool) lockFrame(f *Frame) bool {
	if p.mode == Global {
		return true
	}
	return f.mu.TryLock()
}

func (p *Pool) unlockFrame(f *Frame) {
	if p.mode == Global {
		return
	}
	f.mu.Unlock()
}

// restart backs off before re-running a fix attempt whose descriptor
// try-lock failed ("the operation [is] delayed and restarted", §4.5).
func (p *Pool) restart() {
	p.restarts.Add(1)
	runtime.Gosched()
}

// Fix pins the page in the buffer, reading it from its device on a miss,
// and returns its frame. Every successful Fix must be balanced by Unfix.
func (p *Pool) Fix(pid record.PageID) (*Frame, error) {
	return p.fix(pid, false, nil)
}

// FixFor is Fix with per-query attribution: the fix (hit or miss) and any
// device I/O it triggers are also added to m. A nil meter makes it
// exactly Fix.
func (p *Pool) FixFor(pid record.PageID, m *meter.Meter) (*Frame, error) {
	return p.fix(pid, false, m)
}

// FixNew allocates a fresh page on the given device, pins it with zeroed
// contents, and returns the frame and new page identity. The page is
// marked dirty so it reaches the device even if never written again.
func (p *Pool) FixNew(dev record.DeviceID) (*Frame, record.PageID, error) {
	return p.FixNewFor(dev, nil)
}

// FixNewFor is FixNew with per-query attribution (nil meter = FixNew).
func (p *Pool) FixNewFor(dev record.DeviceID, m *meter.Meter) (*Frame, record.PageID, error) {
	d, err := p.reg.Get(dev)
	if err != nil {
		return nil, record.NilPage, err
	}
	page, err := d.AllocPage()
	if err != nil {
		return nil, record.NilPage, err
	}
	pid := record.PageID{Dev: dev, Page: page}
	f, err := p.fix(pid, true, m)
	if err != nil {
		_ = d.FreePage(page)
		return nil, record.NilPage, err
	}
	return f, pid, nil
}

func (p *Pool) fix(pid record.PageID, fresh bool, m *meter.Meter) (*Frame, error) {
	if pid.IsNil() {
		return nil, fmt.Errorf("buffer: fix of nil page")
	}
	spins := 0
	for {
		f, err := p.fixOnce(pid, fresh, m)
		if err == nil {
			return f, nil
		}
		if errors.Is(err, errRetry) {
			p.restart()
			continue
		}
		if errors.Is(err, ErrBufferFull) && spins < 64 {
			// Another operator may unpin shortly (e.g. a consumer draining
			// exchange packets); give it a chance before failing.
			spins++
			runtime.Gosched()
			continue
		}
		return nil, err
	}
}

// errRetry signals that a descriptor try-lock failed and the fix must be
// restarted from the hash-table lookup.
var errRetry = errors.New("buffer: retry")

func (p *Pool) fixOnce(pid record.PageID, fresh bool, m *meter.Meter) (*Frame, error) {
	p.mu.Lock()
	if f, ok := p.table[pid]; ok {
		// Found in the buffer: atomic test-and-lock on the descriptor; on
		// failure release the pool lock and restart (§4.5).
		if !p.lockFrame(f) {
			p.mu.Unlock()
			return nil, errRetry
		}
		if !f.valid {
			// The frame was abandoned by a failed read; treat as miss by
			// falling through to a restart after clearing it.
			p.unlockFrame(f)
			p.mu.Unlock()
			return nil, errRetry
		}
		f.fixCount++
		if f.fixCount == 1 {
			p.chainRemove(f)
		}
		p.fixes.Add(1)
		p.hits.Add(1)
		p.unlockFrame(f)
		p.mu.Unlock()
		m.FixHit()
		return f, nil
	}

	// Miss: find a victim.
	victim := p.lruHead()
	if victim == nil {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (%d frames)", ErrBufferFull, len(p.frames))
	}
	if !p.lockFrame(victim) {
		p.mu.Unlock()
		return nil, errRetry
	}
	p.chainRemove(victim)
	oldPid, oldDirty, oldValid := victim.pid, victim.dirty, victim.valid
	if oldValid {
		delete(p.table, oldPid)
		p.evictions.Add(1)
	}
	victim.pid = pid
	victim.fixCount = 1
	victim.valid = false
	victim.dirty = false
	p.table[pid] = victim
	p.fixes.Add(1)
	p.misses.Add(1)
	m.FixMiss()
	if p.mode != Global {
		// Release the pool lock before I/O; the descriptor lock protects
		// the frame during the transfer.
		p.mu.Unlock()
	}

	err := p.replace(victim, oldPid, oldDirty && oldValid, fresh, m)

	if p.mode != Global {
		p.mu.Lock()
	}
	if err != nil {
		// Abandon the frame: unmap it and return it to the LRU chain.
		delete(p.table, pid)
		victim.fixCount = 0
		victim.valid = false
		p.chainPush(victim)
		p.unlockFrame(victim)
		p.mu.Unlock()
		return nil, err
	}
	victim.valid = true
	if fresh {
		victim.dirty = true
	}
	p.unlockFrame(victim)
	p.mu.Unlock()
	return victim, nil
}

// replace performs the write-back of the old page and the read of the new
// one while the caller holds the descriptor lock. Device I/O is attributed
// to the meter of the fix that triggered the replacement — including a
// write-back of a page another query dirtied, since the cost lands on this
// query's critical path.
func (p *Pool) replace(f *Frame, oldPid record.PageID, writeBack, fresh bool, m *meter.Meter) error {
	if writeBack {
		d, err := p.reg.Get(oldPid.Dev)
		if err != nil {
			return fmt.Errorf("buffer: write-back: %w", err)
		}
		if err := d.WritePage(oldPid.Page, f.data); err != nil {
			return fmt.Errorf("buffer: write-back %s: %w", oldPid, err)
		}
		p.writes.Add(1)
		m.DeviceWrite(device.PageSize)
	}
	if fresh {
		for i := range f.data {
			f.data[i] = 0
		}
		return nil
	}
	d, err := p.reg.Get(f.pid.Dev)
	if err != nil {
		return err
	}
	if err := d.ReadPage(f.pid.Page, f.data); err != nil {
		return fmt.Errorf("buffer: read %s: %w", f.pid, err)
	}
	p.reads.Add(1)
	m.DeviceRead(device.PageSize)
	return nil
}

// Unfix releases one pin on the frame, optionally marking the page dirty.
// When the fix count reaches zero the frame joins the MRU end of the LRU
// chain and becomes replaceable.
func (p *Pool) Unfix(f *Frame, dirty bool) {
	for {
		p.mu.Lock()
		if !p.lockFrame(f) {
			p.mu.Unlock()
			p.restart()
			continue
		}
		if f.fixCount <= 0 {
			p.unlockFrame(f)
			p.mu.Unlock()
			panic(fmt.Sprintf("buffer: unfix of unpinned page %s", f.pid))
		}
		f.dirty = f.dirty || dirty
		f.fixCount--
		p.unfixes.Add(1)
		if f.fixCount == 0 {
			p.chainPush(f)
		}
		p.unlockFrame(f)
		p.mu.Unlock()
		return
	}
}

// UnfixN releases n pins on the frame in one pool-lock round — the bulk
// counterpart of Unfix for batch consumers releasing many records that
// share a page.
func (p *Pool) UnfixN(f *Frame, n int, dirty bool) {
	if n <= 0 {
		return
	}
	for {
		p.mu.Lock()
		if !p.lockFrame(f) {
			p.mu.Unlock()
			p.restart()
			continue
		}
		if f.fixCount < n {
			p.unlockFrame(f)
			p.mu.Unlock()
			panic(fmt.Sprintf("buffer: unfix of %d pins with %d held on page %s", n, f.fixCount, f.pid))
		}
		f.dirty = f.dirty || dirty
		f.fixCount -= n
		p.unfixes.Add(int64(n))
		if f.fixCount == 0 {
			p.chainPush(f)
		}
		p.unlockFrame(f)
		p.mu.Unlock()
		return
	}
}

// Pin adds an extra pin to an already-fixed frame. The exchange operator
// uses this for its broadcast variant: "it is not necessary to copy the
// records ...; it is sufficient to pin them such that each consumer can
// unpin them as if it were the only process using them" (§4.4).
// The caller must already hold at least one fix.
func (p *Pool) Pin(f *Frame, n int) {
	for {
		p.mu.Lock()
		if !p.lockFrame(f) {
			p.mu.Unlock()
			p.restart()
			continue
		}
		if f.fixCount <= 0 {
			p.unlockFrame(f)
			p.mu.Unlock()
			panic(fmt.Sprintf("buffer: extra pin on unpinned page %s", f.pid))
		}
		f.fixCount += n
		p.xtraPins.Add(int64(n))
		p.unlockFrame(f)
		p.mu.Unlock()
		return
	}
}

// FlushPage writes the page to its device if it is resident and dirty.
// The page stays in the buffer. Pinned pages are flushed as-is.
func (p *Pool) FlushPage(pid record.PageID) error {
	for {
		p.mu.Lock()
		f, ok := p.table[pid]
		if !ok || !f.valid {
			p.mu.Unlock()
			return nil
		}
		if !p.lockFrame(f) {
			p.mu.Unlock()
			p.restart()
			continue
		}
		if !f.dirty {
			p.unlockFrame(f)
			p.mu.Unlock()
			return nil
		}
		wasFree := f.fixCount == 0
		f.fixCount++ // hold the frame across the I/O
		if wasFree {
			p.chainRemove(f)
		}
		if p.mode != Global {
			p.mu.Unlock()
		}
		d, err := p.reg.Get(pid.Dev)
		if err == nil {
			err = d.WritePage(pid.Page, f.data)
		}
		if p.mode != Global {
			p.mu.Lock()
		}
		if err == nil {
			f.dirty = false
			p.writes.Add(1)
		}
		f.fixCount--
		if f.fixCount == 0 {
			p.chainPush(f)
		}
		p.unlockFrame(f)
		p.mu.Unlock()
		return err
	}
}

// Discard drops the page from the buffer without writing it back, used
// when a virtual file's pages are deleted. The page must not be pinned.
func (p *Pool) Discard(pid record.PageID) error {
	for {
		p.mu.Lock()
		f, ok := p.table[pid]
		if !ok {
			p.mu.Unlock()
			return nil
		}
		if !p.lockFrame(f) {
			p.mu.Unlock()
			p.restart()
			continue
		}
		if f.fixCount > 0 {
			p.unlockFrame(f)
			p.mu.Unlock()
			return fmt.Errorf("buffer: discard of pinned page %s", pid)
		}
		delete(p.table, pid)
		f.valid = false
		f.dirty = false
		f.pid = record.PageID{}
		// Move to the LRU head so the frame is reused first.
		p.chainRemove(f)
		head := p.lru.next
		f.next = head
		f.prev = &p.lru
		head.prev = f
		p.lru.next = f
		f.onChain = true
		p.unlockFrame(f)
		p.mu.Unlock()
		return nil
	}
}

// FlushAll writes every dirty resident page of the given device (or of all
// devices if dev is 0) back to storage.
func (p *Pool) FlushAll(dev record.DeviceID) error {
	p.mu.Lock()
	var pids []record.PageID
	for pid, f := range p.table {
		if f.valid && f.dirty && (dev == 0 || pid.Dev == dev) {
			pids = append(pids, pid)
		}
	}
	p.mu.Unlock()
	for _, pid := range pids {
		if err := p.FlushPage(pid); err != nil {
			return err
		}
	}
	return nil
}

// Resident reports whether the page is currently in the buffer (for tests).
func (p *Pool) Resident(pid record.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.table[pid]
	return ok && f.valid
}

// FixCount returns the current pin count of a resident page (for tests).
func (p *Pool) FixCount(pid record.PageID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.table[pid]; ok {
		return f.fixCount
	}
	return 0
}

// Stats returns a snapshot of the pool's counters. Safe to call at any
// time, including concurrently with daemon activity — the counters are
// atomics, so no lock is taken.
func (p *Pool) Stats() Stats {
	s := Stats{
		Fixes:        p.fixes.Load(),
		Unfixes:      p.unfixes.Load(),
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		Reads:        p.reads.Load(),
		Writes:       p.writes.Load(),
		Evictions:    p.evictions.Load(),
		Restarts:     p.restarts.Load(),
		DaemonReads:  p.daemonReads.Load(),
		DaemonWrites: p.daemonWrites.Load(),
		ExtraPins:    p.xtraPins.Load(),
	}
	s.CurrentlyFixedHint = s.Fixes + s.ExtraPins - s.Unfixes
	return s
}

// PinnedFrames returns how many frames are currently pinned (for tests and
// leak assertions).
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.fixCount > 0 {
			n++
		}
	}
	return n
}
