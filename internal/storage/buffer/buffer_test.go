package buffer

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
	"repro/internal/storage/device"
)

// env builds a registry with one disk and one virtual device plus a pool.
func env(t *testing.T, frames int, mode LockMode) (*Pool, *device.Registry, record.DeviceID, record.DeviceID) {
	t.Helper()
	reg := device.NewRegistry()
	diskID := reg.NextID()
	d, err := device.NewDisk(diskID, filepath.Join(t.TempDir(), "disk"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount(d); err != nil {
		t.Fatal(err)
	}
	memID := reg.NextID()
	if err := reg.Mount(device.NewMem(memID)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	return NewPool(reg, frames, mode), reg, diskID, memID
}

func TestFixNewAndRefix(t *testing.T) {
	for _, mode := range []LockMode{TwoLevel, Global} {
		p, _, diskID, _ := env(t, 8, mode)
		f, pid, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		copy(f.Data(), "volcano")
		p.Unfix(f, true)

		f2, err := p.Fix(pid)
		if err != nil {
			t.Fatal(err)
		}
		if string(f2.Data()[:7]) != "volcano" {
			t.Fatalf("mode %v: data lost on refix", mode)
		}
		if f2.PageID() != pid {
			t.Fatalf("mode %v: wrong pid", mode)
		}
		p.Unfix(f2, false)
		st := p.Stats()
		if st.CurrentlyFixedHint != 0 {
			t.Fatalf("mode %v: pin imbalance: %+v", mode, st)
		}
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("mode %v: hits=%d misses=%d, want 1/1", mode, st.Hits, st.Misses)
		}
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	p, _, diskID, _ := env(t, 2, TwoLevel)
	f1, pid1, _ := p.FixNew(diskID)
	copy(f1.Data(), "one")
	p.Unfix(f1, true)

	// Fill the pool so pid1 gets evicted.
	var pids []record.PageID
	for i := 0; i < 4; i++ {
		f, pid, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, true)
		pids = append(pids, pid)
	}
	if p.Resident(pid1) {
		t.Fatal("pid1 still resident after filling a 2-frame pool")
	}
	// Reload from disk.
	f, err := p.Fix(pid1)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data()[:3]) != "one" {
		t.Fatal("write-back or reload lost data")
	}
	p.Unfix(f, false)
	if p.Stats().Writes == 0 {
		t.Fatal("no write-backs recorded")
	}
	_ = pids
}

func TestBufferFullWhenAllPinned(t *testing.T) {
	p, _, diskID, _ := env(t, 2, TwoLevel)
	f1, _, err := p.FixNew(diskID)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := p.FixNew(diskID)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.FixNew(diskID)
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	p.Unfix(f1, false)
	p.Unfix(f2, false)
	// Now it works again.
	f3, _, err := p.FixNew(diskID)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f3, false)
}

func TestUnfixUnderflowPanics(t *testing.T) {
	p, _, diskID, _ := env(t, 4, TwoLevel)
	f, _, _ := p.FixNew(diskID)
	p.Unfix(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unfix did not panic")
		}
	}()
	p.Unfix(f, false)
}

func TestMultiplePinsBroadcastStyle(t *testing.T) {
	p, _, _, memID := env(t, 4, TwoLevel)
	f, pid, _ := p.FixNew(memID)
	p.Pin(f, 2) // as if broadcast to two more consumers
	if got := p.FixCount(pid); got != 3 {
		t.Fatalf("FixCount = %d, want 3", got)
	}
	p.Unfix(f, false)
	p.Unfix(f, false)
	if got := p.FixCount(pid); got != 1 {
		t.Fatalf("FixCount = %d, want 1", got)
	}
	p.Unfix(f, true)
	if p.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin imbalance after broadcast pins")
	}
}

func TestVirtualPagesRoundTripThroughEviction(t *testing.T) {
	// Virtual (Mem) device pages must survive eviction: the Mem device is
	// their backing store.
	p, _, _, memID := env(t, 2, TwoLevel)
	f, pid, _ := p.FixNew(memID)
	copy(f.Data(), "intermediate")
	p.Unfix(f, true)
	// Force eviction.
	for i := 0; i < 4; i++ {
		g, _, err := p.FixNew(memID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(g, true)
	}
	f2, err := p.Fix(pid)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Data()[:12]) != "intermediate" {
		t.Fatal("virtual page lost through eviction")
	}
	p.Unfix(f2, false)
}

func TestDiscard(t *testing.T) {
	p, reg, _, memID := env(t, 4, TwoLevel)
	f, pid, _ := p.FixNew(memID)
	if err := p.Discard(pid); err == nil {
		t.Fatal("discard of pinned page succeeded")
	}
	p.Unfix(f, true)
	if err := p.Discard(pid); err != nil {
		t.Fatal(err)
	}
	if p.Resident(pid) {
		t.Fatal("page resident after discard")
	}
	// The device still holds the page; free it there.
	d, _ := reg.Get(memID)
	if err := d.FreePage(pid.Page); err != nil {
		t.Fatal(err)
	}
	// Discard of a non-resident page is a no-op.
	if err := p.Discard(pid); err != nil {
		t.Fatal(err)
	}
}

func TestFlushPageAndFlushAll(t *testing.T) {
	p, reg, diskID, _ := env(t, 8, TwoLevel)
	f, pid, _ := p.FixNew(diskID)
	copy(f.Data(), "flushed")
	p.Unfix(f, true)
	if err := p.FlushPage(pid); err != nil {
		t.Fatal(err)
	}
	// Verify on the device directly.
	d, _ := reg.Get(diskID)
	buf := make([]byte, device.PageSize)
	if err := d.ReadPage(pid.Page, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "flushed" {
		t.Fatal("FlushPage did not reach the device")
	}
	// Flushing a clean or absent page is a no-op.
	if err := p.FlushPage(pid); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushPage(record.PageID{Dev: diskID, Page: 999}); err != nil {
		t.Fatal(err)
	}

	g, pid2, _ := p.FixNew(diskID)
	copy(g.Data(), "all")
	p.Unfix(g, true)
	if err := p.FlushAll(diskID); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(pid2.Page, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:3]) != "all" {
		t.Fatal("FlushAll did not reach the device")
	}
}

func TestFixErrors(t *testing.T) {
	p, _, _, _ := env(t, 4, TwoLevel)
	if _, err := p.Fix(record.NilPage); err == nil {
		t.Fatal("fix of nil page succeeded")
	}
	if _, err := p.Fix(record.PageID{Dev: 99, Page: 1}); err == nil {
		t.Fatal("fix on unmounted device succeeded")
	}
	// Virtual page that was never allocated.
	if _, err := p.Fix(record.PageID{Dev: 2, Page: 123}); err == nil {
		t.Fatal("fix of unallocated virtual page succeeded")
	}
	// A failed read must not leak frames: all 4 still usable.
	var frames []*Frame
	for i := 0; i < 4; i++ {
		f, _, err := p.FixNew(2)
		if err != nil {
			t.Fatalf("frame %d unusable after failed fixes: %v", i, err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		p.Unfix(f, false)
	}
}

func TestConcurrentFixUnfixStress(t *testing.T) {
	for _, mode := range []LockMode{TwoLevel, Global} {
		p, _, diskID, _ := env(t, 32, mode)
		// Pre-create pages.
		const npages = 64
		pids := make([]record.PageID, npages)
		for i := range pids {
			f, pid, err := p.FixNew(diskID)
			if err != nil {
				t.Fatal(err)
			}
			f.Data()[0] = byte(i)
			p.Unfix(f, true)
			pids[i] = pid
		}
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					pid := pids[(w*31+i*7)%npages]
					f, err := p.Fix(pid)
					if err != nil {
						t.Errorf("mode %v: fix: %v", mode, err)
						return
					}
					if f.Data()[0] != byte((w*31+i*7)%npages) {
						t.Errorf("mode %v: wrong page contents", mode)
						p.Unfix(f, false)
						return
					}
					p.Unfix(f, false)
				}
			}(w)
		}
		wg.Wait()
		if got := p.Stats().CurrentlyFixedHint; got != 0 {
			t.Fatalf("mode %v: pin imbalance %d after stress", mode, got)
		}
		if p.PinnedFrames() != 0 {
			t.Fatalf("mode %v: frames still pinned after stress", mode)
		}
	}
}

func TestDaemonFlushAndReadAhead(t *testing.T) {
	p, reg, diskID, _ := env(t, 8, TwoLevel)
	if err := p.StartDaemons(2); err != nil {
		t.Fatal(err)
	}
	if err := p.StartDaemons(1); err == nil {
		t.Fatal("double StartDaemons succeeded")
	}
	f, pid, _ := p.FixNew(diskID)
	copy(f.Data(), "daemon")
	p.Unfix(f, true)
	p.RequestFlush(pid)
	p.StopDaemons() // waits for the queue to drain

	d, _ := reg.Get(diskID)
	buf := make([]byte, device.PageSize)
	if err := d.ReadPage(pid.Page, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:6]) != "daemon" {
		t.Fatal("daemon flush did not reach the device")
	}

	// Read-ahead: evict, then ask the daemon to bring the page back.
	for i := 0; i < 16; i++ {
		g, _, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(g, true)
	}
	if p.Resident(pid) {
		t.Fatal("page still resident; eviction expected")
	}
	if err := p.StartDaemons(1); err != nil {
		t.Fatal(err)
	}
	p.RequestReadAhead(pid)
	p.StopDaemons()
	if !p.Resident(pid) {
		t.Fatal("read-ahead did not load the page")
	}
	st := p.Stats()
	if st.DaemonReads == 0 || st.DaemonWrites == 0 {
		t.Fatalf("daemon counters not advanced: %+v", st)
	}
	// With no daemon running, RequestFlush degrades to a synchronous flush
	// and RequestReadAhead to a no-op.
	p.RequestFlush(pid)
	p.RequestReadAhead(pid)
}

func TestStopDaemonsIdempotent(t *testing.T) {
	p, _, _, _ := env(t, 4, TwoLevel)
	p.StopDaemons() // no daemons: no-op
	if err := p.StartDaemons(0); err == nil {
		t.Fatal("StartDaemons(0) succeeded")
	}
}

func TestLRUOrdering(t *testing.T) {
	p, _, diskID, _ := env(t, 3, TwoLevel)
	// Create three pages a, b, c (unpinned in that order).
	mk := func() record.PageID {
		f, pid, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, true)
		return pid
	}
	a, b, c := mk(), mk(), mk()
	// Touch a so b becomes LRU.
	f, _ := p.Fix(a)
	p.Unfix(f, false)
	// A new page must evict b (the least recently used).
	mk()
	if !p.Resident(a) || !p.Resident(c) {
		t.Fatal("wrong victim: a or c evicted")
	}
	if p.Resident(b) {
		t.Fatal("b survived; LRU ordering broken")
	}
}

func TestPinOnUnpinnedPanics(t *testing.T) {
	p, _, diskID, _ := env(t, 4, TwoLevel)
	f, _, _ := p.FixNew(diskID)
	p.Unfix(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Pin on unpinned frame did not panic")
		}
	}()
	p.Pin(f, 1)
}

func TestReadAheadQueueOverflowDropsHints(t *testing.T) {
	// Flood the daemon queue; hints beyond its capacity must be dropped,
	// never block the caller.
	p, _, diskID, _ := env(t, 8, TwoLevel)
	var pids []record.PageID
	for i := 0; i < 4; i++ {
		f, pid, err := p.FixNew(diskID)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, true)
		pids = append(pids, pid)
	}
	if err := p.StartDaemons(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			p.RequestReadAhead(pids[i%len(pids)])
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RequestReadAhead blocked")
	}
	p.StopDaemons()
}

func TestFlushAllSelectiveDevice(t *testing.T) {
	p, reg, diskID, memID := env(t, 16, TwoLevel)
	fd, pidD, _ := p.FixNew(diskID)
	copy(fd.Data(), "disk")
	p.Unfix(fd, true)
	fm, pidM, _ := p.FixNew(memID)
	copy(fm.Data(), "mem")
	p.Unfix(fm, true)
	// Flush only the disk device.
	if err := p.FlushAll(diskID); err != nil {
		t.Fatal(err)
	}
	d, _ := reg.Get(diskID)
	buf := make([]byte, device.PageSize)
	if err := d.ReadPage(pidD.Page, buf); err != nil || string(buf[:4]) != "disk" {
		t.Fatalf("disk page not flushed: %q %v", buf[:4], err)
	}
	// The mem page stays dirty in the buffer only; flushing everything
	// reaches it too.
	if err := p.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get(memID)
	if err := m.ReadPage(pidM.Page, buf); err != nil || string(buf[:3]) != "mem" {
		t.Fatalf("mem page not flushed by FlushAll(0): %q %v", buf[:3], err)
	}
}
