package buffer

import "repro/internal/metrics"

// FrameGauges counts the frames currently pinned and currently dirty,
// under the pool lock. These are instantaneous values (gauges), unlike
// the cumulative Stats counters.
func (p *Pool) FrameGauges() (pinned, dirty int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.fixCount > 0 {
			pinned++
		}
		if f.valid && f.dirty {
			dirty++
		}
	}
	return pinned, dirty
}

// RegisterMetrics exposes the pool through a metrics registry. The
// instruments are scrape-time callbacks over the pool's own atomic
// counters, so registration adds nothing to the fix/unfix hot path.
// Registering a second pool on the same registry replaces the first —
// the registry reports the most recently registered pool (the benchmark
// harness builds a fresh pool per pass). A nil registry is a no-op.
func (p *Pool) RegisterMetrics(r *metrics.Registry) {
	if !r.Enabled() {
		return
	}
	counter := func(name, help string, load func() int64) {
		r.SetCounterFunc(name, help, func() float64 { return float64(load()) })
	}
	counter("volcano_buffer_fixes_total", "Pages pinned via Fix/FixNew.", p.fixes.Load)
	counter("volcano_buffer_unfixes_total", "Pins released via Unfix.", p.unfixes.Load)
	counter("volcano_buffer_hits_total", "Fix requests satisfied from the buffer.", p.hits.Load)
	counter("volcano_buffer_misses_total", "Fix requests that required device I/O.", p.misses.Load)
	counter("volcano_buffer_reads_total", "Pages read from devices on buffer misses.", p.reads.Load)
	counter("volcano_buffer_writes_total", "Dirty pages written back to devices.", p.writes.Load)
	counter("volcano_buffer_evictions_total", "Valid pages evicted to make room.", p.evictions.Load)
	counter("volcano_buffer_restarts_total", "Operations restarted after a failed descriptor try-lock.", p.restarts.Load)
	counter("volcano_buffer_daemon_reads_total", "Pages read by the read-ahead daemon.", p.daemonReads.Load)
	counter("volcano_buffer_daemon_writes_total", "Pages flushed by the write-behind daemon.", p.daemonWrites.Load)
	counter("volcano_buffer_extra_pins_total", "Extra pins taken for broadcast record sharing.", p.xtraPins.Load)
	r.SetGaugeFunc("volcano_buffer_frames", "Total frames in the buffer pool.",
		func() float64 { return float64(len(p.frames)) })
	r.SetGaugeFunc("volcano_buffer_pinned_frames", "Frames currently pinned.",
		func() float64 { pinned, _ := p.FrameGauges(); return float64(pinned) })
	r.SetGaugeFunc("volcano_buffer_dirty_frames", "Frames currently holding dirty pages.",
		func() float64 { _, dirty := p.FrameGauges(); return float64(dirty) })
}
