package buffer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/record"
	"repro/internal/trace"
)

// The read-ahead/write-behind daemon (paper, §4.5): one or more daemon
// goroutines accept work requests on a queue. FLUSH writes a cluster if it
// is in the buffer and dirty; READAHEAD reads a cluster and inserts it at
// the top of the LRU chain, whence it ages out normally; QUIT terminates a
// daemon.

type daemonOp uint8

const (
	opFlush daemonOp = iota
	opReadAhead
	opQuit
)

type daemonReq struct {
	op  daemonOp
	pid record.PageID
}

type daemon struct {
	queue chan daemonReq
	wg    sync.WaitGroup
	n     int
}

// StartDaemons forks n read-ahead/write-behind daemons serving a shared
// work queue. It is an error to start daemons twice without stopping.
func (p *Pool) StartDaemons(n int) error {
	if n <= 0 {
		return fmt.Errorf("buffer: need at least one daemon, got %d", n)
	}
	p.mu.Lock()
	if p.daemon != nil {
		p.mu.Unlock()
		return fmt.Errorf("buffer: daemons already running")
	}
	d := &daemon{queue: make(chan daemonReq, 256), n: n}
	p.daemon = d
	tr := p.tracer
	p.mu.Unlock()
	d.wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go p.daemonLoop(d, i, tr)
	}
	return nil
}

// StopDaemons sends one QUIT per daemon and waits for them to exit.
func (p *Pool) StopDaemons() {
	p.mu.Lock()
	d := p.daemon
	p.daemon = nil
	p.mu.Unlock()
	if d == nil {
		return
	}
	for i := 0; i < d.n; i++ {
		d.queue <- daemonReq{op: opQuit}
	}
	d.wg.Wait()
}

// RequestFlush enqueues an asynchronous FLUSH of the page. If no daemon is
// running the flush is performed synchronously.
func (p *Pool) RequestFlush(pid record.PageID) {
	p.mu.Lock()
	d := p.daemon
	p.mu.Unlock()
	if d == nil {
		_ = p.FlushPage(pid)
		return
	}
	d.queue <- daemonReq{op: opFlush, pid: pid}
}

// RequestReadAhead enqueues an asynchronous READAHEAD of the page. If no
// daemon is running the request is ignored (read-ahead is a hint).
func (p *Pool) RequestReadAhead(pid record.PageID) {
	p.mu.Lock()
	d := p.daemon
	p.mu.Unlock()
	if d == nil {
		return
	}
	select {
	case d.queue <- daemonReq{op: opReadAhead, pid: pid}:
	default:
		// Queue full: dropping a read-ahead hint is always safe.
	}
}

// daemonLoop serves work requests. With a tracer attached each daemon
// gets its own track, so buffer-daemon activity (asynchronous flushes and
// read-aheads overlapping query work) shows up in the merged timeline.
func (p *Pool) daemonLoop(d *daemon, idx int, tr *trace.Tracer) {
	defer d.wg.Done()
	var tk *trace.Track
	if tr.Enabled() {
		tk = tr.NewTrack(fmt.Sprintf("buffer.daemon%d", idx))
	}
	for req := range d.queue {
		switch req.op {
		case opQuit:
			tk.Instant("buffer", "quit")
			return
		case opFlush:
			var begin time.Time
			if tk != nil {
				begin = time.Now()
			}
			if err := p.FlushPage(req.pid); err == nil {
				p.daemonWrites.Add(1)
			}
			if tk != nil {
				tk.SpanAt1("buffer", "flush", begin, time.Since(begin), "page", pageArg(req.pid))
			}
		case opReadAhead:
			// Fix + immediate clean unfix: the cluster lands in the buffer
			// and joins the replaceable chain. "The cluster remains in the
			// buffer using the normal aging process."
			var begin time.Time
			if tk != nil {
				begin = time.Now()
			}
			f, err := p.Fix(req.pid)
			if err != nil {
				continue
			}
			p.daemonReads.Add(1)
			p.Unfix(f, false)
			if tk != nil {
				tk.SpanAt1("buffer", "read-ahead", begin, time.Since(begin), "page", pageArg(req.pid))
			}
		}
	}
}

// pageArg flattens a PageID into one numeric trace argument.
func pageArg(pid record.PageID) int64 {
	return int64(pid.Dev)<<32 | int64(pid.Page)
}
