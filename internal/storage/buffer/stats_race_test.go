package buffer

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/storage/device"
)

// TestStatsConcurrentWithDaemons is the live-scraper scenario: queries
// fix and unfix pages, the write-behind and read-ahead daemons do
// asynchronous I/O, and a scraper reads Stats and the metrics endpoint
// the whole time. Run under -race this proves the counters are safe to
// read without the pool lock.
func TestStatsConcurrentWithDaemons(t *testing.T) {
	reg := device.NewRegistry()
	dev := reg.NextID()
	if err := reg.Mount(device.NewMem(dev)); err != nil {
		t.Fatal(err)
	}
	p := NewPool(reg, 8, TwoLevel)
	if err := p.StartDaemons(2); err != nil {
		t.Fatal(err)
	}
	defer p.StopDaemons()

	mr := metrics.NewRegistry()
	p.RegisterMetrics(mr)

	// Pre-allocate pages so workers can fix existing ones.
	var pids []record.PageID
	for i := 0; i < 16; i++ {
		f, pid, err := p.FixNew(dev)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, true)
		pids = append(pids, pid)
	}

	var writers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: fix/unfix churn plus daemon flush and read-ahead requests.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				pid := pids[(w*300+i)%len(pids)]
				f, err := p.Fix(pid)
				if err != nil {
					continue
				}
				p.Unfix(f, i%3 == 0)
				p.RequestFlush(pid)
				p.RequestReadAhead(pids[(i+1)%len(pids)])
			}
		}(w)
	}
	// Scraper: Stats(), FrameGauges() and the full exposition, lock-free
	// with respect to the counter writes.
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Stats()
			if s.Fixes < 0 || s.Hits+s.Misses > s.Fixes+s.DaemonReads+1000 {
				t.Errorf("implausible stats snapshot: %+v", s)
				return
			}
			p.FrameGauges()
			var sb strings.Builder
			if err := mr.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if _, err := metrics.ParseText(strings.NewReader(sb.String())); err != nil {
				t.Errorf("mid-run scrape unparseable: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraperDone

	s := p.Stats()
	if s.Fixes == 0 || s.Unfixes == 0 {
		t.Fatalf("no activity recorded: %+v", s)
	}
}
