package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
)

func env(t testing.TB, frames int) (*buffer.Pool, record.DeviceID) {
	t.Helper()
	reg := device.NewRegistry()
	id := reg.NextID()
	if err := reg.Mount(device.NewMem(id)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	return buffer.NewPool(reg, frames, buffer.TwoLevel), id
}

func ridFor(i int) record.RID {
	return record.RID{PageID: record.PageID{Dev: 1, Page: uint32(i/100 + 1)}, Slot: uint16(i % 100)}
}

func intKey(i int64) []byte { return EncodeKey(record.Int(i)) }

func TestEncodeKeyOrderPreserving(t *testing.T) {
	ints := []int64{-1 << 62, -100, -1, 0, 1, 7, 1 << 40}
	for i := 1; i < len(ints); i++ {
		a, b := EncodeKey(record.Int(ints[i-1])), EncodeKey(record.Int(ints[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("int order broken: %d !< %d", ints[i-1], ints[i])
		}
	}
	floats := []float64{-1e308, -1, -0.5, 0, 0.5, 1, 1e308}
	for i := 1; i < len(floats); i++ {
		a, b := EncodeKey(record.Float(floats[i-1])), EncodeKey(record.Float(floats[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("float order broken: %g !< %g", floats[i-1], floats[i])
		}
	}
	strs := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	for i := 1; i < len(strs); i++ {
		a, b := EncodeKey(record.Str(strs[i-1])), EncodeKey(record.Str(strs[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("string order broken: %q !< %q", strs[i-1], strs[i])
		}
	}
	// Multi-field: ("a","b") < ("ab",""): first field decides.
	a := EncodeKey(record.Str("a"), record.Str("b"))
	b := EncodeKey(record.Str("ab"), record.Str(""))
	if bytes.Compare(a, b) >= 0 {
		t.Error(`("a","b") !< ("ab","")`)
	}
	// Bool and mixed tuples.
	if bytes.Compare(EncodeKey(record.Bool(false)), EncodeKey(record.Bool(true))) >= 0 {
		t.Error("bool order broken")
	}
}

func TestQuickEncodeKeyOrder(t *testing.T) {
	prop := func(a, b int64, s1, s2 string) bool {
		ka := EncodeKey(record.Int(a), record.Str(s1))
		kb := EncodeKey(record.Int(b), record.Str(s2))
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		default:
			want = bytes.Compare([]byte(s1), []byte(s2))
			if want > 0 {
				want = 1
			} else if want < 0 {
				want = -1
			}
		}
		got := bytes.Compare(ka, kb)
		if got > 0 {
			got = 1
		} else if got < 0 {
			got = -1
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRecordKey(t *testing.T) {
	s := record.MustSchema(record.Field{Name: "a", Type: record.TInt}, record.Field{Name: "b", Type: record.TString})
	data := s.MustEncode(record.Int(5), record.Str("x"))
	k, err := EncodeRecordKey(s, data, record.Key{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, EncodeKey(record.Int(5), record.Str("x"))) {
		t.Fatal("EncodeRecordKey differs from EncodeKey")
	}
}

func TestInsertLookupSmall(t *testing.T) {
	pool, dev := env(t, 64)
	tree, err := Create(pool, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tree.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i := 0; i < 100; i++ {
		rids, err := tree.Lookup(intKey(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != ridFor(i) {
			t.Fatalf("Lookup(%d) = %v", i, rids)
		}
	}
	if rids, _ := tree.Lookup(intKey(1000)); len(rids) != 0 {
		t.Fatalf("Lookup(absent) = %v", rids)
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

func TestInsertManySplitsAndScan(t *testing.T) {
	pool, dev := env(t, 256)
	tree, _ := Create(pool, dev)
	const n = 20000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if err := tree.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d, expected splits", tree.Height())
	}
	c, err := tree.Scan(nil, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count := 0
	var prev []byte
	for {
		k, rid, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatal("scan out of order")
		}
		if rid != ridFor(count) {
			t.Fatalf("entry %d: rid %v, want %v", count, rid, ridFor(count))
		}
		prev = k
		count++
	}
	if count != n {
		t.Fatalf("scanned %d entries, want %d", count, n)
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak after scan")
	}
}

func TestRangeScanBounds(t *testing.T) {
	pool, dev := env(t, 128)
	tree, _ := Create(pool, dev)
	for i := 0; i < 1000; i++ {
		tree.Insert(intKey(int64(i)), ridFor(i))
	}
	cases := []struct {
		lo, hi       int64
		incLo, incHi bool
		want         int
	}{
		{100, 199, true, true, 100},
		{100, 199, false, true, 99},
		{100, 199, true, false, 99},
		{100, 199, false, false, 98},
		{0, 999, true, true, 1000},
		{500, 500, true, true, 1},
		{500, 500, false, true, 0},
		{2000, 3000, true, true, 0},
	}
	for _, tc := range cases {
		c, err := tree.Scan(intKey(tc.lo), intKey(tc.hi), tc.incLo, tc.incHi)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for {
			_, _, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			count++
		}
		c.Close()
		if count != tc.want {
			t.Errorf("scan[%d,%d] inc(%v,%v) = %d entries, want %d",
				tc.lo, tc.hi, tc.incLo, tc.incHi, count, tc.want)
		}
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak after range scans")
	}
}

func TestDuplicateKeys(t *testing.T) {
	pool, dev := env(t, 256)
	tree, _ := Create(pool, dev)
	// 500 duplicates of one key, mixed with others around it.
	for i := 0; i < 500; i++ {
		if err := tree.Insert(intKey(7), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		tree.Insert(intKey(6), ridFor(1000+i))
		tree.Insert(intKey(8), ridFor(2000+i))
	}
	rids, err := tree.Lookup(intKey(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 500 {
		t.Fatalf("Lookup(dup) = %d rids, want 500", len(rids))
	}
	// Exact duplicate (key, rid) is rejected.
	if err := tree.Insert(intKey(7), ridFor(3)); err == nil {
		t.Fatal("duplicate (key,rid) accepted")
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

func TestDelete(t *testing.T) {
	pool, dev := env(t, 128)
	tree, _ := Create(pool, dev)
	for i := 0; i < 1000; i++ {
		tree.Insert(intKey(int64(i)), ridFor(i))
	}
	// Delete the even keys.
	for i := 0; i < 1000; i += 2 {
		ok, err := tree.Delete(intKey(int64(i)), ridFor(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tree.Len())
	}
	// Absent deletions report false.
	ok, err := tree.Delete(intKey(0), ridFor(0))
	if err != nil || ok {
		t.Fatalf("re-Delete = %v, %v", ok, err)
	}
	ok, err = tree.Delete(intKey(5000), ridFor(0))
	if err != nil || ok {
		t.Fatalf("Delete(absent) = %v, %v", ok, err)
	}
	// Scan sees only odd keys, in order.
	c, _ := tree.Scan(nil, nil, true, true)
	defer c.Close()
	want := int64(1)
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !bytes.Equal(k, intKey(want)) {
			t.Fatalf("scan got key %x, want %d", k, want)
		}
		want += 2
	}
	if want != 1001 {
		t.Fatalf("scan ended at %d", want)
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

func TestDeleteDuplicateSpecificRID(t *testing.T) {
	pool, dev := env(t, 128)
	tree, _ := Create(pool, dev)
	for i := 0; i < 300; i++ {
		tree.Insert(intKey(5), ridFor(i))
	}
	// Delete one specific rid from the middle of the duplicate run.
	ok, err := tree.Delete(intKey(5), ridFor(150))
	if err != nil || !ok {
		t.Fatalf("Delete dup = %v, %v", ok, err)
	}
	rids, _ := tree.Lookup(intKey(5))
	if len(rids) != 299 {
		t.Fatalf("Lookup = %d, want 299", len(rids))
	}
	for _, r := range rids {
		if r == ridFor(150) {
			t.Fatal("deleted rid still present")
		}
	}
}

func TestStringKeys(t *testing.T) {
	pool, dev := env(t, 128)
	tree, _ := Create(pool, dev)
	words := []string{"volcano", "exchange", "iterator", "buffer", "device", "gamma", "wisconsin", ""}
	for i, w := range words {
		if err := tree.Insert(EncodeKey(record.Str(w)), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	c, _ := tree.Scan(nil, nil, true, true)
	defer c.Close()
	for _, w := range sorted {
		k, _, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("scan ended early: %v", err)
		}
		if !bytes.Equal(k, EncodeKey(record.Str(w))) {
			t.Fatalf("got %x, want key of %q", k, w)
		}
	}
	_ = pool
}

func TestKeyTooLarge(t *testing.T) {
	pool, dev := env(t, 32)
	tree, _ := Create(pool, dev)
	if err := tree.Insert(make([]byte, MaxKeyLen+1), ridFor(0)); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := tree.Insert(make([]byte, MaxKeyLen), ridFor(0)); err != nil {
		t.Fatalf("max-size key rejected: %v", err)
	}
	// Enough large keys to force splits at max key size.
	for i := 1; i < 40; i++ {
		k := make([]byte, MaxKeyLen)
		k[0] = byte(i)
		if err := tree.Insert(k, ridFor(i)); err != nil {
			t.Fatalf("large key %d: %v", i, err)
		}
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

func TestBulkload(t *testing.T) {
	pool, dev := env(t, 128)
	tree, err := Bulkload(pool, dev, func(yield func([]byte, record.RID) error) error {
		for i := 0; i < 5000; i++ {
			if err := yield(intKey(int64(i)), ridFor(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 5000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	// Unsorted input is rejected.
	_, err = Bulkload(pool, dev, func(yield func([]byte, record.RID) error) error {
		if err := yield(intKey(5), ridFor(0)); err != nil {
			return err
		}
		return yield(intKey(3), ridFor(1))
	})
	if err == nil {
		t.Fatal("unsorted bulkload accepted")
	}
}

// Property: a tree built from any permutation scans back sorted and
// complete.
func TestQuickTreeScanComplete(t *testing.T) {
	prop := func(seed int64) bool {
		pool, dev := env(t, 256)
		tree, _ := Create(pool, dev)
		n := 500
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		for _, i := range perm {
			if err := tree.Insert(intKey(int64(i)), ridFor(i)); err != nil {
				return false
			}
		}
		c, err := tree.Scan(nil, nil, true, true)
		if err != nil {
			return false
		}
		defer c.Close()
		for i := 0; i < n; i++ {
			k, rid, ok, err := c.Next()
			if err != nil || !ok || !bytes.Equal(k, intKey(int64(i))) || rid != ridFor(i) {
				return false
			}
		}
		_, _, ok, _ := c.Next()
		return !ok && pool.Stats().CurrentlyFixedHint == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	pool, dev := env(b, 1024)
	tree, _ := Create(pool, dev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(intKey(int64(i)), ridFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	pool, dev := env(b, 1024)
	tree, _ := Create(pool, dev)
	const n = 100000
	for i := 0; i < n; i++ {
		tree.Insert(intKey(int64(i)), ridFor(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Lookup(intKey(int64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleTree() {
	reg := device.NewRegistry()
	id := reg.NextID()
	reg.Mount(device.NewMem(id))
	pool := buffer.NewPool(reg, 64, buffer.TwoLevel)
	tree, _ := Create(pool, id)
	tree.Insert(EncodeKey(record.Int(1)), record.RID{PageID: record.PageID{Dev: 1, Page: 1}, Slot: 0})
	rids, _ := tree.Lookup(EncodeKey(record.Int(1)))
	fmt.Println(len(rids))
	// Output: 1
}
