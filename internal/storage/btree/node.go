package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/record"
	"repro/internal/storage/device"
)

// Node page layout:
//
//	[ kind(1) pad(1) nkeys(2) next(4) left(4) dataStart(2) ]   header, 14 B
//	[ slot0(4) slot1(4) ... ]                                  grows up
//	          ... free space ...
//	[ entryN ... entry1 entry0 ]                               grows down
//
// Leaf entry payload:     key || rid  (rid = dev 4 | page 4 | slot 2)
// Internal entry payload: key || child(4)
//
// In internal nodes, `left` is the leftmost child: entries' children hold
// keys >= their separator key. In leaves, `next` chains to the right
// sibling for range scans.
const (
	nodeHdrSize = 14
	slotSize    = 4
	ridSize     = 10
	childSize   = 4

	kindLeaf     = 1
	kindInternal = 2

	// MaxKeyLen bounds keys so that any node can hold at least four
	// entries after a split.
	MaxKeyLen = (device.PageSize - nodeHdrSize) / 4 / 2
)

type node struct{ b []byte }

func (n node) kind() byte         { return n.b[0] }
func (n node) setKind(k byte)     { n.b[0] = k }
func (n node) isLeaf() bool       { return n.b[0] == kindLeaf }
func (n node) nkeys() int         { return int(binary.LittleEndian.Uint16(n.b[2:])) }
func (n node) setNkeys(v int)     { binary.LittleEndian.PutUint16(n.b[2:], uint16(v)) }
func (n node) next() uint32       { return binary.LittleEndian.Uint32(n.b[4:]) }
func (n node) setNext(v uint32)   { binary.LittleEndian.PutUint32(n.b[4:], v) }
func (n node) left() uint32       { return binary.LittleEndian.Uint32(n.b[8:]) }
func (n node) setLeft(v uint32)   { binary.LittleEndian.PutUint32(n.b[8:], v) }
func (n node) dataStart() int     { return int(binary.LittleEndian.Uint16(n.b[12:])) }
func (n node) setDataStart(v int) { binary.LittleEndian.PutUint16(n.b[12:], uint16(v)) }

func (n node) init(kind byte) {
	for i := 0; i < nodeHdrSize; i++ {
		n.b[i] = 0
	}
	n.setKind(kind)
	n.setDataStart(device.PageSize)
}

func (n node) slot(i int) (off, length int) {
	base := nodeHdrSize + i*slotSize
	return int(binary.LittleEndian.Uint16(n.b[base:])), int(binary.LittleEndian.Uint16(n.b[base+2:]))
}

func (n node) setSlot(i, off, length int) {
	base := nodeHdrSize + i*slotSize
	binary.LittleEndian.PutUint16(n.b[base:], uint16(off))
	binary.LittleEndian.PutUint16(n.b[base+2:], uint16(length))
}

func (n node) payload(i int) []byte {
	off, length := n.slot(i)
	return n.b[off : off+length]
}

func (n node) valSize() int {
	if n.isLeaf() {
		return ridSize
	}
	return childSize
}

func (n node) key(i int) []byte {
	p := n.payload(i)
	return p[:len(p)-n.valSize()]
}

func (n node) rid(i int) record.RID {
	p := n.payload(i)
	v := p[len(p)-ridSize:]
	return record.RID{
		PageID: record.PageID{
			Dev:  record.DeviceID(binary.LittleEndian.Uint32(v)),
			Page: binary.LittleEndian.Uint32(v[4:]),
		},
		Slot: binary.LittleEndian.Uint16(v[8:]),
	}
}

func (n node) child(i int) uint32 {
	p := n.payload(i)
	return binary.LittleEndian.Uint32(p[len(p)-childSize:])
}

func encodeRID(rid record.RID) [ridSize]byte {
	var v [ridSize]byte
	binary.LittleEndian.PutUint32(v[0:], uint32(rid.Dev))
	binary.LittleEndian.PutUint32(v[4:], rid.Page)
	binary.LittleEndian.PutUint16(v[8:], rid.Slot)
	return v
}

// freeContiguous is the space between the slot directory and the payloads.
func (n node) freeContiguous() int {
	return n.dataStart() - (nodeHdrSize + n.nkeys()*slotSize)
}

// liveBytes is the total payload bytes in use.
func (n node) liveBytes() int {
	total := 0
	for i := 0; i < n.nkeys(); i++ {
		_, l := n.slot(i)
		total += l
	}
	return total
}

// freeTotal is the space available after compaction.
func (n node) freeTotal() int {
	return device.PageSize - nodeHdrSize - n.nkeys()*slotSize - n.liveBytes()
}

// compact rewrites payloads contiguously at the page end, squeezing out
// holes left by deletions.
func (n node) compact() {
	nk := n.nkeys()
	ents := make([][]byte, nk)
	for i := 0; i < nk; i++ {
		ents[i] = append([]byte(nil), n.payload(i)...)
	}
	n.setDataStart(device.PageSize)
	for i, p := range ents {
		off := n.dataStart() - len(p)
		copy(n.b[off:], p)
		n.setDataStart(off)
		n.setSlot(i, off, len(p))
	}
}

// search returns the index of the first entry whose key is >= key, and
// whether an exact match exists at that index.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.key(mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < n.nkeys() && bytes.Equal(n.key(lo), key)
	return lo, exact
}

// insertAt places payload at entry index i, shifting the slot directory.
// The caller must ensure space (possibly via compact).
func (n node) insertAt(i int, payload []byte) error {
	need := len(payload) + slotSize
	if n.freeContiguous() < need {
		if n.freeTotal() < need {
			return errNodeFull
		}
		n.compact()
	}
	nk := n.nkeys()
	// Shift slots [i, nk) up by one.
	base := nodeHdrSize + i*slotSize
	copy(n.b[base+slotSize:nodeHdrSize+(nk+1)*slotSize], n.b[base:nodeHdrSize+nk*slotSize])
	off := n.dataStart() - len(payload)
	copy(n.b[off:], payload)
	n.setDataStart(off)
	n.setSlot(i, off, len(payload))
	n.setNkeys(nk + 1)
	return nil
}

// deleteAt removes entry i from the slot directory (payload becomes a hole).
func (n node) deleteAt(i int) {
	nk := n.nkeys()
	base := nodeHdrSize + i*slotSize
	copy(n.b[base:], n.b[base+slotSize:nodeHdrSize+nk*slotSize])
	n.setNkeys(nk - 1)
}

var errNodeFull = fmt.Errorf("btree: node full")

// leafPayload builds a leaf entry payload.
func leafPayload(key []byte, rid record.RID) []byte {
	v := encodeRID(rid)
	p := make([]byte, 0, len(key)+ridSize)
	p = append(p, key...)
	return append(p, v[:]...)
}

// internalPayload builds an internal entry payload.
func internalPayload(key []byte, child uint32) []byte {
	p := make([]byte, 0, len(key)+childSize)
	p = append(p, key...)
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], child)
	return append(p, c[:]...)
}
