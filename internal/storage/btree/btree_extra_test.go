package btree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

// TestMixedInsertDeleteWorkload interleaves inserts and deletes and
// verifies the tree against a reference map after every phase.
func TestMixedInsertDeleteWorkload(t *testing.T) {
	pool, dev := env(t, 512)
	tree, _ := Create(pool, dev)
	ref := map[int64]record.RID{}
	rng := rand.New(rand.NewSource(7))

	check := func() {
		c, err := tree.Scan(nil, nil, true, true)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		seen := 0
		for {
			k, rid, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			// Decode the int key back (big-endian, sign-flipped).
			var v int64
			for _, b := range k {
				v = v<<8 | int64(b)
			}
			v ^= -1 << 63
			want, exists := ref[v]
			if !exists {
				t.Fatalf("scan found deleted key %d", v)
			}
			if want != rid {
				t.Fatalf("key %d: rid %v, want %v", v, rid, want)
			}
			seen++
		}
		if seen != len(ref) {
			t.Fatalf("scan found %d entries, reference has %d", seen, len(ref))
		}
		if tree.Len() != len(ref) {
			t.Fatalf("Len = %d, reference %d", tree.Len(), len(ref))
		}
	}

	for phase := 0; phase < 6; phase++ {
		// Insert a batch.
		for i := 0; i < 400; i++ {
			k := int64(rng.Intn(3000))
			if _, dup := ref[k]; dup {
				continue
			}
			rid := ridFor(int(k))
			if err := tree.Insert(intKey(k), rid); err != nil {
				t.Fatal(err)
			}
			ref[k] = rid
		}
		// Delete a batch.
		for i := 0; i < 150; i++ {
			k := int64(rng.Intn(3000))
			rid, exists := ref[k]
			ok, err := tree.Delete(intKey(k), rid)
			if err != nil {
				t.Fatal(err)
			}
			if ok != exists {
				t.Fatalf("Delete(%d) = %v, reference says %v", k, ok, exists)
			}
			delete(ref, k)
		}
		check()
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

// TestScanAfterHeavyDeletes ensures empty leaves are skipped correctly.
func TestScanAfterHeavyDeletes(t *testing.T) {
	pool, dev := env(t, 512)
	tree, _ := Create(pool, dev)
	const n = 5000
	for i := 0; i < n; i++ {
		tree.Insert(intKey(int64(i)), ridFor(i))
	}
	// Delete everything except every 1000th key: most leaves end empty.
	for i := 0; i < n; i++ {
		if i%1000 == 0 {
			continue
		}
		if ok, err := tree.Delete(intKey(int64(i)), ridFor(i)); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	c, _ := tree.Scan(nil, nil, true, true)
	defer c.Close()
	var got []int
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(k) != 8 {
			t.Fatal("bad key")
		}
		got = append(got, int(int64(bytesToU64(k))^(-1<<63)))
	}
	want := []int{0, 1000, 2000, 3000, 4000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak")
	}
}

func bytesToU64(b []byte) uint64 {
	var v uint64
	for _, c := range b[:8] {
		v = v<<8 | uint64(c)
	}
	return v
}

// TestOpenReattachesTree verifies the Open constructor used by durable
// catalogs.
func TestOpenReattachesTree(t *testing.T) {
	pool, dev := env(t, 256)
	tree, _ := Create(pool, dev)
	for i := 0; i < 2000; i++ {
		tree.Insert(intKey(int64(i)), ridFor(i))
	}
	reopened := Open(pool, dev, tree.RootPage(), tree.Height(), tree.Len())
	if reopened.Len() != 2000 || reopened.Height() != tree.Height() {
		t.Fatal("metadata lost")
	}
	rids, err := reopened.Lookup(intKey(777))
	if err != nil || len(rids) != 1 || rids[0] != ridFor(777) {
		t.Fatalf("Lookup through reopened tree: %v %v", rids, err)
	}
	// Writes through the reopened handle work too.
	if err := reopened.Insert(intKey(5000), ridFor(5000)); err != nil {
		t.Fatal(err)
	}
	if rids, _ := reopened.Lookup(intKey(5000)); len(rids) != 1 {
		t.Fatal("insert through reopened tree lost")
	}
}

// Property: for random int sets, range scans agree with a filtered
// reference.
func TestQuickRangeScanAgainstReference(t *testing.T) {
	prop := func(seed int64, loRaw, hiRaw uint16) bool {
		pool, dev := env(t, 512)
		tree, _ := Create(pool, dev)
		rng := rand.New(rand.NewSource(seed))
		present := map[int64]bool{}
		for i := 0; i < 800; i++ {
			k := int64(rng.Intn(1 << 14))
			if present[k] {
				continue
			}
			present[k] = true
			if err := tree.Insert(intKey(k), ridFor(int(k%60000))); err != nil {
				return false
			}
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range present {
			if k >= lo && k <= hi {
				want++
			}
		}
		c, err := tree.Scan(intKey(lo), intKey(hi), true, true)
		if err != nil {
			return false
		}
		defer c.Close()
		got := 0
		var prev []byte
		for {
			k, _, ok, err := c.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if prev != nil && bytes.Compare(prev, k) > 0 {
				return false
			}
			prev = k
			got++
		}
		return got == want && pool.Stats().CurrentlyFixedHint == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
