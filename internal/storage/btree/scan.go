package btree

import (
	"bytes"
	"fmt"

	"repro/internal/record"
	"repro/internal/storage/buffer"
)

// Cursor iterates (key, RID) pairs in ascending key order over a range.
// It holds one pinned leaf at a time.
type Cursor struct {
	t     *Tree
	frame *buffer.Frame
	n     node
	idx   int
	hi    []byte // nil = unbounded
	incHi bool
	done  bool
}

// Scan opens a cursor over keys in [lo, hi] with configurable endpoint
// inclusivity. lo may be nil for "from the beginning", hi nil for "to the
// end".
func (t *Tree) Scan(lo, hi []byte, incLo, incHi bool) (*Cursor, error) {
	c := &Cursor{t: t, hi: hi, incHi: incHi}
	// Descend to the leftmost candidate leaf.
	page := t.root
	for level := t.height; level > 1; level-- {
		fr, err := t.fix(page)
		if err != nil {
			return nil, err
		}
		n := node{fr.Data()}
		if lo == nil {
			page = n.left()
		} else {
			page = t.descend(n, lo)
		}
		t.pool.Unfix(fr, false)
	}
	fr, err := t.fix(page)
	if err != nil {
		return nil, err
	}
	c.frame, c.n = fr, node{fr.Data()}
	if !c.n.isLeaf() {
		c.Close()
		return nil, fmt.Errorf("btree: page %d: expected leaf", page)
	}
	if lo == nil {
		c.idx = 0
	} else {
		c.idx, _ = c.n.search(lo)
		if !incLo {
			for c.idx < c.n.nkeys() && bytes.Equal(c.n.key(c.idx), lo) {
				c.idx++
			}
		}
	}
	return c, nil
}

// Next returns the next (key, RID) pair. The key slice is a copy and safe
// to retain. ok=false signals the end of the range.
func (c *Cursor) Next() (key []byte, rid record.RID, ok bool, err error) {
	for {
		if c.done {
			return nil, record.RID{}, false, nil
		}
		if c.idx < c.n.nkeys() {
			k := c.n.key(c.idx)
			if c.hi != nil {
				cmp := bytes.Compare(k, c.hi)
				if cmp > 0 || (cmp == 0 && !c.incHi) {
					c.Close()
					return nil, record.RID{}, false, nil
				}
			}
			rid := c.n.rid(c.idx)
			c.idx++
			return append([]byte(nil), k...), rid, true, nil
		}
		// Advance to the next leaf (skipping empty ones).
		next := c.n.next()
		c.t.pool.Unfix(c.frame, false)
		c.frame = nil
		if next == 0 {
			c.done = true
			return nil, record.RID{}, false, nil
		}
		fr, err := c.t.fix(next)
		if err != nil {
			c.done = true
			return nil, record.RID{}, false, err
		}
		c.frame, c.n, c.idx = fr, node{fr.Data()}, 0
	}
}

// Close releases the cursor's pin. Safe to call repeatedly.
func (c *Cursor) Close() {
	if c.frame != nil {
		c.t.pool.Unfix(c.frame, false)
		c.frame = nil
	}
	c.done = true
}

// Bulkload builds a tree from entries that are already sorted by key,
// inserting them one by one (simple but sufficient: appends always hit the
// rightmost leaf, which stays buffer-resident).
func Bulkload(pool *buffer.Pool, dev record.DeviceID, entries func(yield func(key []byte, rid record.RID) error) error) (*Tree, error) {
	t, err := Create(pool, dev)
	if err != nil {
		return nil, err
	}
	var prev []byte
	err = entries(func(key []byte, rid record.RID) error {
		if prev != nil && bytes.Compare(key, prev) < 0 {
			return fmt.Errorf("btree: bulkload input not sorted")
		}
		prev = append(prev[:0], key...)
		return t.Insert(key, rid)
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
