// Package btree implements Volcano's B+-tree module on buffer-managed
// pages: insertion, deletion, point lookup and range scans over the leaf
// chain. Keys are opaque byte strings whose lexicographic order must match
// the desired key order; EncodeKey produces such order-preserving
// encodings from typed values.
//
// As in the paper (§4.5), Volcano provides no record-level concurrency
// control: trees support one writer at a time (reads may proceed from any
// number of goroutines when no writer is active).
package btree

import (
	"encoding/binary"
	"math"

	"repro/internal/record"
)

// EncodeKey renders values into bytes whose lexicographic order equals the
// value order (record.CompareValues), including across multi-field keys.
//
//   - int64:   big-endian with the sign bit flipped
//   - float64: IEEE bits, negative values fully inverted, positives with
//     the sign bit flipped (total order; NaN sorts below -Inf)
//   - bool:    one byte
//   - bytes:   0x00 escaped as 0x00 0x01, terminated by 0x00 0x00, so a
//     prefix sorts before its extensions and field boundaries align
func EncodeKey(vals ...record.Value) []byte {
	out := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		out = appendKeyValue(out, v)
	}
	return out
}

func appendKeyValue(out []byte, v record.Value) []byte {
	switch v.Kind {
	case record.TInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		return append(out, b[:]...)
	case record.TFloat:
		bits := math.Float64bits(v.F)
		if math.IsNaN(v.F) {
			bits = 0 // below every encoded float
		} else if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(out, b[:]...)
	case record.TBool:
		if v.B {
			return append(out, 1)
		}
		return append(out, 0)
	default:
		for _, c := range v.S {
			if c == 0 {
				out = append(out, 0, 1)
			} else {
				out = append(out, c)
			}
		}
		return append(out, 0, 0)
	}
}

// EncodeRecordKey extracts key fields from an encoded record and renders
// them with EncodeKey.
func EncodeRecordKey(s *record.Schema, data []byte, key record.Key) ([]byte, error) {
	vals := make([]record.Value, len(key))
	for i, f := range key {
		v, err := s.Get(data, f)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return EncodeKey(vals...), nil
}
