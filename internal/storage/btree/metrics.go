package btree

import (
	"sync/atomic"

	"repro/internal/metrics"

	"repro/internal/storage/buffer"
)

// Process-wide B+-tree counters (across all trees, like the device I/O
// counters): how often the index layer touches pages and how often it
// restructures.
var (
	pageFetches atomic.Int64 // pages pinned during descent, scan, and maintenance
	splits      atomic.Int64 // leaf splits, internal splits, and root growth
)

// fix pins a tree page through the pool, counting the fetch.
func (t *Tree) fix(page uint32) (*buffer.Frame, error) {
	pageFetches.Add(1)
	return t.pool.Fix(t.pid(page))
}

// RegisterMetrics exposes the package counters through a metrics
// registry. A nil registry is a no-op.
func RegisterMetrics(r *metrics.Registry) {
	if !r.Enabled() {
		return
	}
	r.SetCounterFunc("volcano_btree_page_fetches_total", "B+-tree pages pinned for descent, scans and maintenance.",
		func() float64 { return float64(pageFetches.Load()) })
	r.SetCounterFunc("volcano_btree_splits_total", "B+-tree node splits, including root growth.",
		func() float64 { return float64(splits.Load()) })
}
