package btree

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/record"
	"repro/internal/storage/buffer"
)

// Tree is a B+-tree mapping opaque order-preserving keys to RIDs.
// Duplicate keys are allowed: entries are unique on (key, RID).
type Tree struct {
	pool *buffer.Pool
	dev  record.DeviceID

	// write serialises structural modifications (single-writer; Volcano
	// has no record-level concurrency control).
	write  sync.Mutex
	root   uint32
	height int
	count  int
}

// Open reattaches to an existing tree from persisted metadata (root page,
// height, entry count) — the counterpart of a durable catalog entry.
func Open(pool *buffer.Pool, dev record.DeviceID, root uint32, height, count int) *Tree {
	return &Tree{pool: pool, dev: dev, root: root, height: height, count: count}
}

// Create allocates an empty tree (a single empty leaf as root) on the
// given device.
func Create(pool *buffer.Pool, dev record.DeviceID) (*Tree, error) {
	fr, pid, err := pool.FixNew(dev)
	if err != nil {
		return nil, fmt.Errorf("btree: create: %w", err)
	}
	node{fr.Data()}.init(kindLeaf)
	pool.Unfix(fr, true)
	return &Tree{pool: pool, dev: dev, root: pid.Page, height: 1}, nil
}

// Height returns the tree height in levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.count }

// RootPage returns the current root page (for tests).
func (t *Tree) RootPage() uint32 { return t.root }

func (t *Tree) pid(page uint32) record.PageID {
	return record.PageID{Dev: t.dev, Page: page}
}

// dupExists reports whether (key, rid) already exists, starting from entry
// idx of the pinned leaf n and walking right while keys match. The caller
// keeps n pinned; any further leaves are pinned and released here.
func (t *Tree) dupExists(n node, idx int, key []byte, rid record.RID) (bool, error) {
	var owned *buffer.Frame // pin we hold on the current leaf (nil = caller's)
	release := func() {
		if owned != nil {
			t.pool.Unfix(owned, false)
			owned = nil
		}
	}
	for {
		for ; idx < n.nkeys(); idx++ {
			if !bytes.Equal(n.key(idx), key) {
				release()
				return false, nil
			}
			if n.rid(idx) == rid {
				release()
				return true, nil
			}
		}
		next := n.next()
		release()
		if next == 0 {
			return false, nil
		}
		fr, err := t.fix(next)
		if err != nil {
			return false, err
		}
		owned, n, idx = fr, node{fr.Data()}, 0
	}
}

// descend returns the child of internal node n to follow for key: the
// rightmost child whose separator is strictly below the key.
func (t *Tree) descend(n node, key []byte) uint32 {
	i, _ := n.search(key) // first separator >= key
	if i == 0 {
		return n.left()
	}
	return n.child(i - 1)
}

// Insert adds (key, rid). Inserting an exact duplicate of an existing
// (key, rid) pair is an error.
func (t *Tree) Insert(key []byte, rid record.RID) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), MaxKeyLen)
	}
	t.write.Lock()
	defer t.write.Unlock()
	sepKey, newChild, err := t.insertInto(t.root, t.height, key, rid)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		splits.Add(1)
		fr, pid, err := t.pool.FixNew(t.dev)
		if err != nil {
			return fmt.Errorf("btree: root split: %w", err)
		}
		n := node{fr.Data()}
		n.init(kindInternal)
		n.setLeft(t.root)
		if err := n.insertAt(0, internalPayload(sepKey, newChild)); err != nil {
			t.pool.Unfix(fr, false)
			return err
		}
		t.pool.Unfix(fr, true)
		t.root = pid.Page
		t.height++
	}
	t.count++
	return nil
}

// insertInto descends to the leaf, inserts, and propagates splits upward.
// On split it returns the separator key and new right sibling page.
func (t *Tree) insertInto(page uint32, level int, key []byte, rid record.RID) (sep []byte, newPage uint32, err error) {
	fr, err := t.fix(page)
	if err != nil {
		return nil, 0, err
	}
	n := node{fr.Data()}

	if level == 1 {
		if !n.isLeaf() {
			t.pool.Unfix(fr, false)
			return nil, 0, fmt.Errorf("btree: page %d: expected leaf", page)
		}
		i, _ := n.search(key)
		// Reject exact (key, rid) duplicates; equal keys may span leaves,
		// so walk the chain while keys still match.
		dup, err := t.dupExists(n, i, key, rid)
		if err != nil {
			t.pool.Unfix(fr, false)
			return nil, 0, err
		}
		if dup {
			t.pool.Unfix(fr, false)
			return nil, 0, fmt.Errorf("btree: duplicate entry (%x, %s)", key, rid)
		}
		if err := n.insertAt(i, leafPayload(key, rid)); err == nil {
			t.pool.Unfix(fr, true)
			return nil, 0, nil
		}
		sep, newPage, err = t.splitLeaf(fr, n, key, rid)
		return sep, newPage, err
	}

	// Internal node: descend into the rightmost child whose separator is
	// strictly below the key. On equality we go left, because duplicates
	// of a separator key may live on both sides; leaf-chain traversal
	// picks up the rest.
	child := t.descend(n, key)
	t.pool.Unfix(fr, false)

	csep, cpage, err := t.insertInto(child, level-1, key, rid)
	if err != nil || cpage == 0 {
		return nil, 0, err
	}

	// Child split: insert the separator immediately after the child that
	// split. Position by child pointer, not by key search — with duplicate
	// keys several separators can be equal, and key search could place the
	// new sibling out of chain order.
	fr, err = t.fix(page)
	if err != nil {
		return nil, 0, err
	}
	n = node{fr.Data()}
	j := -1
	if n.left() == child {
		j = 0
	} else {
		for e := 0; e < n.nkeys(); e++ {
			if n.child(e) == child {
				j = e + 1
				break
			}
		}
	}
	if j < 0 {
		t.pool.Unfix(fr, false)
		return nil, 0, fmt.Errorf("btree: page %d: split child %d not found", page, child)
	}
	if err := n.insertAt(j, internalPayload(csep, cpage)); err == nil {
		t.pool.Unfix(fr, true)
		return nil, 0, nil
	}
	return t.splitInternal(fr, n, csep, cpage, j)
}

// splitLeaf splits the full leaf held by fr and inserts (key, rid) into
// the proper half. Returns the separator (first key of the right node).
func (t *Tree) splitLeaf(fr *buffer.Frame, n node, key []byte, rid record.RID) ([]byte, uint32, error) {
	splits.Add(1)
	rfr, rpid, err := t.pool.FixNew(t.dev)
	if err != nil {
		t.pool.Unfix(fr, false)
		return nil, 0, err
	}
	rn := node{rfr.Data()}
	rn.init(kindLeaf)

	nk := n.nkeys()
	mid := nk / 2
	// Move entries [mid, nk) to the right node.
	for i := mid; i < nk; i++ {
		if err := rn.insertAt(i-mid, append([]byte(nil), n.payload(i)...)); err != nil {
			t.pool.Unfix(rfr, false)
			t.pool.Unfix(fr, true)
			return nil, 0, err
		}
	}
	n.setNkeys(mid)
	n.compact()
	rn.setNext(n.next())
	// Leaf chain: left -> right (the new page is on the same device).
	n.setNext(rpid.Page)

	sep := append([]byte(nil), rn.key(0)...)
	// Insert the new entry into the correct half.
	tn := n
	if bytes.Compare(key, sep) >= 0 {
		tn = rn
	}
	i, _ := tn.search(key)
	err = tn.insertAt(i, leafPayload(key, rid))
	t.pool.Unfix(fr, true)
	t.pool.Unfix(rfr, true)
	if err != nil {
		return nil, 0, fmt.Errorf("btree: split leaf: %w", err)
	}
	return sep, rpid.Page, nil
}

// splitInternal splits the full internal node held by fr and inserts
// (sep, child) at entry index j (positional, to preserve child/chain
// order under duplicate separators). The middle key moves up.
func (t *Tree) splitInternal(fr *buffer.Frame, n node, sep []byte, child uint32, j int) ([]byte, uint32, error) {
	splits.Add(1)
	rfr, rpid, err := t.pool.FixNew(t.dev)
	if err != nil {
		t.pool.Unfix(fr, false)
		return nil, 0, err
	}
	rn := node{rfr.Data()}
	rn.init(kindInternal)

	nk := n.nkeys()
	mid := nk / 2
	up := append([]byte(nil), n.key(mid)...)
	rn.setLeft(n.child(mid))
	for i := mid + 1; i < nk; i++ {
		if err := rn.insertAt(i-mid-1, append([]byte(nil), n.payload(i)...)); err != nil {
			t.pool.Unfix(rfr, false)
			t.pool.Unfix(fr, true)
			return nil, 0, err
		}
	}
	n.setNkeys(mid)
	n.compact()

	// Insert the pending separator into the half its position falls in.
	if j <= mid {
		err = n.insertAt(j, internalPayload(sep, child))
	} else {
		err = rn.insertAt(j-mid-1, internalPayload(sep, child))
	}
	t.pool.Unfix(fr, true)
	t.pool.Unfix(rfr, true)
	if err != nil {
		return nil, 0, fmt.Errorf("btree: split internal: %w", err)
	}
	return up, rpid.Page, nil
}

// Delete removes the entry (key, rid) and reports whether it was present.
// Nodes are not rebalanced; empty leaves remain in the chain and are
// skipped by scans.
func (t *Tree) Delete(key []byte, rid record.RID) (bool, error) {
	t.write.Lock()
	defer t.write.Unlock()
	page := t.root
	for level := t.height; level > 1; level-- {
		fr, err := t.fix(page)
		if err != nil {
			return false, err
		}
		n := node{fr.Data()}
		page = t.descend(n, key)
		t.pool.Unfix(fr, false)
	}
	// Walk the leaf chain while keys match (duplicates may span leaves).
	for page != 0 {
		fr, err := t.fix(page)
		if err != nil {
			return false, err
		}
		n := node{fr.Data()}
		i, _ := n.search(key)
		for ; i < n.nkeys(); i++ {
			c := bytes.Compare(n.key(i), key)
			if c > 0 {
				t.pool.Unfix(fr, false)
				return false, nil
			}
			if n.rid(i) == rid {
				n.deleteAt(i)
				t.pool.Unfix(fr, true)
				t.count--
				return true, nil
			}
		}
		next := n.next()
		t.pool.Unfix(fr, false)
		page = next
	}
	return false, nil
}

// Lookup returns the RIDs of all entries with exactly the given key.
func (t *Tree) Lookup(key []byte) ([]record.RID, error) {
	c, err := t.Scan(key, key, true, true)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var out []record.RID
	for {
		_, rid, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rid)
	}
}
