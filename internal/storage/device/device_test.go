package device

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/record"
)

func newTestDisk(t *testing.T, capacity uint32) *Disk {
	t.Helper()
	d, err := NewDisk(1, filepath.Join(t.TempDir(), "disk"), capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func pageOf(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestDiskAllocWriteRead(t *testing.T) {
	d := newTestDisk(t, 16)
	p1, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if p1 == 0 {
		t.Fatal("allocated page 0 (reserved)")
	}
	p2, _ := d.AllocPage()
	if p1 == p2 {
		t.Fatal("duplicate page allocation")
	}
	if d.Allocated() != 2 {
		t.Fatalf("Allocated = %d, want 2", d.Allocated())
	}
	want := pageOf(0xAB)
	if err := d.WritePage(p1, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(p1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read differs from write")
	}
	// Unwritten allocated page reads as zeros.
	if err := d.ReadPage(p2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, PageSize)) {
		t.Fatal("fresh page not zeroed")
	}
}

func TestDiskFreeAndReuse(t *testing.T) {
	d := newTestDisk(t, 4)
	var pages []uint32
	for {
		p, err := d.AllocPage()
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	// Capacity 4 minus the superblock and one bitmap page leaves 3.
	if len(pages) != 3 {
		t.Fatalf("allocated %d pages from capacity-4 disk, want 3", len(pages))
	}
	if _, err := d.AllocPage(); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if err := d.FreePage(pages[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.FreePage(pages[1]); err == nil {
		t.Fatal("double free succeeded")
	}
	p, err := d.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if p != pages[1] {
		t.Fatalf("reused page %d, want %d", p, pages[1])
	}
}

func TestDiskBoundsChecks(t *testing.T) {
	d := newTestDisk(t, 4)
	buf := make([]byte, PageSize)
	if err := d.ReadPage(0, buf); err == nil {
		t.Fatal("read of page 0 succeeded")
	}
	if err := d.ReadPage(99, buf); err == nil {
		t.Fatal("read beyond capacity succeeded")
	}
	if err := d.WritePage(1, []byte{1}); err == nil {
		t.Fatal("short write buffer accepted")
	}
	if err := d.ReadPage(1, []byte{1}); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if _, err := NewDisk(1, filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestDiskConcurrentAlloc(t *testing.T) {
	d := newTestDisk(t, 1024)
	const workers, each = 8, 64
	var wg sync.WaitGroup
	pages := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p, err := d.AllocPage()
				if err != nil {
					t.Error(err)
					return
				}
				pages[w] = append(pages[w], p)
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint32]bool{}
	for _, ps := range pages {
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("page %d allocated twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("allocated %d unique pages, want %d", len(seen), workers*each)
	}
}

func TestDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk")
	d, err := NewDisk(1, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := d.AllocPage()
	p2, _ := d.AllocPage()
	want := pageOf(0x5A)
	if err := d.WritePage(p1, want); err != nil {
		t.Fatal(err)
	}
	if err := d.FreePage(p2); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Remount: allocation state and data must survive.
	d2, err := OpenDisk(1, path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Allocated() != 1 {
		t.Fatalf("Allocated = %d after remount, want 1", d2.Allocated())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(p1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page data lost across remount")
	}
	// p2 was freed: it must be reusable, and p1 must not be reallocated.
	p3, err := d2.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("remounted disk reallocated a live page")
	}
	if p3 != p2 {
		t.Fatalf("expected freed page %d to be reused, got %d", p2, p3)
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := osWriteFile(path, make([]byte, PageSize*2)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(1, path); err == nil {
		t.Fatal("garbage file accepted as disk")
	}
	if _, err := OpenDisk(1, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNewDiskTooSmallForMetadata(t *testing.T) {
	if _, err := NewDisk(1, filepath.Join(t.TempDir(), "tiny"), 1); err == nil {
		t.Fatal("capacity 1 accepted (no room for metadata)")
	}
}

func TestMemDevice(t *testing.T) {
	m := NewMem(7)
	if !m.Virtual() {
		t.Fatal("Mem not virtual")
	}
	if m.ID() != 7 {
		t.Fatal("wrong id")
	}
	p, err := m.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	// Fresh page reads as zeros.
	if err := m.ReadPage(p, buf); err != nil {
		t.Fatal(err)
	}
	want := pageOf(0x42)
	if err := m.WritePage(p, want); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadPage(p, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("read differs from write")
	}
	// Nonexistent pages error.
	if err := m.ReadPage(999, buf); err == nil {
		t.Fatal("read of unallocated virtual page succeeded")
	}
	if err := m.WritePage(999, want); err == nil {
		t.Fatal("write of unallocated virtual page succeeded")
	}
	if err := m.FreePage(p); err != nil {
		t.Fatal(err)
	}
	if err := m.FreePage(p); err == nil {
		t.Fatal("double free succeeded")
	}
	if m.Allocated() != 0 {
		t.Fatalf("Allocated = %d after free", m.Allocated())
	}
	// Freed page numbers are recycled.
	p2, _ := m.AllocPage()
	if p2 != p {
		t.Fatalf("freed page not recycled: got %d, want %d", p2, p)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	id := r.NextID()
	m := NewMem(id)
	if err := r.Mount(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Mount(m); err == nil {
		t.Fatal("double mount succeeded")
	}
	got, err := r.Get(id)
	if err != nil || got != Device(m) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := r.Get(record.DeviceID(99)); err == nil {
		t.Fatal("Get of unmounted id succeeded")
	}
	// NextID never collides with mounted ids.
	if r.NextID() == id {
		t.Fatal("NextID reused a mounted id")
	}
	if err := r.Unmount(id); err != nil {
		t.Fatal(err)
	}
	if err := r.Unmount(id); err == nil {
		t.Fatal("double unmount succeeded")
	}
	_ = r.Mount(m)
	if err := r.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(id); err == nil {
		t.Fatal("device survived CloseAll")
	}
}

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
