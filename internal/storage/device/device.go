// Package device implements Volcano's device layer: real (disk) devices
// holding stored files, and virtual devices whose pages hold intermediate
// results (paper, §3). Devices hand out fixed-size pages identified by page
// number; the buffer manager is the only component that reads or writes
// page contents.
//
// Concurrency follows §4.5 of the paper: each disk device has a "device
// busy" lock held across seek/read/write, and a "map busy" lock protecting
// the free-space bitmap.
package device

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/record"
)

// PageSize is the size of every page (cluster) in the system, in bytes.
const PageSize = 4096

// Device is the abstraction the buffer manager and file system operate on.
// Page numbers start at 1; page 0 is the nil sentinel.
type Device interface {
	// ID returns the device's identity within its registry.
	ID() record.DeviceID
	// ReadPage reads page into buf, which must be PageSize bytes.
	ReadPage(page uint32, buf []byte) error
	// WritePage writes the PageSize bytes of data to page.
	WritePage(page uint32, data []byte) error
	// AllocPage allocates a fresh page and returns its number.
	AllocPage() (uint32, error)
	// FreePage returns a page to the free pool.
	FreePage(page uint32) error
	// Allocated reports the number of currently allocated pages.
	Allocated() int
	// Virtual reports whether the device is a buffer-resident virtual
	// device (true) or a simulated disk (false).
	Virtual() bool
	// Close releases underlying resources.
	Close() error
}

// Disk is a file-backed simulated disk device with a free-space bitmap and
// optional simulated seek/transfer latency.
type Disk struct {
	id       record.DeviceID
	f        *os.File
	capacity uint32

	// busy is the paper's "device busy" lock, held while seeking and
	// transferring (§4.5).
	busy sync.Mutex
	// lastPage tracks head position for the seek-latency model.
	lastPage uint32

	// mapBusy is the paper's "map busy" lock protecting the bitmap.
	mapBusy   sync.Mutex
	bitmap    []uint64
	allocated int

	// SeekLatency is charged whenever an access is not sequential with the
	// previous one; TransferLatency is charged per page moved. Zero means
	// no simulation.
	SeekLatency     time.Duration
	TransferLatency time.Duration
}

// Superblock layout (page 0):
//
//	magic(8) | capacity(4) | allocated(4) | bitmapPages(4)
//
// followed by the free-space bitmap in pages 1..bitmapPages. Page 0 and
// the bitmap pages are marked allocated and never handed out.
var diskMagic = [8]byte{'V', 'O', 'L', 'C', 'D', 'S', 'K', '1'}

// bitmapLayout computes the bitmap size for a capacity.
func bitmapLayout(capacity uint32) (words int, pages uint32) {
	words = int((capacity+64)/64 + 1)
	bytes := words * 8
	pages = uint32((bytes + PageSize - 1) / PageSize)
	return words, pages
}

// NewDisk creates (formatting) a disk device backed by path with room for
// capacity pages. The superblock and free-space bitmap live in the first
// pages; call Sync to persist allocation state, and OpenDisk to remount.
func NewDisk(id record.DeviceID, path string, capacity uint32) (*Disk, error) {
	if capacity == 0 {
		return nil, fmt.Errorf("device: zero capacity")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	words, metaPages := bitmapLayout(capacity)
	if metaPages+1 >= capacity {
		f.Close()
		return nil, fmt.Errorf("device: capacity %d too small for metadata", capacity)
	}
	d := &Disk{
		id:       id,
		f:        f,
		capacity: capacity,
		bitmap:   make([]uint64, words),
	}
	// Page 0 (superblock) and the bitmap pages are never allocatable.
	for pg := uint32(0); pg <= metaPages; pg++ {
		d.bitmap[pg/64] |= 1 << (pg % 64)
	}
	if err := d.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenDisk mounts an existing disk device created by NewDisk, restoring
// its capacity and free-space bitmap from the superblock.
func OpenDisk(id record.DeviceID, path string) (*Disk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	super := make([]byte, PageSize)
	if _, err := f.ReadAt(super, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("device: read superblock of %s: %w", path, err)
	}
	if string(super[:8]) != string(diskMagic[:]) {
		f.Close()
		return nil, fmt.Errorf("device: %s is not a volcano disk", path)
	}
	capacity := binaryLE32(super[8:])
	allocated := int(binaryLE32(super[12:]))
	words, metaPages := bitmapLayout(capacity)
	raw := make([]byte, int(metaPages)*PageSize)
	if _, err := f.ReadAt(raw, PageSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("device: read bitmap of %s: %w", path, err)
	}
	d := &Disk{
		id:        id,
		f:         f,
		capacity:  capacity,
		allocated: allocated,
		bitmap:    make([]uint64, words),
	}
	for i := range d.bitmap {
		d.bitmap[i] = binaryLE64(raw[i*8:])
	}
	return d, nil
}

// Sync persists the superblock and free-space bitmap.
func (d *Disk) Sync() error {
	d.mapBusy.Lock()
	words := len(d.bitmap)
	_, metaPages := bitmapLayout(d.capacity)
	super := make([]byte, PageSize)
	copy(super, diskMagic[:])
	putLE32(super[8:], d.capacity)
	putLE32(super[12:], uint32(d.allocated))
	putLE32(super[16:], metaPages)
	raw := make([]byte, int(metaPages)*PageSize)
	for i := 0; i < words; i++ {
		putLE64(raw[i*8:], d.bitmap[i])
	}
	d.mapBusy.Unlock()

	d.busy.Lock()
	defer d.busy.Unlock()
	if _, err := d.f.WriteAt(super, 0); err != nil {
		return fmt.Errorf("device %d: write superblock: %w", d.id, err)
	}
	if _, err := d.f.WriteAt(raw, PageSize); err != nil {
		return fmt.Errorf("device %d: write bitmap: %w", d.id, err)
	}
	return d.f.Sync()
}

func binaryLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func binaryLE64(b []byte) uint64 {
	return uint64(binaryLE32(b)) | uint64(binaryLE32(b[4:]))<<32
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

// ID implements Device.
func (d *Disk) ID() record.DeviceID { return d.id }

// Virtual implements Device.
func (d *Disk) Virtual() bool { return false }

// FirstDataPage returns the first page number past the superblock and
// bitmap; durable volumes root their VTOC there.
func (d *Disk) FirstDataPage() uint32 {
	_, metaPages := bitmapLayout(d.capacity)
	return metaPages + 1
}

// Allocated implements Device.
func (d *Disk) Allocated() int {
	d.mapBusy.Lock()
	defer d.mapBusy.Unlock()
	return d.allocated
}

func (d *Disk) checkPage(page uint32) error {
	if page == 0 || page > d.capacity {
		return fmt.Errorf("device %d: page %d out of range (capacity %d)", d.id, page, d.capacity)
	}
	return nil
}

// simulate charges the latency model for an access to page.
func (d *Disk) simulate(page uint32) {
	if d.SeekLatency > 0 && page != d.lastPage+1 && page != d.lastPage {
		time.Sleep(d.SeekLatency)
	}
	if d.TransferLatency > 0 {
		time.Sleep(d.TransferLatency)
	}
	d.lastPage = page
}

// ReadPage implements Device.
func (d *Disk) ReadPage(page uint32, buf []byte) error {
	if err := d.checkPage(page); err != nil {
		return err
	}
	if len(buf) != PageSize {
		return fmt.Errorf("device %d: read buffer is %d bytes, want %d", d.id, len(buf), PageSize)
	}
	// The device busy lock serialises the seek+transfer pair so two
	// processes cannot interleave seeks (§4.5).
	d.busy.Lock()
	defer d.busy.Unlock()
	d.simulate(page)
	n, err := d.f.ReadAt(buf, int64(page)*PageSize)
	if err != nil {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			return fmt.Errorf("device %d: read page %d: %w", d.id, page, err)
		}
		// Reading a page that was allocated but never written yields zeros.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	countRead()
	return nil
}

// WritePage implements Device.
func (d *Disk) WritePage(page uint32, data []byte) error {
	if err := d.checkPage(page); err != nil {
		return err
	}
	if len(data) != PageSize {
		return fmt.Errorf("device %d: write buffer is %d bytes, want %d", d.id, len(data), PageSize)
	}
	d.busy.Lock()
	defer d.busy.Unlock()
	d.simulate(page)
	if _, err := d.f.WriteAt(data, int64(page)*PageSize); err != nil {
		return fmt.Errorf("device %d: write page %d: %w", d.id, page, err)
	}
	countWrite()
	return nil
}

// AllocPage implements Device.
func (d *Disk) AllocPage() (uint32, error) {
	d.mapBusy.Lock()
	defer d.mapBusy.Unlock()
	for w, bits := range d.bitmap {
		if bits == ^uint64(0) {
			continue
		}
		for b := 0; b < 64; b++ {
			if bits&(1<<uint(b)) == 0 {
				page := uint32(w*64 + b)
				if page > d.capacity {
					return 0, fmt.Errorf("device %d: full (%d pages)", d.id, d.capacity)
				}
				d.bitmap[w] |= 1 << uint(b)
				d.allocated++
				return page, nil
			}
		}
	}
	return 0, fmt.Errorf("device %d: full (%d pages)", d.id, d.capacity)
}

// FreePage implements Device.
func (d *Disk) FreePage(page uint32) error {
	if err := d.checkPage(page); err != nil {
		return err
	}
	d.mapBusy.Lock()
	defer d.mapBusy.Unlock()
	w, b := page/64, page%64
	if d.bitmap[w]&(1<<b) == 0 {
		return fmt.Errorf("device %d: double free of page %d", d.id, page)
	}
	d.bitmap[w] &^= 1 << b
	d.allocated--
	return nil
}

// Close implements Device.
func (d *Disk) Close() error { return d.f.Close() }

// Mem is a virtual device: its pages live in memory and serve as backing
// store for intermediate results, giving them unique RIDs and letting
// operators manage them "as if they resided on a real device" (paper §3).
type Mem struct {
	id record.DeviceID

	mu    sync.Mutex
	pages map[uint32][]byte
	next  uint32
	freed []uint32
}

// NewMem creates a virtual device.
func NewMem(id record.DeviceID) *Mem {
	return &Mem{id: id, pages: make(map[uint32][]byte), next: 1}
}

// ID implements Device.
func (m *Mem) ID() record.DeviceID { return m.id }

// Virtual implements Device.
func (m *Mem) Virtual() bool { return true }

// Allocated implements Device.
func (m *Mem) Allocated() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// ReadPage implements Device.
func (m *Mem) ReadPage(page uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("device %d: read buffer is %d bytes, want %d", m.id, len(buf), PageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.pages[page]
	if !ok {
		return fmt.Errorf("device %d: virtual page %d does not exist", m.id, page)
	}
	if data == nil {
		for i := range buf {
			buf[i] = 0
		}
		countRead()
		return nil
	}
	copy(buf, data)
	countRead()
	return nil
}

// WritePage implements Device.
func (m *Mem) WritePage(page uint32, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("device %d: write buffer is %d bytes, want %d", m.id, len(data), PageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[page]; !ok {
		return fmt.Errorf("device %d: virtual page %d does not exist", m.id, page)
	}
	m.pages[page] = append([]byte(nil), data...)
	countWrite()
	return nil
}

// AllocPage implements Device.
func (m *Mem) AllocPage() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var page uint32
	if n := len(m.freed); n > 0 {
		page = m.freed[n-1]
		m.freed = m.freed[:n-1]
	} else {
		page = m.next
		m.next++
	}
	m.pages[page] = nil
	return page, nil
}

// FreePage implements Device.
func (m *Mem) FreePage(page uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[page]; !ok {
		return fmt.Errorf("device %d: double free of virtual page %d", m.id, page)
	}
	delete(m.pages, page)
	m.freed = append(m.freed, page)
	return nil
}

// Close implements Device.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = make(map[uint32][]byte)
	return nil
}

// Registry maps device IDs to mounted devices. Mounting is one of the
// "typically non-repetitive actions" the paper requires the query root
// process to perform before parallel evaluation; the registry is
// nevertheless safe for concurrent lookup.
type Registry struct {
	mu      sync.RWMutex
	devices map[record.DeviceID]Device
	nextID  record.DeviceID
}

// NewRegistry creates an empty device registry.
func NewRegistry() *Registry {
	return &Registry{devices: make(map[record.DeviceID]Device), nextID: 1}
}

// NextID reserves and returns a fresh device ID.
func (r *Registry) NextID() record.DeviceID {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	return id
}

// Mount registers a device.
func (r *Registry) Mount(d Device) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.devices[d.ID()]; dup {
		return fmt.Errorf("device: id %d already mounted", d.ID())
	}
	r.devices[d.ID()] = d
	if d.ID() >= r.nextID {
		r.nextID = d.ID() + 1
	}
	return nil
}

// Unmount removes a device from the registry (does not close it).
func (r *Registry) Unmount(id record.DeviceID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.devices[id]; !ok {
		return fmt.Errorf("device: id %d not mounted", id)
	}
	delete(r.devices, id)
	return nil
}

// Get looks up a mounted device.
func (r *Registry) Get(id record.DeviceID) (Device, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.devices[id]
	if !ok {
		return nil, fmt.Errorf("device: id %d not mounted", id)
	}
	return d, nil
}

// CloseAll closes every mounted device.
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for id, d := range r.devices {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
		delete(r.devices, id)
	}
	return first
}
