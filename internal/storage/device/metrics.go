package device

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Process-wide I/O counters, split by device class. They are
// package-level because devices come and go (remounts, per-pass virtual
// devices) while the I/O totals should survive them — the Prometheus
// model of process-lifetime counters.
var (
	ioReads      atomic.Int64 // pages read (disk + virtual)
	ioWrites     atomic.Int64 // pages written (disk + virtual)
	ioReadBytes  atomic.Int64
	ioWriteBytes atomic.Int64
)

// countRead records one page read.
func countRead() {
	ioReads.Add(1)
	ioReadBytes.Add(PageSize)
}

// countWrite records one page write.
func countWrite() {
	ioWrites.Add(1)
	ioWriteBytes.Add(PageSize)
}

// RegisterMetrics exposes the package's I/O counters through a metrics
// registry. A nil registry is a no-op.
func RegisterMetrics(r *metrics.Registry) {
	if !r.Enabled() {
		return
	}
	r.SetCounterFunc("volcano_device_page_reads_total", "Pages read from devices.",
		func() float64 { return float64(ioReads.Load()) })
	r.SetCounterFunc("volcano_device_page_writes_total", "Pages written to devices.",
		func() float64 { return float64(ioWrites.Load()) })
	r.SetCounterFunc("volcano_device_read_bytes_total", "Bytes read from devices.",
		func() float64 { return float64(ioReadBytes.Load()) })
	r.SetCounterFunc("volcano_device_write_bytes_total", "Bytes written to devices.",
		func() float64 { return float64(ioWriteBytes.Load()) })
}
