package file

import (
	"fmt"

	"repro/internal/record"
)

// Scan iterates over all live records of a file in storage order. It pins
// one page at a time; each record returned carries its own pin, which the
// caller must release (the ownership protocol of §3).
type Scan struct {
	f         *File
	cur       record.PageID
	slot      int
	frame     *pinnedPage
	done      bool
	readAhead bool
}

// pinnedPage wraps the scan's own pin on the current page.
type pinnedPage struct {
	pg  page
	rec Record // the scan's own pin, reused to unfix
}

// NewScan opens a scan over the file. If readAhead is true the scan asks
// the buffer daemon to prefetch each next page.
func (f *File) NewScan(readAhead bool) *Scan {
	return &Scan{f: f, cur: f.FirstPage(), readAhead: readAhead}
}

// Next returns the next record, pinned for the caller. It returns ok=false
// at end of file.
func (s *Scan) Next() (Record, bool, error) {
	for {
		if s.done {
			return Record{}, false, nil
		}
		if s.frame == nil {
			if s.cur.Page == 0 {
				s.done = true
				return Record{}, false, nil
			}
			fr, err := s.f.vol.pool.FixFor(s.cur, s.f.meter)
			if err != nil {
				s.done = true
				return Record{}, false, fmt.Errorf("file: scan %q: %w", s.f.Name(), err)
			}
			pg := page{fr.Data()}
			s.frame = &pinnedPage{
				pg:  pg,
				rec: Record{RID: record.RID{PageID: s.cur}, frame: fr, pool: s.f.vol.pool},
			}
			s.slot = 0
			if s.readAhead && pg.next() != 0 {
				s.f.vol.pool.RequestReadAhead(pid(s.cur.Dev, pg.next()))
			}
		}
		pg := s.frame.pg
		for s.slot < pg.nslots() {
			slot := s.slot
			s.slot++
			data, err := pg.record(slot)
			if err != nil {
				continue // deleted slot
			}
			// Transfer one extra pin to the caller.
			out := Record{
				RID:   record.RID{PageID: s.cur, Slot: uint16(slot)},
				Data:  data,
				frame: s.frame.rec.frame,
				pool:  s.f.vol.pool,
			}
			out.Share(1)
			return out, true, nil
		}
		// Page exhausted: release our pin, move on.
		next := pg.next()
		s.frame.rec.Unfix()
		s.frame = nil
		if next == 0 {
			s.done = true
			return Record{}, false, nil
		}
		s.cur = pid(s.cur.Dev, next)
	}
}

// Close releases the scan's resources. Safe to call at any point.
func (s *Scan) Close() {
	if s.frame != nil {
		s.frame.rec.Unfix()
		s.frame = nil
	}
	s.done = true
}

// Rewind resets the scan to the beginning of the file.
func (s *Scan) Rewind() {
	s.Close()
	s.cur = s.f.FirstPage()
	s.slot = 0
	s.done = false
}
