// Package file implements Volcano's file layer: volumes with a
// lock-protected table of contents (VTOC), files of chained slotted pages,
// record-level operations addressed by RID, and file scans. Intermediate
// results use files on virtual devices, so they receive unique RIDs and can
// "be managed in all operators as if they resided on a real device"
// (paper, §3).
package file

import (
	"encoding/binary"
	"fmt"

	"repro/internal/record"
	"repro/internal/storage/device"
)

// Slotted page layout:
//
//	[ next(4) | nslots(2) | dataStart(2) | slot0(4) slot1(4) ... ]
//	          ... free space ...
//	[ recN ... rec1 rec0 ]  (records grow down from the page end)
//
// Each slot holds (offset uint16, length uint16). A slot with offset
// slotDeleted marks a deleted record; slots are never reused so RIDs stay
// stable.
const (
	pageHdrSize = 8
	slotSize    = 4
	slotDeleted = 0xFFFF

	// MaxRecordLen is the largest record storable on one page.
	MaxRecordLen = device.PageSize - pageHdrSize - slotSize
)

type page struct{ b []byte }

func (p page) next() uint32       { return binary.LittleEndian.Uint32(p.b[0:]) }
func (p page) setNext(n uint32)   { binary.LittleEndian.PutUint32(p.b[0:], n) }
func (p page) nslots() int        { return int(binary.LittleEndian.Uint16(p.b[4:])) }
func (p page) setNslots(n int)    { binary.LittleEndian.PutUint16(p.b[4:], uint16(n)) }
func (p page) dataStart() int     { return int(binary.LittleEndian.Uint16(p.b[6:])) }
func (p page) setDataStart(n int) { binary.LittleEndian.PutUint16(p.b[6:], uint16(n)) }

// init prepares an empty page image.
func (p page) init() {
	p.setNext(0)
	p.setNslots(0)
	p.setDataStart(device.PageSize)
}

func (p page) slot(i int) (off, length int) {
	base := pageHdrSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.b[base:])), int(binary.LittleEndian.Uint16(p.b[base+2:]))
}

func (p page) setSlot(i, off, length int) {
	base := pageHdrSize + i*slotSize
	binary.LittleEndian.PutUint16(p.b[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.b[base+2:], uint16(length))
}

// freeSpace returns the bytes available for one more record plus its slot.
func (p page) freeSpace() int {
	return p.dataStart() - (pageHdrSize + p.nslots()*slotSize) - slotSize
}

// insert places data in the page and returns its slot number.
// The caller must have checked freeSpace.
func (p page) insert(data []byte) int {
	slot := p.nslots()
	off := p.dataStart() - len(data)
	copy(p.b[off:], data)
	p.setDataStart(off)
	p.setSlot(slot, off, len(data))
	p.setNslots(slot + 1)
	return slot
}

// record returns the bytes of the record in the given slot, or an error if
// the slot is out of range or deleted.
func (p page) record(slot int) ([]byte, error) {
	if slot >= p.nslots() {
		return nil, fmt.Errorf("file: slot %d out of range (%d slots)", slot, p.nslots())
	}
	off, length := p.slot(slot)
	if off == slotDeleted {
		return nil, fmt.Errorf("file: slot %d is deleted", slot)
	}
	return p.b[off : off+length : off+length], nil
}

// delete marks the slot deleted. Space is not reclaimed (RID stability).
func (p page) delete(slot int) error {
	if slot >= p.nslots() {
		return fmt.Errorf("file: slot %d out of range (%d slots)", slot, p.nslots())
	}
	off, _ := p.slot(slot)
	if off == slotDeleted {
		return fmt.Errorf("file: slot %d already deleted", slot)
	}
	p.setSlot(slot, slotDeleted, 0)
	return nil
}

// pid helper.
func pid(dev record.DeviceID, pg uint32) record.PageID {
	return record.PageID{Dev: dev, Page: pg}
}
