package file

import "fmt"

// TableStats summarises one file for the benefit of a cost-based
// planner: how many records and pages it holds, and — when the file has
// been ANALYZEd — an estimated distinct-value count per field. Volcano's
// own optimiser worked from exactly this kind of catalog cardinality;
// the numbers here feed plan costing (exchange degree of parallelism,
// hash-vs-merge strategy) and are deliberately approximate.
type TableStats struct {
	Records int
	Pages   int
	// Distinct[i] estimates the number of distinct values of field i.
	// Nil when the table has never been analyzed (or has no schema);
	// entries are exact up to analyzeDistinctCap values and fall back
	// to the record count beyond it.
	Distinct []int64
}

// DistinctOf returns the distinct estimate for field i, or 0 when none
// is known (never analyzed, or i out of range).
func (s TableStats) DistinctOf(i int) int64 {
	if i < 0 || i >= len(s.Distinct) {
		return 0
	}
	return s.Distinct[i]
}

// analyzeDistinctCap bounds the per-field exact distinct tracking during
// Analyze. Beyond the cap a field is reported as fully distinct (one
// value per record) — pessimistic for selectivity, cheap for memory.
const analyzeDistinctCap = 1 << 16

// Analyze scans the named file and records per-field distinct-value
// estimates in the volume's statistics catalog. Records and Pages are
// always maintained by the VTOC; Analyze adds the value distribution a
// costing pass needs for selectivity and join-output estimates. The
// result is persisted by the next Save on durable volumes.
func (v *Volume) Analyze(name string) (TableStats, error) {
	f, err := v.Open(name)
	if err != nil {
		return TableStats{}, err
	}
	schema := f.Schema()
	if schema == nil {
		// No schema, no per-field stats — record/page counts still serve.
		return f.Stats(), nil
	}
	nf := schema.NumFields()
	seen := make([]map[string]struct{}, nf)
	overflow := make([]bool, nf)
	for i := range seen {
		seen[i] = make(map[string]struct{})
	}
	sc := f.NewScan(false)
	defer sc.Close()
	for {
		rec, ok, err := sc.Next()
		if err != nil {
			return TableStats{}, fmt.Errorf("file: analyze %q: %w", name, err)
		}
		if !ok {
			break
		}
		vals, err := schema.Decode(rec.Data)
		rec.Unfix()
		if err != nil {
			return TableStats{}, fmt.Errorf("file: analyze %q: %w", name, err)
		}
		for i, val := range vals {
			if overflow[i] {
				continue
			}
			seen[i][fmt.Sprintf("%v", val)] = struct{}{}
			if len(seen[i]) > analyzeDistinctCap {
				overflow[i] = true
				seen[i] = nil
			}
		}
	}
	st := f.Stats()
	distinct := make([]int64, nf)
	for i := range distinct {
		if overflow[i] {
			distinct[i] = int64(st.Records)
		} else {
			distinct[i] = int64(len(seen[i]))
		}
	}
	v.vtoc.Lock()
	if v.statsDistinct == nil {
		v.statsDistinct = make(map[string][]int64)
	}
	v.statsDistinct[name] = distinct
	v.vtoc.Unlock()
	st.Distinct = distinct
	return st, nil
}

// Stats returns the statistics recorded for the named file: record and
// page counts straight from the VTOC, plus distinct estimates when the
// file has been analyzed. ok is false when the file does not exist.
func (v *Volume) Stats(name string) (TableStats, bool) {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	m, ok := v.files[name]
	if !ok {
		return TableStats{}, false
	}
	return TableStats{Records: m.records, Pages: m.pages, Distinct: v.statsDistinct[name]}, true
}

// Stats returns the file's statistics (see Volume.Stats).
func (f *File) Stats() TableStats {
	st, _ := f.vol.Stats(f.meta.name)
	return st
}
