package file

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
)

// durableEnv formats a disk-backed volume at path.
func durableEnv(t *testing.T, path string) (*buffer.Pool, *Volume) {
	t.Helper()
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.NewDisk(id, path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount(d); err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(reg, 256, buffer.TwoLevel)
	vol, err := Format(pool, id)
	if err != nil {
		t.Fatal(err)
	}
	return pool, vol
}

// reopen mounts the existing disk at path as a fresh pool + volume.
func reopen(t *testing.T, path string) (*buffer.Pool, *Volume, func()) {
	t.Helper()
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.OpenDisk(id, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount(d); err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(reg, 256, buffer.TwoLevel)
	vol, err := OpenVolume(pool, id)
	if err != nil {
		t.Fatal(err)
	}
	return pool, vol, func() { reg.CloseAll() }
}

var persistSchema = record.MustSchema(
	record.Field{Name: "id", Type: record.TInt},
	record.Field{Name: "name", Type: record.TString},
)

func TestDurableVolumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	pool, vol := durableEnv(t, path)

	f, err := vol.Create("people", persistSchema)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		_, err := f.Insert(persistSchema.MustEncode(record.Int(int64(i)), record.Str(fmt.Sprintf("p-%d", i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	g, err := vol.Create("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Registry().CloseAll(); err != nil {
		t.Fatal(err)
	}

	// Remount from disk with a cold buffer pool.
	_, vol2, done := reopen(t, path)
	defer done()
	names := vol2.List()
	if len(names) != 2 || names[0] != "empty" || names[1] != "people" {
		t.Fatalf("List after remount = %v", names)
	}
	f2, err := vol2.Open("people")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Records() != n {
		t.Fatalf("Records = %d after remount, want %d", f2.Records(), n)
	}
	if !f2.Schema().Equal(persistSchema) {
		t.Fatalf("schema lost: %v", f2.Schema())
	}
	sc := f2.NewScan(false)
	defer sc.Close()
	count := 0
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if persistSchema.GetInt(r.Data, 0) != int64(count) {
			t.Fatalf("record %d corrupt after remount", count)
		}
		count++
		r.Unfix()
	}
	if count != n {
		t.Fatalf("scanned %d after remount, want %d", count, n)
	}
}

func TestDurableVolumeAppendsAfterRemount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	_, vol := durableEnv(t, path)
	f, _ := vol.Create("t", persistSchema)
	for i := 0; i < 100; i++ {
		f.Insert(persistSchema.MustEncode(record.Int(int64(i)), record.Str("x")))
	}
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	vol.Pool().Registry().CloseAll()

	_, vol2, done := reopen(t, path)
	f2, err := vol2.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		if _, err := f2.Insert(persistSchema.MustEncode(record.Int(int64(i)), record.Str("y"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := vol2.Save(); err != nil {
		t.Fatal(err)
	}
	done()

	_, vol3, done3 := reopen(t, path)
	defer done3()
	f3, err := vol3.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	if f3.Records() != 200 {
		t.Fatalf("Records = %d after second remount", f3.Records())
	}
}

func TestDurableIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	pool, vol := durableEnv(t, path)
	f, _ := vol.Create("t", persistSchema)
	tree, err := btree.Create(pool, vol.Device())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		rid, err := f.Insert(persistSchema.MustEncode(record.Int(int64(i)), record.Str("v")))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(btree.EncodeKey(record.Int(int64(i))), rid); err != nil {
			t.Fatal(err)
		}
	}
	vol.SaveIndex("t_id", tree)
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	pool.Registry().CloseAll()

	_, vol2, done := reopen(t, path)
	defer done()
	if got := vol2.Indexes(); len(got) != 1 || got[0] != "t_id" {
		t.Fatalf("Indexes = %v", got)
	}
	tree2, err := vol2.OpenIndex("t_id")
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != n {
		t.Fatalf("index Len = %d after remount", tree2.Len())
	}
	f2, _ := vol2.Open("t")
	rids, err := tree2.Lookup(btree.EncodeKey(record.Int(123)))
	if err != nil || len(rids) != 1 {
		t.Fatalf("Lookup = %v, %v", rids, err)
	}
	rec, err := f2.Fetch(rids[0])
	if err != nil {
		t.Fatal(err)
	}
	if persistSchema.GetInt(rec.Data, 0) != 123 {
		t.Fatal("index points at wrong record after remount")
	}
	rec.Unfix()
	// Drop and re-check.
	if err := vol2.DropIndex("t_id"); err != nil {
		t.Fatal(err)
	}
	if err := vol2.DropIndex("t_id"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if _, err := vol2.OpenIndex("t_id"); err == nil {
		t.Fatal("dropped index still opens")
	}
}

func TestDurableVTOCSpillsAcrossPages(t *testing.T) {
	// Enough files that the VTOC needs continuation pages, saved twice to
	// exercise the rewrite path that frees the old chain.
	path := filepath.Join(t.TempDir(), "vol")
	_, vol := durableEnv(t, path)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := vol.Create(fmt.Sprintf("table-with-a-rather-long-name-%04d", i), persistSchema); err != nil {
			t.Fatal(err)
		}
	}
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	if err := vol.Save(); err != nil {
		t.Fatal(err)
	}
	vol.Pool().Registry().CloseAll()

	_, vol2, done := reopen(t, path)
	defer done()
	if got := len(vol2.List()); got != n {
		t.Fatalf("remounted %d files, want %d", got, n)
	}
}

func TestSaveOnNonDurableVolume(t *testing.T) {
	reg := device.NewRegistry()
	id := reg.NextID()
	reg.Mount(device.NewMem(id))
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 32, buffer.TwoLevel)
	vol := NewVolume(pool, id)
	if err := vol.Save(); err == nil {
		t.Fatal("Save on non-durable volume succeeded")
	}
	if _, err := OpenVolume(pool, id); err == nil {
		t.Fatal("OpenVolume on memory device succeeded")
	}
	if _, err := Format(pool, id); err == nil {
		t.Fatal("Format on memory device succeeded")
	}
}

func TestFormatRequiresFreshDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol")
	reg := device.NewRegistry()
	id := reg.NextID()
	d, err := device.NewDisk(id, path, 256)
	if err != nil {
		t.Fatal(err)
	}
	reg.Mount(d)
	defer reg.CloseAll()
	pool := buffer.NewPool(reg, 32, buffer.TwoLevel)
	if _, err := d.AllocPage(); err != nil { // steal the first page
		t.Fatal(err)
	}
	if _, err := Format(pool, id); err == nil {
		t.Fatal("Format on used device succeeded")
	}
}
