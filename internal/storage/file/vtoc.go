package file

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/record"
	"repro/internal/storage/btree"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
)

// Durable volumes: the VTOC is persisted as a chain of slotted pages
// rooted at the device's first data page, holding one entry record per
// file or index. Format creates a fresh durable volume; OpenVolume
// remounts one; Volume.Save rewrites the VTOC, flushes dirty pages and
// syncs the device's allocation bitmap.

// vtocSchema describes one catalog entry.
//
//	kind 0: file  (first/last/pages/records used)
//	kind 1: index (aux1 = btree root page, aux2 = height, records = count)
//	kind 2: stats (aux1 = field count, schema field = comma-joined
//	        per-field distinct estimates; see stats.go)
var vtocSchema = record.MustSchema(
	record.Field{Name: "name", Type: record.TString},
	record.Field{Name: "kind", Type: record.TInt},
	record.Field{Name: "first", Type: record.TInt},
	record.Field{Name: "last", Type: record.TInt},
	record.Field{Name: "pages", Type: record.TInt},
	record.Field{Name: "records", Type: record.TInt},
	record.Field{Name: "aux1", Type: record.TInt},
	record.Field{Name: "aux2", Type: record.TInt},
	record.Field{Name: "schema", Type: record.TString},
)

const (
	vtocKindFile  = 0
	vtocKindIndex = 1
	vtocKindStats = 2
)

// indexMeta is a catalogued B+-tree.
type indexMeta struct {
	root   uint32
	height int
	count  int
}

// vtocRoot reports where a device's durable VTOC is rooted (the first
// data page of a disk device).
func vtocRoot(d device.Device) (uint32, error) {
	type firstDataPager interface{ FirstDataPage() uint32 }
	if fd, ok := d.(firstDataPager); ok {
		return fd.FirstDataPage(), nil
	}
	return 0, fmt.Errorf("file: device %d does not support durable volumes", d.ID())
}

// Format initialises a durable volume on a freshly created disk device.
// The VTOC root page is allocated — it must be the device's first
// allocation — and written empty.
func Format(pool *buffer.Pool, dev record.DeviceID) (*Volume, error) {
	d, err := pool.Registry().Get(dev)
	if err != nil {
		return nil, err
	}
	root, err := vtocRoot(d)
	if err != nil {
		return nil, err
	}
	pg, err := d.AllocPage()
	if err != nil {
		return nil, err
	}
	if pg != root {
		return nil, fmt.Errorf("file: format: device %d not fresh (first page %d, want %d)", dev, pg, root)
	}
	fr, err := pool.Fix(pid(dev, root))
	if err != nil {
		return nil, err
	}
	page{fr.Data()}.init()
	pool.Unfix(fr, true)
	v := NewVolume(pool, dev)
	v.durable = true
	v.vtocRoot = root
	return v, nil
}

// OpenVolume remounts a durable volume, loading the catalog from the
// persisted VTOC chain.
func OpenVolume(pool *buffer.Pool, dev record.DeviceID) (*Volume, error) {
	d, err := pool.Registry().Get(dev)
	if err != nil {
		return nil, err
	}
	root, err := vtocRoot(d)
	if err != nil {
		return nil, err
	}
	v := NewVolume(pool, dev)
	v.durable = true
	v.vtocRoot = root

	for pg := root; pg != 0; {
		fr, err := pool.Fix(pid(dev, pg))
		if err != nil {
			return nil, fmt.Errorf("file: open volume: %w", err)
		}
		p := page{fr.Data()}
		for slot := 0; slot < p.nslots(); slot++ {
			data, err := p.record(slot)
			if err != nil {
				continue
			}
			if err := v.loadEntry(data); err != nil {
				pool.Unfix(fr, false)
				return nil, err
			}
		}
		next := p.next()
		pool.Unfix(fr, false)
		pg = next
	}
	return v, nil
}

// loadEntry decodes one catalog entry into the in-memory VTOC.
func (v *Volume) loadEntry(data []byte) error {
	vals, err := vtocSchema.Decode(data)
	if err != nil {
		return fmt.Errorf("file: corrupt VTOC entry: %w", err)
	}
	name := string(vals[0].S)
	switch vals[1].I {
	case vtocKindFile:
		var schema *record.Schema
		if spec := string(vals[8].S); spec != "" {
			schema, err = record.ParseSpec(spec)
			if err != nil {
				return fmt.Errorf("file: VTOC entry %q: %w", name, err)
			}
		}
		v.files[name] = &meta{
			name:      name,
			firstPage: uint32(vals[2].I),
			lastPage:  uint32(vals[3].I),
			pages:     int(vals[4].I),
			records:   int(vals[5].I),
			schema:    schema,
		}
	case vtocKindIndex:
		v.indexes[name] = &indexMeta{
			root:   uint32(vals[6].I),
			height: int(vals[7].I),
			count:  int(vals[5].I),
		}
	case vtocKindStats:
		distinct, err := parseDistinctList(string(vals[8].S), int(vals[6].I))
		if err != nil {
			return fmt.Errorf("file: VTOC stats entry %q: %w", name, err)
		}
		if v.statsDistinct == nil {
			v.statsDistinct = make(map[string][]int64)
		}
		v.statsDistinct[name] = distinct
	default:
		return fmt.Errorf("file: VTOC entry %q has unknown kind %d", name, vals[1].I)
	}
	return nil
}

// entryBytes renders one file entry.
func fileEntry(m *meta) ([]byte, error) {
	spec := ""
	if m.schema != nil {
		spec = m.schema.Spec()
	}
	return vtocSchema.Encode([]record.Value{
		record.Str(m.name),
		record.Int(vtocKindFile),
		record.Int(int64(m.firstPage)),
		record.Int(int64(m.lastPage)),
		record.Int(int64(m.pages)),
		record.Int(int64(m.records)),
		record.Int(0),
		record.Int(0),
		record.Str(spec),
	})
}

// statsEntry renders one per-file statistics entry: the distinct
// estimates are joined into the (otherwise unused) schema string field,
// with the field count in aux1 as a decode cross-check.
func statsEntry(name string, distinct []int64) ([]byte, error) {
	parts := make([]string, len(distinct))
	for i, d := range distinct {
		parts[i] = strconv.FormatInt(d, 10)
	}
	return vtocSchema.Encode([]record.Value{
		record.Str(name),
		record.Int(vtocKindStats),
		record.Int(0),
		record.Int(0),
		record.Int(0),
		record.Int(0),
		record.Int(int64(len(distinct))),
		record.Int(0),
		record.Str(strings.Join(parts, ",")),
	})
}

// parseDistinctList decodes a statsEntry's payload.
func parseDistinctList(s string, want int) ([]int64, error) {
	if s == "" {
		if want != 0 {
			return nil, fmt.Errorf("empty list, want %d fields", want)
		}
		return []int64{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("%d values, want %d", len(parts), want)
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func indexEntry(name string, im *indexMeta) ([]byte, error) {
	return vtocSchema.Encode([]record.Value{
		record.Str(name),
		record.Int(vtocKindIndex),
		record.Int(0),
		record.Int(0),
		record.Int(0),
		record.Int(int64(im.count)),
		record.Int(int64(im.root)),
		record.Int(int64(im.height)),
		record.Str(""),
	})
}

// Save persists the volume: the VTOC chain is rewritten in place, all
// dirty pages of the device are flushed, and the device's allocation
// bitmap is synced. Only durable (Format/OpenVolume) volumes can save.
func (v *Volume) Save() error {
	if !v.durable {
		return fmt.Errorf("file: volume on device %d is not durable", v.dev)
	}
	d, err := v.pool.Registry().Get(v.dev)
	if err != nil {
		return err
	}

	v.vtoc.Lock()
	var entries [][]byte
	for _, m := range v.files {
		e, err := fileEntry(m)
		if err != nil {
			v.vtoc.Unlock()
			return err
		}
		entries = append(entries, e)
	}
	for name, im := range v.indexes {
		e, err := indexEntry(name, im)
		if err != nil {
			v.vtoc.Unlock()
			return err
		}
		entries = append(entries, e)
	}
	for name, distinct := range v.statsDistinct {
		if _, live := v.files[name]; !live {
			continue
		}
		e, err := statsEntry(name, distinct)
		if err != nil {
			v.vtoc.Unlock()
			return err
		}
		entries = append(entries, e)
	}
	v.vtoc.Unlock()

	// Free the old continuation chain (beyond the root), then rewrite.
	fr, err := v.pool.Fix(pid(v.dev, v.vtocRoot))
	if err != nil {
		return err
	}
	next := page{fr.Data()}.next()
	page{fr.Data()}.init()
	for next != 0 {
		cfr, err := v.pool.Fix(pid(v.dev, next))
		if err != nil {
			v.pool.Unfix(fr, true)
			return err
		}
		nn := page{cfr.Data()}.next()
		cpg := next
		v.pool.Unfix(cfr, false)
		if err := v.pool.Discard(pid(v.dev, cpg)); err != nil {
			v.pool.Unfix(fr, true)
			return err
		}
		if err := d.FreePage(cpg); err != nil {
			v.pool.Unfix(fr, true)
			return err
		}
		next = nn
	}

	cur := fr
	for _, e := range entries {
		if len(e) > MaxRecordLen {
			v.pool.Unfix(cur, true)
			return fmt.Errorf("file: VTOC entry too large (%d bytes)", len(e))
		}
		p := page{cur.Data()}
		if p.freeSpace() < len(e) {
			nfr, npid, err := v.pool.FixNew(v.dev)
			if err != nil {
				v.pool.Unfix(cur, true)
				return err
			}
			page{nfr.Data()}.init()
			p.setNext(npid.Page)
			v.pool.Unfix(cur, true)
			cur = nfr
			p = page{cur.Data()}
		}
		p.insert(e)
	}
	v.pool.Unfix(cur, true)

	if err := v.pool.FlushAll(v.dev); err != nil {
		return err
	}
	type syncer interface{ Sync() error }
	if s, ok := d.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// SaveIndex records (or updates) a named B+-tree in the catalog. Call
// Save afterwards to persist.
func (v *Volume) SaveIndex(name string, t *btree.Tree) {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	v.indexes[name] = &indexMeta{root: t.RootPage(), height: t.Height(), count: t.Len()}
}

// OpenIndex reopens a catalogued B+-tree.
func (v *Volume) OpenIndex(name string) (*btree.Tree, error) {
	v.vtoc.Lock()
	im, ok := v.indexes[name]
	v.vtoc.Unlock()
	if !ok {
		return nil, fmt.Errorf("file: index %q not found on device %d", name, v.dev)
	}
	return btree.Open(v.pool, v.dev, im.root, im.height, im.count), nil
}

// DropIndex removes an index from the catalog (pages are not reclaimed;
// Volcano does not garbage-collect index extents).
func (v *Volume) DropIndex(name string) error {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	if _, ok := v.indexes[name]; !ok {
		return fmt.Errorf("file: index %q not found on device %d", name, v.dev)
	}
	delete(v.indexes, name)
	return nil
}

// Indexes lists catalogued index names.
func (v *Volume) Indexes() []string {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	names := make([]string, 0, len(v.indexes))
	for n := range v.indexes {
		names = append(names, n)
	}
	return names
}
