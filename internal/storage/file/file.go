package file

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/meter"
	"repro/internal/record"
	"repro/internal/storage/buffer"
)

// Volume couples one device with the buffer pool and holds the volume
// table of contents. As in the paper (§4.5), the VTOC is the only file
// system structure protected against concurrent modification: "an
// exclusive lock is held while an entry is inserted or deleted or while
// the VTOC is scanned for the descriptor for an external file".
type Volume struct {
	dev  record.DeviceID
	pool *buffer.Pool

	vtoc    sync.Mutex
	files   map[string]*meta
	indexes map[string]*indexMeta
	// statsDistinct holds per-field distinct-value estimates recorded by
	// Analyze, keyed by file name (see stats.go). Persisted alongside the
	// VTOC on durable volumes.
	statsDistinct map[string][]int64

	// Durable volumes (Format/OpenVolume) persist the VTOC in a page
	// chain rooted at vtocRoot; see vtoc.go.
	durable  bool
	vtocRoot uint32
}

type meta struct {
	name      string
	firstPage uint32
	lastPage  uint32
	pages     int
	records   int
	schema    *record.Schema // optional, recorded for catalog purposes
}

// NewVolume mounts a volume over a device already registered with the
// pool's device registry.
func NewVolume(pool *buffer.Pool, dev record.DeviceID) *Volume {
	return &Volume{
		dev:     dev,
		pool:    pool,
		files:   make(map[string]*meta),
		indexes: make(map[string]*indexMeta),
	}
}

// Pool returns the buffer pool the volume operates through.
func (v *Volume) Pool() *buffer.Pool { return v.pool }

// Device returns the volume's device ID.
func (v *Volume) Device() record.DeviceID { return v.dev }

// Create creates a file with one empty page. The schema is recorded in the
// VTOC for catalog purposes and may be nil.
func (v *Volume) Create(name string, schema *record.Schema) (*File, error) {
	return v.CreateWith(name, schema, nil)
}

// CreateWith is Create with per-query attribution: the initial page fix
// and every later pool interaction through the returned handle are
// accounted to m. A nil meter makes it exactly Create.
func (v *Volume) CreateWith(name string, schema *record.Schema, mtr *meter.Meter) (*File, error) {
	v.vtoc.Lock()
	if _, dup := v.files[name]; dup {
		v.vtoc.Unlock()
		return nil, fmt.Errorf("file: %q already exists on device %d", name, v.dev)
	}
	// Reserve the VTOC entry before allocating so concurrent creates of
	// the same name cannot both proceed.
	m := &meta{name: name, schema: schema}
	v.files[name] = m
	v.vtoc.Unlock()

	f, pgID, err := v.pool.FixNewFor(v.dev, mtr)
	if err != nil {
		v.vtoc.Lock()
		delete(v.files, name)
		v.vtoc.Unlock()
		return nil, err
	}
	page{f.Data()}.init()
	v.pool.Unfix(f, true)

	v.vtoc.Lock()
	m.firstPage, m.lastPage, m.pages = pgID.Page, pgID.Page, 1
	v.vtoc.Unlock()
	return &File{vol: v, meta: m, meter: mtr}, nil
}

// Open looks up an existing file in the VTOC.
func (v *Volume) Open(name string) (*File, error) {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	m, ok := v.files[name]
	if !ok || m.firstPage == 0 {
		return nil, fmt.Errorf("file: %q not found on device %d", name, v.dev)
	}
	return &File{vol: v, meta: m}, nil
}

// Delete removes the file: its pages are discarded from the buffer (no
// write-back) and freed on the device, and the VTOC entry is removed.
func (v *Volume) Delete(name string) error {
	v.vtoc.Lock()
	m, ok := v.files[name]
	if ok {
		delete(v.files, name)
		delete(v.statsDistinct, name)
	}
	v.vtoc.Unlock()
	if !ok {
		return fmt.Errorf("file: %q not found on device %d", name, v.dev)
	}
	dev, err := v.pool.Registry().Get(v.dev)
	if err != nil {
		return err
	}
	for pg := m.firstPage; pg != 0; {
		// Read the next pointer before freeing.
		fr, err := v.pool.Fix(pid(v.dev, pg))
		if err != nil {
			return fmt.Errorf("file: delete %q: %w", name, err)
		}
		next := page{fr.Data()}.next()
		v.pool.Unfix(fr, false)
		if err := v.pool.Discard(pid(v.dev, pg)); err != nil {
			return err
		}
		if err := dev.FreePage(pg); err != nil {
			return err
		}
		pg = next
	}
	return nil
}

// List returns the names of all files on the volume, sorted.
func (v *Volume) List() []string {
	v.vtoc.Lock()
	defer v.vtoc.Unlock()
	names := make([]string, 0, len(v.files))
	for n := range v.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is a handle on one stored (or virtual) file.
type File struct {
	vol  *Volume
	meta *meta

	// meter, when set, receives per-query attribution for every buffer
	// fix this handle performs (scans, fetches, inserts, spills). Handles
	// are per-caller — Open returns a fresh one each time — so attaching
	// a meter to one handle never affects another query's view of the
	// same file.
	meter *meter.Meter

	// appendMu serialises inserts; Volcano files have a single writer in
	// practice (no record-level concurrency control, §4.5), but partitioned
	// inserts from a data generator are convenient to allow.
	appendMu sync.Mutex
}

// WithMeter returns a new handle on the same file whose buffer-pool
// activity is attributed to m. The original handle is unchanged.
func (f *File) WithMeter(m *meter.Meter) *File {
	return &File{vol: f.vol, meta: f.meta, meter: m}
}

// Name returns the file's VTOC name.
func (f *File) Name() string { return f.meta.name }

// Schema returns the schema recorded at creation (may be nil).
func (f *File) Schema() *record.Schema { return f.meta.schema }

// Volume returns the volume holding the file.
func (f *File) Volume() *Volume { return f.vol }

// Pages returns the number of pages in the file.
func (f *File) Pages() int {
	f.vol.vtoc.Lock()
	defer f.vol.vtoc.Unlock()
	return f.meta.pages
}

// Records returns the number of live records in the file.
func (f *File) Records() int {
	f.vol.vtoc.Lock()
	defer f.vol.vtoc.Unlock()
	return f.meta.records
}

// FirstPage returns the PageID of the file's first page.
func (f *File) FirstPage() record.PageID {
	f.vol.vtoc.Lock()
	defer f.vol.vtoc.Unlock()
	return pid(f.vol.dev, f.meta.firstPage)
}

// Insert appends a record and returns its RID. The record is written,
// marked dirty and unpinned.
func (f *File) Insert(data []byte) (record.RID, error) {
	r, err := f.InsertPinned(data)
	if err != nil {
		return record.RID{}, err
	}
	rid := r.RID
	r.Unfix()
	return rid, nil
}

// InsertPinned appends a record and returns it pinned, transferring one
// buffer pin to the caller. This is the path operators use to create
// intermediate result records: "complex operations like join that create
// new records have to fix them in the buffer before passing them on"
// (paper, §3).
func (f *File) InsertPinned(data []byte) (Record, error) {
	if len(data) > MaxRecordLen {
		return Record{}, fmt.Errorf("file: record of %d bytes exceeds max %d", len(data), MaxRecordLen)
	}
	f.appendMu.Lock()
	defer f.appendMu.Unlock()

	f.vol.vtoc.Lock()
	last := f.meta.lastPage
	f.vol.vtoc.Unlock()

	fr, err := f.vol.pool.FixFor(pid(f.vol.dev, last), f.meter)
	if err != nil {
		return Record{}, err
	}
	pg := page{fr.Data()}
	if pg.freeSpace() < len(data) {
		// Allocate and link a fresh page.
		nfr, npid, err := f.vol.pool.FixNewFor(f.vol.dev, f.meter)
		if err != nil {
			f.vol.pool.Unfix(fr, false)
			return Record{}, err
		}
		page{nfr.Data()}.init()
		pg.setNext(npid.Page)
		f.vol.pool.Unfix(fr, true)
		fr, pg = nfr, page{nfr.Data()}
		last = npid.Page
		f.vol.vtoc.Lock()
		f.meta.lastPage = last
		f.meta.pages++
		f.vol.vtoc.Unlock()
	}
	slot := pg.insert(data)
	f.vol.vtoc.Lock()
	f.meta.records++
	f.vol.vtoc.Unlock()
	stored, err := pg.record(slot)
	if err != nil {
		f.vol.pool.Unfix(fr, true)
		return Record{}, err
	}
	// Mark dirty now; the pin transfers to the returned Record.
	return Record{
		RID:   record.RID{PageID: pid(f.vol.dev, last), Slot: uint16(slot)},
		Data:  stored,
		frame: fr,
		pool:  f.vol.pool,
		dirty: true,
	}, nil
}

// InsertPinnedBatch appends len(datas) records, filling out[i] with the
// pinned record of datas[i] — the batch counterpart of InsertPinned.
// The page is fixed once per batch (plus once per page spill), and the
// per-record pins the ownership protocol requires are granted in bulk
// (Pool.Pin), so the buffer pool is consulted once per page instead of
// once per record. Each returned record transfers one pin to the caller,
// exactly as InsertPinned does.
func (f *File) InsertPinnedBatch(datas [][]byte, out []Record) error {
	if len(datas) != len(out) {
		return fmt.Errorf("file: batch insert of %d records into %d slots", len(datas), len(out))
	}
	if len(datas) == 0 {
		return nil
	}
	for _, d := range datas {
		if len(d) > MaxRecordLen {
			return fmt.Errorf("file: record of %d bytes exceeds max %d", len(d), MaxRecordLen)
		}
	}
	f.appendMu.Lock()
	defer f.appendMu.Unlock()

	f.vol.vtoc.Lock()
	last := f.meta.lastPage
	f.vol.vtoc.Unlock()

	fr, err := f.vol.pool.FixFor(pid(f.vol.dev, last), f.meter)
	if err != nil {
		return err
	}
	pg := page{fr.Data()}
	onPage := 0 // records of this batch on the currently fixed page
	// fail grants the current page's records their pins, drops the work
	// pin, and then releases everything inserted so far.
	fail := func(i int, err error) error {
		if onPage > 0 {
			f.vol.pool.Pin(fr, onPage)
		}
		f.vol.pool.Unfix(fr, true)
		for j := 0; j < i; j++ {
			out[j].Unfix()
		}
		return err
	}
	inserted := 0
	for i, data := range datas {
		if pg.freeSpace() < len(data) {
			nfr, npid, err := f.vol.pool.FixNewFor(f.vol.dev, f.meter)
			if err != nil {
				return fail(i, err)
			}
			page{nfr.Data()}.init()
			pg.setNext(npid.Page)
			// Hand the filled page's pins to its records, drop our work
			// pin, and move on with a fresh one.
			if onPage > 0 {
				f.vol.pool.Pin(fr, onPage)
			}
			f.vol.pool.Unfix(fr, true)
			fr, pg = nfr, page{nfr.Data()}
			onPage = 0
			last = npid.Page
			f.vol.vtoc.Lock()
			f.meta.lastPage = last
			f.meta.pages++
			f.meta.records += inserted
			f.vol.vtoc.Unlock()
			inserted = 0
		}
		slot := pg.insert(data)
		stored, err := pg.record(slot)
		if err != nil {
			return fail(i, err)
		}
		// The frame is marked dirty when the work pin is dropped below, so
		// the records themselves carry no dirty flag to re-apply on Unfix.
		out[i] = Record{
			RID:   record.RID{PageID: pid(f.vol.dev, last), Slot: uint16(slot)},
			Data:  stored,
			frame: fr,
			pool:  f.vol.pool,
		}
		onPage++
		inserted++
	}
	f.vol.vtoc.Lock()
	f.meta.records += inserted
	f.vol.vtoc.Unlock()
	if onPage > 0 {
		f.vol.pool.Pin(fr, onPage)
	}
	f.vol.pool.Unfix(fr, true)
	return nil
}

// Fetch pins the record's page and returns the record. The caller owns the
// pin and must call Unfix.
func (f *File) Fetch(rid record.RID) (Record, error) {
	if rid.Dev != f.vol.dev {
		return Record{}, fmt.Errorf("file: RID %s is not on device %d", rid, f.vol.dev)
	}
	fr, err := f.vol.pool.FixFor(rid.PageID, f.meter)
	if err != nil {
		return Record{}, err
	}
	data, err := page{fr.Data()}.record(int(rid.Slot))
	if err != nil {
		f.vol.pool.Unfix(fr, false)
		return Record{}, fmt.Errorf("file: fetch %s: %w", rid, err)
	}
	return Record{RID: rid, Data: data, frame: fr, pool: f.vol.pool}, nil
}

// DeleteRecord removes the record at rid. Its slot is tombstoned; RIDs of
// other records are unaffected.
func (f *File) DeleteRecord(rid record.RID) error {
	fr, err := f.vol.pool.FixFor(rid.PageID, f.meter)
	if err != nil {
		return err
	}
	err = page{fr.Data()}.delete(int(rid.Slot))
	f.vol.pool.Unfix(fr, err == nil)
	if err != nil {
		return fmt.Errorf("file: delete %s: %w", rid, err)
	}
	f.vol.vtoc.Lock()
	f.meta.records--
	f.vol.vtoc.Unlock()
	return nil
}
