package file

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
)

func env(t *testing.T, frames int) (*buffer.Pool, *Volume, *Volume) {
	t.Helper()
	reg := device.NewRegistry()
	diskID := reg.NextID()
	d, err := device.NewDisk(diskID, filepath.Join(t.TempDir(), "disk"), 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Mount(d); err != nil {
		t.Fatal(err)
	}
	memID := reg.NextID()
	if err := reg.Mount(device.NewMem(memID)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.CloseAll() })
	pool := buffer.NewPool(reg, frames, buffer.TwoLevel)
	return pool, NewVolume(pool, diskID), NewVolume(pool, memID)
}

func TestCreateOpenDelete(t *testing.T) {
	_, vol, _ := env(t, 16)
	f, err := vol.Create("emp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "emp" || f.Pages() != 1 || f.Records() != 0 {
		t.Fatalf("fresh file: pages=%d records=%d", f.Pages(), f.Records())
	}
	if _, err := vol.Create("emp", nil); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := vol.Open("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Open("none"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if got := vol.List(); len(got) != 1 || got[0] != "emp" {
		t.Fatalf("List = %v", got)
	}
	if err := vol.Delete("emp"); err != nil {
		t.Fatal(err)
	}
	if err := vol.Delete("emp"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if _, err := vol.Open("emp"); err == nil {
		t.Fatal("open after delete succeeded")
	}
}

func TestInsertFetch(t *testing.T) {
	_, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	rid, err := f.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "hello" {
		t.Fatalf("Fetch = %q", r.Data)
	}
	r.Unfix()
	if f.Records() != 1 {
		t.Fatalf("Records = %d", f.Records())
	}
	// Fetch with wrong device errors.
	bad := rid
	bad.Dev = 99
	if _, err := f.Fetch(bad); err == nil {
		t.Fatal("cross-device fetch succeeded")
	}
	// Fetch of nonexistent slot errors.
	bad = rid
	bad.Slot = 42
	if _, err := f.Fetch(bad); err == nil {
		t.Fatal("fetch of bogus slot succeeded")
	}
}

func TestInsertSpillsAcrossPages(t *testing.T) {
	pool, vol, _ := env(t, 64)
	f, _ := vol.Create("big", nil)
	data := make([]byte, 1000)
	const n = 50 // 50 * 1004 bytes >> one page
	rids := make([]record.RID, n)
	for i := 0; i < n; i++ {
		data[0] = byte(i)
		rid, err := f.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if f.Pages() < 2 {
		t.Fatalf("Pages = %d, want several", f.Pages())
	}
	for i, rid := range rids {
		r, err := f.Fetch(rid)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if r.Data[0] != byte(i) || len(r.Data) != 1000 {
			t.Fatalf("record %d corrupt", i)
		}
		r.Unfix()
	}
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak after insert/fetch")
	}
}

func TestRecordTooLarge(t *testing.T) {
	_, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	if _, err := f.Insert(make([]byte, MaxRecordLen+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := f.Insert(make([]byte, MaxRecordLen)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
}

func TestDeleteRecord(t *testing.T) {
	_, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	r1, _ := f.Insert([]byte("a"))
	r2, _ := f.Insert([]byte("b"))
	if err := f.DeleteRecord(r1); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteRecord(r1); err == nil {
		t.Fatal("double record delete succeeded")
	}
	if _, err := f.Fetch(r1); err == nil {
		t.Fatal("fetch of deleted record succeeded")
	}
	// r2 unaffected (RID stability).
	r, err := f.Fetch(r2)
	if err != nil || string(r.Data) != "b" {
		t.Fatalf("r2 damaged: %v %q", err, r.Data)
	}
	r.Unfix()
	if f.Records() != 1 {
		t.Fatalf("Records = %d, want 1", f.Records())
	}
}

func TestScan(t *testing.T) {
	pool, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := f.Insert([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s := f.NewScan(false)
	count := 0
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if want := fmt.Sprintf("rec-%04d", count); string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q (storage order)", count, r.Data, want)
		}
		count++
		r.Unfix()
	}
	if count != n {
		t.Fatalf("scanned %d records, want %d", count, n)
	}
	s.Close()
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak after scan")
	}
	// Next after exhaustion keeps returning !ok.
	if _, ok, _ := s.Next(); ok {
		t.Fatal("Next after end returned a record")
	}
	// Rewind re-reads everything.
	s.Rewind()
	count = 0
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		r.Unfix()
	}
	if count != n {
		t.Fatalf("rewound scan found %d, want %d", count, n)
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	_, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	var rids []record.RID
	for i := 0; i < 10; i++ {
		rid, _ := f.Insert([]byte{byte(i)})
		rids = append(rids, rid)
	}
	for i := 0; i < 10; i += 2 {
		if err := f.DeleteRecord(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	s := f.NewScan(false)
	var got []byte
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r.Data[0])
		r.Unfix()
	}
	if string(got) != string([]byte{1, 3, 5, 7, 9}) {
		t.Fatalf("scan after deletes = %v", got)
	}
}

func TestScanAbortMidwayReleasesPins(t *testing.T) {
	pool, vol, _ := env(t, 16)
	f, _ := vol.Create("t", nil)
	for i := 0; i < 100; i++ {
		f.Insert(make([]byte, 100))
	}
	s := f.NewScan(false)
	r, ok, err := s.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	r.Unfix()
	s.Close()
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin leak after aborted scan")
	}
}

func TestScanWithReadAheadDaemon(t *testing.T) {
	pool, vol, _ := env(t, 64)
	if err := pool.StartDaemons(1); err != nil {
		t.Fatal(err)
	}
	defer pool.StopDaemons()
	f, _ := vol.Create("t", nil)
	for i := 0; i < 200; i++ {
		f.Insert(make([]byte, 500))
	}
	s := f.NewScan(true)
	count := 0
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		r.Unfix()
	}
	if count != 200 {
		t.Fatalf("scanned %d, want 200", count)
	}
}

func TestVirtualFileOnMemDevice(t *testing.T) {
	pool, _, vmem := env(t, 8)
	f, err := vmem.Create("tmp", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Write far more data than the 8-frame pool can hold: eviction to the
	// virtual device must preserve it.
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := f.Insert([]byte(fmt.Sprintf("intermediate-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s := f.NewScan(false)
	count := 0
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if want := fmt.Sprintf("intermediate-%03d", count); string(r.Data) != want {
			t.Fatalf("virtual record %d = %q", count, r.Data)
		}
		count++
		r.Unfix()
	}
	if count != n {
		t.Fatalf("scanned %d, want %d", count, n)
	}
	// Deleting the virtual file releases its device pages.
	reg := pool.Registry()
	d, _ := reg.Get(vmem.Device())
	if d.Allocated() == 0 {
		t.Fatal("expected allocated virtual pages before delete")
	}
	if err := vmem.Delete("tmp"); err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 0 {
		t.Fatalf("virtual device still holds %d pages after delete", d.Allocated())
	}
}

func TestInsertPinnedOwnership(t *testing.T) {
	pool, _, vmem := env(t, 8)
	f, _ := vmem.Create("tmp", nil)
	r, err := f.InsertPinned([]byte("owned"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid() {
		t.Fatal("InsertPinned returned invalid record")
	}
	if pool.FixCount(r.RID.PageID) != 1 {
		t.Fatalf("FixCount = %d, want 1", pool.FixCount(r.RID.PageID))
	}
	// Share two extra pins, then release all three.
	r.Share(2)
	if pool.FixCount(r.RID.PageID) != 3 {
		t.Fatalf("FixCount = %d, want 3", pool.FixCount(r.RID.PageID))
	}
	r.Unfix()
	r2 := r.WithoutDirty()
	r2.Unfix()
	r2.Unfix()
	if pool.Stats().CurrentlyFixedHint != 0 {
		t.Fatal("pin imbalance")
	}
	// Zero-value Record is safe to Unfix and Share.
	var zero Record
	if zero.Valid() {
		t.Fatal("zero Record claims validity")
	}
	zero.Unfix()
	zero.Share(1)
}

func TestSchemaInVTOC(t *testing.T) {
	_, vol, _ := env(t, 8)
	s := record.MustSchema(record.Field{Name: "x", Type: record.TInt})
	f, _ := vol.Create("t", s)
	g, _ := vol.Open("t")
	if !g.Schema().Equal(s) || !f.Schema().Equal(s) {
		t.Fatal("schema not preserved in VTOC")
	}
}

// Property: any sequence of variable-size inserts scans back in order.
func TestQuickInsertScanRoundTrip(t *testing.T) {
	prop := func(sizes []uint16) bool {
		_, vol, _ := env(t, 64)
		f, _ := vol.Create("q", nil)
		var want [][]byte
		for i, sz := range sizes {
			n := int(sz) % 2000
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(i + j)
			}
			if _, err := f.Insert(data); err != nil {
				return false
			}
			want = append(want, data)
		}
		s := f.NewScan(false)
		defer s.Close()
		for _, w := range want {
			r, ok, err := s.Next()
			if err != nil || !ok {
				return false
			}
			if string(r.Data) != string(w) {
				r.Unfix()
				return false
			}
			r.Unfix()
		}
		_, ok, _ := s.Next()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
