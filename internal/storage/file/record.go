package file

import (
	"repro/internal/record"
	"repro/internal/storage/buffer"
)

// Record is Volcano's NEXT_RECORD structure (paper, §3): a record
// identifier plus the record's address in the buffer pool. The record is
// pinned in the buffer and "owned by exactly one operator at any point in
// time"; the owner may hold on to it, unfix it, or pass it on.
//
// Record is a value type; passing it transfers ownership of one pin.
type Record struct {
	RID  record.RID
	Data []byte

	frame *buffer.Frame
	pool  *buffer.Pool
	dirty bool
}

// Valid reports whether the record holds a pinned buffer resident.
func (r Record) Valid() bool { return r.frame != nil }

// Unfix releases the owner's pin on the record's page. The Data slice must
// not be used afterwards.
func (r Record) Unfix() {
	if r.frame != nil {
		r.pool.Unfix(r.frame, r.dirty)
	}
}

// Share adds n extra pins to the record's page so that n additional owners
// can each Unfix independently — the mechanism behind exchange's broadcast
// variant (paper, §4.4): records are not copied, only pinned multiple
// times in the shared buffer.
func (r Record) Share(n int) {
	if r.frame != nil && n > 0 {
		r.pool.Pin(r.frame, n)
	}
}

// UnfixBatch releases every record's pin, coalescing runs of records on
// the same page into one bulk release (Pool.UnfixN) — the batch
// consumer's counterpart of per-record Unfix. Records created together
// land on the same page, so a typical batch costs one or two pool-lock
// rounds instead of one per record.
func UnfixBatch(recs []Record) {
	for i := 0; i < len(recs); {
		r := recs[i]
		if r.frame == nil {
			i++
			continue
		}
		n, dirty := 1, r.dirty
		for i+n < len(recs) && recs[i+n].frame == r.frame {
			dirty = dirty || recs[i+n].dirty
			n++
		}
		r.pool.UnfixN(r.frame, n, dirty)
		i += n
	}
}

// WithoutDirty returns a copy of the record whose eventual Unfix will not
// mark the page dirty (used when ownership passes to a reader).
func (r Record) WithoutDirty() Record {
	r.dirty = false
	return r
}

// MakeRecord assembles a Record from its parts; used by storage-layer
// iterators (B+-tree scans) that pin pages themselves.
func MakeRecord(rid record.RID, data []byte, frame *buffer.Frame, pool *buffer.Pool) Record {
	return Record{RID: rid, Data: data, frame: frame, pool: pool}
}
