package record

import (
	"fmt"
	"hash/fnv"
)

// SortSpec describes one ordering term: a field and a direction.
type SortSpec struct {
	Field int
	Desc  bool
}

// Key identifies the fields that form a comparison or hash key.
type Key []int

// Compare orders two encoded records of the same schema on the given
// ordering terms.
func (s *Schema) Compare(a, b []byte, spec []SortSpec) int {
	for _, t := range spec {
		c := s.CompareField(a, b, t.Field)
		if c != 0 {
			if t.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// CompareField orders two encoded records on a single field.
func (s *Schema) CompareField(a, b []byte, field int) int {
	switch s.fields[field].Type {
	case TInt:
		x, y := s.GetInt(a, field), s.GetInt(b, field)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case TFloat:
		return compareFloats(s.GetFloat(a, field), s.GetFloat(b, field))
	case TBool:
		x, y := s.GetBool(a, field), s.GetBool(b, field)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	default:
		return compareBytes(s.GetBytes(a, field), s.GetBytes(b, field))
	}
}

// CompareKeys orders record a's fields ka against record b's fields kb,
// pairwise. The key slices must have equal length. This is the form used
// by binary matching operators where the two inputs have different schemas.
func CompareKeys(sa *Schema, a []byte, ka Key, sb *Schema, b []byte, kb Key) int {
	for i := range ka {
		va, err := sa.Get(a, ka[i])
		if err != nil {
			panic(err)
		}
		vb, err := sb.Get(b, kb[i])
		if err != nil {
			panic(err)
		}
		if va.Kind.Fixed() != vb.Kind.Fixed() && va.Kind != vb.Kind {
			panic(fmt.Sprintf("record: comparing %s key field with %s", va.Kind, vb.Kind))
		}
		if c := CompareValues(va, vb); c != 0 {
			return c
		}
	}
	return 0
}

// Hash computes a 64-bit FNV-1a hash of the given key fields of an encoded
// record. Equal keys hash equally across schemas as long as the field
// values are equal.
func (s *Schema) Hash(data []byte, key Key) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	for _, f := range key {
		switch s.fields[f].Type {
		case TInt:
			putUint64(scratch[:], uint64(s.GetInt(data, f)))
			h.Write(scratch[:])
		case TFloat:
			// Hash the canonical integer value when the float is integral so
			// joins across int/float keys behave; otherwise hash the bits.
			putUint64(scratch[:], canonicalFloatBits(s.GetFloat(data, f)))
			h.Write(scratch[:])
		case TBool:
			if s.GetBool(data, f) {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		default:
			h.Write(s.GetBytes(data, f))
			h.Write([]byte{0xff}) // terminator so ("a","b") != ("ab","")
		}
	}
	return h.Sum64()
}

func canonicalFloatBits(f float64) uint64 {
	if f == float64(int64(f)) {
		return uint64(int64(f))
	}
	return mathFloat64bits(f)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// KeyValues extracts the key fields of a record as copied values, usable
// as map keys after KeyString.
func (s *Schema) KeyValues(data []byte, key Key) []Value {
	out := make([]Value, len(key))
	for i, f := range key {
		v, err := s.Get(data, f)
		if err != nil {
			panic(err)
		}
		out[i] = v.Copy()
	}
	return out
}

// KeyString renders key values into a canonical string usable as a Go map
// key. Numeric values of equal magnitude render identically.
func KeyString(vals []Value) string {
	out := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		switch v.Kind {
		case TInt:
			out = appendUint64(out, 'i', uint64(v.I))
		case TFloat:
			out = appendUint64(out, 'f', canonicalFloatBits(v.F))
		case TBool:
			if v.B {
				out = append(out, 'b', 1)
			} else {
				out = append(out, 'b', 0)
			}
		default:
			out = append(out, 's')
			out = appendUint64(out, 'l', uint64(len(v.S)))
			out = append(out, v.S...)
		}
	}
	return string(out)
}

func appendUint64(out []byte, tag byte, v uint64) []byte {
	out = append(out, tag)
	for i := 0; i < 8; i++ {
		out = append(out, byte(v>>(8*i)))
	}
	return out
}
