package record

import (
	"fmt"
	"strings"
)

// Spec renders the schema as a compact "name:type,name:type" string, the
// inverse of ParseSpec. Used for catalog persistence and CLI flags.
func (s *Schema) Spec() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + ":" + f.Type.String()
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses "name:type,name:type" into a schema. Types: int,
// float, bool, string, bytes.
func ParseSpec(spec string) (*Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("record: empty schema spec")
	}
	var fields []Field
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("record: bad field spec %q (want name:type)", part)
		}
		var t Type
		switch strings.ToLower(strings.TrimSpace(typ)) {
		case "int":
			t = TInt
		case "float":
			t = TFloat
		case "bool":
			t = TBool
		case "string":
			t = TString
		case "bytes":
			t = TBytes
		default:
			return nil, fmt.Errorf("record: unknown type %q in spec", typ)
		}
		fields = append(fields, Field{Name: strings.TrimSpace(name), Type: t})
	}
	return NewSchema(fields...)
}
