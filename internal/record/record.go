// Package record defines Volcano's data representation: typed schemas,
// the on-page record encoding, record identifiers (RIDs), and the
// comparison and hashing primitives used by support functions.
//
// Volcano's query processing modules are written without knowledge of the
// internal structure of data objects (paper, §3); all interpretation of
// record bytes is concentrated here and in package expr.
package record

import (
	"encoding/binary"
	"fmt"
)

// Type enumerates the field types supported by Volcano schemas.
type Type uint8

const (
	// TInt is a 64-bit signed integer field.
	TInt Type = iota
	// TFloat is a 64-bit IEEE-754 field.
	TFloat
	// TBool is a one-byte boolean field.
	TBool
	// TString is a variable-length UTF-8 string field.
	TString
	// TBytes is a variable-length raw byte field.
	TBytes
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	case TBytes:
		return "bytes"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Fixed reports whether values of the type occupy a fixed number of bytes
// in the record's fixed area.
func (t Type) Fixed() bool { return t == TInt || t == TFloat || t == TBool }

// fixedSize returns the number of bytes the type occupies in the fixed
// area of a record. Variable-length fields occupy a 4-byte offset.
func (t Type) fixedSize() int {
	switch t {
	case TInt, TFloat:
		return 8
	case TBool:
		return 1
	default:
		return 4 // cumulative end offset into the variable-length tail
	}
}

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema describes the layout of records in a stream or stored file.
// A Schema is immutable after construction with NewSchema.
type Schema struct {
	fields []Field
	// offsets[i] is the byte offset of field i within the fixed area.
	offsets []int
	// fixedLen is the total length of the fixed area.
	fixedLen int
	// varFields counts variable-length fields.
	varFields int
	// dense marks an all-fixed schema: every byte of the fixed area is
	// covered by a field write, so encoding needs no zero-fill pass.
	dense  bool
	byName map[string]int
}

// NewSchema builds a schema from the given fields. Field names must be
// unique and non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: append([]Field(nil), fields...),
		byName: make(map[string]int, len(fields)),
	}
	off := 0
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("record: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("record: duplicate field name %q", f.Name)
		}
		s.byName[f.Name] = i
		s.offsets = append(s.offsets, off)
		off += f.Type.fixedSize()
		if !f.Type.Fixed() {
			s.varFields++
		}
	}
	s.fixedLen = off
	s.dense = s.varFields == 0
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// tests, examples, and statically known schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of fields in the schema.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the descriptor of field i.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the schema's field descriptors.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the index of the named field, or -1 if absent.
func (s *Schema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// FixedLen returns the length of the fixed area of records with this schema.
func (s *Schema) FixedLen() int { return s.fixedLen }

// Concat returns a new schema consisting of s's fields followed by t's
// fields. Name collisions are resolved by prefixing the colliding right
// field with "r_". Used by join operators to describe composite outputs.
func (s *Schema) Concat(t *Schema) *Schema {
	fields := s.Fields()
	for _, f := range t.fields {
		name := f.Name
		if _, dup := s.byName[name]; dup {
			name = "r_" + name
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
	}
	out, err := NewSchema(fields...)
	if err != nil {
		// Collisions like x and r_x both present; disambiguate with index.
		for i := range fields {
			fields[i].Name = fmt.Sprintf("f%d_%s", i, fields[i].Name)
		}
		out = MustSchema(fields...)
	}
	return out
}

// Project returns a schema containing only the given fields of s, in order.
func (s *Schema) Project(fields []int) *Schema {
	out := make([]Field, len(fields))
	for i, f := range fields {
		out[i] = s.fields[f]
	}
	return MustSchema(out...)
}

// Equal reports whether two schemas have identical field names and types.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.fields) != len(t.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != t.fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name:type, ...)".
func (s *Schema) String() string {
	out := "("
	for i, f := range s.fields {
		if i > 0 {
			out += ", "
		}
		out += f.Name + ":" + f.Type.String()
	}
	return out + ")"
}

// Encode serialises the given values according to the schema. The number
// and types of values must match the schema.
//
// Layout: a fixed area holding 8-byte integers/floats, 1-byte booleans and,
// for each variable-length field, the 4-byte cumulative end offset of its
// data within the variable-length tail that follows the fixed area.
func (s *Schema) Encode(vals []Value) ([]byte, error) {
	return s.AppendEncode(nil, vals)
}

// AppendEncode serialises vals like Encode but appends the record image
// to dst and returns the extended slice. Callers that reuse one buffer
// across records (batch sources, writers) encode without a per-record
// allocation once the buffer has grown to the working record size.
func (s *Schema) AppendEncode(dst []byte, vals []Value) ([]byte, error) {
	if len(vals) != len(s.fields) {
		return nil, fmt.Errorf("record: encode: got %d values for %d fields", len(vals), len(s.fields))
	}
	if s.dense {
		return s.appendEncodeDense(dst, vals)
	}
	varLen := 0
	for i, v := range vals {
		if err := v.checkType(s.fields[i].Type); err != nil {
			return nil, fmt.Errorf("record: encode field %q: %w", s.fields[i].Name, err)
		}
		if !s.fields[i].Type.Fixed() {
			varLen += len(v.S)
		}
	}
	base := len(dst)
	if n := base + s.fixedLen + varLen; cap(dst) >= n {
		dst = dst[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base:]
	for i := range buf {
		buf[i] = 0
	}
	varEnd := 0
	for i, v := range vals {
		off := s.offsets[i]
		switch s.fields[i].Type {
		case TInt:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.I))
		case TFloat:
			binary.LittleEndian.PutUint64(buf[off:], mathFloat64bits(v.F))
		case TBool:
			if v.B {
				buf[off] = 1
			}
		default:
			copy(buf[s.fixedLen+varEnd:], v.S)
			varEnd += len(v.S)
			binary.LittleEndian.PutUint32(buf[off:], uint32(varEnd))
		}
	}
	return dst, nil
}

// appendEncodeDense is the all-fixed-fields fast path of AppendEncode:
// every byte of the fixed area is written by a field, so the zero-fill
// pass and the variable-length bookkeeping disappear from the encode hot
// loop (the dominant per-record cost of batch generators).
func (s *Schema) appendEncodeDense(dst []byte, vals []Value) ([]byte, error) {
	base := len(dst)
	if n := base + s.fixedLen; cap(dst) >= n {
		dst = dst[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base:]
	for i, v := range vals {
		t := s.fields[i].Type
		if err := v.checkType(t); err != nil {
			return nil, fmt.Errorf("record: encode field %q: %w", s.fields[i].Name, err)
		}
		off := s.offsets[i]
		switch t {
		case TInt:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.I))
		case TFloat:
			binary.LittleEndian.PutUint64(buf[off:], mathFloat64bits(v.F))
		default: // TBool
			if v.B {
				buf[off] = 1
			} else {
				buf[off] = 0
			}
		}
	}
	return dst, nil
}

// MustEncode is like Encode but panics on error.
func (s *Schema) MustEncode(vals ...Value) []byte {
	b, err := s.Encode(vals)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode deserialises a record into a fresh value slice.
func (s *Schema) Decode(data []byte) ([]Value, error) {
	if len(data) < s.fixedLen {
		return nil, fmt.Errorf("record: decode: %d bytes, need at least %d", len(data), s.fixedLen)
	}
	vals := make([]Value, len(s.fields))
	for i := range s.fields {
		v, err := s.Get(data, i)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Get extracts field i from an encoded record without decoding the rest.
// For variable-length fields the returned Value aliases data; callers that
// retain the value past the life of the record's buffer pin must copy it.
func (s *Schema) Get(data []byte, i int) (Value, error) {
	if i < 0 || i >= len(s.fields) {
		return Value{}, fmt.Errorf("record: field index %d out of range", i)
	}
	off := s.offsets[i]
	switch s.fields[i].Type {
	case TInt:
		if off+8 > len(data) {
			return Value{}, errTruncated(s, i, data)
		}
		return Int(int64(binary.LittleEndian.Uint64(data[off:]))), nil
	case TFloat:
		if off+8 > len(data) {
			return Value{}, errTruncated(s, i, data)
		}
		return Float(mathFloat64frombits(binary.LittleEndian.Uint64(data[off:]))), nil
	case TBool:
		if off+1 > len(data) {
			return Value{}, errTruncated(s, i, data)
		}
		return Bool(data[off] != 0), nil
	default:
		start, end, err := s.varBounds(data, i)
		if err != nil {
			return Value{}, err
		}
		v := Value{Kind: s.fields[i].Type, S: data[start:end:end]}
		return v, nil
	}
}

// GetInt extracts an integer field; it panics if the field is not TInt.
// It is the hot path used by compiled support functions.
func (s *Schema) GetInt(data []byte, i int) int64 {
	if s.fields[i].Type != TInt {
		panic(fmt.Sprintf("record: GetInt on %s field %q", s.fields[i].Type, s.fields[i].Name))
	}
	return int64(binary.LittleEndian.Uint64(data[s.offsets[i]:]))
}

// GetFloat extracts a float field; it panics if the field is not TFloat.
func (s *Schema) GetFloat(data []byte, i int) float64 {
	if s.fields[i].Type != TFloat {
		panic(fmt.Sprintf("record: GetFloat on %s field %q", s.fields[i].Type, s.fields[i].Name))
	}
	return mathFloat64frombits(binary.LittleEndian.Uint64(data[s.offsets[i]:]))
}

// GetBool extracts a boolean field; it panics if the field is not TBool.
func (s *Schema) GetBool(data []byte, i int) bool {
	if s.fields[i].Type != TBool {
		panic(fmt.Sprintf("record: GetBool on %s field %q", s.fields[i].Type, s.fields[i].Name))
	}
	return data[s.offsets[i]] != 0
}

// GetBytes extracts the raw bytes of a variable-length field; it panics if
// the field is fixed-width. The returned slice aliases data.
func (s *Schema) GetBytes(data []byte, i int) []byte {
	if s.fields[i].Type.Fixed() {
		panic(fmt.Sprintf("record: GetBytes on %s field %q", s.fields[i].Type, s.fields[i].Name))
	}
	start, end, err := s.varBounds(data, i)
	if err != nil {
		panic(err)
	}
	return data[start:end:end]
}

// GetString extracts a string field as a Go string (copies).
func (s *Schema) GetString(data []byte, i int) string { return string(s.GetBytes(data, i)) }

func (s *Schema) varBounds(data []byte, i int) (start, end int, err error) {
	off := s.offsets[i]
	if off+4 > len(data) {
		return 0, 0, errTruncated(s, i, data)
	}
	endOff := int(binary.LittleEndian.Uint32(data[off:]))
	startOff := 0
	// Find the previous variable-length field's end offset.
	for j := i - 1; j >= 0; j-- {
		if !s.fields[j].Type.Fixed() {
			startOff = int(binary.LittleEndian.Uint32(data[s.offsets[j]:]))
			break
		}
	}
	start = s.fixedLen + startOff
	end = s.fixedLen + endOff
	if startOff > endOff || end > len(data) {
		return 0, 0, fmt.Errorf("record: corrupt var-length bounds [%d,%d) for field %q in %d-byte record",
			start, end, s.fields[i].Name, len(data))
	}
	return start, end, nil
}

func errTruncated(s *Schema, i int, data []byte) error {
	return fmt.Errorf("record: truncated record (%d bytes) reading field %q", len(data), s.fields[i].Name)
}
