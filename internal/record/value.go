package record

import (
	"fmt"
	"math"
	"strconv"
)

// Value is a dynamically typed field value. It is a small tagged struct
// rather than an interface to keep hot paths allocation-free.
type Value struct {
	Kind Type
	I    int64
	F    float64
	B    bool
	S    []byte // string/bytes payload; may alias an encoded record
}

// Int constructs an integer value.
func Int(i int64) Value { return Value{Kind: TInt, I: i} }

// Float constructs a float value.
func Float(f float64) Value { return Value{Kind: TFloat, F: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value { return Value{Kind: TBool, B: b} }

// Str constructs a string value.
func Str(s string) Value { return Value{Kind: TString, S: []byte(s)} }

// Bytes constructs a raw bytes value.
func Bytes(b []byte) Value { return Value{Kind: TBytes, S: b} }

func (v Value) checkType(t Type) error {
	if v.Kind == t {
		return nil
	}
	// Strings and bytes are interchangeable payloads.
	if (v.Kind == TString || v.Kind == TBytes) && (t == TString || t == TBytes) {
		return nil
	}
	return fmt.Errorf("value of type %s where %s expected", v.Kind, t)
}

// Copy returns a value whose payload does not alias any encoded record.
func (v Value) Copy() Value {
	if v.S != nil {
		v.S = append([]byte(nil), v.S...)
	}
	return v
}

// Equal reports deep equality of two values of the same kind.
func (v Value) Equal(w Value) bool { return CompareValues(v, w) == 0 }

// String renders the value for debugging and plan explanation.
func (v Value) String() string {
	switch v.Kind {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TBool:
		return strconv.FormatBool(v.B)
	case TString:
		return strconv.Quote(string(v.S))
	case TBytes:
		return fmt.Sprintf("0x%x", v.S)
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// CompareValues orders two values of the same kind: -1, 0, or +1.
// Booleans order false < true; floats order with NaN smallest so that
// sorting is total.
func CompareValues(a, b Value) int {
	switch a.Kind {
	case TInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case TFloat:
		return compareFloats(a.F, b.F)
	case TBool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	default:
		return compareBytes(a.S, b.S)
	}
}

func compareFloats(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// mathFloat64bits and mathFloat64frombits are tiny wrappers so record.go
// does not import math directly next to encoding/binary hot paths.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(u uint64) float64 { return math.Float64frombits(u) }
