package record

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{"id", TInt},
		Field{"score", TFloat},
		Field{"name", TString},
		Field{"active", TBool},
		Field{"blob", TBytes},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaConstruction(t *testing.T) {
	s := testSchema(t)
	if got := s.NumFields(); got != 5 {
		t.Fatalf("NumFields = %d, want 5", got)
	}
	if s.Index("name") != 2 {
		t.Fatalf("Index(name) = %d, want 2", s.Index("name"))
	}
	if s.Index("missing") != -1 {
		t.Fatalf("Index(missing) = %d, want -1", s.Index("missing"))
	}
	// fixed: 8 (int) + 8 (float) + 4 (string off) + 1 (bool) + 4 (bytes off)
	if s.FixedLen() != 25 {
		t.Fatalf("FixedLen = %d, want 25", s.FixedLen())
	}
	if !strings.Contains(s.String(), "score:float") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{"", TInt}); err == nil {
		t.Fatal("empty field name accepted")
	}
	if _, err := NewSchema(Field{"a", TInt}, Field{"a", TFloat}); err == nil {
		t.Fatal("duplicate field name accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	vals := []Value{Int(42), Float(3.5), Str("hello"), Bool(true), Bytes([]byte{1, 2, 3})}
	data, err := s.Encode(vals)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range vals {
		if !vals[i].Equal(got[i]) {
			t.Errorf("field %d: got %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestEncodeEmptyVarFields(t *testing.T) {
	s := testSchema(t)
	data := s.MustEncode(Int(0), Float(0), Str(""), Bool(false), Bytes(nil))
	if len(data) != s.FixedLen() {
		t.Fatalf("len = %d, want %d", len(data), s.FixedLen())
	}
	if got := s.GetString(data, 2); got != "" {
		t.Fatalf("GetString = %q, want empty", got)
	}
	if got := s.GetBytes(data, 4); len(got) != 0 {
		t.Fatalf("GetBytes = %v, want empty", got)
	}
}

func TestEncodeTypeMismatch(t *testing.T) {
	s := testSchema(t)
	_, err := s.Encode([]Value{Str("no"), Float(0), Str(""), Bool(false), Bytes(nil)})
	if err == nil {
		t.Fatal("type mismatch accepted")
	}
	_, err = s.Encode([]Value{Int(1)})
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestFieldAccessors(t *testing.T) {
	s := testSchema(t)
	data := s.MustEncode(Int(-7), Float(2.25), Str("abc"), Bool(true), Bytes([]byte("xyz")))
	if got := s.GetInt(data, 0); got != -7 {
		t.Errorf("GetInt = %d", got)
	}
	if got := s.GetFloat(data, 1); got != 2.25 {
		t.Errorf("GetFloat = %g", got)
	}
	if got := s.GetString(data, 2); got != "abc" {
		t.Errorf("GetString = %q", got)
	}
	if !s.GetBool(data, 3) {
		t.Error("GetBool = false")
	}
	if got := s.GetBytes(data, 4); !bytes.Equal(got, []byte("xyz")) {
		t.Errorf("GetBytes = %q", got)
	}
}

func TestAccessorPanicsOnWrongType(t *testing.T) {
	s := testSchema(t)
	data := s.MustEncode(Int(1), Float(1), Str("a"), Bool(false), Bytes(nil))
	mustPanic(t, func() { s.GetInt(data, 1) })
	mustPanic(t, func() { s.GetFloat(data, 0) })
	mustPanic(t, func() { s.GetBool(data, 0) })
	mustPanic(t, func() { s.GetBytes(data, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestGetTruncated(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Get([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := s.Decode(nil); err == nil {
		t.Fatal("nil record accepted")
	}
}

func TestCorruptVarBounds(t *testing.T) {
	s := MustSchema(Field{"a", TString})
	data := s.MustEncode(Str("hi"))
	data[0] = 200 // end offset beyond record
	if _, err := s.Get(data, 0); err == nil {
		t.Fatal("corrupt bounds accepted")
	}
}

func TestConcatAndProject(t *testing.T) {
	a := MustSchema(Field{"x", TInt}, Field{"y", TString})
	b := MustSchema(Field{"x", TInt}, Field{"z", TFloat})
	c := a.Concat(b)
	if c.NumFields() != 4 {
		t.Fatalf("Concat fields = %d", c.NumFields())
	}
	if c.Index("r_x") != 2 {
		t.Fatalf("collision rename failed: %v", c)
	}
	p := c.Project([]int{3, 0})
	if p.NumFields() != 2 || p.Field(0).Name != "z" || p.Field(1).Name != "x" {
		t.Fatalf("Project = %v", p)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Field{"x", TInt})
	b := MustSchema(Field{"x", TInt})
	c := MustSchema(Field{"x", TFloat})
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal misbehaves")
	}
}

func TestCompareField(t *testing.T) {
	s := testSchema(t)
	lo := s.MustEncode(Int(1), Float(1.0), Str("a"), Bool(false), Bytes([]byte{0}))
	hi := s.MustEncode(Int(2), Float(2.0), Str("b"), Bool(true), Bytes([]byte{1}))
	for f := 0; f < 5; f++ {
		if c := s.CompareField(lo, hi, f); c != -1 {
			t.Errorf("field %d: Compare(lo,hi) = %d", f, c)
		}
		if c := s.CompareField(hi, lo, f); c != 1 {
			t.Errorf("field %d: Compare(hi,lo) = %d", f, c)
		}
		if c := s.CompareField(lo, lo, f); c != 0 {
			t.Errorf("field %d: Compare(lo,lo) = %d", f, c)
		}
	}
}

func TestCompareSortSpec(t *testing.T) {
	s := MustSchema(Field{"a", TInt}, Field{"b", TInt})
	r1 := s.MustEncode(Int(1), Int(9))
	r2 := s.MustEncode(Int(1), Int(5))
	spec := []SortSpec{{Field: 0}, {Field: 1, Desc: true}}
	if c := s.Compare(r1, r2, spec); c != -1 {
		t.Fatalf("Compare = %d, want -1 (desc on b)", c)
	}
}

func TestCompareNaN(t *testing.T) {
	s := MustSchema(Field{"f", TFloat})
	nan := s.MustEncode(Float(math.NaN()))
	one := s.MustEncode(Float(1))
	if s.CompareField(nan, one, 0) != -1 || s.CompareField(one, nan, 0) != 1 ||
		s.CompareField(nan, nan, 0) != 0 {
		t.Fatal("NaN ordering not total")
	}
}

func TestHashEqualKeysEqualHashes(t *testing.T) {
	s := testSchema(t)
	a := s.MustEncode(Int(10), Float(1.5), Str("k"), Bool(true), Bytes([]byte("v")))
	b := s.MustEncode(Int(10), Float(9.9), Str("k"), Bool(false), Bytes([]byte("w")))
	key := Key{0, 2}
	if s.Hash(a, key) != s.Hash(b, key) {
		t.Fatal("equal keys hash differently")
	}
	if s.Hash(a, Key{1}) == s.Hash(b, Key{1}) {
		t.Fatal("different float keys hash equally (suspicious)")
	}
}

func TestHashIntFloatCanonical(t *testing.T) {
	si := MustSchema(Field{"k", TInt})
	sf := MustSchema(Field{"k", TFloat})
	a := si.MustEncode(Int(7))
	b := sf.MustEncode(Float(7.0))
	if si.Hash(a, Key{0}) != sf.Hash(b, Key{0}) {
		t.Fatal("int 7 and float 7.0 hash differently")
	}
}

func TestHashStringBoundary(t *testing.T) {
	s := MustSchema(Field{"a", TString}, Field{"b", TString})
	x := s.MustEncode(Str("ab"), Str(""))
	y := s.MustEncode(Str("a"), Str("b"))
	if s.Hash(x, Key{0, 1}) == s.Hash(y, Key{0, 1}) {
		t.Fatal(`("ab","") and ("a","b") hash equally`)
	}
}

func TestKeyString(t *testing.T) {
	s := testSchema(t)
	a := s.MustEncode(Int(10), Float(1.5), Str("k"), Bool(true), Bytes([]byte("v")))
	b := s.MustEncode(Int(10), Float(2.5), Str("k"), Bool(true), Bytes([]byte("v")))
	k := Key{0, 2}
	if KeyString(s.KeyValues(a, k)) != KeyString(s.KeyValues(b, k)) {
		t.Fatal("equal keys render differently")
	}
	if KeyString(s.KeyValues(a, Key{1})) == KeyString(s.KeyValues(b, Key{1})) {
		t.Fatal("different keys render equally")
	}
}

func TestCompareKeysAcrossSchemas(t *testing.T) {
	a := MustSchema(Field{"x", TInt}, Field{"pad", TString})
	b := MustSchema(Field{"junk", TFloat}, Field{"y", TInt})
	ra := a.MustEncode(Int(5), Str("p"))
	rb := b.MustEncode(Float(0), Int(5))
	if c := CompareKeys(a, ra, Key{0}, b, rb, Key{1}); c != 0 {
		t.Fatalf("CompareKeys = %d, want 0", c)
	}
	rb2 := b.MustEncode(Float(0), Int(6))
	if c := CompareKeys(a, ra, Key{0}, b, rb2, Key{1}); c != -1 {
		t.Fatalf("CompareKeys = %d, want -1", c)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":    Int(42),
		"1.5":   Float(1.5),
		"true":  Bool(true),
		`"hi"`:  Str("hi"),
		"0x01":  Bytes([]byte{1}),
		"false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind, got, want)
		}
	}
}

func TestValueCopyDoesNotAlias(t *testing.T) {
	orig := Str("abc")
	cp := orig.Copy()
	orig.S[0] = 'x'
	if string(cp.S) != "abc" {
		t.Fatal("Copy aliases original payload")
	}
}

func TestRIDString(t *testing.T) {
	r := RID{PageID: PageID{Dev: 2, Page: 7}, Slot: 3}
	if r.String() != "2:7.3" {
		t.Fatalf("RID.String = %q", r.String())
	}
	if !(RID{}).IsNil() || r.IsNil() {
		t.Fatal("IsNil misbehaves")
	}
	if !NilPage.IsNil() {
		t.Fatal("NilPage not nil")
	}
}

// Property: encode/decode round-trips for arbitrary values.
func TestQuickEncodeRoundTrip(t *testing.T) {
	s := MustSchema(
		Field{"i", TInt}, Field{"f", TFloat}, Field{"s", TString},
		Field{"b", TBool}, Field{"y", TBytes},
	)
	prop := func(i int64, f float64, str string, b bool, y []byte) bool {
		vals := []Value{Int(i), Float(f), Str(str), Bool(b), Bytes(y)}
		data, err := s.Encode(vals)
		if err != nil {
			return false
		}
		got, err := s.Decode(data)
		if err != nil {
			return false
		}
		for k := range vals {
			if vals[k].Kind == TFloat && math.IsNaN(vals[k].F) {
				if !math.IsNaN(got[k].F) {
					return false
				}
				continue
			}
			if !vals[k].Equal(got[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CompareField is antisymmetric and reflexive on int records.
func TestQuickCompareAntisymmetric(t *testing.T) {
	s := MustSchema(Field{"i", TInt}, Field{"s", TString})
	prop := func(i1, i2 int64, s1, s2 string) bool {
		a := s.MustEncode(Int(i1), Str(s1))
		b := s.MustEncode(Int(i2), Str(s2))
		spec := []SortSpec{{Field: 0}, {Field: 1}}
		if s.Compare(a, b, spec) != -s.Compare(b, a, spec) {
			return false
		}
		return s.Compare(a, a, spec) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hashing is consistent with key equality.
func TestQuickHashConsistency(t *testing.T) {
	s := MustSchema(Field{"k", TString}, Field{"v", TInt})
	prop := func(k string, v1, v2 int64) bool {
		a := s.MustEncode(Str(k), Int(v1))
		b := s.MustEncode(Str(k), Int(v2))
		return s.Hash(a, Key{0}) == s.Hash(b, Key{0})
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
