package record

import "fmt"

// DeviceID identifies a device (real or virtual) within a running system.
type DeviceID uint32

// PageID identifies one page (cluster) on a device.
type PageID struct {
	Dev  DeviceID
	Page uint32
}

// NilPage is the zero PageID, used as a "no page" sentinel. Page numbers
// on devices start at 1 so that the zero value is never a valid page.
var NilPage = PageID{}

// IsNil reports whether the PageID is the "no page" sentinel.
func (p PageID) IsNil() bool { return p == NilPage }

// String renders the PageID as dev:page.
func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.Dev, p.Page) }

// RID is a record identifier: the page holding the record and the slot
// within that page. RIDs are assigned to stored records and — via virtual
// devices — to intermediate results, so every record in the system has a
// unique identity (paper, §3).
type RID struct {
	PageID
	Slot uint16
}

// IsNil reports whether the RID is the zero sentinel.
func (r RID) IsNil() bool { return r == RID{} }

// String renders the RID as dev:page.slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d.%d", r.Dev, r.Page, r.Slot) }
