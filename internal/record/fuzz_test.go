package record

import "testing"

// FuzzDecode feeds arbitrary bytes to the record decoder: corrupt
// records must produce errors, never panics or out-of-bounds reads.
func FuzzDecode(f *testing.F) {
	s := MustSchema(
		Field{"i", TInt}, Field{"s", TString}, Field{"b", TBool}, Field{"y", TBytes},
	)
	good := s.MustEncode(Int(42), Str("hello"), Bool(true), Bytes([]byte{1, 2}))
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 25))
	trunc := append([]byte(nil), good[:10]...)
	f.Add(trunc)
	corrupt := append([]byte(nil), good...)
	corrupt[8] = 0xFF // var-length end offset out of range
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := s.Decode(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode without error.
		if _, err := s.Encode(vals); err != nil {
			t.Fatalf("decoded values do not re-encode: %v", err)
		}
	})
}

// FuzzParseSpec checks the schema-spec parser never panics and that
// accepted specs round-trip.
func FuzzParseSpec(f *testing.F) {
	f.Add("a:int,b:string")
	f.Add("x:float")
	f.Add(":,::")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		back, err := ParseSpec(s.Spec())
		if err != nil || !back.Equal(s) {
			t.Fatalf("spec %q does not round-trip", spec)
		}
	})
}
