package record

import "testing"

func TestSpecRoundTrip(t *testing.T) {
	s := MustSchema(
		Field{"id", TInt}, Field{"score", TFloat}, Field{"name", TString},
		Field{"ok", TBool}, Field{"raw", TBytes},
	)
	spec := s.Spec()
	if spec != "id:int,score:float,name:string,ok:bool,raw:bytes" {
		t.Fatalf("Spec = %q", spec)
	}
	back, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip changed schema: %v", back)
	}
}

func TestParseSpecWhitespaceTolerant(t *testing.T) {
	s, err := ParseSpec(" a : int , b : string ")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFields() != 2 || s.Field(0).Name != "a" || s.Field(1).Type != TString {
		t.Fatalf("parsed %v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"", "a", "a:", "a:blob", ":int", "a:int,a:int", "a:int,,b:int"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", bad)
		}
	}
}
