package bench

import (
	"os"
	"testing"
	"time"
)

func TestSmokeAblations(t *testing.T) {
	type run struct {
		name string
		f    func() (*Ablation, error)
	}
	runs := []run{
		{"A1", func() (*Ablation, error) { return AblationFlowControl(5000) }},
		{"A2", func() (*Ablation, error) { return AblationForkScheme(8, time.Millisecond) }},
		{"A3", func() (*Ablation, error) { return AblationInline(5000) }},
		{"A4", func() (*Ablation, error) { return AblationPartitioning(5000) }},
		{"A5", func() (*Ablation, error) { return AblationBroadcast(3000) }},
		{"A6", func() (*Ablation, error) { return AblationMatch(2000) }},
		{"A7", func() (*Ablation, error) { return AblationDivision(300, 10, 3) }},
		{"A8", func() (*Ablation, error) { return AblationSupportFunctions(10000) }},
		{"A9", func() (*Ablation, error) { return AblationBufferLocking(5000, 4) }},
		{"A10", func() (*Ablation, error) { return AblationParallelSort(10000, 4) }},
	}
	for _, r := range runs {
		a, err := r.f()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		a.Print(os.Stderr)
	}
}

func TestSmokeSharedNothing(t *testing.T) {
	a, err := AblationSharedNothing(5000, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	a.Print(os.Stderr)
}

func TestSmokeRunGeneration(t *testing.T) {
	a, err := AblationRunGeneration(20000, 256)
	if err != nil {
		t.Fatal(err)
	}
	a.Print(os.Stderr)
}
