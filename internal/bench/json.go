package bench

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ReportSchemaVersion is bumped whenever the JSON shape below changes
// incompatibly, so downstream diff tooling can refuse mixed comparisons.
const ReportSchemaVersion = 1

// Report is the machine-readable result set volcano-bench emits with
// -json: every experiment's numbers under a stable schema (durations in
// integer nanoseconds, fixed field names) so the performance trajectory
// of the tree is diffable across PRs.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Records       int    `json:"records"`

	T1          *T1JSON          `json:"t1,omitempty"`
	Fig2a       []Fig2aPointJSON `json:"fig2a,omitempty"`
	Fig2bSlopes *Fig2bJSON       `json:"fig2b_slopes,omitempty"`
	Ablations   []AblationJSON   `json:"ablations,omitempty"`
	// AnalyzedPass is the instrumented pipeline pass (-analyze): elapsed
	// time plus the sink's Next-latency distribution summarised as
	// count/mean/quantiles. Additive and omitempty, so the schema
	// version holds.
	AnalyzedPass *AnalyzedPassJSON `json:"analyzed_pass,omitempty"`
}

// AnalyzedPassJSON summarises the instrumented pass for the report.
type AnalyzedPassJSON struct {
	Records   int   `json:"records"`
	ElapsedNs int64 `json:"elapsed_ns"`
	NextCalls int64 `json:"next_calls"`
	MeanNs    int64 `json:"mean_ns"`
	P50Ns     int64 `json:"p50_ns"`
	P95Ns     int64 `json:"p95_ns"`
	P99Ns     int64 `json:"p99_ns"`
}

// T1JSON is the §5 overhead table.
type T1JSON struct {
	NoExchangeNs           int64 `json:"no_exchange_ns"`
	InlineNs               int64 `json:"inline_ns"`
	PipelineFlowNs         int64 `json:"pipeline_flow_ns"`
	PipelineNoFlowNs       int64 `json:"pipeline_noflow_ns"`
	PerRecordPerExchangeNs int64 `json:"per_record_per_exchange_ns"`
}

// Fig2aPointJSON is one packet-size sweep point.
type Fig2aPointJSON struct {
	PacketSize int     `json:"packet_size"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	PaperSec   float64 `json:"paper_sec,omitempty"`
}

// Fig2bJSON is the log-log slope analysis of Figure 2b.
type Fig2bJSON struct {
	SlopeSmallPackets float64 `json:"slope_packets_1_10"`
	SlopeLargePackets float64 `json:"slope_packets_10_83"`
}

// AblationJSON is one ablation study.
type AblationJSON struct {
	Name  string             `json:"name"`
	Title string             `json:"title"`
	Lines []AblationLineJSON `json:"lines"`
}

// AblationLineJSON is one measured configuration of an ablation.
type AblationLineJSON struct {
	Name      string `json:"name"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Extra     string `json:"extra,omitempty"`
}

// NewReport starts a report for a run over the given record count.
func NewReport(records int) *Report {
	return &Report{
		SchemaVersion: ReportSchemaVersion,
		Tool:          "volcano-bench",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Records:       records,
	}
}

// JSON converts the T1 result.
func (r *T1Result) JSON() *T1JSON {
	return &T1JSON{
		NoExchangeNs:           int64(r.NoExchange.Elapsed),
		InlineNs:               int64(r.Inline.Elapsed),
		PipelineFlowNs:         int64(r.PipeFlow.Elapsed),
		PipelineNoFlowNs:       int64(r.PipeNoFlow.Elapsed),
		PerRecordPerExchangeNs: int64(r.PerRecordPerExchange),
	}
}

// JSONPoints converts the Figure-2a sweep.
func (r *Fig2Result) JSONPoints() []Fig2aPointJSON {
	out := make([]Fig2aPointJSON, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, Fig2aPointJSON{
			PacketSize: p.PacketSize,
			ElapsedNs:  int64(p.Elapsed),
			PaperSec:   p.PaperSec,
		})
	}
	return out
}

// JSONSlopes converts the Figure-2b slope analysis.
func (r *Fig2Result) JSONSlopes() *Fig2bJSON {
	return &Fig2bJSON{
		SlopeSmallPackets: r.Slope(1, 10),
		SlopeLargePackets: r.Slope(10, 83),
	}
}

// JSON converts an ablation, keyed by its short name (A1, A2, ...). The
// multi-line per-operator breakdowns stay out of the report: they are
// human diagnostics, not comparable numbers.
func (a *Ablation) JSON(name string) AblationJSON {
	out := AblationJSON{Name: name, Title: a.Title}
	for _, l := range a.Lines {
		out.Lines = append(out.Lines, AblationLineJSON{
			Name:      l.Name,
			ElapsedNs: int64(l.Elapsed),
			Extra:     l.Extra,
		})
	}
	return out
}

// WriteJSON renders the report with a stable field order (struct order)
// and trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunTracedPass runs one pipeline pass on the Figure-2a topology (a
// producer group of three through two intermediate groups of three to a
// single consumer, flow control with three slack packets) with the
// tracer attached — the canonical "what does the exchange protocol look
// like in time" recording.
func RunTracedPass(records int, tr *trace.Tracer) (PassResult, error) {
	return RunPass(PassConfig{
		Records:     records,
		Stages:      3,
		Groups:      []int{3, 3, 3},
		FlowControl: true,
		Slack:       3,
		PacketSize:  83,
		Tracer:      tr,
	})
}

// RunAnalyzedPass runs one instrumented pipeline pass on the same
// Figure-2a topology: the sink is wrapped, its latency recorded (into
// mr's volcano_op_next_seconds child when mr is non-nil, so a live
// scraper sees it), and the per-stage breakdown rendered.
func RunAnalyzedPass(records int, mr *metrics.Registry) (PassResult, error) {
	return RunPass(PassConfig{
		Records:     records,
		Stages:      3,
		Groups:      []int{3, 3, 3},
		FlowControl: true,
		Slack:       3,
		PacketSize:  83,
		Analyze:     true,
		Metrics:     mr,
	})
}

// JSON summarises an analyzed pass for the report.
func (r *PassResult) JSON() *AnalyzedPassJSON {
	s := r.SinkLatency
	return &AnalyzedPassJSON{
		Records:   r.Records,
		ElapsedNs: int64(r.Elapsed),
		NextCalls: s.Count(),
		MeanNs:    int64(s.Mean()),
		P50Ns:     int64(s.Quantile(0.50)),
		P95Ns:     int64(s.Quantile(0.95)),
		P99Ns:     int64(s.Quantile(0.99)),
	}
}
