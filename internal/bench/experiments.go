package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"
)

// T1Result is the §5 in-text experiment: exchange overhead.
type T1Result struct {
	Records    int
	NoExchange PassResult
	Inline     PassResult
	PipeFlow   PassResult
	PipeNoFlow PassResult
	// PerRecordPerExchange is the derived overhead of one exchange in
	// inline (procedure call) mode, the paper's 25.73 µs figure.
	PerRecordPerExchange time.Duration
}

// RunT1 executes all four configurations of the §5 experiment.
func RunT1(records int) (*T1Result, error) {
	res := &T1Result{Records: records}
	var err error
	if res.NoExchange, err = RunPass(PassConfig{Records: records, Stages: 0}); err != nil {
		return nil, fmt.Errorf("t1 no-exchange: %w", err)
	}
	if res.Inline, err = RunPass(PassConfig{Records: records, Stages: 3, Inline: true}); err != nil {
		return nil, fmt.Errorf("t1 inline: %w", err)
	}
	if res.PipeFlow, err = RunPass(PassConfig{Records: records, Stages: 3, FlowControl: true, Slack: 4}); err != nil {
		return nil, fmt.Errorf("t1 pipeline(flow): %w", err)
	}
	if res.PipeNoFlow, err = RunPass(PassConfig{Records: records, Stages: 3}); err != nil {
		return nil, fmt.Errorf("t1 pipeline(noflow): %w", err)
	}
	res.PerRecordPerExchange = (res.Inline.Elapsed - res.NoExchange.Elapsed) / 3 / time.Duration(records)
	return res, nil
}

// Print renders the T1 table with the paper's numbers alongside.
func (r *T1Result) Print(w io.Writer) {
	scale := float64(r.Records) / float64(PaperRecords)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "T1 — exchange overhead (record-passing program, %d records)\n", r.Records)
	fmt.Fprintln(tw, "configuration\tmeasured\tpaper (100k, 4 MIPS CPUs)")
	fmt.Fprintf(tw, "no exchange\t%v\t%.2fs\n", r.NoExchange.Elapsed.Round(time.Microsecond), PaperNoExchangeSec*scale)
	fmt.Fprintf(tw, "3 exchanges, no new processes\t%v\t%.2fs\n", r.Inline.Elapsed.Round(time.Microsecond), PaperInlineSec*scale)
	fmt.Fprintf(tw, "pipeline of 4 groups, flow control\t%v\t%.2fs\n", r.PipeFlow.Elapsed.Round(time.Microsecond), PaperPipelineFlowSec*scale)
	fmt.Fprintf(tw, "pipeline of 4 groups, no flow control\t%v\t%.2fs\n", r.PipeNoFlow.Elapsed.Round(time.Microsecond), PaperPipelineNoFlowSec*scale)
	fmt.Fprintf(tw, "overhead/record/exchange (inline)\t%v\t%.2fµs\n", r.PerRecordPerExchange, PaperPerRecordUsec)
	tw.Flush()
}

// Shape checks (who wins / ordering), used by tests and EXPERIMENTS.md.
func (r *T1Result) InlineSlowerThanDirect() bool {
	return r.Inline.Elapsed > r.NoExchange.Elapsed
}

// Fig2Point is one packet-size measurement.
type Fig2Point struct {
	PacketSize int
	Elapsed    time.Duration
	PaperSec   float64 // 0 if the paper gives no explicit number
}

// Fig2Result is the packet-size sweep of Figures 2a and 2b.
type Fig2Result struct {
	Records int
	Points  []Fig2Point
}

// RunFig2 sweeps the paper's packet sizes.
func RunFig2(records int) (*Fig2Result, error) {
	res := &Fig2Result{Records: records}
	for _, ps := range Fig2aPacketSizes {
		p, err := RunFig2aPoint(records, ps)
		if err != nil {
			return nil, fmt.Errorf("fig2a packet=%d: %w", ps, err)
		}
		res.Points = append(res.Points, Fig2Point{
			PacketSize: ps,
			Elapsed:    p.Elapsed,
			PaperSec:   Fig2aPaperSeconds[ps],
		})
	}
	return res, nil
}

// Print renders Figure 2a as a table plus an ASCII bar chart, and the
// Figure 2b log-log slope analysis.
func (r *Fig2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2a — exchange performance vs packet size (%d records, 3→3→3→1, slack 3)\n", r.Records)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "packet\tmeasured\trel(83)\tpaper")
	base := r.Points[len(r.Points)-1].Elapsed
	maxE := r.Points[0].Elapsed
	for _, p := range r.Points {
		paper := "-"
		if p.PaperSec > 0 {
			paper = fmt.Sprintf("%.1fs", p.PaperSec)
		}
		bar := int(40 * float64(p.Elapsed) / float64(maxE))
		fmt.Fprintf(tw, "%d\t%v\t%.2fx\t%s\t%s\n",
			p.PacketSize, p.Elapsed.Round(time.Microsecond),
			float64(p.Elapsed)/float64(base), paper, bars(bar))
	}
	tw.Flush()

	fmt.Fprintln(w, "\nFigure 2b — log-log view (straight line for small packets = data-exchange bound)")
	s1 := r.Slope(1, 10)
	s2 := r.Slope(10, 83)
	fmt.Fprintf(w, "  slope, packets 1..10:  %.2f (paper: ≈ -1, exchange-dominated)\n", s1)
	fmt.Fprintf(w, "  slope, packets 10..83: %.2f (paper: flattens, record processing dominates)\n", s2)
}

func bars(n int) string {
	if n < 1 {
		n = 1
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Slope returns the log-log slope of elapsed time between two packet
// sizes present in the sweep.
func (r *Fig2Result) Slope(fromPS, toPS int) float64 {
	var from, to *Fig2Point
	for i := range r.Points {
		if r.Points[i].PacketSize == fromPS {
			from = &r.Points[i]
		}
		if r.Points[i].PacketSize == toPS {
			to = &r.Points[i]
		}
	}
	if from == nil || to == nil {
		return math.NaN()
	}
	return (math.Log(float64(to.Elapsed)) - math.Log(float64(from.Elapsed))) /
		(math.Log(float64(toPS)) - math.Log(float64(fromPS)))
}
