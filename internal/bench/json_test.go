package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestReportSchema pins the machine-readable schema: field names, units
// (integer nanoseconds) and the version stamp, from a real small T1 run
// plus a synthetic ablation.
func TestReportSchema(t *testing.T) {
	t1, err := RunT1(500)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(500)
	rep.T1 = t1.JSON()
	rep.Ablations = append(rep.Ablations, (&Ablation{
		Title: "synthetic",
		Lines: []Line{{Name: "base", Elapsed: 3 * time.Millisecond, Extra: "x=1"}},
	}).JSON("A0"))

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if v, ok := doc["schema_version"].(float64); !ok || int(v) != ReportSchemaVersion {
		t.Errorf("schema_version = %v, want %d", doc["schema_version"], ReportSchemaVersion)
	}
	for _, key := range []string{"tool", "go_version", "gomaxprocs", "records", "t1", "ablations"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing %q:\n%s", key, buf.String())
		}
	}
	t1doc, ok := doc["t1"].(map[string]interface{})
	if !ok {
		t.Fatalf("t1 is not an object: %v", doc["t1"])
	}
	for _, key := range []string{"no_exchange_ns", "inline_ns", "pipeline_flow_ns", "pipeline_noflow_ns", "per_record_per_exchange_ns"} {
		v, ok := t1doc[key].(float64)
		if !ok {
			t.Errorf("t1 missing %q: %v", key, t1doc)
			continue
		}
		if v != float64(int64(v)) {
			t.Errorf("t1.%s = %v, want integer nanoseconds", key, v)
		}
	}
	abl, ok := doc["ablations"].([]interface{})
	if !ok || len(abl) != 1 {
		t.Fatalf("ablations = %v", doc["ablations"])
	}
	a0 := abl[0].(map[string]interface{})
	if a0["name"] != "A0" || a0["title"] != "synthetic" {
		t.Errorf("ablation = %v", a0)
	}
	line := a0["lines"].([]interface{})[0].(map[string]interface{})
	if line["elapsed_ns"].(float64) != 3e6 || line["extra"] != "x=1" {
		t.Errorf("line = %v", line)
	}
}

// TestReportFig2Conversion checks the Figure-2 conversions carry points
// and slopes through unchanged.
func TestReportFig2Conversion(t *testing.T) {
	r := &Fig2Result{
		Records: 100,
		Points: []Fig2Point{
			{PacketSize: 1, Elapsed: 10 * time.Millisecond, PaperSec: 171},
			{PacketSize: 10, Elapsed: 2 * time.Millisecond},
			{PacketSize: 83, Elapsed: time.Millisecond, PaperSec: 13.7},
		},
	}
	pts := r.JSONPoints()
	if len(pts) != 3 || pts[0].ElapsedNs != 10e6 || pts[0].PaperSec != 171 || pts[1].PaperSec != 0 {
		t.Errorf("points = %+v", pts)
	}
	slopes := r.JSONSlopes()
	if slopes.SlopeSmallPackets >= 0 {
		t.Errorf("slope over decreasing elapsed should be negative, got %v", slopes.SlopeSmallPackets)
	}
}

// TestRunTracedPass checks the canonical traced pass records the exchange
// protocol and exports valid Chrome JSON.
func TestRunTracedPass(t *testing.T) {
	tr := trace.New()
	res, err := RunTracedPass(2000, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2000 {
		t.Fatalf("records = %d", res.Records)
	}
	names := map[string]bool{}
	for _, s := range tr.Snapshot() {
		for _, e := range s.Events {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"producer-start", "push", "pop", "eos", "allow-close"} {
		if !names[want] {
			t.Errorf("traced pass missing %q events", want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
}
