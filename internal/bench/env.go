// Package bench implements the paper's performance experiments (§5): the
// record-passing microbenchmark that measures the exchange operator's
// overhead, the packet-size sweep of Figures 2a/2b, and the ablations for
// the design decisions discussed throughout the paper.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage/buffer"
	"repro/internal/storage/device"
	"repro/internal/storage/file"
)

// World bundles the runtime state experiments execute in.
type World struct {
	Reg  *device.Registry
	Pool *buffer.Pool
	Env  *core.Env
	Base *file.Volume
}

// NewWorld builds a fresh environment with two virtual devices (base
// tables and intermediate results) and a buffer pool of the given size.
func NewWorld(frames int, mode buffer.LockMode) (*World, error) {
	reg := device.NewRegistry()
	baseID := reg.NextID()
	if err := reg.Mount(device.NewMem(baseID)); err != nil {
		return nil, err
	}
	tempID := reg.NextID()
	if err := reg.Mount(device.NewMem(tempID)); err != nil {
		return nil, err
	}
	pool := buffer.NewPool(reg, frames, mode)
	return &World{
		Reg:  reg,
		Pool: pool,
		Env:  core.NewEnv(pool, file.NewVolume(pool, tempID)),
		Base: file.NewVolume(pool, baseID),
	}, nil
}

// Close releases the world's devices.
func (w *World) Close() { _ = w.Reg.CloseAll() }

// CheckBalanced returns an error if buffer pins leaked.
func (w *World) CheckBalanced() error {
	if n := w.Pool.Stats().CurrentlyFixedHint; n != 0 {
		return fmt.Errorf("bench: %d buffer pins leaked", n)
	}
	return nil
}

// GenSchema is the record layout of the paper's microbenchmark program:
// records filled with four integers (§5).
var GenSchema = record.MustSchema(
	record.Field{Name: "a", Type: record.TInt},
	record.Field{Name: "b", Type: record.TInt},
	record.Field{Name: "c", Type: record.TInt},
	record.Field{Name: "d", Type: record.TInt},
)

// Gen is the record generator iterator: it creates records with four
// integers, fixed in the buffer through a virtual file, exactly like the
// program measured in §5. It implements core.Iterator.
type Gen struct {
	env   *core.Env
	n     int
	start int64

	w *core.ResultWriter
	i int
	// vals is the reusable value buffer; arena, offs, datas and recs are
	// the batch path's scratch: a whole batch is encoded into the arena
	// (AppendEncode reuses its backing array), then materialised through
	// one WriteBytesBatch call, so steady-state generation performs no
	// per-record allocation and no per-record page fix.
	vals  []record.Value
	arena []byte
	offs  []int
	datas [][]byte
	recs  []core.Rec
	batch int
}

// EnableBatch implements core.BatchConfigurable.
func (g *Gen) EnableBatch(size int) { g.batch = size }

// NewGen creates a generator of n records with keys start..start+n-1.
func NewGen(env *core.Env, n int, start int64) *Gen {
	return &Gen{env: env, n: n, start: start}
}

// Schema implements core.Iterator.
func (g *Gen) Schema() *record.Schema { return GenSchema }

// Open implements core.Iterator.
func (g *Gen) Open() error {
	if g.w != nil {
		return fmt.Errorf("bench: gen already open")
	}
	w, err := g.env.NewResultWriter("gen", GenSchema)
	if err != nil {
		return err
	}
	g.w = w
	g.i = 0
	g.vals = make([]record.Value, 4)
	return nil
}

// Next implements core.Iterator: creates the next record in the buffer.
func (g *Gen) Next() (core.Rec, bool, error) {
	if g.w == nil {
		return core.Rec{}, false, fmt.Errorf("bench: gen next before open")
	}
	if g.i >= g.n {
		return core.Rec{}, false, nil
	}
	k := g.start + int64(g.i)
	g.i++
	g.vals[0] = record.Int(k)
	g.vals[1] = record.Int(k * 2)
	g.vals[2] = record.Int(k ^ 0x5555)
	g.vals[3] = record.Int(-k)
	r, err := g.w.Write(g.vals)
	if err != nil {
		return core.Rec{}, false, err
	}
	return r, true, nil
}

// NextBatch implements core.BatchIterator natively: a whole batch of
// records is encoded into one reusable arena (Schema.AppendEncode), then
// materialised through a single WriteBytesBatch call — one page fix per
// page instead of one per record, and no per-record allocation in the
// steady state.
func (g *Gen) NextBatch(b *core.Batch) error {
	if g.w == nil {
		return fmt.Errorf("bench: gen next before open")
	}
	b.Reset()
	count := b.Target()
	if rest := g.n - g.i; count > rest {
		count = rest
	}
	if count <= 0 {
		return nil
	}
	// Encode phase: arena offsets first, windows after, because an append
	// may grow the arena and move earlier bytes.
	g.arena = g.arena[:0]
	g.offs = g.offs[:0]
	for j := 0; j < count; j++ {
		k := g.start + int64(g.i+j)
		g.vals[0] = record.Int(k)
		g.vals[1] = record.Int(k * 2)
		g.vals[2] = record.Int(k ^ 0x5555)
		g.vals[3] = record.Int(-k)
		g.offs = append(g.offs, len(g.arena))
		arena, err := GenSchema.AppendEncode(g.arena, g.vals)
		if err != nil {
			return err
		}
		g.arena = arena
	}
	g.datas = g.datas[:0]
	for j := 0; j < count; j++ {
		end := len(g.arena)
		if j+1 < count {
			end = g.offs[j+1]
		}
		g.datas = append(g.datas, g.arena[g.offs[j]:end])
	}
	if cap(g.recs) < count {
		g.recs = make([]core.Rec, count)
	}
	g.recs = g.recs[:count]
	if err := g.w.WriteBytesBatch(g.datas, g.recs); err != nil {
		return err
	}
	g.i += count
	for _, r := range g.recs {
		b.Append(r)
	}
	return nil
}

// Close implements core.Iterator.
func (g *Gen) Close() error {
	if g.w == nil {
		return fmt.Errorf("bench: gen close before open")
	}
	err := g.w.Dispose()
	g.w = nil
	return err
}

// LoadPairs creates a two-int-column table with n rows (a = i % keyRange,
// b = i) on the base volume.
func (w *World) LoadPairs(name string, n, keyRange int) (*file.File, error) {
	s := record.MustSchema(
		record.Field{Name: "a", Type: record.TInt},
		record.Field{Name: "b", Type: record.TInt},
	)
	f, err := w.Base.Create(name, s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := f.Insert(s.MustEncode(record.Int(int64(i%keyRange)), record.Int(int64(i)))); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// LoadPartitionedInts creates k one-column files "<name>.<g>"; value i
// goes to partition i%k.
func (w *World) LoadPartitionedInts(name string, n, k int) ([]*file.File, error) {
	s := record.MustSchema(record.Field{Name: "v", Type: record.TInt})
	files := make([]*file.File, k)
	for p := range files {
		f, err := w.Base.Create(fmt.Sprintf("%s.%d", name, p), s)
		if err != nil {
			return nil, err
		}
		files[p] = f
	}
	for i := 0; i < n; i++ {
		if _, err := files[i%k].Insert(s.MustEncode(record.Int(int64(i)))); err != nil {
			return nil, err
		}
	}
	return files, nil
}
