package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage/buffer"
	"repro/internal/trace"
)

// The record-passing program of §5: create records filled with four
// integers, pass them over a number of exchange boundaries, and unfix
// them at the sink. The paper measures (a) no exchange, (b) three
// exchanges in the mode that creates no new processes, and (c) a pipeline
// of four process groups, with and without flow control; Figure 2a/2b
// vary the packet size on a 3 -> 3 -> 3 -> 1 topology.

// PassConfig parameterises one record-passing run.
type PassConfig struct {
	Records     int
	Stages      int // number of exchange boundaries (0 = direct)
	Inline      bool
	FlowControl bool
	Slack       int
	PacketSize  int
	// Groups is the producer-group size at each boundary for the
	// Figure-2 topology; len(Groups) == Stages. nil = all size 1.
	Groups []int
	// BatchSize, when positive, runs the whole pass under the
	// batch-at-a-time protocol: generators encode through a reusable
	// scratch and emit batches, every exchange boundary pulls and routes
	// its producers' records in batches, and the sink drains the root
	// through NextBatch. Zero keeps record-at-a-time operation.
	BatchSize int
	// Analyze instruments the run: the sink is wrapped in a
	// core.Instrumented and every exchange hub's port counters are
	// reported in PassResult.Breakdown. Off by default so the measured
	// path stays untouched.
	Analyze bool
	// Tracer, when set, records the run as structured trace events —
	// every exchange boundary's protocol, the instrumented sink, and any
	// buffer-daemon activity — for Chrome-trace export. nil (the
	// default) keeps the measured path untouched.
	Tracer *trace.Tracer
	// Metrics, when set, exposes the run to a live scraper: the world's
	// buffer pool registers its counters (replacing any previous pass's
	// registration — func collectors have replace semantics) and the
	// sink's Next latency lands in a registry-owned histogram. nil (the
	// default) keeps the measured path untouched.
	Metrics *metrics.Registry
}

// PassResult reports one run.
type PassResult struct {
	Cfg       PassConfig
	Elapsed   time.Duration
	Records   int
	Exchanges int
	// PerRecordPerExchange is the derived overhead (only meaningful when
	// compared against a baseline run, as in the paper).
	PerRecord time.Duration
	// Breakdown is the per-operator/per-port report (Analyze only).
	Breakdown string
	// SinkLatency is the sink's Next-latency distribution (Analyze or
	// Metrics only; zero-valued otherwise).
	SinkLatency metrics.HistogramSnapshot
}

// RunPass executes the record-passing program under the given config.
func RunPass(cfg PassConfig) (PassResult, error) {
	if cfg.Records <= 0 {
		return PassResult{}, fmt.Errorf("bench: no records to pass")
	}
	// Size the pool to the workload: the pass keeps roughly one page per
	// hundred records live (generator temp files plus in-flight packets),
	// so records/40 leaves better than 2x headroom. The floor covers
	// small runs; the cap bounds setup cost at paper scale.
	frames := cfg.Records/80 + 256
	if frames > 4096 {
		frames = 4096
	}
	w, err := NewWorld(frames, 0)
	if err != nil {
		return PassResult{}, err
	}
	defer w.Close()

	if cfg.Tracer.Enabled() {
		w.Pool.SetTracer(cfg.Tracer)
	}
	if cfg.Metrics.Enabled() {
		w.Pool.RegisterMetrics(cfg.Metrics)
	}
	var hubs []*core.Exchange
	root, err := buildPassTree(w, cfg, &hubs)
	if err != nil {
		return PassResult{}, err
	}
	var sink *core.Instrumented
	if cfg.Analyze || cfg.Tracer.Enabled() || cfg.Metrics.Enabled() {
		var hist *metrics.Histogram
		if cfg.Metrics.Enabled() {
			hist = cfg.Metrics.Histogram("volcano_op_next_seconds",
				"Operator Next call latency.", nil,
				metrics.Label{Key: "op", Value: "sink"},
				metrics.Label{Key: "node", Value: "0"})
		} else if cfg.Analyze {
			hist = metrics.NewHistogram(nil)
		}
		sink = core.Instrument(root, "sink").WithTracer(cfg.Tracer).WithHistogram(hist)
		root = sink
	}
	poolBase := w.Pool.Stats()

	start := time.Now()
	var n int
	if cfg.BatchSize > 0 {
		n, err = core.DrainBatch(root, cfg.BatchSize)
	} else {
		n, err = core.Drain(root)
	}
	elapsed := time.Since(start)
	if err != nil {
		return PassResult{}, err
	}
	if n != cfg.Records {
		return PassResult{}, fmt.Errorf("bench: passed %d records, want %d", n, cfg.Records)
	}
	if err := w.CheckBalanced(); err != nil {
		return PassResult{}, err
	}
	res := PassResult{
		Cfg:       cfg,
		Elapsed:   elapsed,
		Records:   n,
		Exchanges: cfg.Stages,
		PerRecord: elapsed / time.Duration(n),
	}
	if sink != nil && sink.Histogram() != nil {
		res.SinkLatency = sink.Histogram().Snapshot()
	}
	if cfg.Analyze {
		res.Breakdown = formatBreakdown(sink, hubs, w.Pool.Stats().Sub(poolBase), res.SinkLatency)
	}
	return res, nil
}

// formatBreakdown renders the instrumented run: sink counters with
// latency quantiles, each exchange boundary's port activity (stage 1 is
// closest to the source), and the buffer pool's totals.
func formatBreakdown(sink *core.Instrumented, hubs []*core.Exchange, pool buffer.Stats, lat metrics.HistogramSnapshot) string {
	var sb []string
	st := sink.Stats().Snapshot()
	if lat.Count() > 1 {
		sb = append(sb, fmt.Sprintf("sink: %s p50=%v p95=%v p99=%v", st,
			lat.Quantile(0.50).Round(time.Nanosecond),
			lat.Quantile(0.95).Round(time.Nanosecond),
			lat.Quantile(0.99).Round(time.Nanosecond)))
	} else {
		sb = append(sb, fmt.Sprintf("sink: %s", st))
	}
	for i, x := range hubs {
		xs := x.Stats()
		sb = append(sb, fmt.Sprintf("exchange stage %d: packets=%d records=%d forks=%d stall=%v wait=%v",
			i+1, xs.Packets, xs.Records, xs.Forks,
			xs.ProducerStall.Round(time.Microsecond), xs.ConsumerWait.Round(time.Microsecond)))
	}
	sb = append(sb, fmt.Sprintf("buffer: fixes=%d hits=%d misses=%d", pool.Fixes, pool.Hits, pool.Misses))
	return strings.Join(sb, "\n")
}

// buildPassTree assembles generators and exchange stages per the config,
// appending every exchange hub it creates to *hubs (source side first).
func buildPassTree(w *World, cfg PassConfig, hubs *[]*core.Exchange) (core.Iterator, error) {
	groups := cfg.Groups
	if groups == nil {
		groups = make([]int, cfg.Stages)
		for i := range groups {
			groups[i] = 1
		}
	}
	if len(groups) != cfg.Stages {
		return nil, fmt.Errorf("bench: %d group sizes for %d stages", len(groups), cfg.Stages)
	}

	// makeLevel returns a factory producing the subtree feeding stage i
	// for a given member g of that stage's producer group.
	var makeLevel func(stage int) func(g int) (core.Iterator, error)
	makeLevel = func(stage int) func(g int) (core.Iterator, error) {
		if stage == 0 {
			// Source level: the generator group of size groups[0] (or a
			// single generator when there are no exchanges).
			src := 1
			if cfg.Stages > 0 {
				src = groups[0]
			}
			per := cfg.Records / src
			extra := cfg.Records % src
			return func(g int) (core.Iterator, error) {
				n := per
				if g < extra {
					n++
				}
				gen := NewGen(w.Env, n, int64(g)*1_000_000)
				if cfg.BatchSize > 0 {
					gen.EnableBatch(cfg.BatchSize)
				}
				return gen, nil
			}
		}
		lower := makeLevel(stage - 1)
		producers := groups[stage-1]
		consumers := 1
		if stage < cfg.Stages {
			consumers = groups[stage]
		}
		x, err := core.NewExchange(core.ExchangeConfig{
			Schema:      GenSchema,
			Producers:   producers,
			Consumers:   consumers,
			PacketSize:  cfg.PacketSize,
			FlowControl: cfg.FlowControl,
			Slack:       cfg.Slack,
			Inline:      cfg.Inline,
			Tracer:      cfg.Tracer,
			BatchSize:   cfg.BatchSize,
			NewProducer: func(g int) (core.Iterator, error) { return lower(g) },
		})
		if err != nil {
			return func(int) (core.Iterator, error) { return nil, err }
		}
		*hubs = append(*hubs, x)
		return func(g int) (core.Iterator, error) {
			return x.Consumer(g), nil
		}
	}

	if cfg.Stages == 0 {
		return makeLevel(0)(0)
	}
	if cfg.Inline {
		// Inline boundaries must have equal group sizes; the record-pass
		// pipeline uses degree-1 groups (three extra "procedure calls").
		for _, g := range groups {
			if g != 1 {
				return nil, fmt.Errorf("bench: inline pass needs degree-1 groups")
			}
		}
	}
	return makeLevel(cfg.Stages)(0)
}

// Paper values for the §5 in-text experiment (seconds, Sequent Symmetry,
// twelve 16 MHz 80386 CPUs).
const (
	PaperNoExchangeSec     = 20.28
	PaperInlineSec         = 28.00
	PaperPipelineFlowSec   = 16.21
	PaperPipelineNoFlowSec = 16.16
	PaperPerRecordUsec     = 25.73
	PaperRecords           = 100_000
)

// Fig2aPacketSizes are the packet sizes the paper sweeps.
var Fig2aPacketSizes = []int{1, 2, 5, 10, 20, 50, 83}

// Fig2aPaperSeconds are the elapsed times the paper reports (seconds) for
// the sizes it states explicitly; 0 where the text gives no number.
var Fig2aPaperSeconds = map[int]float64{
	1: 171, 2: 94, 50: 15.0, 83: 13.7,
}

// RunFig2aPoint runs one Figure-2a sweep point: 100,000 records from a
// producer group of three through two intermediate groups of three to a
// single consumer, flow control with three slack packets.
func RunFig2aPoint(records, packetSize int) (PassResult, error) {
	return RunPass(PassConfig{
		Records:     records,
		Stages:      3,
		Groups:      []int{3, 3, 3},
		FlowControl: true,
		Slack:       3,
		PacketSize:  packetSize,
	})
}

// RunFig2aPointBatch is RunFig2aPoint under the batch-at-a-time protocol:
// the same topology and packet size, with generators, exchange producers
// and the sink all moving batches of the given size.
func RunFig2aPointBatch(records, packetSize, batchSize int) (PassResult, error) {
	if batchSize <= 0 {
		batchSize = core.DefaultBatchSize
	}
	return RunPass(PassConfig{
		Records:     records,
		Stages:      3,
		Groups:      []int{3, 3, 3},
		FlowControl: true,
		Slack:       3,
		PacketSize:  packetSize,
		BatchSize:   batchSize,
	})
}
