package bench

import "testing"

func TestSmokeT1(t *testing.T) {
	r, err := RunT1(20000)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(testWriter{t})
	if !r.InlineSlowerThanDirect() {
		t.Log("warning: inline not slower than direct (timing noise)")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }

func TestSmokeFig2Point(t *testing.T) {
	p, err := RunFig2aPoint(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(p.Elapsed)
}
