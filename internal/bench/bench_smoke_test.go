package bench

import (
	"strings"
	"testing"
)

func TestSmokeT1(t *testing.T) {
	r, err := RunT1(20000)
	if err != nil {
		t.Fatal(err)
	}
	r.Print(testWriter{t})
	if !r.InlineSlowerThanDirect() {
		t.Log("warning: inline not slower than direct (timing noise)")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }

func TestRunPassAnalyzeBreakdown(t *testing.T) {
	res, err := RunPass(PassConfig{
		Records: 2000, Stages: 3,
		FlowControl: true, Slack: 2,
		Analyze: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One line for the sink, one per exchange boundary, one for the pool.
	for _, want := range []string{
		"sink: rows=2000",
		"exchange stage 1:", "exchange stage 2:", "exchange stage 3:",
		"records=2000", "stall=", "wait=",
		"buffer: fixes=",
	} {
		if !strings.Contains(res.Breakdown, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, res.Breakdown)
		}
	}
	// The uninstrumented path must not carry a breakdown.
	plain, err := RunPass(PassConfig{Records: 500, Stages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Breakdown != "" {
		t.Fatalf("unexpected breakdown on uninstrumented run:\n%s", plain.Breakdown)
	}
}

func TestSmokeFig2Point(t *testing.T) {
	p, err := RunFig2aPoint(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(p.Elapsed)
}
