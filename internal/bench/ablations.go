package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/record"
	"repro/internal/storage/buffer"
)

// Line is one measured configuration of an ablation.
type Line struct {
	Name    string
	Elapsed time.Duration
	Extra   string
	// Detail is an optional multi-line per-operator breakdown (from an
	// analyzed run), printed indented below the table.
	Detail string
}

// Ablation is a titled group of measured lines.
type Ablation struct {
	Title string
	Lines []Line
}

// Print renders the ablation as an aligned table, followed by any
// per-line breakdown details.
func (a *Ablation) Print(w io.Writer) {
	fmt.Fprintln(w, a.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, l := range a.Lines {
		fmt.Fprintf(tw, "  %s\t%v\t%s\n", l.Name, l.Elapsed.Round(time.Microsecond), l.Extra)
	}
	tw.Flush()
	for _, l := range a.Lines {
		if l.Detail == "" {
			continue
		}
		fmt.Fprintf(w, "  %s:\n", l.Name)
		for _, line := range strings.Split(l.Detail, "\n") {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
}

// AblationFlowControl (A1): flow control off vs on at several slacks.
// Runs are instrumented: the per-stage breakdown shows where producers
// stall on flow-control tokens and where the consumer waits for data.
func AblationFlowControl(records int) (*Ablation, error) {
	a := &Ablation{Title: "A1 — flow control and slack (3-stage pipeline)"}
	runs := []struct {
		name  string
		fc    bool
		slack int
	}{
		{"flow control off", false, 0},
		{"slack 1", true, 1},
		{"slack 4", true, 4},
		{"slack 16", true, 16},
	}
	for _, r := range runs {
		res, err := RunPass(PassConfig{
			Records: records, Stages: 3,
			FlowControl: r.fc, Slack: r.slack,
			Analyze: true,
		})
		if err != nil {
			return nil, fmt.Errorf("a1 %s: %w", r.name, err)
		}
		a.Lines = append(a.Lines, Line{Name: r.name, Elapsed: res.Elapsed, Detail: res.Breakdown})
	}
	return a, nil
}

// AblationForkScheme (A2): central vs propagation-tree forking under a
// simulated per-fork cost (§4.2).
func AblationForkScheme(producers int, forkCost time.Duration) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A2 — fork scheme, %d producers, %v per fork", producers, forkCost)}
	for _, scheme := range []core.ForkScheme{core.ForkCentral, core.ForkTree} {
		w, err := NewWorld(1024, 0)
		if err != nil {
			return nil, err
		}
		files, err := w.LoadPartitionedInts("p", producers*50, producers)
		if err != nil {
			w.Close()
			return nil, err
		}
		x, err := core.NewExchange(core.ExchangeConfig{
			Schema:    files[0].Schema(),
			Producers: producers,
			Consumers: 1,
			Fork:      scheme,
			ForkCost:  forkCost,
			NewProducer: func(g int) (core.Iterator, error) {
				return core.NewFileScan(files[g], nil, false)
			},
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		if _, err := core.Drain(x.Consumer(0)); err != nil {
			w.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		name := "central"
		if scheme == core.ForkTree {
			name = "propagation tree"
		}
		a.Lines = append(a.Lines, Line{
			Name:    name,
			Elapsed: elapsed,
			Extra:   fmt.Sprintf("master spawn time %v", x.Stats().SpawnTime.Round(time.Microsecond)),
		})
		w.Close()
	}
	return a, nil
}

// AblationInline (A3): forked vs inline exchange boundary (§4.4).
func AblationInline(records int) (*Ablation, error) {
	a := &Ablation{Title: "A3 — one exchange boundary: forked vs inline (no-fork)"}
	forked, err := RunPass(PassConfig{Records: records, Stages: 1})
	if err != nil {
		return nil, err
	}
	inline, err := RunPass(PassConfig{Records: records, Stages: 1, Inline: true})
	if err != nil {
		return nil, err
	}
	a.Lines = append(a.Lines,
		Line{Name: "forked (data-driven)", Elapsed: forked.Elapsed},
		Line{Name: "inline (demand-driven, flow control obsolete)", Elapsed: inline.Elapsed},
	)
	return a, nil
}

// AblationPartitioning (A4): round-robin vs hash vs range partitioning on
// a 2-producer -> 3-consumer exchange.
func AblationPartitioning(records int) (*Ablation, error) {
	a := &Ablation{Title: "A4 — partitioning support functions (2 producers → 3 consumers)"}
	type mk struct {
		name string
		part func(schema *record.Schema) func(int) expr.Partitioner
	}
	makers := []mk{
		{"round robin", func(*record.Schema) func(int) expr.Partitioner { return nil }},
		{"hash(a)", func(s *record.Schema) func(int) expr.Partitioner {
			return func(int) expr.Partitioner { return expr.HashPartition(s, record.Key{0}, 3) }
		}},
		{"range(a)", func(s *record.Schema) func(int) expr.Partitioner {
			cut1 := record.Int(int64(records / 3))
			cut2 := record.Int(int64(2 * records / 3))
			return func(int) expr.Partitioner {
				return expr.RangePartition(s, 0, []record.Value{cut1, cut2})
			}
		}},
	}
	for _, m := range makers {
		w, err := NewWorld(2048, 0)
		if err != nil {
			return nil, err
		}
		cfg := core.ExchangeConfig{
			Schema:    GenSchema,
			Producers: 2,
			Consumers: 3,
			NewProducer: func(g int) (core.Iterator, error) {
				n := records / 2
				if g == 0 {
					n = records - n
				}
				return NewGen(w.Env, n, int64(g)*int64(records/2)), nil
			},
		}
		if p := m.part(GenSchema); p != nil {
			cfg.NewPartition = p
		}
		x, err := core.NewExchange(cfg)
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, 3)
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				_, errs[c] = core.Drain(x.Consumer(c))
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		w.Close()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		a.Lines = append(a.Lines, Line{Name: m.name, Elapsed: elapsed})
	}
	return a, nil
}

// AblationBroadcast (A5): broadcast (multi-pin, zero copy) vs partitioned
// delivery to three consumers.
func AblationBroadcast(records int) (*Ablation, error) {
	a := &Ablation{Title: "A5 — broadcast (pin per consumer, no copy) vs partitioned delivery"}
	for _, broadcast := range []bool{false, true} {
		w, err := NewWorld(2048, 0)
		if err != nil {
			return nil, err
		}
		x, err := core.NewExchange(core.ExchangeConfig{
			Schema:    GenSchema,
			Producers: 1,
			Consumers: 3,
			Broadcast: broadcast,
			NewProducer: func(int) (core.Iterator, error) {
				return NewGen(w.Env, records, 0), nil
			},
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		total := make([]int, 3)
		errs := make([]error, 3)
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				total[c], errs[c] = core.Drain(x.Consumer(c))
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		w.Close()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		name := "partitioned (round robin)"
		delivered := total[0] + total[1] + total[2]
		if broadcast {
			name = "broadcast"
		}
		a.Lines = append(a.Lines, Line{
			Name: name, Elapsed: elapsed,
			Extra: fmt.Sprintf("%d records delivered", delivered),
		})
	}
	return a, nil
}

// AblationMatch (A6): hash-based vs sort-based one-to-one match for a
// join and a duplicate elimination.
func AblationMatch(rows int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A6 — one-to-one match algorithms (%d × %d rows)", rows, rows)}
	w, err := NewWorld(8192, 0)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	l, err := w.LoadPairs("l", rows, rows/4)
	if err != nil {
		return nil, err
	}
	r, err := w.LoadPairs("r", rows, rows/4)
	if err != nil {
		return nil, err
	}
	run := func(name string, mk func() (core.Iterator, error)) error {
		it, err := mk()
		if err != nil {
			return err
		}
		start := time.Now()
		n, err := core.Drain(it)
		if err != nil {
			return err
		}
		a.Lines = append(a.Lines, Line{
			Name: name, Elapsed: time.Since(start),
			Extra: fmt.Sprintf("%d output rows", n),
		})
		return nil
	}
	if err := run("hash join", func() (core.Iterator, error) {
		ls, _ := core.NewFileScan(l, nil, false)
		rs, _ := core.NewFileScan(r, nil, false)
		return core.NewHashMatch(w.Env, core.MatchJoin, ls, rs, record.Key{1}, record.Key{1})
	}); err != nil {
		return nil, err
	}
	if err := run("sort-merge join", func() (core.Iterator, error) {
		ls, _ := core.NewFileScan(l, nil, false)
		rs, _ := core.NewFileScan(r, nil, false)
		return core.NewMergeMatchSorted(w.Env, core.MatchJoin, ls, rs, record.Key{1}, record.Key{1})
	}); err != nil {
		return nil, err
	}
	if err := run("hash dup-elim", func() (core.Iterator, error) {
		ls, _ := core.NewFileScan(l, nil, false)
		return core.NewHashDistinct(w.Env, ls)
	}); err != nil {
		return nil, err
	}
	if err := run("sort dup-elim", func() (core.Iterator, error) {
		ls, _ := core.NewFileScan(l, nil, false)
		return core.NewSortDistinct(w.Env, ls)
	}); err != nil {
		return nil, err
	}
	return a, nil
}

// AblationDivision (A7): hash-division serial vs parallel with quotient
// partitioning (broadcast divisor) and divisor partitioning (partial
// counts + global aggregation), plus the sort-based baseline — the §4.4
// parallelisation the paper reports "not insignificant speedups" for.
func AblationDivision(students, courses, workers int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A7 — relational division (%d students × %d courses, %d workers)",
		students, courses, workers)}

	divSchema := record.MustSchema(
		record.Field{Name: "student", Type: record.TInt},
		record.Field{Name: "course", Type: record.TInt},
	)
	divisorSchema := record.MustSchema(record.Field{Name: "course", Type: record.TInt})

	// load populates a world with the enrollment data: student s takes
	// every course iff s%3 == 0, otherwise all but the last.
	load := func(w *World) (dividend, divisor []core.Iterator, err error) {
		dv, err := w.Base.Create("enrolled", divSchema)
		if err != nil {
			return nil, nil, err
		}
		for s := 0; s < students; s++ {
			limit := courses
			if s%3 != 0 {
				limit = courses - 1
			}
			for c := 0; c < limit; c++ {
				if _, err := dv.Insert(divSchema.MustEncode(record.Int(int64(s)), record.Int(int64(c)))); err != nil {
					return nil, nil, err
				}
			}
		}
		ds, err := w.Base.Create("required", divisorSchema)
		if err != nil {
			return nil, nil, err
		}
		for c := 0; c < courses; c++ {
			if _, err := ds.Insert(divisorSchema.MustEncode(record.Int(int64(c)))); err != nil {
				return nil, nil, err
			}
		}
		dvs, err := core.NewFileScan(dv, nil, false)
		if err != nil {
			return nil, nil, err
		}
		dss, err := core.NewFileScan(ds, nil, false)
		if err != nil {
			return nil, nil, err
		}
		return []core.Iterator{dvs}, []core.Iterator{dss}, nil
	}

	wantQuot := (students + 2) / 3

	run := func(name string, mk func(w *World) (core.Iterator, error)) error {
		w, err := NewWorld(16384, 0)
		if err != nil {
			return err
		}
		defer w.Close()
		it, err := mk(w)
		if err != nil {
			return err
		}
		start := time.Now()
		n, err := core.Drain(it)
		if err != nil {
			return err
		}
		status := "OK"
		if n != wantQuot {
			status = fmt.Sprintf("WRONG (want %d)", wantQuot)
		}
		a.Lines = append(a.Lines, Line{
			Name: name, Elapsed: time.Since(start),
			Extra: fmt.Sprintf("%d quotients %s", n, status),
		})
		return nil
	}

	// Serial hash division.
	if err := run("serial hash division", func(w *World) (core.Iterator, error) {
		dv, ds, err := load(w)
		if err != nil {
			return nil, err
		}
		return core.NewHashDivision(w.Env, dv[0], ds[0], record.Key{0}, record.Key{1}, record.Key{0})
	}); err != nil {
		return nil, err
	}

	// Serial sort-based division baseline.
	if err := run("serial sort division", func(w *World) (core.Iterator, error) {
		dv, ds, err := load(w)
		if err != nil {
			return nil, err
		}
		return core.NewSortDivision(w.Env, dv[0], ds[0], record.Key{0}, record.Key{1}, record.Key{0})
	}); err != nil {
		return nil, err
	}

	// Quotient partitioning: dividend hashed on the quotient attribute,
	// divisor broadcast; each worker computes complete local quotients.
	if err := run("parallel, quotient partitioning (broadcast divisor)", func(w *World) (core.Iterator, error) {
		dv, ds, err := load(w)
		if err != nil {
			return nil, err
		}
		xDividend, err := core.NewExchange(core.ExchangeConfig{
			Schema: divSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return dv[0], nil },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(divSchema, record.Key{0}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		xDivisor, err := core.NewExchange(core.ExchangeConfig{
			Schema: divisorSchema, Producers: 1, Consumers: workers, Broadcast: true,
			NewProducer: func(int) (core.Iterator, error) { return ds[0], nil },
		})
		if err != nil {
			return nil, err
		}
		quotSchema := record.MustSchema(record.Field{Name: "student", Type: record.TInt})
		gather, err := core.NewExchange(core.ExchangeConfig{
			Schema: quotSchema, Producers: workers, Consumers: 1,
			NewProducer: func(g int) (core.Iterator, error) {
				return core.NewHashDivision(w.Env, xDividend.Consumer(g), xDivisor.Consumer(g),
					record.Key{0}, record.Key{1}, record.Key{0})
			},
		})
		if err != nil {
			return nil, err
		}
		return gather.Consumer(0), nil
	}); err != nil {
		return nil, err
	}

	// Divisor partitioning: both inputs hashed on the divisor attribute;
	// workers emit partial match counts; a global aggregation sums them
	// and keeps quotients matching the full divisor.
	if err := run("parallel, divisor partitioning (partial counts)", func(w *World) (core.Iterator, error) {
		dv, ds, err := load(w)
		if err != nil {
			return nil, err
		}
		xDividend, err := core.NewExchange(core.ExchangeConfig{
			Schema: divSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return dv[0], nil },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(divSchema, record.Key{1}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		xDivisor, err := core.NewExchange(core.ExchangeConfig{
			Schema: divisorSchema, Producers: 1, Consumers: workers,
			NewProducer: func(int) (core.Iterator, error) { return ds[0], nil },
			NewPartition: func(int) expr.Partitioner {
				return expr.HashPartition(divisorSchema, record.Key{0}, workers)
			},
		})
		if err != nil {
			return nil, err
		}
		partialSchema := record.MustSchema(
			record.Field{Name: "student", Type: record.TInt},
			record.Field{Name: "matched", Type: record.TInt},
		)
		gather, err := core.NewExchange(core.ExchangeConfig{
			Schema: partialSchema, Producers: workers, Consumers: 1,
			NewProducer: func(g int) (core.Iterator, error) {
				d, err := core.NewHashDivision(w.Env, xDividend.Consumer(g), xDivisor.Consumer(g),
					record.Key{0}, record.Key{1}, record.Key{0})
				if err != nil {
					return nil, err
				}
				if err := d.SetPartial(true); err != nil {
					return nil, err
				}
				return d, nil
			},
		})
		if err != nil {
			return nil, err
		}
		agg, err := core.NewHashAggregate(w.Env, gather.Consumer(0),
			record.Key{0}, []core.AggSpec{{Func: core.AggSum, Field: 1, Name: "matched"}})
		if err != nil {
			return nil, err
		}
		return core.NewFilterExpr(agg, fmt.Sprintf("matched = %d", courses), expr.Compiled)
	}); err != nil {
		return nil, err
	}

	return a, nil
}

// AblationSupportFunctions (A8): interpreted vs compiled predicate
// evaluation over a filter scan (§3).
func AblationSupportFunctions(records int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A8 — support functions: compiled vs interpreted (%d records)", records)}
	for _, mode := range []expr.Mode{expr.Compiled, expr.Interpreted} {
		w, err := NewWorld(2048, 0)
		if err != nil {
			return nil, err
		}
		gen := NewGen(w.Env, records, 0)
		f, err := core.NewFilterExpr(gen, "a % 10 < 5 AND b > 100", mode)
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		n, err := core.Drain(f)
		if err != nil {
			w.Close()
			return nil, err
		}
		a.Lines = append(a.Lines, Line{
			Name: mode.String(), Elapsed: time.Since(start),
			Extra: fmt.Sprintf("%d qualified", n),
		})
		w.Close()
	}
	return a, nil
}

// AblationBufferLocking (A9): the two-level pool/descriptor scheme vs a
// single global lock under a concurrent scan workload (§4.5).
func AblationBufferLocking(records, workers int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A9 — buffer locking under %d concurrent scans", workers)}
	for _, mode := range []buffer.LockMode{buffer.TwoLevel, buffer.Global} {
		w, err := NewWorld(512, mode)
		if err != nil {
			return nil, err
		}
		files, err := w.LoadPartitionedInts("p", records, workers)
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for rep := 0; rep < 4; rep++ {
					sc, err := core.NewFileScan(files[g], nil, false)
					if err != nil {
						errs[g] = err
						return
					}
					if _, err := core.Drain(sc); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		restarts := w.Pool.Stats().Restarts
		w.Close()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		name := "two-level (pool + descriptor try-lock)"
		if mode == buffer.Global {
			name = "single global lock"
		}
		a.Lines = append(a.Lines, Line{
			Name: name, Elapsed: elapsed,
			Extra: fmt.Sprintf("%d restarts", restarts),
		})
	}
	return a, nil
}

// AblationSharedNothing (A11): the shared-memory exchange (records passed
// as pinned buffer residents) vs the shared-nothing NetExchange (record
// images copied across machines) — quantifying what the shared buffer
// saves, and what a network boundary costs (§4.1's discussion of the
// GAMMA-style paradigm; the multi-machine extension the paper announces).
func AblationSharedNothing(records int, wireLatency time.Duration) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A11 — shared-memory vs shared-nothing exchange (%d records)", records)}

	// Shared memory: one machine, pinned-record passing.
	{
		w, err := NewWorld(4096, 0)
		if err != nil {
			return nil, err
		}
		x, err := core.NewExchange(core.ExchangeConfig{
			Schema: GenSchema, Producers: 1, Consumers: 1,
			NewProducer: func(int) (core.Iterator, error) { return NewGen(w.Env, records, 0), nil },
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		start := time.Now()
		if _, err := core.Drain(x.Consumer(0)); err != nil {
			w.Close()
			return nil, err
		}
		a.Lines = append(a.Lines, Line{
			Name: "shared memory (pins, no copies)", Elapsed: time.Since(start),
		})
		w.Close()
	}

	// Shared nothing: two machines, copies over an ideal (zero-latency)
	// link, and over a link with simulated latency.
	for _, lat := range []time.Duration{0, wireLatency} {
		src, err := NewWorld(4096, 0)
		if err != nil {
			return nil, err
		}
		dst, err := NewWorld(4096, 0)
		if err != nil {
			src.Close()
			return nil, err
		}
		x, err := core.NewNetExchange(core.NetExchangeConfig{
			Schema: GenSchema, Producers: 1, Consumers: 1,
			Latency: lat,
			NewProducer: func(int) (core.Iterator, error) {
				return NewGen(src.Env, records, 0), nil
			},
			ConsumerEnv: func(int) *core.Env { return dst.Env },
		})
		if err != nil {
			src.Close()
			dst.Close()
			return nil, err
		}
		start := time.Now()
		if _, err := core.Drain(x.Consumer(0)); err != nil {
			src.Close()
			dst.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		packets, bytes := x.Stats()
		name := "shared nothing, ideal link (copies)"
		if lat > 0 {
			name = fmt.Sprintf("shared nothing, %v/packet link", lat)
		}
		a.Lines = append(a.Lines, Line{
			Name: name, Elapsed: elapsed,
			Extra: fmt.Sprintf("%d packets, %d KB shipped", packets, bytes/1024),
		})
		src.Close()
		dst.Close()
	}
	return a, nil
}

// AblationParallelSort (A10): serial external sort vs the §4.4 merge
// network (producers sort partitions, consumer merges streams).
func AblationParallelSort(records, producers int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A10 — parallel sort merge network (%d records, %d producers)", records, producers)}

	// Serial: one scan over all partitions via exchange, then one sort.
	w, err := NewWorld(8192, 0)
	if err != nil {
		return nil, err
	}
	files, err := w.LoadPartitionedInts("p", records, producers)
	if err != nil {
		w.Close()
		return nil, err
	}
	gather, err := core.NewExchange(core.ExchangeConfig{
		Schema:    files[0].Schema(),
		Producers: producers,
		Consumers: 1,
		NewProducer: func(g int) (core.Iterator, error) {
			return core.NewFileScan(files[g], nil, false)
		},
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	serialSort := core.NewSort(w.Env, gather.Consumer(0), []record.SortSpec{{Field: 0}})
	start := time.Now()
	n, err := core.Drain(serialSort)
	if err != nil {
		w.Close()
		return nil, err
	}
	a.Lines = append(a.Lines, Line{
		Name: "serial sort above exchange", Elapsed: time.Since(start),
		Extra: fmt.Sprintf("%d records", n),
	})
	w.Close()

	// Parallel: producers sort their partitions; merge network on top.
	w2, err := NewWorld(8192, 0)
	if err != nil {
		return nil, err
	}
	files2, err := w2.LoadPartitionedInts("p", records, producers)
	if err != nil {
		w2.Close()
		return nil, err
	}
	x, err := core.NewExchange(core.ExchangeConfig{
		Schema:      files2[0].Schema(),
		Producers:   producers,
		Consumers:   1,
		KeepStreams: true,
		NewProducer: func(g int) (core.Iterator, error) {
			sc, err := core.NewFileScan(files2[g], nil, false)
			if err != nil {
				return nil, err
			}
			return core.NewSort(w2.Env, sc, []record.SortSpec{{Field: 0}}), nil
		},
	})
	if err != nil {
		w2.Close()
		return nil, err
	}
	streams, err := x.ConsumerStreams(0)
	if err != nil {
		w2.Close()
		return nil, err
	}
	m, err := core.NewMergeSpec(streams, []record.SortSpec{{Field: 0}})
	if err != nil {
		w2.Close()
		return nil, err
	}
	start = time.Now()
	n, err = core.Drain(m)
	if err != nil {
		w2.Close()
		return nil, err
	}
	a.Lines = append(a.Lines, Line{
		Name: "merge network (producers sort, consumer merges)", Elapsed: time.Since(start),
		Extra: fmt.Sprintf("%d records", n),
	})
	w2.Close()
	return a, nil
}

// AblationRunGeneration (A12): quicksort batching vs replacement
// selection for external-sort run generation (the companion
// parallel-sorting work's technique): fewer, longer runs mean shallower
// merge cascades.
func AblationRunGeneration(records, runSize int) (*Ablation, error) {
	a := &Ablation{Title: fmt.Sprintf("A12 — sort run generation (%d records, %d-record memory)", records, runSize)}
	for _, gen := range []core.RunGen{core.RunGenQuicksort, core.RunGenReplacementSelection} {
		w, err := NewWorld(8192, 0)
		if err != nil {
			return nil, err
		}
		s := core.NewSortFunc(w.Env, NewGen(w.Env, records, 0),
			expr.NewKeyCompare(GenSchema, []record.SortSpec{{Field: 2}}))
		s.RunSize = runSize
		s.RunGen = gen
		start := time.Now()
		n, err := core.Drain(s)
		if err != nil {
			w.Close()
			return nil, err
		}
		if n != records {
			w.Close()
			return nil, fmt.Errorf("a12: sorted %d of %d", n, records)
		}
		a.Lines = append(a.Lines, Line{
			Name: gen.String(), Elapsed: time.Since(start),
			Extra: fmt.Sprintf("%d initial runs", s.RunsGenerated()),
		})
		w.Close()
	}
	return a, nil
}
