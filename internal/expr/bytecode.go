package expr

import (
	"fmt"

	"repro/internal/record"
)

// The interpreted form of a support function is a small stack bytecode
// program executed by Eval. This mirrors the paper's interpreted scans,
// where "appropriate code for interpretation" is passed as the predicate
// argument and a general interpreter as the predicate function.

type opcode uint8

const (
	opPushConst opcode = iota // arg: constant index
	opLoadInt                 // arg: field index
	opLoadFloat               // arg: field index
	opLoadBool                // arg: field index
	opLoadBytes               // arg: field index
	opI2F                     // promote top of stack int -> float
	opAddI
	opAddF
	opSubI
	opSubF
	opMulI
	opMulF
	opDivI
	opDivF
	opModI
	opNegI
	opNegF
	opNot
	opCmp    // arg: encodes comparison op; pops 2, pushes bool
	opLike   // pops pattern and subject, pushes bool
	opJmp    // arg: absolute target
	opJmpIfF // arg: absolute target; pops unless jumping (short-circuit AND)
	opJmpIfT // arg: absolute target; pops unless jumping (short-circuit OR)
	opPop    // discard top of stack
	opHalt   // end of program
)

type instr struct {
	op  opcode
	arg int32
}

// Program is a compiled-to-bytecode expression, executable with Eval.
type Program struct {
	code     []instr
	consts   []record.Value
	typ      record.Type
	str      string
	maxDepth int
}

// astDepth returns the maximum operand-stack depth needed to evaluate e.
func astDepth(e Expr) int {
	switch n := e.(type) {
	case *Un:
		return astDepth(n.X)
	case *Bin:
		dl, dr := astDepth(n.L), astDepth(n.R)
		if n.Op == OpAnd || n.Op == OpOr {
			// Left result is popped (or is the final answer) before the
			// right side runs.
			return max(dl, dr)
		}
		return max(dl, 1+dr)
	default:
		return 1
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Type returns the result type of the program.
func (p *Program) Type() record.Type { return p.typ }

// String returns the surface syntax of the source expression.
func (p *Program) String() string { return p.str }

// Len returns the number of bytecode instructions (for tests/inspection).
func (p *Program) Len() int { return len(p.code) }

// CompileProgram type-checks e against the schema and translates it to
// bytecode.
func CompileProgram(e Expr, s *record.Schema) (*Program, error) {
	typ, err := e.TypeCheck(s)
	if err != nil {
		return nil, err
	}
	p := &Program{typ: typ, str: e.String(), maxDepth: astDepth(e)}
	if err := p.emit(e, s); err != nil {
		return nil, err
	}
	p.code = append(p.code, instr{op: opHalt})
	return p, nil
}

func (p *Program) emitConst(v record.Value) {
	p.consts = append(p.consts, v)
	p.code = append(p.code, instr{op: opPushConst, arg: int32(len(p.consts) - 1)})
}

func (p *Program) emit(e Expr, s *record.Schema) error {
	switch n := e.(type) {
	case *Lit:
		p.emitConst(n.Val)
		return nil
	case *Field:
		return p.emitLoad(n.Index, n.typ)
	case *Ident:
		return p.emitLoad(n.index, n.typ)
	case *Un:
		if err := p.emit(n.X, s); err != nil {
			return err
		}
		switch {
		case n.Op == OpNot:
			p.code = append(p.code, instr{op: opNot})
		case n.typ == record.TInt:
			p.code = append(p.code, instr{op: opNegI})
		default:
			p.code = append(p.code, instr{op: opNegF})
		}
		return nil
	case *Bin:
		return p.emitBin(n, s)
	default:
		return fmt.Errorf("expr: cannot compile %T", e)
	}
}

func (p *Program) emitLoad(idx int, t record.Type) error {
	var op opcode
	switch t {
	case record.TInt:
		op = opLoadInt
	case record.TFloat:
		op = opLoadFloat
	case record.TBool:
		op = opLoadBool
	default:
		op = opLoadBytes
	}
	p.code = append(p.code, instr{op: op, arg: int32(idx)})
	return nil
}

func (p *Program) emitBin(n *Bin, s *record.Schema) error {
	// Short-circuit logic.
	switch n.Op {
	case OpAnd, OpOr:
		if err := p.emit(n.L, s); err != nil {
			return err
		}
		jop := opJmpIfF
		if n.Op == OpOr {
			jop = opJmpIfT
		}
		jmpAt := len(p.code)
		p.code = append(p.code, instr{op: jop})
		if err := p.emit(n.R, s); err != nil {
			return err
		}
		p.code[jmpAt].arg = int32(len(p.code))
		return nil
	}

	lt, _ := n.L.TypeCheck(s) // already checked; cannot fail
	rt, _ := n.R.TypeCheck(s)
	if err := p.emit(n.L, s); err != nil {
		return err
	}
	if n.promote && lt == record.TInt {
		p.code = append(p.code, instr{op: opI2F})
	}
	if err := p.emit(n.R, s); err != nil {
		return err
	}
	if n.promote && rt == record.TInt {
		p.code = append(p.code, instr{op: opI2F})
	}

	flt := n.promote || lt == record.TFloat
	switch n.Op {
	case OpAdd:
		p.code = append(p.code, instr{op: pick(flt, opAddF, opAddI)})
	case OpSub:
		p.code = append(p.code, instr{op: pick(flt, opSubF, opSubI)})
	case OpMul:
		p.code = append(p.code, instr{op: pick(flt, opMulF, opMulI)})
	case OpDiv:
		p.code = append(p.code, instr{op: pick(flt, opDivF, opDivI)})
	case OpMod:
		p.code = append(p.code, instr{op: opModI})
	case OpLike:
		p.code = append(p.code, instr{op: opLike})
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		p.code = append(p.code, instr{op: opCmp, arg: int32(n.Op)})
	default:
		return fmt.Errorf("expr: cannot compile binary %s", n.Op)
	}
	return nil
}

func pick(f bool, a, b opcode) opcode {
	if f {
		return a
	}
	return b
}

// Eval executes the program against one encoded record and returns the
// result. It is the interpreter entry point used by interpreted support
// functions.
func (p *Program) Eval(s *record.Schema, data []byte) (record.Value, error) {
	var arr [16]record.Value
	stack := arr[:]
	if p.maxDepth > len(arr) {
		stack = make([]record.Value, p.maxDepth)
	}
	sp := 0
	push := func(v record.Value) {
		stack[sp] = v
		sp++
	}
	code := p.code
	for pc := 0; pc < len(code); {
		in := code[pc]
		pc++
		switch in.op {
		case opPushConst:
			push(p.consts[in.arg])
		case opLoadInt:
			push(record.Int(s.GetInt(data, int(in.arg))))
		case opLoadFloat:
			push(record.Float(s.GetFloat(data, int(in.arg))))
		case opLoadBool:
			push(record.Bool(s.GetBool(data, int(in.arg))))
		case opLoadBytes:
			push(record.Bytes(s.GetBytes(data, int(in.arg))))
		case opI2F:
			stack[sp-1] = record.Float(float64(stack[sp-1].I))
		case opAddI:
			sp--
			stack[sp-1] = record.Int(stack[sp-1].I + stack[sp].I)
		case opAddF:
			sp--
			stack[sp-1] = record.Float(stack[sp-1].F + stack[sp].F)
		case opSubI:
			sp--
			stack[sp-1] = record.Int(stack[sp-1].I - stack[sp].I)
		case opSubF:
			sp--
			stack[sp-1] = record.Float(stack[sp-1].F - stack[sp].F)
		case opMulI:
			sp--
			stack[sp-1] = record.Int(stack[sp-1].I * stack[sp].I)
		case opMulF:
			sp--
			stack[sp-1] = record.Float(stack[sp-1].F * stack[sp].F)
		case opDivI:
			sp--
			if stack[sp].I == 0 {
				return record.Value{}, fmt.Errorf("expr: integer division by zero in %s", p.str)
			}
			stack[sp-1] = record.Int(stack[sp-1].I / stack[sp].I)
		case opDivF:
			sp--
			stack[sp-1] = record.Float(stack[sp-1].F / stack[sp].F)
		case opModI:
			sp--
			if stack[sp].I == 0 {
				return record.Value{}, fmt.Errorf("expr: integer modulo by zero in %s", p.str)
			}
			stack[sp-1] = record.Int(stack[sp-1].I % stack[sp].I)
		case opNegI:
			stack[sp-1] = record.Int(-stack[sp-1].I)
		case opNegF:
			stack[sp-1] = record.Float(-stack[sp-1].F)
		case opNot:
			stack[sp-1] = record.Bool(!stack[sp-1].B)
		case opCmp:
			sp--
			c := compareValues(stack[sp-1], stack[sp])
			stack[sp-1] = record.Bool(cmpResult(Op(in.arg), c))
		case opLike:
			sp--
			stack[sp-1] = record.Bool(likeMatch(stack[sp-1].S, stack[sp].S))
		case opJmp:
			pc = int(in.arg)
		case opJmpIfF:
			if !stack[sp-1].B {
				pc = int(in.arg)
			} else {
				sp--
			}
		case opJmpIfT:
			if stack[sp-1].B {
				pc = int(in.arg)
			} else {
				sp--
			}
		case opPop:
			sp--
		case opHalt:
			if sp != 1 {
				return record.Value{}, fmt.Errorf("expr: corrupt program %q: stack depth %d at halt", p.str, sp)
			}
			return stack[0], nil
		}
	}
	return record.Value{}, fmt.Errorf("expr: program %q fell off the end", p.str)
}

func cmpResult(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}
