// Package expr implements Volcano's support functions (paper, §3):
// predicates, projections, key comparisons and partitioning functions that
// the query processing algorithms receive through their state records.
//
// As in the paper, every support function exists in two forms selected by a
// run-time switch: a compiled form (Go closures, the analog of pointers to
// machine code) and an interpreted form (a compact stack bytecode executed
// by a small VM, the analog of passing "appropriate code for interpretation
// to the interpreter"). Both are produced from the same typed AST, which in
// turn can be built programmatically or parsed from a small expression
// language.
package expr

import (
	"fmt"

	"repro/internal/record"
)

// Op enumerates the binary and unary operators of the expression language.
type Op uint8

// Binary and unary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
	OpNeg // unary minus
	OpNot // unary not
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE", OpNeg: "-", OpNot: "NOT",
}

// String returns the surface syntax of the operator.
func (o Op) String() string { return opNames[o] }

// Expr is a node in the expression AST.
type Expr interface {
	// TypeCheck resolves identifiers against the schema and returns the
	// node's result type.
	TypeCheck(s *record.Schema) (record.Type, error)
	// String renders the expression in the surface syntax.
	String() string
}

// Lit is a literal constant.
type Lit struct{ Val record.Value }

// Field references a schema field by index (already resolved).
type Field struct {
	Index int
	typ   record.Type
}

// Ident references a schema field by name; TypeCheck resolves it.
type Ident struct {
	Name  string
	index int
	typ   record.Type
}

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
	typ  record.Type
	// promote flags whether integer operands are promoted to float.
	promote bool
}

// Un is a unary operation.
type Un struct {
	Op  Op
	X   Expr
	typ record.Type
}

// TypeCheck implements Expr.
func (l *Lit) TypeCheck(*record.Schema) (record.Type, error) { return l.Val.Kind, nil }

// String implements Expr.
func (l *Lit) String() string { return l.Val.String() }

// TypeCheck implements Expr.
func (f *Field) TypeCheck(s *record.Schema) (record.Type, error) {
	if f.Index < 0 || f.Index >= s.NumFields() {
		return 0, fmt.Errorf("expr: field index %d out of range for %s", f.Index, s)
	}
	f.typ = s.Field(f.Index).Type
	return f.typ, nil
}

// String implements Expr.
func (f *Field) String() string { return fmt.Sprintf("$%d", f.Index) }

// TypeCheck implements Expr.
func (id *Ident) TypeCheck(s *record.Schema) (record.Type, error) {
	i := s.Index(id.Name)
	if i < 0 {
		return 0, fmt.Errorf("expr: unknown field %q in %s", id.Name, s)
	}
	id.index = i
	id.typ = s.Field(i).Type
	return id.typ, nil
}

// String implements Expr.
func (id *Ident) String() string { return id.Name }

func numeric(t record.Type) bool { return t == record.TInt || t == record.TFloat }

// TypeCheck implements Expr.
func (b *Bin) TypeCheck(s *record.Schema) (record.Type, error) {
	lt, err := b.L.TypeCheck(s)
	if err != nil {
		return 0, err
	}
	rt, err := b.R.TypeCheck(s)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if !numeric(lt) || !numeric(rt) {
			return 0, fmt.Errorf("expr: %s requires numeric operands, got %s and %s", b.Op, lt, rt)
		}
		if b.Op == OpMod && (lt != record.TInt || rt != record.TInt) {
			return 0, fmt.Errorf("expr: %% requires integer operands, got %s and %s", lt, rt)
		}
		if lt == record.TFloat || rt == record.TFloat {
			b.promote = true
			b.typ = record.TFloat
		} else {
			b.typ = record.TInt
		}
		return b.typ, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		comparable := lt == rt ||
			(numeric(lt) && numeric(rt)) ||
			(!lt.Fixed() && !rt.Fixed())
		if !comparable {
			return 0, fmt.Errorf("expr: cannot compare %s with %s", lt, rt)
		}
		b.promote = numeric(lt) && numeric(rt) && lt != rt
		b.typ = record.TBool
		return b.typ, nil
	case OpAnd, OpOr:
		if lt != record.TBool || rt != record.TBool {
			return 0, fmt.Errorf("expr: %s requires boolean operands, got %s and %s", b.Op, lt, rt)
		}
		b.typ = record.TBool
		return b.typ, nil
	case OpLike:
		if lt.Fixed() || rt.Fixed() {
			return 0, fmt.Errorf("expr: LIKE requires string operands, got %s and %s", lt, rt)
		}
		b.typ = record.TBool
		return b.typ, nil
	default:
		return 0, fmt.Errorf("expr: %s is not a binary operator", b.Op)
	}
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// TypeCheck implements Expr.
func (u *Un) TypeCheck(s *record.Schema) (record.Type, error) {
	xt, err := u.X.TypeCheck(s)
	if err != nil {
		return 0, err
	}
	switch u.Op {
	case OpNeg:
		if !numeric(xt) {
			return 0, fmt.Errorf("expr: unary - requires numeric operand, got %s", xt)
		}
		u.typ = xt
		return xt, nil
	case OpNot:
		if xt != record.TBool {
			return 0, fmt.Errorf("expr: NOT requires boolean operand, got %s", xt)
		}
		u.typ = record.TBool
		return u.typ, nil
	default:
		return 0, fmt.Errorf("expr: %s is not a unary operator", u.Op)
	}
}

// String implements Expr.
func (u *Un) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", u.X.String())
	}
	return fmt.Sprintf("(-%s)", u.X.String())
}

// Literal constructors shared with the parser.
var (
	recordInt   = record.Int
	recordFloat = record.Float
	recordBool  = record.Bool
	recordStr   = record.Str
)

// fieldIndex returns the resolved index for Field and Ident nodes.
func fieldIndex(e Expr) (int, bool) {
	switch n := e.(type) {
	case *Field:
		return n.Index, true
	case *Ident:
		return n.index, true
	}
	return 0, false
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte).
func likeMatch(s, pat []byte) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	var si, pi int
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// toFloat converts a numeric value to float64.
func toFloat(v record.Value) float64 {
	if v.Kind == record.TInt {
		return float64(v.I)
	}
	return v.F
}

// compareNumeric compares two numeric values with promotion.
func compareNumeric(a, b record.Value) int {
	if a.Kind == record.TInt && b.Kind == record.TInt {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := toFloat(a), toFloat(b)
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// compareValues compares after type checking guaranteed comparability.
func compareValues(a, b record.Value) int {
	if numeric(a.Kind) && numeric(b.Kind) {
		return compareNumeric(a, b)
	}
	return record.CompareValues(a, b)
}
