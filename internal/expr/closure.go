package expr

import (
	"fmt"

	"repro/internal/record"
)

// Evaluator is the common shape of both compiled and interpreted support
// functions: evaluate an expression against one encoded record.
type Evaluator func(data []byte) (record.Value, error)

// CompileClosure type-checks e against the schema and builds a tree of Go
// closures evaluating it. This is the compiled form of a support function
// — the Go analog of the paper's "predicate evaluation function available
// in machine code".
func CompileClosure(e Expr, s *record.Schema) (Evaluator, record.Type, error) {
	typ, err := e.TypeCheck(s)
	if err != nil {
		return nil, 0, err
	}
	ev, err := buildClosure(e, s)
	if err != nil {
		return nil, 0, err
	}
	return ev, typ, nil
}

func buildClosure(e Expr, s *record.Schema) (Evaluator, error) {
	switch n := e.(type) {
	case *Lit:
		v := n.Val
		return func([]byte) (record.Value, error) { return v, nil }, nil
	case *Field:
		return buildLoad(n.Index, n.typ, s), nil
	case *Ident:
		return buildLoad(n.index, n.typ, s), nil
	case *Un:
		x, err := buildClosure(n.X, s)
		if err != nil {
			return nil, err
		}
		switch {
		case n.Op == OpNot:
			return func(d []byte) (record.Value, error) {
				v, err := x(d)
				if err != nil {
					return v, err
				}
				return record.Bool(!v.B), nil
			}, nil
		case n.typ == record.TInt:
			return func(d []byte) (record.Value, error) {
				v, err := x(d)
				if err != nil {
					return v, err
				}
				return record.Int(-v.I), nil
			}, nil
		default:
			return func(d []byte) (record.Value, error) {
				v, err := x(d)
				if err != nil {
					return v, err
				}
				return record.Float(-v.F), nil
			}, nil
		}
	case *Bin:
		return buildBinClosure(n, s)
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

func buildLoad(idx int, t record.Type, s *record.Schema) Evaluator {
	switch t {
	case record.TInt:
		return func(d []byte) (record.Value, error) { return record.Int(s.GetInt(d, idx)), nil }
	case record.TFloat:
		return func(d []byte) (record.Value, error) { return record.Float(s.GetFloat(d, idx)), nil }
	case record.TBool:
		return func(d []byte) (record.Value, error) { return record.Bool(s.GetBool(d, idx)), nil }
	default:
		return func(d []byte) (record.Value, error) { return record.Bytes(s.GetBytes(d, idx)), nil }
	}
}

func buildBinClosure(n *Bin, s *record.Schema) (Evaluator, error) {
	l, err := buildClosure(n.L, s)
	if err != nil {
		return nil, err
	}
	r, err := buildClosure(n.R, s)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpAnd:
		return func(d []byte) (record.Value, error) {
			lv, err := l(d)
			if err != nil || !lv.B {
				return lv, err
			}
			return r(d)
		}, nil
	case OpOr:
		return func(d []byte) (record.Value, error) {
			lv, err := l(d)
			if err != nil || lv.B {
				return lv, err
			}
			return r(d)
		}, nil
	case OpLike:
		return func(d []byte) (record.Value, error) {
			lv, err := l(d)
			if err != nil {
				return lv, err
			}
			rv, err := r(d)
			if err != nil {
				return rv, err
			}
			return record.Bool(likeMatch(lv.S, rv.S)), nil
		}, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		op := n.Op
		return func(d []byte) (record.Value, error) {
			lv, err := l(d)
			if err != nil {
				return lv, err
			}
			rv, err := r(d)
			if err != nil {
				return rv, err
			}
			return record.Bool(cmpResult(op, compareValues(lv, rv))), nil
		}, nil
	}

	// Arithmetic with optional int->float promotion, specialised per type.
	if n.typ == record.TInt {
		var f func(a, b int64) (int64, error)
		switch n.Op {
		case OpAdd:
			f = func(a, b int64) (int64, error) { return a + b, nil }
		case OpSub:
			f = func(a, b int64) (int64, error) { return a - b, nil }
		case OpMul:
			f = func(a, b int64) (int64, error) { return a * b, nil }
		case OpDiv:
			f = func(a, b int64) (int64, error) {
				if b == 0 {
					return 0, fmt.Errorf("expr: integer division by zero")
				}
				return a / b, nil
			}
		case OpMod:
			f = func(a, b int64) (int64, error) {
				if b == 0 {
					return 0, fmt.Errorf("expr: integer modulo by zero")
				}
				return a % b, nil
			}
		default:
			return nil, fmt.Errorf("expr: cannot compile binary %s", n.Op)
		}
		return func(d []byte) (record.Value, error) {
			lv, err := l(d)
			if err != nil {
				return lv, err
			}
			rv, err := r(d)
			if err != nil {
				return rv, err
			}
			i, err := f(lv.I, rv.I)
			return record.Int(i), err
		}, nil
	}

	var f func(a, b float64) float64
	switch n.Op {
	case OpAdd:
		f = func(a, b float64) float64 { return a + b }
	case OpSub:
		f = func(a, b float64) float64 { return a - b }
	case OpMul:
		f = func(a, b float64) float64 { return a * b }
	case OpDiv:
		f = func(a, b float64) float64 { return a / b }
	default:
		return nil, fmt.Errorf("expr: cannot compile binary %s", n.Op)
	}
	return func(d []byte) (record.Value, error) {
		lv, err := l(d)
		if err != nil {
			return lv, err
		}
		rv, err := r(d)
		if err != nil {
			return rv, err
		}
		return record.Float(f(toFloat(lv), toFloat(rv))), nil
	}, nil
}
