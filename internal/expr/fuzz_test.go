package expr

import (
	"testing"

	"repro/internal/record"
)

// FuzzParse feeds arbitrary strings to the expression parser: it must
// never panic, and whatever parses must type-check-or-error cleanly and,
// if it compiles, evaluate identically in both support-function modes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"id = 10 AND score > 1.5",
		"name LIKE 'a%' OR NOT active",
		"((1 + 2) * 3 - 4) / 5 % 2 = 1",
		"-id + -1.5e2 <> 0",
		"'it''s' = name",
		"$0 >= $1",
		"TRUE AND FALSE OR TRUE",
		"id % 0 = 1",
		"(((((((1)))))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := record.MustSchema(
		record.Field{Name: "id", Type: record.TInt},
		record.Field{Name: "score", Type: record.TFloat},
		record.Field{Name: "name", Type: record.TString},
		record.Field{Name: "active", Type: record.TBool},
	)
	data := schema.MustEncode(record.Int(7), record.Float(2.5), record.Str("abc"), record.Bool(true))
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		prog, perr := CompileProgram(e, schema)
		e2, err := Parse(src) // fresh AST: TypeCheck mutates nodes
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", src, err)
		}
		ev, _, cerr := CompileClosure(e2, schema)
		if (perr == nil) != (cerr == nil) {
			t.Fatalf("%q: program err %v, closure err %v", src, perr, cerr)
		}
		if perr != nil {
			return
		}
		iv, ierr := prog.Eval(schema, data)
		cv, cerr2 := ev(data)
		if (ierr == nil) != (cerr2 == nil) {
			t.Fatalf("%q: eval err mismatch: %v vs %v", src, ierr, cerr2)
		}
		if ierr == nil && !iv.Equal(cv) {
			t.Fatalf("%q: interpreted %v != compiled %v", src, iv, cv)
		}
	})
}
