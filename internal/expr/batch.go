package expr

// Batch evaluation of support functions: the batch-at-a-time protocol
// amortises the iterator call chain, and these helpers amortise the
// support-function dispatch by evaluating one closure (or one bytecode
// program) over a whole run of record images per call. The support
// functions themselves stay per-record — Volcano's operators pass a
// (function, argument) pair and never interpret records — so a batch
// helper is just the tight loop hoisted out of the operator.

// PredicateBatch evaluates pred over each record image in recs, writing
// one keep flag per record into keep, which must have len(keep) >=
// len(recs). On error it returns the index of the failing record; flags
// past that index are unspecified.
func PredicateBatch(pred Predicate, recs [][]byte, keep []bool) (int, error) {
	for i, data := range recs {
		ok, err := pred(data)
		if err != nil {
			return i, err
		}
		keep[i] = ok
	}
	return len(recs), nil
}

// PartitionBatch evaluates part over each record image in recs, writing
// one consumer index per record into out, which must have len(out) >=
// len(recs).
func PartitionBatch(part Partitioner, recs [][]byte, out []int) {
	for i, data := range recs {
		out[i] = part(data)
	}
}
