package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

var testSchema = record.MustSchema(
	record.Field{Name: "id", Type: record.TInt},
	record.Field{Name: "score", Type: record.TFloat},
	record.Field{Name: "name", Type: record.TString},
	record.Field{Name: "active", Type: record.TBool},
)

func rec(id int64, score float64, name string, active bool) []byte {
	return testSchema.MustEncode(record.Int(id), record.Float(score), record.Str(name), record.Bool(active))
}

// evalBoth evaluates src in both modes and checks they agree.
func evalBoth(t *testing.T, src string, data []byte) record.Value {
	t.Helper()
	e := MustParse(src)
	prog, err := CompileProgram(e, testSchema)
	if err != nil {
		t.Fatalf("CompileProgram(%q): %v", src, err)
	}
	iv, err := prog.Eval(testSchema, data)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	ev, _, err := CompileClosure(MustParse(src), testSchema)
	if err != nil {
		t.Fatalf("CompileClosure(%q): %v", src, err)
	}
	cv, err := ev(data)
	if err != nil {
		t.Fatalf("closure(%q): %v", src, err)
	}
	if !iv.Equal(cv) {
		t.Fatalf("%q: interpreted %v != compiled %v", src, iv, cv)
	}
	return iv
}

func TestArithmetic(t *testing.T) {
	data := rec(10, 2.5, "x", true)
	cases := map[string]record.Value{
		"1 + 2":           record.Int(3),
		"id * 3":          record.Int(30),
		"id - 4":          record.Int(6),
		"id / 3":          record.Int(3),
		"id % 3":          record.Int(1),
		"-id":             record.Int(-10),
		"score * 2":       record.Float(5),
		"id + score":      record.Float(12.5),
		"-score":          record.Float(-2.5),
		"score / 0.5":     record.Float(5),
		"2 * (id + 5)":    record.Int(30),
		"1 + 2 * 3":       record.Int(7),
		"(1 + 2) * 3":     record.Int(9),
		"10 - 2 - 3":      record.Int(5),
		"1.5e1 + 0.5":     record.Float(15.5),
		"-(id + 1)":       record.Int(-11),
		"id + -1":         record.Int(9),
		"100 / 10 / 5":    record.Int(2),
		"id * id - score": record.Float(97.5),
	}
	for src, want := range cases {
		if got := evalBoth(t, src, data); !got.Equal(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	data := rec(10, 2.5, "volcano", true)
	trueCases := []string{
		"id = 10", "id <> 11", "id != 11", "id < 11", "id <= 10", "id > 9", "id >= 10",
		"score = 2.5", "score > 2", "id > score",
		"name = 'volcano'", "name < 'w'", "name LIKE 'vol%'", "name LIKE '%cano'",
		"name LIKE 'v_lcano'", "name LIKE '%lc%'",
		"active", "active = TRUE", "NOT (id = 11)",
		"id = 10 AND score = 2.5", "id = 11 OR score = 2.5",
		"id = 10 OR 1 / 0 = 1",      // short-circuit OR must not divide
		"NOT (id = 11 AND 1/0 = 1)", // short-circuit AND must not divide
		"TRUE OR FALSE", "NOT FALSE",
		"id + 1 > score * 2",
	}
	for _, src := range trueCases {
		if got := evalBoth(t, src, data); !got.B {
			t.Errorf("%q = false, want true", src)
		}
	}
	falseCases := []string{
		"id = 11", "name LIKE 'x%'", "NOT active", "FALSE",
		"id = 10 AND score > 3", "id = 11 OR name = 'x'",
		"name LIKE 'volcanoX'", "name LIKE '_'",
	}
	for _, src := range falseCases {
		if got := evalBoth(t, src, data); got.B {
			t.Errorf("%q = true, want false", src)
		}
	}
}

func TestFieldReferenceByIndex(t *testing.T) {
	data := rec(7, 0, "z", false)
	if got := evalBoth(t, "$0 + 1", data); got.I != 8 {
		t.Fatalf("$0 + 1 = %v", got)
	}
}

func TestStringEscapes(t *testing.T) {
	s := record.MustSchema(record.Field{Name: "n", Type: record.TString})
	data := s.MustEncode(record.Str("it's"))
	e := MustParse("n = 'it''s'")
	prog, err := CompileProgram(e, s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(s, data)
	if err != nil || !v.B {
		t.Fatalf("escaped quote: %v %v", v, err)
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	data := rec(0, 0, "", false)
	for _, src := range []string{"1 / id", "1 % id"} {
		prog, err := CompileProgram(MustParse(src), testSchema)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prog.Eval(testSchema, data); err == nil {
			t.Errorf("interpreted %q: no error", src)
		}
		ev, _, err := CompileClosure(MustParse(src), testSchema)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev(data); err == nil {
			t.Errorf("compiled %q: no error", src)
		}
	}
	// Float division by zero is defined (IEEE inf).
	v := evalBoth(t, "1.0 / 0.0", rec(0, 0, "", false))
	if v.F <= 0 {
		t.Fatalf("1.0/0.0 = %v", v)
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		"name + 1",
		"active + 1",
		"id AND active",
		"NOT id",
		"-name",
		"name LIKE 1",
		"id LIKE 'x'",
		"score % 2",
		"1 % 2.0",
		"name = 1",
		"nosuchfield = 1",
		"$99 = 1",
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("%q: parse error %v (want type error)", src, err)
			continue
		}
		if _, err := CompileProgram(e, testSchema); err == nil {
			t.Errorf("%q: type-checked, want error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "= 1", "'unterminated", "1 @ 2", "$", "NOT", "1 2",
		"id LIKE", "AND 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	e := MustParse("id = 10 AND (score > 1.5 OR NOT active)")
	s := e.String()
	if !strings.Contains(s, "AND") || !strings.Contains(s, "OR") {
		t.Fatalf("String() = %q", s)
	}
	// Re-parse the rendering; it must evaluate identically.
	e2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	data := rec(10, 1.0, "a", false)
	p1, _ := CompileProgram(e, testSchema)
	p2, _ := CompileProgram(e2, testSchema)
	v1, _ := p1.Eval(testSchema, data)
	v2, _ := p2.Eval(testSchema, data)
	if !v1.Equal(v2) {
		t.Fatalf("round trip changed semantics: %v vs %v", v1, v2)
	}
}

func TestPredicateModes(t *testing.T) {
	for _, mode := range []Mode{Compiled, Interpreted} {
		p, err := ParsePredicate("id >= 5 AND name LIKE 'a%'", testSchema, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		ok, err := p(rec(7, 0, "abc", false))
		if err != nil || !ok {
			t.Fatalf("%v: got %v, %v", mode, ok, err)
		}
		ok, err = p(rec(3, 0, "abc", false))
		if err != nil || ok {
			t.Fatalf("%v: got %v, %v", mode, ok, err)
		}
	}
	if _, err := NewPredicate(MustParse("id + 1"), testSchema, Compiled); err == nil {
		t.Fatal("non-bool predicate accepted")
	}
	if _, err := NewPredicate(MustParse("id + 1"), testSchema, Interpreted); err == nil {
		t.Fatal("non-bool interpreted predicate accepted")
	}
}

func TestProjector(t *testing.T) {
	for _, mode := range []Mode{Compiled, Interpreted} {
		exprs := []Expr{MustParse("id * 2"), MustParse("name"), MustParse("score > 2")}
		proj, out, err := NewProjector(exprs, []string{"double", "name", "high"}, testSchema, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if out.NumFields() != 3 || out.Field(0).Type != record.TInt ||
			out.Field(1).Type != record.TString || out.Field(2).Type != record.TBool {
			t.Fatalf("%v: output schema %v", mode, out)
		}
		vals, err := proj(rec(21, 3.5, "n", true))
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].I != 42 || string(vals[1].S) != "n" || !vals[2].B {
			t.Fatalf("%v: vals = %v", mode, vals)
		}
	}
	// Default names.
	proj, out, err := NewProjector([]Expr{MustParse("id + 1"), MustParse("name")}, nil, testSchema, Compiled)
	if err != nil {
		t.Fatal(err)
	}
	if out.Field(0).Name != "c0" || out.Field(1).Name != "name" {
		t.Fatalf("default names: %v", out)
	}
	if _, err := proj(rec(1, 0, "x", false)); err != nil {
		t.Fatal(err)
	}
	// Arity mismatch.
	if _, _, err := NewProjector([]Expr{MustParse("1")}, []string{"a", "b"}, testSchema, Compiled); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestRoundRobinPartitioner(t *testing.T) {
	p := RoundRobin(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := p(nil); got != w {
			t.Fatalf("call %d: got %d, want %d", i, got, w)
		}
	}
}

func TestHashPartitioner(t *testing.T) {
	p := HashPartition(testSchema, record.Key{0}, 4)
	seen := map[int]bool{}
	for i := int64(0); i < 100; i++ {
		part := p(rec(i, 0, "", false))
		if part < 0 || part >= 4 {
			t.Fatalf("partition %d out of range", part)
		}
		seen[part] = true
		// Determinism.
		if again := p(rec(i, 0, "", false)); again != part {
			t.Fatalf("hash partition not deterministic for %d", i)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 partitions used over 100 keys", len(seen))
	}
}

func TestRangePartitioner(t *testing.T) {
	cuts := []record.Value{record.Int(10), record.Int(20)}
	p := RangePartition(testSchema, 0, cuts)
	cases := map[int64]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 1000: 2}
	for id, want := range cases {
		if got := p(rec(id, 0, "", false)); got != want {
			t.Errorf("id=%d: partition %d, want %d", id, got, want)
		}
	}
}

func TestKeyCompare(t *testing.T) {
	cmp := NewKeyCompare(testSchema, []record.SortSpec{{Field: 0}})
	a, b := rec(1, 0, "", false), rec(2, 0, "", false)
	if cmp(a, b) != -1 || cmp(b, a) != 1 || cmp(a, a) != 0 {
		t.Fatal("KeyCompare misbehaves")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"", "", true}, {"", "%", true}, {"a", "", false},
		{"abc", "abc", true}, {"abc", "a%", true}, {"abc", "%c", true},
		{"abc", "%b%", true}, {"abc", "a_c", true}, {"abc", "____", false},
		{"abc", "___", true}, {"aXbXc", "a%b%c", true}, {"mississippi", "%ss%ss%", true},
		{"mississippi", "%ss%xx%", false}, {"%", "%", true},
	}
	for _, c := range cases {
		if got := likeMatch([]byte(c.s), []byte(c.pat)); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

// Property: interpreted and compiled evaluation agree on arbitrary records
// for a fixed set of expressions.
func TestQuickModesAgree(t *testing.T) {
	exprs := []string{
		"id % 7 = 0 AND score > 0.5",
		"(id + 3) * 2 - 1",
		"score * score + id",
		"name LIKE 'a%' OR id < 0",
		"NOT active AND id <> 0",
	}
	for _, src := range exprs {
		prog, err := CompileProgram(MustParse(src), testSchema)
		if err != nil {
			t.Fatal(err)
		}
		ev, _, err := CompileClosure(MustParse(src), testSchema)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(id int64, score float64, name string, active bool) bool {
			data := rec(id, score, name, active)
			iv, ierr := prog.Eval(testSchema, data)
			cv, cerr := ev(data)
			if (ierr == nil) != (cerr == nil) {
				return false
			}
			if ierr != nil {
				return true
			}
			return iv.Equal(cv)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

// Property: hash partitioning always lands in range and is deterministic.
func TestQuickHashPartitionRange(t *testing.T) {
	p := HashPartition(testSchema, record.Key{0, 2}, 7)
	prop := func(id int64, name string) bool {
		d := rec(id, 0, name, false)
		x := p(d)
		return x >= 0 && x < 7 && p(d) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeepExpressionStack(t *testing.T) {
	// Build a deeply right-nested expression to exercise VM stack growth.
	src := "1"
	for i := 0; i < 40; i++ {
		src = "1 + (" + src + ")"
	}
	prog, err := CompileProgram(MustParse(src), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(testSchema, rec(0, 0, "", false))
	if err != nil || v.I != 41 {
		t.Fatalf("deep expr = %v, %v", v, err)
	}
}

func BenchmarkPredicateCompiled(b *testing.B) {
	p, _ := ParsePredicate("id % 10 = 3 AND score > 0.25", testSchema, Compiled)
	data := rec(13, 0.5, "x", true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := p(data); !ok {
			b.Fatal("predicate false")
		}
	}
}

func BenchmarkPredicateInterpreted(b *testing.B) {
	p, _ := ParsePredicate("id % 10 = 3 AND score > 0.25", testSchema, Interpreted)
	data := rec(13, 0.5, "x", true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := p(data); !ok {
			b.Fatal("predicate false")
		}
	}
}
