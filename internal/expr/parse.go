package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the expression surface language into an (unresolved) AST.
// Grammar, lowest to highest precedence:
//
//	expr   := or
//	or     := and { OR and }
//	and    := not { AND not }
//	not    := [NOT] cmp
//	cmp    := sum [ ( = | <> | != | < | <= | > | >= | LIKE ) sum ]
//	sum    := term { ( + | - ) term }
//	term   := unary { ( * | / | % ) unary }
//	unary  := [ - ] primary
//	primary:= literal | identifier | $N | '(' expr ')'
//
// Identifiers are resolved against a schema later, by TypeCheck.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("expr: unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and static plans.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp   // punctuation operators
	tokKeyw // AND OR NOT LIKE TRUE FALSE
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || ((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j]})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("expr: unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			switch strings.ToUpper(word) {
			case "AND", "OR", "NOT", "LIKE", "TRUE", "FALSE":
				toks = append(toks, token{tokKeyw, strings.ToUpper(word)})
			default:
				toks = append(toks, token{tokIdent, word})
			}
			i = j
		case c == '$':
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("expr: $ must be followed by a field number")
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokOp, op})
					i += len(op)
					goto next
				}
			}
			return nil, fmt.Errorf("expr: unexpected character %q", c)
		next:
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) accept(kind tokKind, text string) bool {
	if p.peek().kind == kind && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyw, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyw, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyw, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNot, X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]Op{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	if p.accept(tokKeyw, "LIKE") {
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: OpLike, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseSum() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept(tokOp, "+"):
			op = OpAdd
		case p.accept(tokOp, "-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept(tokOp, "*"):
			op = OpMul
		case p.accept(tokOp, "/"):
			op = OpDiv
		case p.accept(tokOp, "%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad integer literal %q: %v", t.text, err)
		}
		return &Lit{Val: recordInt(i)}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad float literal %q: %v", t.text, err)
		}
		return &Lit{Val: recordFloat(f)}, nil
	case tokString:
		return &Lit{Val: recordStr(t.text)}, nil
	case tokKeyw:
		switch t.text {
		case "TRUE":
			return &Lit{Val: recordBool(true)}, nil
		case "FALSE":
			return &Lit{Val: recordBool(false)}, nil
		}
		return nil, fmt.Errorf("expr: unexpected keyword %q", t.text)
	case tokIdent:
		if strings.HasPrefix(t.text, "$") {
			n, err := strconv.Atoi(t.text[1:])
			if err != nil {
				return nil, fmt.Errorf("expr: bad field reference %q", t.text)
			}
			return &Field{Index: n}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(tokOp, ")") {
				return nil, fmt.Errorf("expr: missing closing parenthesis")
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q", t.text)
}
