package expr

import (
	"fmt"

	"repro/internal/record"
)

// Mode selects how a support function is realised (paper, §3): Compiled
// builds a tree of Go closures; Interpreted compiles to bytecode and runs
// the VM per record. Both are interchangeable behind the same function
// types, exactly as Volcano passes either machine code or interpreter +
// code through the same (function, argument) pair.
type Mode uint8

const (
	// Compiled realises support functions as Go closures.
	Compiled Mode = iota
	// Interpreted realises support functions as bytecode run by the VM.
	Interpreted
)

// String names the mode.
func (m Mode) String() string {
	if m == Interpreted {
		return "interpreted"
	}
	return "compiled"
}

// Predicate is a support function deciding whether a record qualifies.
type Predicate func(data []byte) (bool, error)

// NewPredicate builds a predicate from an expression. The expression must
// type-check to bool against the schema.
func NewPredicate(e Expr, s *record.Schema, mode Mode) (Predicate, error) {
	switch mode {
	case Interpreted:
		prog, err := CompileProgram(e, s)
		if err != nil {
			return nil, err
		}
		if prog.Type() != record.TBool {
			return nil, fmt.Errorf("expr: predicate %q has type %s, want bool", prog, prog.Type())
		}
		return func(d []byte) (bool, error) {
			v, err := prog.Eval(s, d)
			return v.B, err
		}, nil
	default:
		ev, typ, err := CompileClosure(e, s)
		if err != nil {
			return nil, err
		}
		if typ != record.TBool {
			return nil, fmt.Errorf("expr: predicate %q has type %s, want bool", e, typ)
		}
		return func(d []byte) (bool, error) {
			v, err := ev(d)
			return v.B, err
		}, nil
	}
}

// ParsePredicate parses src and builds a predicate against the schema.
func ParsePredicate(src string, s *record.Schema, mode Mode) (Predicate, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewPredicate(e, s, mode)
}

// Projector is a support function computing an output value list from a
// record; project/compute operators use one evaluator per output field.
type Projector func(data []byte) ([]record.Value, error)

// NewProjector builds a projector evaluating the given expressions, and
// returns the output schema with the given field names (names may be nil,
// in which case columns are named c0, c1, ...).
func NewProjector(exprs []Expr, names []string, s *record.Schema, mode Mode) (Projector, *record.Schema, error) {
	if names != nil && len(names) != len(exprs) {
		return nil, nil, fmt.Errorf("expr: %d names for %d expressions", len(names), len(exprs))
	}
	evs := make([]Evaluator, len(exprs))
	fields := make([]record.Field, len(exprs))
	for i, e := range exprs {
		var typ record.Type
		var err error
		if mode == Interpreted {
			prog, perr := CompileProgram(e, s)
			if perr != nil {
				return nil, nil, perr
			}
			typ = prog.Type()
			evs[i] = func(d []byte) (record.Value, error) { return prog.Eval(s, d) }
		} else {
			evs[i], typ, err = CompileClosure(e, s)
			if err != nil {
				return nil, nil, err
			}
		}
		name := fmt.Sprintf("c%d", i)
		if names != nil {
			name = names[i]
		} else if id, ok := e.(*Ident); ok {
			name = id.Name
		}
		fields[i] = record.Field{Name: name, Type: typ}
	}
	out, err := record.NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	proj := func(d []byte) ([]record.Value, error) {
		vals := make([]record.Value, len(evs))
		for i, ev := range evs {
			v, err := ev(d)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	return proj, out, nil
}

// Partitioner is the support function the exchange operator uses to decide
// which consumer queue an output record must go to (paper, §4.2). It must
// return a value in [0, n) for the configured fan-out n.
type Partitioner func(data []byte) int

// RoundRobin returns a partitioner cycling through n partitions.
// It is safe for use by a single producer; each producer in a group gets
// its own instance (state records are per-iterator in Volcano).
func RoundRobin(n int) Partitioner {
	next := 0
	return func([]byte) int {
		p := next
		next++
		if next == n {
			next = 0
		}
		return p
	}
}

// HashPartition returns a partitioner hashing the given key fields.
func HashPartition(s *record.Schema, key record.Key, n int) Partitioner {
	return func(d []byte) int {
		return int(s.Hash(d, key) % uint64(n))
	}
}

// RangePartition returns a partitioner assigning records to partitions by
// comparing a field against ordered cut values: partition i receives
// records with field < cuts[i]; the last partition receives the rest.
// len(cuts) must be n-1 for n partitions.
func RangePartition(s *record.Schema, field int, cuts []record.Value) Partitioner {
	return func(d []byte) int {
		v, err := s.Get(d, field)
		if err != nil {
			return 0
		}
		for i, c := range cuts {
			if compareValues(v, c) < 0 {
				return i
			}
		}
		return len(cuts)
	}
}

// KeyCompare is the comparison support function handed to sort and
// merge-based operators.
type KeyCompare func(a, b []byte) int

// NewKeyCompare builds a comparator over the given sort terms.
func NewKeyCompare(s *record.Schema, spec []record.SortSpec) KeyCompare {
	return func(a, b []byte) int { return s.Compare(a, b, spec) }
}
