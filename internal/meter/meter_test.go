package meter

import (
	"encoding/json"
	"testing"
)

func TestMeterCounts(t *testing.T) {
	m := &Meter{}
	m.FixHit()
	m.FixHit()
	m.FixMiss()
	m.DeviceRead(4096)
	m.DeviceWrite(4096)
	m.DeviceWrite(4096)
	m.ExchangePush(5)
	m.ExchangePush(0) // EOS marker: a packet with no records
	m.WireSend(120)
	m.BatchAlloc(1024)
	m.BatchAlloc(1024)
	m.BatchFree(1024)
	m.StreamRow(33)
	m.SetCPUNanos(2_500_000_000)

	s := m.Snapshot()
	if s.BufferFixes != 3 || s.BufferHits != 2 || s.BufferMisses != 1 {
		t.Errorf("buffer counters = %d/%d/%d, want 3/2/1", s.BufferFixes, s.BufferHits, s.BufferMisses)
	}
	if s.DeviceReads != 1 || s.DeviceWrites != 2 {
		t.Errorf("device ops = r%d/w%d, want r1/w2", s.DeviceReads, s.DeviceWrites)
	}
	if got := s.IOBytes(); got != 3*4096 {
		t.Errorf("IOBytes = %d, want %d", got, 3*4096)
	}
	if s.ExchangePackets != 2 || s.ExchangeRecords != 5 {
		t.Errorf("exchange = %d packets %d records, want 2/5", s.ExchangePackets, s.ExchangeRecords)
	}
	if s.WirePackets != 1 || s.WireBytes != 120 {
		t.Errorf("wire = %d packets %d bytes, want 1/120", s.WirePackets, s.WireBytes)
	}
	if s.BatchHighWater != 2048 {
		t.Errorf("batch high water = %d, want 2048", s.BatchHighWater)
	}
	if s.RowsStreamed != 1 || s.BytesStreamed != 33 {
		t.Errorf("streamed = %d rows %d bytes, want 1/33", s.RowsStreamed, s.BytesStreamed)
	}
	if s.CPUSeconds != 2.5 {
		t.Errorf("CPUSeconds = %v, want 2.5", s.CPUSeconds)
	}
}

// TestHighWaterIsMax pins that the high-water mark keeps the maximum of
// live bytes, not the last value: alloc/free churn must not erode it.
func TestHighWaterIsMax(t *testing.T) {
	m := &Meter{}
	m.BatchAlloc(100)
	m.BatchAlloc(100) // live 200, peak 200
	m.BatchFree(100)  // live 100
	m.BatchAlloc(50)  // live 150 < peak
	if s := m.Snapshot(); s.BatchHighWater != 200 {
		t.Errorf("high water = %d, want 200", s.BatchHighWater)
	}
}

// TestNilMeter pins the disabled convention: every method on a nil
// meter is a no-op and its snapshot is the zero value, so attribution
// call sites never branch on enablement themselves.
func TestNilMeter(t *testing.T) {
	var m *Meter
	m.FixHit()
	m.FixMiss()
	m.DeviceRead(1)
	m.DeviceWrite(1)
	m.ExchangePush(1)
	m.WireSend(1)
	m.BatchAlloc(1)
	m.BatchFree(1)
	m.StreamRow(1)
	m.SetCPUNanos(1)
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil meter snapshot = %+v, want zero", s)
	}
}

// TestMeterHotPathZeroAlloc is the per-event budget guard: one or two
// atomic adds and nothing on the heap, for the enabled and the disabled
// meter alike. These calls sit on per-record and per-page hot paths.
func TestMeterHotPathZeroAlloc(t *testing.T) {
	m := &Meter{}
	var nilM *Meter
	cases := []struct {
		name string
		fn   func()
	}{
		{"FixHit", func() { m.FixHit() }},
		{"FixMiss", func() { m.FixMiss() }},
		{"DeviceRead", func() { m.DeviceRead(4096) }},
		{"DeviceWrite", func() { m.DeviceWrite(4096) }},
		{"ExchangePush", func() { m.ExchangePush(83) }},
		{"WireSend", func() { m.WireSend(512) }},
		{"StreamRow", func() { m.StreamRow(40) }},
		{"BatchAlloc", func() { m.BatchAlloc(4096) }},
		{"BatchFree", func() { m.BatchFree(4096) }},
		{"nil.FixHit", func() { nilM.FixHit() }},
		{"nil.StreamRow", func() { nilM.StreamRow(40) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(1000, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", c.name, allocs)
		}
	}
}

// TestSnapshotJSONSchema pins the wire shape of the resources block as
// served in NDJSON trailers, /debug/queries and the slow-query log.
func TestSnapshotJSONSchema(t *testing.T) {
	b, err := json.Marshal(Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"cpu_seconds",
		"buffer_fixes", "buffer_hits", "buffer_misses",
		"device_reads", "device_writes", "device_read_bytes", "device_write_bytes",
		"exchange_packets", "exchange_records",
		"wire_packets", "wire_bytes",
		"batch_pool_high_water_bytes",
		"rows_streamed", "bytes_streamed",
	}
	if len(m) != len(want) {
		t.Errorf("snapshot has %d JSON keys, want %d: %s", len(m), len(want), b)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("snapshot JSON missing key %q", k)
		}
	}
}
