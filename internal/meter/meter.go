// Package meter provides per-query resource accounting. A Meter is a
// bundle of atomic counters attributed to exactly one query: every layer
// the query touches — buffer pool, device I/O, exchange ports, wire
// packets, batch pools, the row stream — adds into the query's meter at
// the same points it already bumps its process-global counters.
//
// The package sits below storage in the dependency order (it imports only
// sync/atomic), so the buffer pool and the file layer can account against
// it without importing core. core re-exports the type as
// core.ResourceMeter.
//
// Every method is nil-safe: a nil *Meter is "accounting disabled" and
// costs one branch, the same convention as the nil tracer and the nil
// histogram. Each event is one or two atomic adds — no locks, no
// allocations — so meters sit directly on the per-record hot path.
package meter

import "sync/atomic"

// Meter accumulates one query's resource usage. All fields are atomic:
// one meter is shared by the query's handler goroutine and every exchange
// producer goroutine its plan spawns.
type Meter struct {
	// Buffer-pool activity attributed to this query's fixes.
	BufFixes  atomic.Int64
	BufHits   atomic.Int64
	BufMisses atomic.Int64

	// Device I/O triggered by this query's buffer misses and write-backs.
	// A write-back of a page dirtied by another query is attributed to
	// the query whose miss triggered the eviction — the cost is paid on
	// its critical path, which is the number an operator debugging a slow
	// query wants.
	DevReads      atomic.Int64
	DevWrites     atomic.Int64
	DevReadBytes  atomic.Int64
	DevWriteBytes atomic.Int64

	// Exchange port traffic (shared-memory packets between producer and
	// consumer goroutines).
	XPackets atomic.Int64
	XRecords atomic.Int64

	// Netexchange wire traffic (record images copied into wire packets).
	WirePackets atomic.Int64
	WireBytes   atomic.Int64

	// Batch-pool memory: live bytes currently allocated to this query's
	// batches, and the high-water mark over the query's lifetime.
	BatchLiveBytes      atomic.Int64
	BatchHighWaterBytes atomic.Int64

	// Rows and bytes streamed to the client.
	RowsStreamed  atomic.Int64
	BytesStreamed atomic.Int64

	// CPU time: operator wall time from OpStats (exclusive per node,
	// producer subtrees included) accumulated at snapshot points.
	CPUNanos atomic.Int64
}

// FixHit records one buffer-pool fix satisfied from the buffer.
func (m *Meter) FixHit() {
	if m == nil {
		return
	}
	m.BufFixes.Add(1)
	m.BufHits.Add(1)
}

// FixMiss records one buffer-pool fix that required a replacement.
func (m *Meter) FixMiss() {
	if m == nil {
		return
	}
	m.BufFixes.Add(1)
	m.BufMisses.Add(1)
}

// DeviceRead records one page read of the given size.
func (m *Meter) DeviceRead(bytes int64) {
	if m == nil {
		return
	}
	m.DevReads.Add(1)
	m.DevReadBytes.Add(bytes)
}

// DeviceWrite records one page write of the given size.
func (m *Meter) DeviceWrite(bytes int64) {
	if m == nil {
		return
	}
	m.DevWrites.Add(1)
	m.DevWriteBytes.Add(bytes)
}

// ExchangePush records one packet of n records crossing an exchange port.
func (m *Meter) ExchangePush(n int) {
	if m == nil {
		return
	}
	m.XPackets.Add(1)
	m.XRecords.Add(int64(n))
}

// WireSend records one netexchange wire packet of the given size.
func (m *Meter) WireSend(bytes int) {
	if m == nil {
		return
	}
	m.WirePackets.Add(1)
	m.WireBytes.Add(int64(bytes))
}

// WireRecv records one netexchange wire packet received on behalf of
// this query. It lands in the same WirePackets/WireBytes counters as
// WireSend: the pair exists so each side of a real wire attributes the
// traffic it actually saw — in a distributed plan the sending worker and
// the receiving coordinator hold different meters, and each bills the
// packets that crossed its own socket. An in-process hub counts each
// packet on exactly one side, never both.
func (m *Meter) WireRecv(bytes int) {
	if m == nil {
		return
	}
	m.WirePackets.Add(1)
	m.WireBytes.Add(int64(bytes))
}

// BatchAlloc records bytes newly allocated to this query's batches and
// advances the high-water mark.
func (m *Meter) BatchAlloc(bytes int64) {
	if m == nil {
		return
	}
	live := m.BatchLiveBytes.Add(bytes)
	for {
		hw := m.BatchHighWaterBytes.Load()
		if live <= hw || m.BatchHighWaterBytes.CompareAndSwap(hw, live) {
			return
		}
	}
}

// BatchFree records bytes released back (batch discarded or pool torn
// down).
func (m *Meter) BatchFree(bytes int64) {
	if m == nil {
		return
	}
	m.BatchLiveBytes.Add(-bytes)
}

// StreamRow records one result row of the given encoded size streamed to
// the client.
func (m *Meter) StreamRow(bytes int) {
	if m == nil {
		return
	}
	m.RowsStreamed.Add(1)
	m.BytesStreamed.Add(int64(bytes))
}

// SetCPUNanos publishes the query's accumulated CPU time. CPU is derived
// from operator timings at snapshot points rather than metered on the hot
// path, so it is stored, not added.
func (m *Meter) SetCPUNanos(ns int64) {
	if m == nil {
		return
	}
	m.CPUNanos.Store(ns)
}

// IOBytes returns total device bytes moved (reads + writes).
func (m *Meter) IOBytes() int64 {
	if m == nil {
		return 0
	}
	return m.DevReadBytes.Load() + m.DevWriteBytes.Load()
}

// Snapshot is a plain-value copy of a meter, safe to store, compare and
// marshal. The JSON tags are the wire shape of the trailer `resources`
// block, the /debug/queries drill-down and the slow-query log.
type Snapshot struct {
	CPUSeconds       float64 `json:"cpu_seconds"`
	BufferFixes      int64   `json:"buffer_fixes"`
	BufferHits       int64   `json:"buffer_hits"`
	BufferMisses     int64   `json:"buffer_misses"`
	DeviceReads      int64   `json:"device_reads"`
	DeviceWrites     int64   `json:"device_writes"`
	DeviceReadBytes  int64   `json:"device_read_bytes"`
	DeviceWriteBytes int64   `json:"device_write_bytes"`
	ExchangePackets  int64   `json:"exchange_packets"`
	ExchangeRecords  int64   `json:"exchange_records"`
	WirePackets      int64   `json:"wire_packets"`
	WireBytes        int64   `json:"wire_bytes"`
	BatchHighWater   int64   `json:"batch_pool_high_water_bytes"`
	RowsStreamed     int64   `json:"rows_streamed"`
	BytesStreamed    int64   `json:"bytes_streamed"`
}

// Snapshot reads every counter. Safe at any time, including mid-query —
// the live /debug/queries view snapshots running meters.
func (m *Meter) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		CPUSeconds:       float64(m.CPUNanos.Load()) / 1e9,
		BufferFixes:      m.BufFixes.Load(),
		BufferHits:       m.BufHits.Load(),
		BufferMisses:     m.BufMisses.Load(),
		DeviceReads:      m.DevReads.Load(),
		DeviceWrites:     m.DevWrites.Load(),
		DeviceReadBytes:  m.DevReadBytes.Load(),
		DeviceWriteBytes: m.DevWriteBytes.Load(),
		ExchangePackets:  m.XPackets.Load(),
		ExchangeRecords:  m.XRecords.Load(),
		WirePackets:      m.WirePackets.Load(),
		WireBytes:        m.WireBytes.Load(),
		BatchHighWater:   m.BatchHighWaterBytes.Load(),
		RowsStreamed:     m.RowsStreamed.Load(),
		BytesStreamed:    m.BytesStreamed.Load(),
	}
}

// IOBytes returns total device bytes moved in the snapshot.
func (s Snapshot) IOBytes() int64 { return s.DeviceReadBytes + s.DeviceWriteBytes }
