package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentEmitters drives many goroutines, each emitting on its own
// track, and checks the merged snapshot under -race: every event arrives,
// and instants on one track have monotonically non-decreasing timestamps.
func TestConcurrentEmitters(t *testing.T) {
	const (
		goroutines = 8
		perTrack   = 500
	)
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tk := tr.NewTrack(fmt.Sprintf("worker%d", g))
			for i := 0; i < perTrack; i++ {
				switch i % 3 {
				case 0:
					tk.Instant("test", "tick")
				case 1:
					tk.Instant1("test", "tick1", "i", int64(i))
				default:
					tk.SpanSince("test", "work", time.Now())
				}
			}
		}(g)
	}
	wg.Wait()

	snaps := tr.Snapshot()
	if len(snaps) != goroutines {
		t.Fatalf("got %d tracks, want %d", len(snaps), goroutines)
	}
	total := 0
	for _, s := range snaps {
		if s.Dropped != 0 {
			t.Errorf("track %s dropped %d events", s.Name, s.Dropped)
		}
		total += len(s.Events)
		last := int64(-1)
		for _, e := range s.Events {
			if e.Ph != PhaseInstant {
				continue
			}
			if e.TS < last {
				t.Fatalf("track %s: instant TS went backwards (%d after %d)", s.Name, e.TS, last)
			}
			last = e.TS
		}
	}
	if total != goroutines*perTrack {
		t.Fatalf("got %d events, want %d", total, goroutines*perTrack)
	}
}

// TestSnapshotOrdering checks tracks come back sorted by (pid, tid).
func TestSnapshotOrdering(t *testing.T) {
	tr := New()
	tr.NewTrackOn(2, "c")
	tr.NewTrackOn(1, "b")
	tr.NewTrackOn(1, "a")
	snaps := tr.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("got %d tracks", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		a, b := snaps[i-1], snaps[i]
		if a.PID > b.PID || (a.PID == b.PID && a.TID > b.TID) {
			t.Fatalf("tracks out of order: %+v before %+v", a, b)
		}
	}
}

// TestRingDrop fills a small ring past capacity and checks the overflow is
// counted, not silently lost.
func TestRingDrop(t *testing.T) {
	tr := NewWithCapacity(16)
	tk := tr.NewTrack("tiny")
	for i := 0; i < 20; i++ {
		tk.Instant("test", "e")
	}
	if got := tk.Len(); got != 16 {
		t.Errorf("Len = %d, want 16", got)
	}
	if got := tk.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want 4", got)
	}
	if got := tr.TotalDropped(); got != 4 {
		t.Errorf("TotalDropped = %d, want 4", got)
	}
	if got := tr.Snapshot()[0].Dropped; got != 4 {
		t.Errorf("snapshot Dropped = %d, want 4", got)
	}
}

// TestFlowIDs checks ids are unique and nonzero, and that id 0 records no
// arrow.
func TestFlowIDs(t *testing.T) {
	tr := New()
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		id := tr.NextFlowID()
		if id == 0 || seen[id] {
			t.Fatalf("flow id %d reused or zero", id)
		}
		seen[id] = true
	}
	tk := tr.NewTrack("flows")
	tk.FlowOut("packet", "push", 0, "n", 1) // id 0: no arrow
	if tk.Len() != 0 {
		t.Errorf("FlowOut with id 0 recorded %d events, want 0", tk.Len())
	}
	tk.FlowOut("packet", "push", 7, "n", 1)
	tk.FlowIn("packet", "pop", 7, "n", 1)
	evs := tr.Snapshot()[0].Events
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (instant+s, instant+f)", len(evs))
	}
	if evs[1].Ph != PhaseFlowStart || evs[1].ID != 7 {
		t.Errorf("flow tail = %+v", evs[1])
	}
	if evs[3].Ph != PhaseFlowEnd || evs[3].ID != 7 {
		t.Errorf("flow head = %+v", evs[3])
	}
}

// TestNilTracerSafe exercises every method on the disabled (nil) tracer
// and its nil track handles.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.NextFlowID(); got != 0 {
		t.Errorf("nil NextFlowID = %d", got)
	}
	if !tr.Epoch().IsZero() {
		t.Error("nil Epoch not zero")
	}
	tr.NameProcess(1, "x")
	if snaps := tr.Snapshot(); snaps != nil {
		t.Errorf("nil Snapshot = %v", snaps)
	}
	if tr.TotalDropped() != 0 {
		t.Error("nil TotalDropped != 0")
	}

	tk := tr.NewTrack("ghost")
	if tk.Enabled() {
		t.Fatal("nil track reports enabled")
	}
	if tk.Name() != "" {
		t.Error("nil track has a name")
	}
	tk.Instant("c", "n")
	tk.Instant1("c", "n", "k", 1)
	tk.SpanAt("c", "n", time.Now(), time.Millisecond)
	tk.SpanAt1("c", "n", time.Now(), time.Millisecond, "k", 1)
	tk.SpanSince("c", "n", time.Now())
	tk.FlowOut("c", "n", 1, "k", 1)
	tk.FlowIn("c", "n", 1, "k", 1)
	if tk.Len() != 0 || tk.Dropped() != 0 {
		t.Error("nil track recorded something")
	}
}

// TestSnapshotWhileWriting reads a consistent prefix while a writer is
// still appending (the -race build is the real assertion here).
func TestSnapshotWhileWriting(t *testing.T) {
	tr := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk := tr.NewTrack("writer")
		for i := 0; i < 2000; i++ {
			tk.Instant1("test", "e", "i", int64(i))
		}
	}()
	for i := 0; i < 50; i++ {
		for _, s := range tr.Snapshot() {
			for j, e := range s.Events {
				if e.ArgVal != int64(j) {
					t.Fatalf("event %d has arg %d: torn read", j, e.ArgVal)
				}
			}
		}
	}
	<-done
}
