// Package trace is the structured event tracer for the exchange protocol
// and everything around it: a low-overhead, concurrency-safe recorder of
// spans and instants that can be merged into one time-ordered log and
// exported as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Design:
//
//   - Recording is sharded: every emitting goroutine (an exchange
//     producer, a consumer endpoint, a buffer daemon) owns a Track, a
//     fixed-capacity single-writer ring that it appends to without taking
//     any lock. Publication is a single atomic store of the track length,
//     so concurrent tracks never contend and the merged view (taken after
//     the traced region quiesces) is race-free.
//   - A nil *Tracer (and the nil *Track handles it hands out) is the
//     disabled tracer: every method is a nil-check and return, so
//     instrumentation can stay wired in production code paths at the cost
//     of one predictable branch and zero allocations.
//   - Events never allocate on the hot path: names and categories are
//     static strings, numeric arguments are stored in place, and span
//     timing reuses time values the caller already measured.
//
// The event vocabulary mirrors the Chrome trace-event format: complete
// spans (ph "X"), instants (ph "i"), and flow arrows (ph "s"/"f") that
// connect a packet's push on a producer track to its pop on a consumer
// track.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the Chrome trace-event phase of an event.
type Phase byte

// Phases used by this tracer (a subset of the Chrome vocabulary).
const (
	PhaseSpan      Phase = 'X' // complete event: TS + Dur
	PhaseInstant   Phase = 'i' // instant event
	PhaseFlowStart Phase = 's' // flow arrow tail (producer side)
	PhaseFlowEnd   Phase = 'f' // flow arrow head (consumer side)
)

// Event is one recorded trace event. All fields are plain values so a
// Track stores events in place with no per-event allocation.
type Event struct {
	TS   int64 // nanoseconds since the tracer's epoch
	Dur  int64 // span duration in nanoseconds (PhaseSpan only)
	Ph   Phase
	Cat  string // category, e.g. "exchange", "packet", "buffer"
	Name string
	ID   int64 // flow id binding a PhaseFlowStart to a PhaseFlowEnd
	// One optional numeric argument, stored inline ("" = none).
	ArgKey string
	ArgVal int64
}

// DefaultTrackCap is the per-track ring capacity used by New.
const DefaultTrackCap = 1 << 16

// Tracer owns the clock, the track registry and the flow-id sequence. A
// nil Tracer is valid and means "tracing disabled".
type Tracer struct {
	epoch time.Time
	// now returns nanoseconds since epoch; replaced in tests for
	// deterministic output.
	now func() int64

	trackCap int
	flowSeq  atomic.Int64

	mu     sync.Mutex
	tracks []*Track
	procs  map[int]string
}

// New creates an enabled tracer whose tracks hold DefaultTrackCap events.
func New() *Tracer { return NewWithCapacity(DefaultTrackCap) }

// NewWithCapacity creates an enabled tracer with the given per-track ring
// capacity (minimum 16).
func NewWithCapacity(trackCap int) *Tracer {
	if trackCap < 16 {
		trackCap = 16
	}
	epoch := time.Now()
	return &Tracer{
		epoch:    epoch,
		now:      func() int64 { return int64(time.Since(epoch)) },
		trackCap: trackCap,
		procs:    map[int]string{},
	}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch returns the tracer's time origin (zero for the nil tracer).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// NextFlowID returns a fresh nonzero id binding a flow arrow's two ends.
// The nil tracer returns 0, which all flow emitters treat as "no arrow".
func (t *Tracer) NextFlowID() int64 {
	if t == nil {
		return 0
	}
	return t.flowSeq.Add(1)
}

// NameProcess labels a pid ("process" in Chrome terms — this tracer uses
// pids for machines/sites, pid 0 being the local process).
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// NewTrack registers a track on pid 0. The returned handle is owned by
// exactly one goroutine at a time (single writer); the nil tracer returns
// a nil handle whose methods all no-op.
func (t *Tracer) NewTrack(name string) *Track { return t.NewTrackOn(0, name) }

// NewTrackOn registers a track on an explicit pid (a site/machine).
func (t *Tracer) NewTrackOn(pid int, name string) *Track {
	if t == nil {
		return nil
	}
	k := &Track{t: t, pid: pid, name: name, buf: make([]Event, t.trackCap)}
	t.mu.Lock()
	k.tid = len(t.tracks) + 1
	t.tracks = append(t.tracks, k)
	t.mu.Unlock()
	return k
}

// Track is one single-writer event ring. The writing goroutine appends
// through the emit methods; readers (Snapshot, WriteChrome) observe a
// prefix published by the atomic length counter, so reading while the
// writer is still active is safe, if possibly one event behind.
type Track struct {
	t    *Tracer
	pid  int
	tid  int
	name string

	buf     []Event
	n       atomic.Int64 // published length, ≤ len(buf)
	dropped atomic.Int64 // events discarded because the ring was full
}

// Name returns the track's label ("" for the nil track).
func (k *Track) Name() string {
	if k == nil {
		return ""
	}
	return k.name
}

// Enabled reports whether events emitted on this handle are recorded.
func (k *Track) Enabled() bool { return k != nil }

// emit appends one event. Single writer: a plain read of n is the
// writer's own previous store; the atomic store publishes the slot to
// later readers.
func (k *Track) emit(ev Event) {
	n := k.n.Load()
	if int(n) == len(k.buf) {
		k.dropped.Add(1)
		return
	}
	k.buf[n] = ev
	k.n.Store(n + 1)
}

// Instant records an instant event at the current time.
func (k *Track) Instant(cat, name string) {
	if k == nil {
		return
	}
	k.emit(Event{TS: k.t.now(), Ph: PhaseInstant, Cat: cat, Name: name})
}

// Instant1 records an instant event with one numeric argument.
func (k *Track) Instant1(cat, name, argKey string, argVal int64) {
	if k == nil {
		return
	}
	k.emit(Event{TS: k.t.now(), Ph: PhaseInstant, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
}

// SpanAt records a complete span from times the caller already measured
// (so instrumentation that times an operation for its own statistics pays
// no extra clock reads).
func (k *Track) SpanAt(cat, name string, start time.Time, dur time.Duration) {
	if k == nil {
		return
	}
	k.emit(Event{TS: int64(start.Sub(k.t.epoch)), Dur: int64(dur), Ph: PhaseSpan, Cat: cat, Name: name})
}

// SpanAt1 is SpanAt with one numeric argument.
func (k *Track) SpanAt1(cat, name string, start time.Time, dur time.Duration, argKey string, argVal int64) {
	if k == nil {
		return
	}
	k.emit(Event{TS: int64(start.Sub(k.t.epoch)), Dur: int64(dur), Ph: PhaseSpan, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
}

// SpanSince records a complete span from start to now.
func (k *Track) SpanSince(cat, name string, start time.Time) {
	if k == nil {
		return
	}
	k.SpanAt(cat, name, start, time.Since(start))
}

// FlowOut records the tail of a flow arrow (with a zero-length span so
// trace viewers have a slice to anchor the arrow to). id must come from
// NextFlowID; id 0 records nothing.
func (k *Track) FlowOut(cat, name string, id int64, argKey string, argVal int64) {
	if k == nil || id == 0 {
		return
	}
	ts := k.t.now()
	k.emit(Event{TS: ts, Ph: PhaseInstant, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
	k.emit(Event{TS: ts, Ph: PhaseFlowStart, Cat: cat, Name: name, ID: id})
}

// FlowIn records the head of a flow arrow.
func (k *Track) FlowIn(cat, name string, id int64, argKey string, argVal int64) {
	if k == nil || id == 0 {
		return
	}
	ts := k.t.now()
	k.emit(Event{TS: ts, Ph: PhaseInstant, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
	k.emit(Event{TS: ts, Ph: PhaseFlowEnd, Cat: cat, Name: name, ID: id})
}

// Len returns the number of events currently published on the track.
func (k *Track) Len() int {
	if k == nil {
		return 0
	}
	return int(k.n.Load())
}

// Dropped returns how many events the full ring discarded.
func (k *Track) Dropped() int64 {
	if k == nil {
		return 0
	}
	return k.dropped.Load()
}

// TrackSnapshot is one track's published events plus identity.
type TrackSnapshot struct {
	PID     int
	TID     int
	Name    string
	Events  []Event // in emission order; instants have monotonic TS, spans carry their start time
	Dropped int64
}

// Snapshot returns every track's published events, tracks ordered by
// (pid, tid). Intended for after the traced region has quiesced; while
// writers are active it returns a consistent prefix per track.
func (t *Tracer) Snapshot() []TrackSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	out := make([]TrackSnapshot, 0, len(tracks))
	for _, k := range tracks {
		n := int(k.n.Load())
		out = append(out, TrackSnapshot{
			PID:     k.pid,
			TID:     k.tid,
			Name:    k.name,
			Events:  append([]Event(nil), k.buf[:n]...),
			Dropped: k.dropped.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// TotalDropped sums the dropped counters across tracks.
func (t *Tracer) TotalDropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, k := range t.tracks {
		n += k.dropped.Load()
	}
	return n
}
