package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedClockTracer returns a tracer whose clock advances 1µs per reading
// from a fixed epoch, so output is byte-for-byte reproducible.
func fixedClockTracer() *Tracer {
	tr := NewWithCapacity(64)
	tr.epoch = time.Unix(0, 0)
	var fake int64
	tr.now = func() int64 { fake += 1000; return fake }
	return tr
}

// TestWriteChromeGolden pins the exact Chrome-trace JSON shape: key order,
// metadata records, microsecond formatting, flow binding, merged ordering.
func TestWriteChromeGolden(t *testing.T) {
	tr := fixedClockTracer()
	tr.NameProcess(0, "local")
	tr.NameProcess(1, "site:remote")

	prod := tr.NewTrack("x1.producer0")
	cons := tr.NewTrack("x1.consumer0")
	remote := tr.NewTrackOn(1, "netx1.producer0")

	prod.Instant("exchange", "producer-start")
	id := tr.NextFlowID()
	prod.FlowOut("packet", "push", id, "records", 83)
	cons.FlowIn("packet", "pop", id, "records", 83)
	epoch := tr.Epoch()
	prod.SpanAt1("exchange", "produce", epoch.Add(500*time.Nanosecond), 2500*time.Nanosecond, "records", 100)
	cons.SpanAt("flow", "consumer-wait", epoch.Add(1200*time.Nanosecond), 300*time.Nanosecond)
	remote.Instant1("wire", "wire-send", "bytes", 4096)
	cons.Instant("exchange", "eos")

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	// Whatever the golden says, the output must at minimum be valid JSON
	// with the expected wrapper.
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected wrapper: %+v", doc)
	}

	golden := filepath.Join("testdata", "chrome.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome JSON drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteChromeNil pins the disabled tracer's empty skeleton.
func TestWriteChromeNil(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ns","traceEvents":[]}` + "\n"
	if buf.String() != want {
		t.Errorf("nil trace = %q, want %q", buf.String(), want)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v", err)
	}
}
