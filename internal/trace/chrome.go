package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChrome exports the merged, time-ordered event log in the Chrome
// trace-event JSON format (the "JSON Array Format" with an object
// wrapper), loadable in chrome://tracing and Perfetto. Tracks become
// threads (one per emitting goroutine), pids distinguish sites/machines,
// and flow events draw arrows from packet pushes to pops across tracks.
//
// The encoder is hand-rolled so key order and number formatting are
// deterministic: a trace of the same logical run (under a fixed test
// clock) is byte-identical, which the golden test pins.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`+"\n")
		return err
	}
	snaps := t.Snapshot()
	t.mu.Lock()
	procs := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		procs[pid] = name
	}
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}

	// Metadata: process names (sorted pids), then thread names per track.
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid, quote(procs[pid])))
	}
	for _, s := range snaps {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			s.PID, s.TID, quote(s.Name)))
	}

	// Merge all tracks into one time-ordered log. Ties break by (pid,
	// tid, emission order) so the output is deterministic.
	type ref struct {
		track int // index into snaps
		ev    int // index into snaps[track].Events
	}
	var refs []ref
	for ti := range snaps {
		for ei := range snaps[ti].Events {
			refs = append(refs, ref{ti, ei})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		ea, eb := snaps[a.track].Events[a.ev], snaps[b.track].Events[b.ev]
		if ea.TS != eb.TS {
			return ea.TS < eb.TS
		}
		if snaps[a.track].PID != snaps[b.track].PID {
			return snaps[a.track].PID < snaps[b.track].PID
		}
		if snaps[a.track].TID != snaps[b.track].TID {
			return snaps[a.track].TID < snaps[b.track].TID
		}
		return a.ev < b.ev
	})

	for _, r := range refs {
		s := &snaps[r.track]
		emit(chromeEvent(s.PID, s.TID, s.Events[r.ev]))
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeEvent renders one event as a Chrome trace-event object.
func chromeEvent(pid, tid int, e Event) string {
	b := make([]byte, 0, 160)
	b = append(b, `{"ph":"`...)
	b = append(b, byte(e.Ph))
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, e.TS)
	if e.Ph == PhaseSpan {
		b = append(b, `,"dur":`...)
		b = appendMicros(b, e.Dur)
	}
	b = append(b, `,"cat":`...)
	b = append(b, quote(e.Cat)...)
	b = append(b, `,"name":`...)
	b = append(b, quote(e.Name)...)
	switch e.Ph {
	case PhaseFlowStart:
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, e.ID, 10)
	case PhaseFlowEnd:
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, e.ID, 10)
		b = append(b, `,"bp":"e"`...)
	case PhaseInstant:
		b = append(b, `,"s":"t"`...)
	}
	if e.ArgKey != "" {
		b = append(b, `,"args":{`...)
		b = append(b, quote(e.ArgKey)...)
		b = append(b, ':')
		b = strconv.AppendInt(b, e.ArgVal, 10)
		b = append(b, '}')
	}
	b = append(b, '}')
	return string(b)
}

// appendMicros renders nanoseconds as microseconds with three decimals
// (Chrome's ts/dur unit is microseconds; the fraction keeps nanosecond
// resolution).
func appendMicros(b []byte, ns int64) []byte {
	neg := ns < 0
	if neg {
		ns = -ns
		b = append(b, '-')
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}

// quote JSON-escapes a string (names and categories are static ASCII in
// practice, but the exporter must never emit invalid JSON).
func quote(s string) string { return strconv.Quote(s) }
