package server

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/plan"
)

// planCache is an LRU of compiled plan templates. The key is the catalog
// version plus the normalized plan text (see cacheKey), so textual
// variants of one query — comments, stage line breaks, surrounding
// whitespace — share an entry, while a catalog swap invalidates
// everything at once. Values are *plan.Template, which are immutable, so
// a hit may be handed to a request while another request holds the same
// template mid-execution.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	m *serverMetrics
}

// cacheEntry pairs an immutable compiled template with the mutable
// planning state the feedback loop accumulates across repeats of the
// same normalized plan: the current costed derivation, the observed
// per-node cardinalities of the latest completed run, and the re-plan
// count. The entry-level mutex covers only that state — the LRU's own
// lock is never held while costing.
type cacheEntry struct {
	key string
	tpl *plan.Template

	mu       sync.Mutex
	costed   *plan.CostedPlan
	observed map[*plan.Node]int64 // keyed by tpl's nodes
	replans  int64
}

// costedFor returns the entry's current costed plan, deriving it on
// first use (and after feedback discards a mis-estimated one). Costing
// inside the entry lock means concurrent repeats share one derivation —
// important for the feedback loop, which only accepts observations
// against the costed plan that is still current.
func (e *cacheEntry) costedFor(cat plan.Catalog, m *serverMetrics) *plan.CostedPlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.costed == nil {
		e.costed = e.tpl.Cost(cat, e.observed)
		m.plannerCosted.Inc()
	}
	return e.costed
}

// feedback folds one completed run's observed cardinalities back into
// the entry and, on a gross mis-estimate, discards the costed plan so
// the next repeat re-costs with the observations. Observations are only
// accepted against the entry's *current* costed plan: once one run has
// triggered the re-plan, concurrent stragglers that executed the same
// stale derivation are ignored, so a burst of identical mis-estimated
// queries re-plans exactly once. Returns whether a re-plan was
// scheduled.
func (e *cacheEntry) feedback(cp *plan.CostedPlan, an *plan.Analysis, m *serverMetrics) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.costed != cp {
		return false
	}
	obs := cp.Observed(an)
	if len(obs) == 0 {
		return false
	}
	if e.observed == nil {
		e.observed = make(map[*plan.Node]int64, len(obs))
	}
	for n, o := range obs {
		e.observed[n] = o
	}
	m.plannerFeedback.Inc()
	if _, _, _, mis := cp.MisEstimated(an, plan.MisEstimateFactor); mis {
		e.costed = nil
		e.replans++
		m.plannerReplans.Inc()
		return true
	}
	return false
}

// replanCount reads the entry's re-plan total (tests, /debug views).
func (e *cacheEntry) replanCount() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replans
}

// cacheKey builds the lookup key for a plan source under a catalog
// version. The NUL separator cannot occur in a version string that is
// sane and cannot survive Normalize, so keys are unambiguous.
func cacheKey(catalogVersion, src string) string {
	return catalogVersion + "\x00" + plan.Normalize(src)
}

// newPlanCache returns a cache holding up to capacity templates; a
// capacity <= 0 disables caching (every lookup misses, nothing stored).
func newPlanCache(capacity int, m *serverMetrics) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		m:     m,
	}
}

// get returns the cached entry for key, refreshing its recency.
func (c *planCache) get(key string) (*cacheEntry, bool) {
	if c.cap <= 0 {
		c.m.cacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.m.cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.m.cacheHits.Inc()
	return el.Value.(*cacheEntry), true
}

// put stores a freshly compiled template and returns its entry,
// evicting the least recently used entry when full. Two requests that
// miss on the same key both compile and both put; the loser adopts the
// winner's entry instead of overwriting it — the entry carries
// accumulated planning feedback keyed by its own template's nodes,
// which an equivalent-but-distinct template would orphan. With the
// cache disabled, put hands back an untracked entry so the request
// still costs and executes normally (the feedback just dies with it).
func (c *planCache) put(key string, tpl *plan.Template) *cacheEntry {
	if c.cap <= 0 {
		return &cacheEntry{key: key, tpl: tpl}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{key: key, tpl: tpl}
	c.byKey[key] = c.ll.PushFront(e)
	if c.ll.Len() > c.cap {
		old := c.ll.Remove(c.ll.Back()).(*cacheEntry)
		delete(c.byKey, old.key)
		c.m.cacheEvictions.Inc()
	}
	return e
}

// purgeExcept removes every entry that does not belong to the given
// catalog version and reports how many were dropped. Stale entries can
// never hit again — their keys embed the old version — so leaving them
// to age out of the LRU would waste up to the whole capacity on dead
// templates after a catalog swap; a version bump reclaims them at once.
// O(len) over at most cap entries, and version bumps are rare.
func (c *planCache) purgeExcept(version string) int {
	if c.cap <= 0 {
		return 0
	}
	prefix := version + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if !strings.HasPrefix(e.key, prefix) {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
			purged++
		}
	}
	if purged > 0 {
		c.m.cacheInvalid.Add(int64(purged))
	}
	return purged
}

// len reports the number of cached templates (tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
