package server

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/plan"
)

// planCache is an LRU of compiled plan templates. The key is the catalog
// version plus the normalized plan text (see cacheKey), so textual
// variants of one query — comments, stage line breaks, surrounding
// whitespace — share an entry, while a catalog swap invalidates
// everything at once. Values are *plan.Template, which are immutable, so
// a hit may be handed to a request while another request holds the same
// template mid-execution.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	m *serverMetrics
}

type cacheEntry struct {
	key string
	tpl *plan.Template
}

// cacheKey builds the lookup key for a plan source under a catalog
// version. The NUL separator cannot occur in a version string that is
// sane and cannot survive Normalize, so keys are unambiguous.
func cacheKey(catalogVersion, src string) string {
	return catalogVersion + "\x00" + plan.Normalize(src)
}

// newPlanCache returns a cache holding up to capacity templates; a
// capacity <= 0 disables caching (every lookup misses, nothing stored).
func newPlanCache(capacity int, m *serverMetrics) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		m:     m,
	}
}

// get returns the cached template for key, refreshing its recency.
func (c *planCache) get(key string) (*plan.Template, bool) {
	if c.cap <= 0 {
		c.m.cacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.m.cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.m.cacheHits.Inc()
	return el.Value.(*cacheEntry).tpl, true
}

// put stores a freshly compiled template, evicting the least recently
// used entry when full. Two requests that miss on the same key both
// compile and both put; the second overwrites the first with an
// equivalent template, which is harmless.
func (c *planCache) put(key string, tpl *plan.Template) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).tpl = tpl
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, tpl: tpl})
	if c.ll.Len() > c.cap {
		old := c.ll.Remove(c.ll.Back()).(*cacheEntry)
		delete(c.byKey, old.key)
		c.m.cacheEvictions.Inc()
	}
}

// purgeExcept removes every entry that does not belong to the given
// catalog version and reports how many were dropped. Stale entries can
// never hit again — their keys embed the old version — so leaving them
// to age out of the LRU would waste up to the whole capacity on dead
// templates after a catalog swap; a version bump reclaims them at once.
// O(len) over at most cap entries, and version bumps are rare.
func (c *planCache) purgeExcept(version string) int {
	if c.cap <= 0 {
		return 0
	}
	prefix := version + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if !strings.HasPrefix(e.key, prefix) {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
			purged++
		}
	}
	if purged > 0 {
		c.m.cacheInvalid.Add(int64(purged))
	}
	return purged
}

// len reports the number of cached templates (tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
