package server

import (
	"encoding/base64"
	"encoding/json"
	"math"
	"strconv"

	"repro/internal/record"
)

// rowWriter renders result rows as NDJSON objects keyed by the schema's
// field names. The keys are JSON-marshaled once per query, and each row
// is appended into one reused buffer, so the per-row cost is the value
// rendering alone.
type rowWriter struct {
	keys [][]byte // `"name":` fragments, one per field
	buf  []byte
}

func newRowWriter(s *record.Schema) *rowWriter {
	w := &rowWriter{keys: make([][]byte, s.NumFields())}
	for i := range w.keys {
		name, _ := json.Marshal(s.Field(i).Name)
		w.keys[i] = append(name, ':')
	}
	return w
}

// row renders one decoded row as a single JSON line (newline included).
// The returned slice is valid until the next call.
func (w *rowWriter) row(vals []record.Value) []byte {
	b := w.buf[:0]
	b = append(b, '{')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, w.keys[i]...)
		b = appendValue(b, v)
	}
	b = append(b, '}', '\n')
	w.buf = b
	return b
}

// appendValue renders a record value as JSON. Floats that JSON cannot
// represent (NaN, ±Inf) become null rather than poisoning the stream;
// bytes are base64, matching encoding/json's []byte convention.
func appendValue(b []byte, v record.Value) []byte {
	switch v.Kind {
	case record.TInt:
		return strconv.AppendInt(b, v.I, 10)
	case record.TFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return append(b, "null"...)
		}
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case record.TBool:
		return strconv.AppendBool(b, v.B)
	case record.TString:
		s, _ := json.Marshal(string(v.S))
		return append(b, s...)
	case record.TBytes:
		n := base64.StdEncoding.EncodedLen(len(v.S))
		b = append(b, '"')
		off := len(b)
		b = append(b, make([]byte, n)...)
		base64.StdEncoding.Encode(b[off:], v.S)
		return append(b, '"')
	default:
		return append(b, "null"...)
	}
}

// trailer is the status object terminating every NDJSON response body.
// Its presence distinguishes a complete result from a truncated one, and
// carries errors that surface only after the 200 header is on the wire.
type trailer struct {
	Status string `json:"status"` // "ok", "error", or "canceled"
	Rows   int64  `json:"rows"`
	Error  string `json:"error,omitempty"`
}

func (t trailer) render() []byte {
	b, _ := json.Marshal(t)
	return append(b, '\n')
}
