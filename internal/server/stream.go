package server

import (
	"encoding/base64"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/record"
)

// rowWriter renders result rows as NDJSON objects keyed by the schema's
// field names. The keys are JSON-marshaled once per query, and each row
// is appended into one reused buffer, so the per-row cost is the value
// rendering alone.
type rowWriter struct {
	keys [][]byte // `"name":` fragments, one per field
	buf  []byte
}

func newRowWriter(s *record.Schema) *rowWriter {
	w := &rowWriter{keys: make([][]byte, s.NumFields())}
	for i := range w.keys {
		name, _ := json.Marshal(s.Field(i).Name)
		w.keys[i] = append(name, ':')
	}
	return w
}

// row renders one decoded row as a single JSON line (newline included).
// The returned slice is valid until the next call.
func (w *rowWriter) row(vals []record.Value) []byte {
	b := w.buf[:0]
	b = append(b, '{')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, w.keys[i]...)
		b = appendValue(b, v)
	}
	b = append(b, '}', '\n')
	w.buf = b
	return b
}

// appendValue renders a record value as JSON. Floats that JSON cannot
// represent (NaN, ±Inf) become null rather than poisoning the stream;
// bytes are base64, matching encoding/json's []byte convention.
func appendValue(b []byte, v record.Value) []byte {
	switch v.Kind {
	case record.TInt:
		return strconv.AppendInt(b, v.I, 10)
	case record.TFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return append(b, "null"...)
		}
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case record.TBool:
		return strconv.AppendBool(b, v.B)
	case record.TString:
		s, _ := json.Marshal(string(v.S))
		return append(b, s...)
	case record.TBytes:
		n := base64.StdEncoding.EncodedLen(len(v.S))
		b = append(b, '"')
		off := len(b)
		b = append(b, make([]byte, n)...)
		base64.StdEncoding.Encode(b[off:], v.S)
		return append(b, '"')
	default:
		return append(b, "null"...)
	}
}

// phaseMillis is the lifecycle phase breakdown attached to trailers,
// debug views and slow-query log entries: wall milliseconds spent in
// each phase of one query's life.
type phaseMillis struct {
	PlanMs    float64 `json:"plan_ms"`
	QueuedMs  float64 `json:"queued_ms"`
	ExecuteMs float64 `json:"execute_ms"`
	StreamMs  float64 `json:"stream_ms"`
}

// trailer is the status object terminating every NDJSON response body —
// and, with the same schema, the whole body of pre-stream rejections
// (400/429/503), so clients parse exactly one object shape on every
// path. Its presence distinguishes a complete result from a truncated
// one, and it carries the query's identity and timing: QueryID matches
// the X-Volcano-Query-Id response header, ElapsedMs covers plan-to-
// trailer, and Phases breaks that down by lifecycle phase.
type trailer struct {
	Status    string       `json:"status"` // "ok", "error", or "canceled"
	Rows      int64        `json:"rows"`
	QueryID   string       `json:"query_id,omitempty"`
	ElapsedMs float64      `json:"elapsed_ms,omitempty"`
	Phases    *phaseMillis `json:"phases,omitempty"`
	// Resources is the query's attributed resource bill: the same
	// snapshot the slow-query log and /debug/queries serve. Rejections
	// (which never built an iterator tree) omit it.
	Resources *core.ResourceSnapshot `json:"resources,omitempty"`
	// Dist is the distributed-execution block: present only when at
	// least one fragment of this query shipped to a remote worker.
	Dist *distStatus `json:"dist,omitempty"`
	// Analyze carries the EXPLAIN ANALYZE report of this run when the
	// request asked for it with X-Volcano-Analyze: 1.
	Analyze string `json:"analyze,omitempty"`
	Error   string `json:"error,omitempty"`
}

// distStatus summarises a query's remote fragments in the trailer: one
// entry per (cut, producer) with the worker it ran on, dispatch attempts
// (>1 means worker loss survived via retry), records delivered and wire
// bytes received, plus query totals.
type distStatus struct {
	Fragments     []plan.FragmentStat `json:"fragments"`
	Retries       int64               `json:"retries"`
	WireRecvBytes int64               `json:"wire_recv_bytes"`
}

func (t trailer) render() []byte {
	b, _ := json.Marshal(t)
	return append(b, '\n')
}

// writeReject writes a pre-stream rejection: an HTTP error status whose
// body is one trailer-shaped JSON object. Rejections before the stream
// starts and failures after it share one schema, so a client parses the
// last line of any /query response body the same way.
func writeReject(w http.ResponseWriter, status int, id, msg string, elapsed time.Duration, ph *phaseMillis) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_, _ = w.Write(trailer{
		Status:    "error",
		QueryID:   id,
		ElapsedMs: float64(elapsed) / 1e6,
		Phases:    ph,
		Error:     msg,
	}.render())
}
