package server

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// serverMetrics are the volcano_server_* instrument handles. Every handle
// is nil-safe (the nil-registry convention of internal/metrics), so a
// server without a registry pays one branch per update and nothing else.
type serverMetrics struct {
	admitted *metrics.Counter // queries that got an execution slot
	queued   *metrics.Counter // queries that had to wait in the admission queue
	canceled *metrics.Counter // queries abandoned mid-stream (disconnect/deadline)

	// rejections by reason; pre-created so the handler never touches the
	// registry lock on the rejection path.
	rejSaturated   *metrics.Counter
	rejDraining    *metrics.Counter
	rejTimeout     *metrics.Counter
	rejParse       *metrics.Counter
	rejPlan        *metrics.Counter
	rejTooParallel *metrics.Counter
	rejDuplicate   *metrics.Counter // query ID collided with an active query

	inFlight  *metrics.Gauge     // queries currently executing
	queueWait *metrics.Histogram // time spent in the admission queue
	querySecs *metrics.Histogram // admission-to-trailer latency of admitted queries
	rowsOut   *metrics.Counter   // result rows streamed to clients

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	cacheInvalid   *metrics.Counter // entries purged by a catalog-version bump

	// Lifecycle observability families.
	queriesActive *metrics.Gauge     // queries in the active registry (queued + executing + streaming)
	slowQueries   *metrics.Counter   // queries recorded in the slow-query log
	phasePlan     *metrics.Histogram // volcano_server_query_phase_seconds{phase}
	phaseQueued   *metrics.Histogram
	phaseExecute  *metrics.Histogram
	phaseStream   *metrics.Histogram

	// rows by completed-query outcome; pre-created like the rejections.
	rowsOK       *metrics.Counter
	rowsError    *metrics.Counter
	rowsCanceled *metrics.Counter

	// Cost-based planner families.
	plannerCosted   *metrics.Counter // templates run through the costing pass
	plannerReplans  *metrics.Counter // cache entries re-costed after a gross mis-estimate
	plannerFeedback *metrics.Counter // completed runs whose observed cardinalities were folded back
	plannerHash     *metrics.Counter // choose-plan decisions, by alternative
	plannerMerge    *metrics.Counter

	// Accumulated per-query resource bills, settled once per query in
	// finishQuery and exposed as counter funcs (CPU needs fractional
	// seconds, which an integer Counter cannot carry). Plain atomics so
	// a server without a registry still pays only three adds per query.
	queryCPUNanos atomic.Int64
	queryIOBytes  atomic.Int64
	queryBufFixes atomic.Int64
}

// rowsCounter maps a query outcome to its volcano_server_query_rows_total
// child; unknown outcomes fall back to the nil (no-op) counter.
func (m *serverMetrics) rowsCounter(outcome string) *metrics.Counter {
	switch outcome {
	case "ok":
		return m.rowsOK
	case "error":
		return m.rowsError
	case "canceled":
		return m.rowsCanceled
	}
	return nil
}

// choiceCounter maps a choose-plan alternative label to its counter;
// labels outside the planner's vocabulary fall back to the nil (no-op)
// counter.
func (m *serverMetrics) choiceCounter(alt string) *metrics.Counter {
	switch alt {
	case "hash":
		return m.plannerHash
	case "merge":
		return m.plannerMerge
	}
	return nil
}

// rejectionCounter maps an AdmitError reason to its counter. Unknown
// reasons fall back to a nil (no-op) counter rather than panicking.
func (m *serverMetrics) rejectionCounter(reason string) *metrics.Counter {
	switch reason {
	case "saturated":
		return m.rejSaturated
	case "draining":
		return m.rejDraining
	case "queue_timeout":
		return m.rejTimeout
	case "parse":
		return m.rejParse
	case "plan":
		return m.rejPlan
	case "too_parallel":
		return m.rejTooParallel
	case "duplicate_id":
		return m.rejDuplicate
	}
	return nil
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	m := &serverMetrics{}
	if !r.Enabled() {
		return m
	}
	m.admitted = r.Counter("volcano_server_admitted_total",
		"Queries admitted for execution.")
	m.queued = r.Counter("volcano_server_queued_total",
		"Queries that waited in the admission queue before a decision.")
	m.canceled = r.Counter("volcano_server_canceled_total",
		"Admitted queries abandoned before completion (client disconnect or deadline).")
	reject := func(reason string) *metrics.Counter {
		return r.Counter("volcano_server_rejected_total",
			"Queries rejected without execution, by reason.",
			metrics.Label{Key: "reason", Value: reason})
	}
	m.rejSaturated = reject("saturated")
	m.rejDraining = reject("draining")
	m.rejTimeout = reject("queue_timeout")
	m.rejParse = reject("parse")
	m.rejPlan = reject("plan")
	m.rejTooParallel = reject("too_parallel")
	m.rejDuplicate = reject("duplicate_id")
	m.inFlight = r.Gauge("volcano_server_in_flight",
		"Queries currently executing.")
	m.queueWait = r.Histogram("volcano_server_queue_wait_seconds",
		"Time queries spent in the admission queue.", nil)
	m.querySecs = r.Histogram("volcano_server_query_seconds",
		"Latency of admitted queries, admission to trailer.", nil)
	m.rowsOut = r.Counter("volcano_server_rows_total",
		"Result rows streamed to clients.")
	m.cacheHits = r.Counter("volcano_server_plan_cache_hits_total",
		"Plan-cache lookups that reused a compiled template.")
	m.cacheMisses = r.Counter("volcano_server_plan_cache_misses_total",
		"Plan-cache lookups that had to compile.")
	m.cacheEvictions = r.Counter("volcano_server_plan_cache_evictions_total",
		"Templates evicted from the plan cache.")
	m.cacheInvalid = r.Counter("volcano_server_plan_cache_invalidations_total",
		"Templates purged from the plan cache by a catalog-version bump.")
	m.queriesActive = r.Gauge("volcano_server_queries_active",
		"Queries in the active registry: queued, executing, or streaming.")
	m.slowQueries = r.Counter("volcano_server_slow_queries_total",
		"Queries recorded in the slow-query log (over threshold, errored, or canceled).")
	phase := func(name string) *metrics.Histogram {
		return r.Histogram("volcano_server_query_phase_seconds",
			"Wall time queries spent in each lifecycle phase.", nil,
			metrics.Label{Key: "phase", Value: name})
	}
	m.phasePlan = phase(phasePlan)
	m.phaseQueued = phase(phaseQueued)
	m.phaseExecute = phase(phaseExecute)
	m.phaseStream = phase(phaseStream)
	rows := func(outcome string) *metrics.Counter {
		return r.Counter("volcano_server_query_rows_total",
			"Result rows streamed, by completed-query outcome.",
			metrics.Label{Key: "outcome", Value: outcome})
	}
	m.rowsOK = rows("ok")
	m.rowsError = rows("error")
	m.rowsCanceled = rows("canceled")
	m.plannerCosted = r.Counter("volcano_planner_costed_total",
		"Plan templates run through the cost-based planning pass.")
	m.plannerReplans = r.Counter("volcano_planner_replans_total",
		"Plan-cache entries re-costed after observed cardinalities contradicted the estimates.")
	m.plannerFeedback = r.Counter("volcano_planner_feedback_total",
		"Completed runs whose observed cardinalities were folded back into the plan cache.")
	choice := func(alt string) *metrics.Counter {
		return r.Counter("volcano_planner_choices_total",
			"Choose-plan decisions taken at Open, by chosen alternative.",
			metrics.Label{Key: "alt", Value: alt})
	}
	m.plannerHash = choice("hash")
	m.plannerMerge = choice("merge")
	r.SetCounterFunc("volcano_server_query_cpu_seconds_total",
		"CPU time attributed to completed queries (derived from operator timings).",
		func() float64 { return float64(m.queryCPUNanos.Load()) / 1e9 })
	r.SetCounterFunc("volcano_server_query_io_bytes_total",
		"Device bytes read and written on behalf of completed queries.",
		func() float64 { return float64(m.queryIOBytes.Load()) })
	r.SetCounterFunc("volcano_server_query_buffer_fixes_total",
		"Buffer-pool fix calls attributed to completed queries.",
		func() float64 { return float64(m.queryBufFixes.Load()) })
	return m
}
