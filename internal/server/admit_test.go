package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/plan"
)

func noMetrics() *serverMetrics { return newServerMetrics(nil) }

// TestGovernorFIFOAndWeights exercises the token accounting: slots bound
// concurrent queries, producer tokens bound total parallelism, and the
// queue is strictly FIFO — a light query does not overtake a heavy one.
func TestGovernorFIFOAndWeights(t *testing.T) {
	g := newGovernor(2, 8, 4, noMetrics())
	ctx := context.Background()

	if err := g.admit(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if err := g.admit(ctx, 2); err != nil {
		t.Fatal(err)
	}

	// Queue: heavy (needs 6 tokens) first, then light (needs 0).
	order := make(chan int, 2)
	enqueue := func(id, weight int) {
		go func() {
			if err := g.admit(ctx, weight); err != nil {
				t.Errorf("queued admit %d: %v", id, err)
			}
			order <- id
		}()
	}
	enqueue(1, 6)
	waitFor(t, 5*time.Second, "first waiter queued", func() bool { return g.queueLen() == 1 })
	enqueue(2, 0)
	waitFor(t, 5*time.Second, "second waiter queued", func() bool { return g.queueLen() == 2 })

	// Freeing the light query (2 tokens) leaves only 2 free: the heavy
	// head still doesn't fit, and FIFO must hold the light one behind it.
	g.release(2)
	select {
	case id := <-order:
		t.Fatalf("waiter %d admitted past the blocked queue head", id)
	case <-time.After(50 * time.Millisecond):
	}
	// Freeing the 6-token query unblocks the head, and the light waiter
	// behind it. (Both grants land together; the goroutines report in
	// scheduler order, so assert the set, not the sequence — FIFO itself
	// was proven by the overtake check above.)
	g.release(6)
	got := map[int]bool{<-order: true, <-order: true}
	if !got[1] || !got[2] {
		t.Fatalf("admitted waiters = %v, want {1,2}", got)
	}
}

// TestGovernorRejections pins the failure modes: queue overflow, drain,
// queue-wait expiry, and plans too parallel for the budget.
func TestGovernorRejections(t *testing.T) {
	g := newGovernor(1, 4, 1, noMetrics())
	ctx := context.Background()

	var ae *AdmitError
	if err := g.admit(ctx, 5); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("over-budget admit: %v, want 400 AdmitError", err)
	}

	if err := g.admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue...
	done := make(chan error, 1)
	go func() { done <- g.admit(ctx, 1) }()
	waitFor(t, 5*time.Second, "waiter queued", func() bool { return g.queueLen() == 1 })
	// ...the next overflows.
	if err := g.admit(ctx, 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow admit: %v, want ErrSaturated", err)
	}
	// A deadline expiring in the queue maps to ErrQueueTimeout.
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	g2 := newGovernor(0, 4, 4, noMetrics()) // zero slots: everything queues
	if err := g2.admit(short, 1); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expired admit: %v, want ErrQueueTimeout", err)
	}
	// Drain rejects the queued waiter and everything after it.
	g.drain()
	if err := <-done; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter under drain: %v, want ErrDraining", err)
	}
	if err := g.admit(ctx, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit after drain: %v, want ErrDraining", err)
	}
}

// TestGovernorCancelGrantRace hammers the race between a grant and the
// waiter's context expiring: whichever side wins, tokens must balance —
// after everything settles the full capacity is admittable again.
func TestGovernorCancelGrantRace(t *testing.T) {
	g := newGovernor(1, 4, 64, noMetrics())
	for i := 0; i < 200; i++ {
		if err := g.admit(context.Background(), 1); err != nil {
			t.Fatalf("iter %d: baseline admit: %v", i, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- g.admit(ctx, 1) }()
		waitFor(t, 5*time.Second, "waiter queued", func() bool { return g.queueLen() == 1 })
		// Release and cancel concurrently: the waiter either got the slot
		// (and must give it back on cancel) or was removed from the queue.
		go g.release(1)
		cancel()
		err := <-done
		if err == nil {
			g.release(1)
		} else if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrQueueTimeout) {
			t.Fatalf("iter %d: %v", i, err)
		}
		// Either way the slot must be free again.
		if err := g.admit(context.Background(), 1); err != nil {
			t.Fatalf("iter %d: capacity leaked: %v", i, err)
		}
		g.release(1)
	}
}

// TestPlanCacheLRU pins eviction order and the disabled mode.
func TestPlanCacheLRU(t *testing.T) {
	m := noMetrics()
	c := newPlanCache(2, m)
	tpl := func(src string) *plan.Template {
		tp, err := plan.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	k := func(i int) string { return cacheKey("v1", fmt.Sprintf("scan t%d", i)) }

	c.put(k(1), tpl("scan t1"))
	c.put(k(2), tpl("scan t2"))
	if _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), tpl("scan t3")) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Error("entry 2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("entry 1 evicted out of LRU order")
	}
	if c.len() != 2 {
		t.Errorf("cache len = %d, want 2", c.len())
	}

	off := newPlanCache(-1, noMetrics())
	off.put("k", tpl("scan t"))
	if _, ok := off.get("k"); ok {
		t.Error("disabled cache returned a hit")
	}
}

// TestPlanCachePurgeExcept pins the version-bump purge: every entry of
// another catalog version is dropped at once, entries of the surviving
// version keep their recency, and a second purge is a no-op.
func TestPlanCachePurgeExcept(t *testing.T) {
	c := newPlanCache(8, noMetrics())
	tpl := func(src string) *plan.Template {
		tp, err := plan.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	for i := 0; i < 3; i++ {
		c.put(cacheKey("v1", fmt.Sprintf("scan t%d", i)), tpl(fmt.Sprintf("scan t%d", i)))
	}
	c.put(cacheKey("v2", "scan t0"), tpl("scan t0"))

	if purged := c.purgeExcept("v2"); purged != 3 {
		t.Fatalf("purged %d entries, want 3", purged)
	}
	if c.len() != 1 {
		t.Fatalf("cache len = %d after purge, want 1", c.len())
	}
	if _, ok := c.get(cacheKey("v2", "scan t0")); !ok {
		t.Fatal("surviving-version entry was purged")
	}
	if _, ok := c.get(cacheKey("v1", "scan t0")); ok {
		t.Fatal("stale-version entry survived the purge")
	}
	if purged := c.purgeExcept("v2"); purged != 0 {
		t.Fatalf("second purge removed %d entries, want 0", purged)
	}

	// Disabled cache: purge is a no-op, not a panic.
	if purged := newPlanCache(-1, noMetrics()).purgeExcept("v2"); purged != 0 {
		t.Fatalf("disabled cache purged %d", purged)
	}
}
