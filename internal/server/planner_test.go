package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// postQueryAnalyze is postQuery with X-Volcano-Analyze: the trailer
// carries the run's EXPLAIN ANALYZE report.
func postQueryAnalyze(ts *httptest.Server, script string) (queryResult, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(script))
	if err != nil {
		return queryResult{}, err
	}
	req.Header.Set("X-Volcano-Analyze", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return queryResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return queryResult{}, err
	}
	res := queryResult{status: resp.StatusCode, body: string(body)}
	if resp.StatusCode != http.StatusOK {
		return res, nil
	}
	lines := strings.Split(strings.TrimSpace(res.body), "\n")
	last := lines[len(lines)-1]
	res.rows = len(lines) - 1
	if err := json.Unmarshal([]byte(last), &res.trailer); err != nil || res.trailer.Status == "" {
		return res, fmt.Errorf("missing trailer, last line %q", last)
	}
	return res, nil
}

// scrapeCounter reads one counter family's total from /metrics, running
// the whole exposition through the strict parser first — a malformed
// document fails the test rather than silently greping past it.
func scrapeCounter(t *testing.T, ts *httptest.Server, family string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ParseText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition failed strict parse: %v", err)
	}
	var total float64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		// Exact family match: next char is a label block or the value.
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestPlannerAdaptiveParallelism is the headline acceptance check: a
// knobless parallel query gets its exchange fan-out from the planner
// (the pscan's partition count), and EXPLAIN ANALYZE shows estimated
// next to observed cardinality on every operator.
func TestPlannerAdaptiveParallelism(t *testing.T) {
	_, _, ts, _ := newTestServer(t, nil)
	res, err := postQueryAnalyze(ts, "pscan emp 4 | exchange")
	if err != nil {
		t.Fatal(err)
	}
	if res.status != http.StatusOK || res.trailer.Status != "ok" {
		t.Fatalf("status %d / %q: %s", res.status, res.trailer.Status, res.body)
	}
	if res.rows != empRows {
		t.Fatalf("rows = %d, want %d", res.rows, empRows)
	}
	if !strings.Contains(res.trailer.Analyze, "producers=4") {
		t.Fatalf("planner did not pick producers=4:\n%s", res.trailer.Analyze)
	}
	if !strings.Contains(res.trailer.Analyze, fmt.Sprintf("est=%d", empRows)) {
		t.Fatalf("analyze report lacks the estimated cardinality:\n%s", res.trailer.Analyze)
	}
}

// TestPlannerDisabled pins the off switch: with DisableCosting the plan
// text runs verbatim — no chosen fan-out, no estimates.
func TestPlannerDisabled(t *testing.T) {
	_, _, ts, _ := newTestServer(t, func(c *Config) { c.DisableCosting = true })
	res, err := postQueryAnalyze(ts, "pscan emp 4 | exchange")
	if err != nil {
		t.Fatal(err)
	}
	if res.trailer.Status != "ok" {
		t.Fatalf("status %q: %s", res.trailer.Status, res.body)
	}
	if !strings.Contains(res.trailer.Analyze, "producers=1") {
		t.Fatalf("uncosted plan should keep the default single producer:\n%s", res.trailer.Analyze)
	}
	if strings.Contains(res.trailer.Analyze, "est=") {
		t.Fatalf("uncosted run should carry no estimates:\n%s", res.trailer.Analyze)
	}
}

// replanProbe is a plan whose estimate must be grossly wrong on first
// contact: the model prices `id < 1` as one third of emp's 300 rows,
// the run observes 1.
const replanProbe = "scan emp | filter id < 1"

// TestPlannerReplanExactlyOnce drives the feedback loop end to end over
// the plan cache: the first run of a mis-estimated query triggers one
// re-plan, the re-costed entry converges, and further repeats leave the
// counters alone.
func TestPlannerReplanExactlyOnce(t *testing.T) {
	s, _, ts, _ := newTestServer(t, nil)
	entryOf := func() *cacheEntry {
		e, ok := s.cache.get(cacheKey("test-v1", replanProbe))
		if !ok {
			t.Fatal("probe query has no cache entry")
		}
		return e
	}
	for i, wantReplans := range []int64{1, 1, 1} {
		res, err := postQuery(ts, replanProbe)
		if err != nil {
			t.Fatal(err)
		}
		if res.trailer.Status != "ok" || res.rows != 1 {
			t.Fatalf("run %d: status %q rows %d: %s", i, res.trailer.Status, res.rows, res.body)
		}
		if got := entryOf().replanCount(); got != wantReplans {
			t.Fatalf("after run %d: replans = %d, want %d", i, got, wantReplans)
		}
	}
	if got := scrapeCounter(t, ts, "volcano_planner_replans_total"); got != 1 {
		t.Fatalf("volcano_planner_replans_total = %v, want 1", got)
	}
	// Costed once, re-costed once after the mis-estimate, then stable.
	if got := scrapeCounter(t, ts, "volcano_planner_costed_total"); got != 2 {
		t.Fatalf("volcano_planner_costed_total = %v, want 2", got)
	}
	if got := scrapeCounter(t, ts, "volcano_planner_feedback_total"); got != 3 {
		t.Fatalf("volcano_planner_feedback_total = %v, want 3", got)
	}
}

// TestPlannerReplanConcurrent hammers one mis-estimated query from many
// goroutines: however the runs interleave, observations are only
// accepted against the cache entry's current costed plan, so the whole
// burst causes exactly one re-plan (run with -race in CI).
func TestPlannerReplanConcurrent(t *testing.T) {
	s, _, ts, _ := newTestServer(t, func(c *Config) { c.MaxConcurrent = 8 })
	const burst = 8
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := postQuery(ts, replanProbe)
			if err != nil {
				errs <- err
				return
			}
			if res.trailer.Status != "ok" || res.rows != 1 {
				errs <- fmt.Errorf("status %q rows %d", res.trailer.Status, res.rows)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One settling run so the burst's replacement plan has executed too.
	if res, err := postQuery(ts, replanProbe); err != nil || res.trailer.Status != "ok" {
		t.Fatalf("settling run: %v %+v", err, res.trailer)
	}
	e, ok := s.cache.get(cacheKey("test-v1", replanProbe))
	if !ok {
		t.Fatal("probe query has no cache entry")
	}
	if got := e.replanCount(); got != 1 {
		t.Fatalf("replans = %d, want exactly 1 across the burst", got)
	}
}
