package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// Query lifecycle phases. A query passes through them in order; the
// registry records the wall time each one took so the phase breakdown in
// trailers, /debug/queries and the slow-query log all read the same
// numbers.
const (
	phasePlan    = "plan"    // parse/compile (or plan-cache hit)
	phaseQueued  = "queued"  // admission-control wait
	phaseExecute = "execute" // iterator build + Open (blocking operators run here)
	phaseStream  = "stream"  // row drain, client writes, trailer
)

// queryStates as reported by /debug/queries.
const (
	stateQueued    = int32(iota) // waiting for admission
	stateExecuting               // building/opening the iterator tree
	stateStreaming               // draining rows to the client
)

func stateName(s int32) string {
	switch s {
	case stateQueued:
		return "queued"
	case stateExecuting:
		return "executing"
	default:
		return "streaming"
	}
}

// queryRecord is one live query: its identity, lifecycle timings and —
// once the iterator tree exists — a handle on the live per-operator
// counters. Registration is per query; the only per-record touch on the
// streaming hot path is one atomic add (addRows), which allocates
// nothing (guarded by TestRegistryHotPathZeroAlloc).
type queryRecord struct {
	id       string
	source   string // normalized plan text
	batch    int    // effective batch size (0 = record-at-a-time)
	cacheHit bool
	started  time.Time

	// entry is the plan-cache entry the query compiled through; /debug
	// views read its re-plan count. Nil when the cache is disabled.
	entry *cacheEntry

	state atomic.Int32
	rows  atomic.Int64 // rows streamed to the client so far

	// Phase durations in nanoseconds, each stored once when its phase
	// ends; zero means "not reached / still in it".
	planNs    atomic.Int64
	queuedNs  atomic.Int64
	executeNs atomic.Int64
	streamNs  atomic.Int64

	// analysis is set once the tree is built (stateExecuting) and never
	// replaced; the pointer is published atomically so /debug readers
	// racing the builder see nil or the complete value.
	analysis atomic.Pointer[plan.Analysis]

	// meter is the query's resource accounting: every engine layer the
	// build touches (buffer, device, exchange, batch pool, result stream)
	// attributes into it. Embedded by value so registering a query costs
	// one allocation, not two.
	meter core.ResourceMeter
}

// resources returns the query's attributed resource usage. When the
// iterator tree exists the snapshot goes through the Analysis so the
// derived CPU time is current; before the build (rejections) the raw
// meter — all zeros but structurally valid — answers instead.
func (q *queryRecord) resources() core.ResourceSnapshot {
	if an := q.analysis.Load(); an != nil {
		return an.Resources()
	}
	return q.meter.Snapshot()
}

func (q *queryRecord) addRows(n int64) { q.rows.Add(n) }

// phases returns the phase breakdown in milliseconds, as served to
// clients. The phase currently in progress reads zero — /debug consumers
// infer it from state and elapsed instead of a half-told number.
func (q *queryRecord) phases() phaseMillis {
	return phaseMillis{
		PlanMs:    float64(q.planNs.Load()) / 1e6,
		QueuedMs:  float64(q.queuedNs.Load()) / 1e6,
		ExecuteMs: float64(q.executeNs.Load()) / 1e6,
		StreamMs:  float64(q.streamNs.Load()) / 1e6,
	}
}

// registry is the active-query set: every admitted-or-waiting query from
// ID assignment to trailer, keyed by query ID. It is the data source for
// GET /debug/queries and the volcano_server_queries_active gauge.
type registry struct {
	mu     sync.Mutex
	active map[string]*queryRecord

	m *serverMetrics
}

func newRegistry(m *serverMetrics) *registry {
	return &registry{active: make(map[string]*queryRecord), m: m}
}

// add registers a query under its ID. A duplicate ID is refused: two
// concurrent queries must never share an identity, or every downstream
// join (logs, traces, debug views) becomes ambiguous.
func (r *registry) add(q *queryRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.active[q.id]; ok {
		return fmt.Errorf("server: query id %q is already active", q.id)
	}
	r.active[q.id] = q
	r.m.queriesActive.Inc()
	return nil
}

// remove unregisters a finished query.
func (r *registry) remove(id string) {
	r.mu.Lock()
	if _, ok := r.active[id]; ok {
		delete(r.active, id)
		r.m.queriesActive.Dec()
	}
	r.mu.Unlock()
}

// get returns the record for one active query.
func (r *registry) get(id string) (*queryRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.active[id]
	return q, ok
}

// snapshot returns the active records ordered by start time (oldest
// first), so the debug view reads as a stable queue.
func (r *registry) snapshot() []*queryRecord {
	r.mu.Lock()
	out := make([]*queryRecord, 0, len(r.active))
	for _, q := range r.active {
		out = append(out, q)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].started.Equal(out[j].started) {
			return out[i].started.Before(out[j].started)
		}
		return out[i].id < out[j].id
	})
	return out
}

// len reports the number of active queries (tests).
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// newQueryID generates a fresh query identity: 8 random bytes, hex.
// Collisions across a process lifetime are vanishingly unlikely, and a
// collision among *active* queries is refused by registry.add anyway.
func newQueryID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// clock so queries still get distinct-enough identities.
		return fmt.Sprintf("q-%x", time.Now().UnixNano())
	}
	return "q-" + hex.EncodeToString(b[:])
}

// validQueryID accepts client-supplied IDs: 1..120 chars drawn from a
// URL- and log-safe alphabet. Anything else is a 400 — the ID is echoed
// into headers, JSON logs and debug URLs, so it must stay inert there.
func validQueryID(id string) bool {
	if len(id) == 0 || len(id) > 120 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}
